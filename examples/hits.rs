//! HITS (Hubs and Authorities) on a synthetic power-law web graph — the
//! `X^T (X y)` instantiation of the pattern, one evaluation per power
//! iteration.
//!
//! ```text
//! cargo run --release --example hits
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::powerlaw_sparse;
use fusedml_matrix::{Coo, CsrMatrix};
use fusedml_ml::{hits, HitsOptions};

fn main() {
    // A power-law link graph of 30k pages, plus three authority hubs that
    // many pages point to.
    let pages = 30_000;
    let base = powerlaw_sparse(pages, pages, 8.0, 0.8, 77);
    let mut coo = Coo::new(pages, pages);
    for r in 0..pages {
        for (c, _) in base.row_entries(r) {
            coo.push(r, c as usize, 1.0);
        }
        // Every 7th page links to the three celebrities.
        if r % 7 == 0 {
            for celebrity in [11usize, 222, 3333] {
                coo.push(r, celebrity, 1.0);
            }
        }
    }
    let graph = CsrMatrix::from_coo(&coo);
    println!("graph: {pages} pages, {} links", graph.nnz());

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let mut backend = FusedBackend::new_sparse(&gpu, &graph);
    let result = hits(&mut backend, HitsOptions::default());
    let stats = backend.stats();

    let mut ranked: Vec<(usize, f64)> = result.authorities.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "converged in {} iterations (delta {:.2e}); top authorities:",
        result.iterations, result.delta
    );
    for (page, score) in ranked.iter().take(5) {
        println!("  page {page:>6}: {score:.4}");
    }
    println!(
        "simulated GPU time {:.2} ms across {} launches; patterns: {:?}",
        stats.sim_ms, stats.launches, stats.pattern_counts
    );

    let top3: Vec<usize> = ranked.iter().take(3).map(|(p, _)| *p).collect();
    for celebrity in [11usize, 222, 3333] {
        assert!(
            top3.contains(&celebrity),
            "page {celebrity} should rank in the top 3, got {top3:?}"
        );
    }
    println!("==> the three planted celebrity pages rank top-3, as expected");
}
