//! Quickstart: evaluate the paper's generic pattern
//! `w = alpha * X^T (v ⊙ (X y)) + beta * z` with the fused kernel and with
//! the operator-by-operator baseline, verify they agree with the CPU
//! reference, and report the simulated speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;

fn main() {
    // A 50k x 1k sparse matrix at 1% density, like the paper's sweep data.
    let (m, n) = (50_000, 1000);
    let x = uniform_sparse(m, n, 0.01, 42);
    println!("matrix: {m} x {n}, {} non-zeros", x.nnz());

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let xd = GpuCsr::upload(&gpu, "X", &x);
    let y = random_vector(n, 1);
    let v = random_vector(m, 2);
    let z = random_vector(n, 3);
    let yd = gpu.upload_f64("y", &y);
    let vd = gpu.upload_f64("v", &v);
    let zd = gpu.upload_f64("z", &z);
    let (alpha, beta) = (2.0, -0.5);
    let spec = PatternSpec::full(alpha, beta);

    // Fused: one kernel, hierarchical aggregation.
    let w_fused = gpu.alloc_f64("w_fused", n);
    gpu.flush_caches();
    let mut fused = FusedExecutor::new(&gpu);
    fused.pattern_sparse(spec, &xd, Some(&vd), &yd, Some(&zd), &w_fused);
    let plan = fused.sparse_plan(&xd);
    println!(
        "fused plan: VS={} BS={} C={} grid={} (occupancy {:.2})",
        plan.vs, plan.bs, plan.c, plan.grid, plan.occupancy.occupancy
    );

    // Baseline: one kernel per operator, cuBLAS/cuSPARSE style.
    let w_base = gpu.alloc_f64("w_base", n);
    let p_tmp = gpu.alloc_f64("p", m);
    gpu.flush_caches();
    let mut baseline = BaselineEngine::new(&gpu, Flavor::CuLibs);
    baseline.pattern_sparse(alpha, &xd, Some(&vd), &yd, beta, Some(&zd), &w_base, &p_tmp);

    // Both must match the CPU reference.
    let expect = reference::pattern_csr(alpha, &x, Some(&v), &y, beta, Some(&z));
    let err_fused = reference::rel_l2_error(&w_fused.to_vec_f64(), &expect);
    let err_base = reference::rel_l2_error(&w_base.to_vec_f64(), &expect);
    assert!(err_fused < 1e-10, "fused result off by {err_fused}");
    assert!(err_base < 1e-10, "baseline result off by {err_base}");
    println!("numerics: fused rel-err {err_fused:.2e}, baseline rel-err {err_base:.2e}");

    println!(
        "simulated time: fused {:.3} ms in {} launches vs baseline {:.3} ms in {} launches",
        fused.total_sim_ms(),
        fused.launch_count(),
        baseline.total_sim_ms(),
        baseline.launch_count(),
    );
    println!(
        "==> fused kernel speedup: {:.1}x",
        baseline.total_sim_ms() / fused.total_sim_ms()
    );

    println!("\n--- simulated profiler report for the fused kernel ---");
    let fused_kernel = fused.launches.last().expect("launched");
    print!("{}", fusedml_gpu_sim::profile_report(fused_kernel));
}
