//! Explore the launch-parameter space of the sparse fused kernel (the
//! Fig. 6 experiment, §3.3/§4.3): sweep block size and coarsening factor,
//! then compare the analytical model's pick against the empirical optimum.
//! Also prints the CUDA source the dense code generator would emit
//! (Listing 2 of the paper).
//!
//! ```text
//! cargo run --release --example tuning_explorer
//! ```

use fusedml::prelude::*;
use fusedml_core::tuner::manual_sparse_plan;
use fusedml_core::{generate_cuda_source, plan_dense, plan_sparse};
use fusedml_matrix::gen::{random_vector, uniform_sparse};

fn main() {
    let (m, n) = (60_000, 1000);
    let x = uniform_sparse(m, n, 0.01, 21);
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let xd = GpuCsr::upload(&gpu, "X", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 22));
    let w = gpu.alloc_f64("w", n);

    let model = plan_sparse(gpu.spec(), m, n, x.mean_nnz_per_row());
    println!(
        "analytical model: VS={} BS={} C={} grid={} occupancy={:.2}",
        model.vs, model.bs, model.c, model.grid, model.occupancy.occupancy
    );

    // Sweep BS x C with VS held at the model's Equation-4 choice.
    let spec = PatternSpec::xtxy();
    let mut results: Vec<(usize, usize, f64)> = Vec::new();
    for bs_mult in (2..=32).step_by(2) {
        let bs = 32 * bs_mult;
        for c in [1usize, 4, 16, 64, 256, 1024] {
            let Some(plan) = manual_sparse_plan(gpu.spec(), m, n, model.vs, bs, c) else {
                continue;
            };
            gpu.flush_caches();
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&plan, spec, &xd, None, &y, None, &w);
            results.push((bs, c, ex.total_sim_ms()));
        }
    }
    results.sort_by(|a, b| a.2.total_cmp(&b.2));
    println!("\nswept {} configurations; five best:", results.len());
    for (bs, c, ms) in results.iter().take(5) {
        println!("  BS={bs:>5} C={c:>5}  {ms:.4} ms");
    }
    let worst = results.last().unwrap();
    println!(
        "  ...worst: BS={} C={}  {:.4} ms",
        worst.0, worst.1, worst.2
    );

    gpu.flush_caches();
    let mut ex = FusedExecutor::new(&gpu);
    ex.pattern_sparse_with_plan(&model, spec, &xd, None, &y, None, &w);
    let model_ms = ex.total_sim_ms();
    let best_ms = results[0].2;
    println!(
        "\nmodel choice: {model_ms:.4} ms — {:.1}% off the sweep optimum",
        100.0 * (model_ms / best_ms - 1.0).max(0.0)
    );

    // Bonus: the dense kernel's "generated" CUDA for the paper's example.
    let dense = plan_dense(gpu.spec(), m, 32);
    println!(
        "\ndense plan for n=32: VS={} TL={} BS={}; generated kernel:\n",
        dense.vs, dense.tl, dense.bs
    );
    println!("{}", generate_cuda_source(32, 16, 2));
}
