//! Run the paper's Listing 1 — a DML script — through the mini-DML
//! frontend on all three engines, showing the fusion optimizer
//! "transparently selecting" the fused kernel (§4.4).
//!
//! ```text
//! cargo run --release --example dml_script
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_script::{count_fused, optimize, parse, EngineMode, Interpreter, Value, LISTING_1};

fn main() {
    println!("--- the script (paper Listing 1) ---\n{LISTING_1}");

    let prog = parse(LISTING_1).expect("parses");
    let fused_nodes = count_fused(&optimize(&prog));
    println!("optimizer found {fused_nodes} fusable pattern instances\n");

    let (m, n) = (30_000, 500);
    let x = uniform_sparse(m, n, 0.02, 21);
    let w_true = random_vector(n, 22);
    let labels = reference::csr_mv(&x, &w_true);
    println!("data: {m} x {n} sparse, {} nnz\n", x.nnz());

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let mut results: Vec<(&str, Vec<f64>, f64, usize, usize)> = Vec::new();

    for (name, mode) in [
        ("fused GPU   ", Some(EngineMode::FusedGpu)),
        ("baseline GPU", Some(EngineMode::BaselineGpu)),
        ("host only   ", None),
    ] {
        gpu.flush_caches();
        let mut interp = match mode {
            Some(mode) => Interpreter::on_gpu(&gpu, mode),
            None => Interpreter::host_only(),
        };
        interp.bind_sparse("V", x.clone());
        interp.bind_vector("y", labels.clone());
        interp.run(LISTING_1).expect("script runs");
        let Value::Vector(w) = &interp.outputs()["w"] else {
            panic!("no weight output")
        };
        results.push((
            name,
            (**w).clone(),
            interp.stats.sim_ms,
            interp.stats.launches,
            interp.stats.fused_evals,
        ));
    }

    println!("engine        sim_ms   launches  fused_evals  weight_err");
    for (name, w, ms, launches, fused) in &results {
        let err = reference::rel_l2_error(w, &w_true);
        println!("{name}  {ms:>8.3}  {launches:>8}  {fused:>11}  {err:.2e}");
    }

    let fused_ms = results[0].2;
    let base_ms = results[1].2;
    println!(
        "\n==> transparent fusion speedup inside the script runtime: {:.1}x",
        base_ms / fused_ms
    );
    assert!(fused_ms < base_ms);
}
