//! Logistic regression by trust-region Newton-CG on sparse data — the
//! algorithm whose Hessian-vector products are the *full* instantiation of
//! the generic pattern, `X^T (v ⊙ (X s)) + lambda s`.
//!
//! ```text
//! cargo run --release --example logistic_regression
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_ml::{logreg, LogRegOptions};

fn main() {
    let (m, n) = (20_000, 200);
    let x = uniform_sparse(m, n, 0.05, 17);
    let w_true = random_vector(n, 18);
    let labels: Vec<f64> = reference::csr_mv(&x, &w_true)
        .iter()
        .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    println!("data: {m} x {n} sparse ({} nnz), separable labels", x.nnz());

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let mut backend = FusedBackend::new_sparse(&gpu, &x);
    let result = logreg(&mut backend, &labels, LogRegOptions::default());
    let stats = backend.stats();

    // Training accuracy.
    let scores = reference::csr_mv(&x, &result.weights);
    let correct = scores
        .iter()
        .zip(&labels)
        .filter(|(s, l)| (s.signum() - **l).abs() < 0.5)
        .count();
    let acc = correct as f64 / m as f64;

    println!(
        "converged in {} Newton steps / {} CG steps; objective {:.3}; accuracy {:.1}%",
        result.iterations,
        result.cg_iterations,
        result.objective,
        100.0 * acc
    );
    println!(
        "simulated GPU time {:.2} ms across {} launches",
        stats.sim_ms, stats.launches
    );
    println!("pattern instantiations used: {:#?}", stats.pattern_counts);
    assert!(acc > 0.95, "logistic regression failed to separate");
}
