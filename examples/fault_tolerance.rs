//! The fault-tolerant execution layer in action: run LR-CG under
//! deterministic device-fault injection and watch the recovery policy
//! retry transient faults and walk the `Fused -> Baseline -> Cpu`
//! degradation ladder, while the answer stays correct.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use fusedml_gpu_sim::{DeviceSpec, FaultProfile, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_ml::{lr_cg, CpuBackend, LrCgOptions};
use fusedml_runtime::{
    run_device_fault_tolerant, DataSet, EngineKind, FaultTolerantReport, RecoveryPolicy,
    SessionConfig,
};

fn show(label: &str, r: &FaultTolerantReport, reference_w: &[f64]) {
    let err = reference::rel_l2_error(&r.weights, reference_w);
    println!(
        "{label}: tier={} attempts={} backoff={:.1}ms restarts={} rel_err={err:.2e}",
        r.tier.name(),
        r.attempts,
        r.retry_backoff_ms,
        r.restarts
    );
    println!(
        "  faults: kernel={} alloc={} transfer={} watchdog={}",
        r.faults.kernel_faults,
        r.faults.alloc_faults,
        r.faults.transfer_timeouts,
        r.faults.watchdog_timeouts
    );
    for e in &r.events {
        println!(
            "  [{}#{}] {:?} on {}: {}",
            e.tier.name(),
            e.attempt,
            e.action,
            e.error_kind,
            e.detail
        );
    }
}

fn main() {
    let x = uniform_sparse(2_000, 128, 0.05, 11);
    let w_true = random_vector(128, 12);
    let labels = reference::csr_mv(&x, &w_true);
    let data = DataSet::Sparse(x.clone());
    let cfg = SessionConfig::native(EngineKind::Fused, 12);
    let policy = RecoveryPolicy::default();

    // Ground truth from the host reference implementation.
    let mut cpu = CpuBackend::new_sparse(x);
    let reference_w = lr_cg(
        &mut cpu,
        &labels,
        LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 12,
        },
    )
    .weights;

    // 1. No injection: the fused tier completes on the first attempt.
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let r = run_device_fault_tolerant(&gpu, &data, &labels, &cfg, &policy)
        .expect("clean run cannot fail");
    show("clean device", &r, &reference_w);

    // 2. Occasional transient kernel faults: retried on the same tier.
    let gpu = Gpu::new(DeviceSpec::gtx_titan())
        .with_fault_profile(FaultProfile::seeded(3).with_kernel_fault_rate(0.03));
    let policy_retry = RecoveryPolicy {
        max_retries: 8,
        ..policy
    };
    let r = run_device_fault_tolerant(&gpu, &data, &labels, &cfg, &policy_retry)
        .expect("retries recover");
    show("flaky device", &r, &reference_w);

    // 3. Saturated faults: both device tiers are unusable, the ladder
    //    lands on the CPU and the answer is still right.
    let gpu = Gpu::new(DeviceSpec::gtx_titan()).with_fault_profile(
        FaultProfile::seeded(7)
            .with_kernel_fault_rate(1.0)
            .with_alloc_fault_rate(1.0),
    );
    let r = run_device_fault_tolerant(&gpu, &data, &labels, &cfg, &policy)
        .expect("cpu tier cannot fault");
    show("broken device", &r, &reference_w);

    // 4. Same seed, same trail: the injector is deterministic.
    let rerun = |seed: u64| {
        let gpu = Gpu::new(DeviceSpec::gtx_titan())
            .with_fault_profile(FaultProfile::seeded(seed).with_kernel_fault_rate(0.01));
        let policy = RecoveryPolicy {
            max_retries: 20,
            ..RecoveryPolicy::default()
        };
        run_device_fault_tolerant(&gpu, &data, &labels, &cfg, &policy).expect("recovers")
    };
    let (a, b) = (rerun(42), rerun(42));
    println!(
        "determinism: seed 42 twice -> identical reports: {}",
        a == b
    );

    // 5. Degradation disabled: the fault surfaces as a typed error
    //    instead of a silent fallback.
    let gpu = Gpu::new(DeviceSpec::gtx_titan())
        .with_fault_profile(FaultProfile::seeded(9).with_kernel_fault_rate(1.0));
    let strict = RecoveryPolicy {
        allow_degradation: false,
        max_retries: 1,
        ..RecoveryPolicy::default()
    };
    match run_device_fault_tolerant(&gpu, &data, &labels, &cfg, &strict) {
        Ok(_) => println!("strict policy: unexpectedly succeeded"),
        Err(e) => println!(
            "strict policy: error kind={} transient={}\n  {e}",
            e.kind(),
            e.is_transient()
        ),
    }
}
