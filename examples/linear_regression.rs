//! End-to-end linear regression via conjugate gradient (the paper's
//! Listing 1) on a HIGGS-shaped dense data set, comparing the fused and
//! baseline pipelines and checking that both recover the planted weights.
//!
//! ```text
//! cargo run --release --example linear_regression
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::{dense_random, random_vector};
use fusedml_matrix::reference;
use fusedml_ml::{lr_cg, LrCgOptions};

fn main() {
    // HIGGS-shaped: tall and 28 columns (scaled rows for a quick demo).
    let (m, n) = (100_000, 28);
    let x = dense_random(m, n, 7);
    let w_true = random_vector(n, 8);
    let labels = reference::dense_mv(&x, &w_true);
    println!("data: {m} x {n} dense; labels = X * w_true (noiseless)");

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let opts = LrCgOptions {
        eps: 0.0,
        tolerance: 1e-8,
        max_iterations: 50,
    };

    let mut fused = FusedBackend::new_dense(&gpu, &x);
    let r_fused = lr_cg(&mut fused, &labels, opts);
    let fused_stats = fused.stats();

    gpu.flush_caches();
    let mut baseline = BaselineBackend::new_dense(&gpu, &x);
    let r_base = lr_cg(&mut baseline, &labels, opts);
    let base_stats = baseline.stats();

    let err_fused = reference::rel_l2_error(&r_fused.weights, &w_true);
    let err_base = reference::rel_l2_error(&r_base.weights, &w_true);
    println!(
        "fused:    {} iterations, weight rel-err {err_fused:.2e}, {:.2} ms simulated, {} launches",
        r_fused.iterations, fused_stats.sim_ms, fused_stats.launches
    );
    println!(
        "baseline: {} iterations, weight rel-err {err_base:.2e}, {:.2} ms simulated, {} launches",
        r_base.iterations, base_stats.sim_ms, base_stats.launches
    );
    assert!(err_fused < 1e-4 && err_base < 1e-4, "CG failed to converge");

    println!(
        "==> end-to-end kernel speedup: {:.2}x (pattern evaluations: {:?})",
        base_stats.sim_ms / fused_stats.sim_ms,
        fused_stats.pattern_counts
    );
}
