//! L2-SVM trained in the primal by Newton's method (Chapelle, the paper's
//! SVM citation) — the Hessian-vector products run the generic pattern
//! with the support-vector indicator as `v`.
//!
//! ```text
//! cargo run --release --example svm
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_ml::{svm_primal, SvmOptions};

fn main() {
    let (m, n) = (30_000, 300);
    let x = uniform_sparse(m, n, 0.04, 33);
    let w_true = random_vector(n, 34);
    // Separable labels with a margin: drop points too close to the plane.
    let scores = reference::csr_mv(&x, &w_true);
    let labels: Vec<f64> = scores
        .iter()
        .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    println!("data: {m} x {n} sparse, {} nnz", x.nnz());

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let mut fused = FusedBackend::new_sparse(&gpu, &x);
    let result = svm_primal(&mut fused, &labels, SvmOptions::default());
    let stats = fused.stats();

    let predictions = reference::csr_mv(&x, &result.weights);
    let correct = predictions
        .iter()
        .zip(&labels)
        .filter(|(p, l)| (p.signum() - **l).abs() < 0.5)
        .count();
    println!(
        "converged in {} Newton steps / {} CG steps; {} support vectors of {m} points",
        result.iterations, result.cg_iterations, result.support_vectors
    );
    println!(
        "training accuracy {:.2}% | objective {:.4}",
        100.0 * correct as f64 / m as f64,
        result.objective
    );
    println!(
        "simulated GPU time {:.2} ms across {} launches; pattern evaluations: {:?}",
        stats.sim_ms, stats.launches, stats.pattern_counts
    );
    assert!(correct as f64 / m as f64 > 0.95);
}
