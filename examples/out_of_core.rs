//! Out-of-core (streaming) pattern evaluation — the adaptation §3 of the
//! paper sketches for matrices that do not fit device memory: row chunks
//! stream over PCIe with double buffering while the fused kernel
//! accumulates their contributions.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use fusedml::prelude::*;
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_runtime::{stream_pattern_sparse, TransferModel};

fn main() {
    // Pretend this matrix exceeds device memory and must stream.
    let (m, n) = (200_000, 512);
    let x = uniform_sparse(m, n, 0.01, 99);
    let y = random_vector(n, 100);
    println!(
        "matrix: {m} x {n}, {} nnz ({} MB in CSR)",
        x.nnz(),
        x.size_bytes() / 1_000_000
    );

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let spec = PatternSpec::xtxy();

    println!("\nchunk_rows  chunks  transfer_ms  kernel_ms  overlapped_ms  serial_ms");
    let mut last = None;
    for chunk_rows in [10_000usize, 25_000, 50_000, 200_000] {
        gpu.flush_caches();
        let (w, report) = stream_pattern_sparse(
            &gpu,
            spec,
            &x,
            None,
            &y,
            None,
            chunk_rows,
            &TransferModel::native(),
        );
        println!(
            "{chunk_rows:>10}  {:>6}  {:>11.3}  {:>9.3}  {:>13.3}  {:>9.3}",
            report.chunks,
            report.transfer_ms,
            report.kernel_ms,
            report.overlapped_ms,
            report.serial_ms
        );
        last = Some((w, report));
    }

    let (w, single) = last.expect("ran");
    let expect = reference::pattern_csr(1.0, &x, None, &y, 0.0, None);
    let err = reference::rel_l2_error(&w, &expect);
    println!("\nnumerics: streamed result rel-err {err:.2e} vs reference");
    assert!(err < 1e-10);
    assert_eq!(single.chunks, 1, "last config holds the whole matrix");
    println!(
        "==> overlap hides the smaller of transfer/compute; the single-chunk run \
         shows the in-core floor"
    );
}
