//! # fusedml
//!
//! A reproduction of *"On Optimizing Machine Learning Workloads via Kernel
//! Fusion"* (PPoPP 2015) as a Rust workspace: fused GPU kernels for the
//! generic pattern `w = alpha * X^T (v ⊙ (X y)) + beta * z`, executed on a
//! functional + performance-modelling GPU simulator.
//!
//! This facade crate re-exports the workspace libraries and hosts the
//! runnable examples (`cargo run --example quickstart`) and the
//! cross-crate integration tests. See `DESIGN.md` for the system map and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use fusedml_blas as blas;
pub use fusedml_core as core;
pub use fusedml_gpu_sim as gpu_sim;
pub use fusedml_matrix as matrix;
pub use fusedml_ml as ml;
pub use fusedml_runtime as runtime;
pub use fusedml_script as script;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use fusedml_blas::{BaselineEngine, Flavor, GpuCsr, GpuDense};
    pub use fusedml_core::{FusedExecutor, PatternInstance, PatternSpec};
    pub use fusedml_gpu_sim::{DeviceSpec, Gpu, LaunchConfig};
    pub use fusedml_matrix::{CsrMatrix, DenseMatrix};
    pub use fusedml_ml::{Backend, BaselineBackend, CpuBackend, FusedBackend};
}
