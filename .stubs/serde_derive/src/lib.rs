//! Offline dev-loop stub derive macros for the serde stub: emit empty
//! marker-trait impls for plain (non-generic) structs and enums.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("stub serde_derive: could not find type name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
