//! Offline dev-loop stub of `serde_json` — compile-surface only.

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
}

impl serde::Serialize for Value {}

#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error")
    }
}
impl std::error::Error for Error {}

pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value, Error> {
    Ok(Value::Null)
}

pub fn to_string_pretty<T: serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok("null".to_string())
}

impl<I> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, _index: I) -> &Value {
        &Value::Null
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, _other: &&str) -> bool {
        false
    }
}
