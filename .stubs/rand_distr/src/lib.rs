//! Offline dev-loop stub of `rand_distr` 0.4 — Zipf only.

use rand::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipfError;

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid Zipf parameters")
    }
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return Err(ZipfError);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}
