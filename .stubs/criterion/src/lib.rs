//! Offline resolution-only stub.
