//! Offline dev-loop stub of `serde` — marker traits only.

pub trait Serialize {}
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_prim {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
impl_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String, char);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl Serialize for &str {}
impl<T: Serialize> Serialize for &T {}
