//! Offline dev-loop stub of `rand` 0.8 — SplitMix64-based, deterministic.
//! Covers only the API surface this workspace uses.

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: &std::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &std::ops::Range<Self>) -> Self {
                let span = (range.end - range.start) as u64;
                assert!(span > 0, "empty range");
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: &std::ops::Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub trait Standard {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
