//! Offline resolution-only stub.
