//! Offline resolution-only stub.
