//! Offline dev-loop stub of `parking_lot` — std Mutex without poisoning.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex(std::sync::Mutex::new(T::default()))
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
