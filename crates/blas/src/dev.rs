//! Device-resident matrix representations: the CSR triple
//! (`values`, `col_idx`, `row_off`) and row-major dense storage, mirroring
//! what cuSPARSE/cuBLAS operate on.

use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer};
use fusedml_matrix::{CsrMatrix, DenseMatrix};

/// CSR matrix uploaded to the simulated device.
#[derive(Debug, Clone)]
pub struct GpuCsr {
    pub rows: usize,
    pub cols: usize,
    pub nnz: usize,
    /// `rows + 1` offsets (u32 like cuSPARSE's `int` offsets).
    pub row_off: GpuBuffer,
    pub col_idx: GpuBuffer,
    pub values: GpuBuffer,
    /// Set when row indices within a column are not sorted (output of the
    /// device `csr2csc`, whose scatter order is nondeterministic). SpMV is
    /// order-insensitive so this only matters for host downloads.
    pub unsorted: bool,
}

impl GpuCsr {
    /// Upload a host CSR matrix (simulated `cudaMemcpy` H2D; transfer cost
    /// is the runtime crate's concern), reporting allocation/transfer faults.
    pub fn try_upload(gpu: &Gpu, name: &str, x: &CsrMatrix) -> Result<Self, DeviceError> {
        assert!(
            x.nnz() <= u32::MAX as usize,
            "device CSR uses u32 offsets; nnz {} too large",
            x.nnz()
        );
        let row_off: Vec<u32> = x.row_off().iter().map(|&o| o as u32).collect();
        Ok(GpuCsr {
            rows: x.rows(),
            cols: x.cols(),
            nnz: x.nnz(),
            row_off: gpu.try_upload_u32(&format!("{name}.row_off"), &row_off)?,
            col_idx: gpu.try_upload_u32(&format!("{name}.col_idx"), x.col_idx())?,
            values: gpu.try_upload_f64(&format!("{name}.values"), x.values())?,
            unsorted: false,
        })
    }

    /// Infallible [`GpuCsr::try_upload`]; panics on device faults.
    pub fn upload(gpu: &Gpu, name: &str, x: &CsrMatrix) -> Self {
        GpuCsr::try_upload(gpu, name, x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Total device bytes held by this matrix.
    pub fn size_bytes(&self) -> u64 {
        self.row_off.size_bytes() + self.col_idx.size_bytes() + self.values.size_bytes()
    }

    /// Mean non-zeros per row (`mu` of Equation 4).
    pub fn mean_nnz_per_row(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz as f64 / self.rows as f64
        }
    }
}

/// Dense row-major matrix uploaded to the simulated device.
#[derive(Debug, Clone)]
pub struct GpuDense {
    pub rows: usize,
    pub cols: usize,
    pub data: GpuBuffer,
}

impl GpuDense {
    /// Upload a host dense matrix, reporting allocation/transfer faults.
    pub fn try_upload(gpu: &Gpu, name: &str, x: &DenseMatrix) -> Result<Self, DeviceError> {
        Ok(GpuDense {
            rows: x.rows(),
            cols: x.cols(),
            data: gpu.try_upload_f64(name, x.data())?,
        })
    }

    /// Infallible [`GpuDense::try_upload`]; panics on device faults.
    pub fn upload(gpu: &Gpu, name: &str, x: &DenseMatrix) -> Self {
        GpuDense::try_upload(gpu, name, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn size_bytes(&self) -> u64 {
        self.data.size_bytes()
    }

    /// Linear element index of `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> usize {
        row * self.cols + col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::uniform_sparse;

    #[test]
    fn csr_upload_roundtrip() {
        let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = uniform_sparse(10, 20, 0.2, 1);
        let d = GpuCsr::upload(&gpu, "x", &x);
        assert_eq!(d.nnz, x.nnz());
        assert_eq!(d.values.to_vec_f64(), x.values());
        assert_eq!(d.col_idx.to_vec_u32(), x.col_idx());
        assert_eq!(
            d.row_off.to_vec_u32(),
            x.row_off().iter().map(|&o| o as u32).collect::<Vec<_>>()
        );
        assert_eq!(d.size_bytes(), (x.nnz() * 12 + 11 * 4) as u64);
    }

    #[test]
    fn dense_upload_roundtrip() {
        let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = fusedml_matrix::gen::dense_random(5, 7, 2);
        let d = GpuDense::upload(&gpu, "x", &x);
        assert_eq!(d.data.to_vec_f64(), x.data());
        assert_eq!(d.at(2, 3), 17);
    }
}
