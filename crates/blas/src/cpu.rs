//! Analytical CPU engine standing in for BIDMat-CPU (Intel MKL with 8
//! hyper-threads) in the comparative figures, plus a *measured*
//! single-threaded executor used by Table 2's compute-time breakdown.
//!
//! The analytical model charges each operator its memory traffic and FLOPs
//! against the roofline of [`CpuSpec`]; the measured executor actually runs
//! the reference implementations under a wall clock.

use fusedml_gpu_sim::CpuSpec;
use fusedml_matrix::reference;
use fusedml_matrix::{CsrMatrix, DenseMatrix};
use std::fmt;
use std::time::Instant;

/// Analytical CPU timing for the sparse operators of the pattern.
#[derive(Debug, Clone)]
pub struct CpuEngine {
    pub spec: CpuSpec,
    /// Accumulated simulated milliseconds.
    pub total_ms: f64,
}

impl CpuEngine {
    pub fn new(spec: CpuSpec) -> Self {
        CpuEngine {
            spec,
            total_ms: 0.0,
        }
    }

    pub fn mkl_8threads() -> Self {
        Self::new(CpuSpec::core_i7_8threads())
    }

    pub fn reset(&mut self) {
        self.total_ms = 0.0;
    }

    fn charge(&mut self, bytes: u64, flops: u64, irregular: bool) -> f64 {
        let t = self.spec.op_time_ms(bytes, flops, irregular);
        self.total_ms += t;
        t
    }

    /// `p = X * y`, sparse: stream values + indices; the gathered `y` is
    /// LLC-resident for the column counts in play, so only the streaming
    /// traffic hits DRAM.
    pub fn csrmv_ms(&mut self, nnz: usize, rows: usize) -> f64 {
        let bytes = (nnz * (8 + 4) + (rows + 1) * 4 + rows * 8) as u64;
        self.charge(bytes, 2 * nnz as u64, true)
    }

    /// `w = X^T * p`, sparse: stream the matrix, scatter into `w`
    /// (cache-resident accumulator).
    pub fn csrmv_t_ms(&mut self, nnz: usize, rows: usize, cols: usize) -> f64 {
        let bytes = (nnz * (8 + 4) + (rows + 1) * 4 + rows * 8 + cols * 8) as u64;
        self.charge(bytes, 2 * nnz as u64, true)
    }

    /// `p = X * y`, dense: stream the matrix once.
    pub fn gemv_ms(&mut self, rows: usize, cols: usize) -> f64 {
        let bytes = (rows * cols * 8 + cols * 8 + rows * 8) as u64;
        self.charge(bytes, 2 * (rows * cols) as u64, false)
    }

    /// `w = X^T * p`, dense: stream the matrix once (MKL blocks it well).
    pub fn gemv_t_ms(&mut self, rows: usize, cols: usize) -> f64 {
        let bytes = (rows * cols * 8 + rows * 8 + cols * 16) as u64;
        self.charge(bytes, 2 * (rows * cols) as u64, false)
    }

    /// Element-wise multiply of length-n vectors.
    pub fn ewmul_ms(&mut self, n: usize) -> f64 {
        self.charge((3 * n * 8) as u64, n as u64, false)
    }

    /// `y += a x`.
    pub fn axpy_ms(&mut self, n: usize) -> f64 {
        self.charge((3 * n * 8) as u64, 2 * n as u64, false)
    }

    /// `x *= a`.
    pub fn scal_ms(&mut self, n: usize) -> f64 {
        self.charge((2 * n * 8) as u64, n as u64, false)
    }

    /// Dot product.
    pub fn dot_ms(&mut self, n: usize) -> f64 {
        self.charge((2 * n * 8) as u64, 2 * n as u64, false)
    }

    /// The full sparse pattern, operator by operator.
    pub fn pattern_sparse_ms(
        &mut self,
        x_rows: usize,
        x_cols: usize,
        nnz: usize,
        with_v: bool,
        with_z: bool,
        alpha_scaling: bool,
    ) -> f64 {
        let mut t = self.csrmv_ms(nnz, x_rows);
        if with_v {
            t += self.ewmul_ms(x_rows);
        }
        t += self.csrmv_t_ms(nnz, x_rows, x_cols);
        if alpha_scaling {
            t += self.scal_ms(x_cols);
        }
        if with_z {
            t += self.axpy_ms(x_cols);
        }
        t
    }

    /// The full sparse pattern as ONE fused pass: the matrix streams
    /// through once, the per-row intermediate `v_i * (x_i · y)` stays in
    /// registers, and only the `cols`-length accumulator is written back
    /// — the CPU analog of the paper's fused kernel. Compare against
    /// [`Self::pattern_sparse_ms`] for the modeled fusion win.
    pub fn pattern_sparse_fused_ms(
        &mut self,
        x_rows: usize,
        x_cols: usize,
        nnz: usize,
        with_v: bool,
        with_z: bool,
        alpha_scaling: bool,
    ) -> f64 {
        let mut bytes = (nnz * (8 + 4) + (x_rows + 1) * 4 + x_cols * 8) as u64;
        // Each nonzero participates in the row dot AND the scatter.
        let mut flops = 4 * nnz as u64;
        if with_v {
            bytes += (x_rows * 8) as u64;
            flops += x_rows as u64;
        }
        if alpha_scaling {
            bytes += (2 * x_cols * 8) as u64;
            flops += x_cols as u64;
        }
        if with_z {
            bytes += (3 * x_cols * 8) as u64;
            flops += 2 * x_cols as u64;
        }
        self.charge(bytes, flops, true)
    }

    /// The full dense pattern, operator by operator.
    pub fn pattern_dense_ms(
        &mut self,
        x_rows: usize,
        x_cols: usize,
        with_v: bool,
        with_z: bool,
        alpha_scaling: bool,
    ) -> f64 {
        let mut t = self.gemv_ms(x_rows, x_cols);
        if with_v {
            t += self.ewmul_ms(x_rows);
        }
        t += self.gemv_t_ms(x_rows, x_cols);
        if alpha_scaling {
            t += self.scal_ms(x_cols);
        }
        if with_z {
            t += self.axpy_ms(x_cols);
        }
        t
    }

    /// The full dense pattern as ONE fused pass: the matrix streams once
    /// (row dot + row axpy back-to-back), instead of the two full scans
    /// the operator-by-operator [`Self::pattern_dense_ms`] pays.
    pub fn pattern_dense_fused_ms(
        &mut self,
        x_rows: usize,
        x_cols: usize,
        with_v: bool,
        with_z: bool,
        alpha_scaling: bool,
    ) -> f64 {
        let mut bytes = (x_rows * x_cols * 8 + x_cols * 16) as u64;
        let mut flops = 4 * (x_rows * x_cols) as u64;
        if with_v {
            bytes += (x_rows * 8) as u64;
            flops += x_rows as u64;
        }
        if alpha_scaling {
            bytes += (2 * x_cols * 8) as u64;
            flops += x_cols as u64;
        }
        if with_z {
            bytes += (3 * x_cols * 8) as u64;
            flops += 2 * x_cols as u64;
        }
        self.charge(bytes, flops, false)
    }
}

/// A wall-clock measurement could not be taken as requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureError {
    /// `repeats == 0` would time nothing at all; earlier code silently
    /// rewrote it to 1, reporting a repeat count the caller never asked
    /// for.
    ZeroRepeats,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::ZeroRepeats => {
                write!(f, "measurement requires at least one timed repeat")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

/// Wall-clock measured single-threaded execution of the pattern's
/// components — what the paper's Table 2 profiles on SystemML's CPU
/// backend. Returns `(pattern_ms, blas1_ms)` for one LR-CG-style
/// iteration: the **minimum** over `repeats` timed iterations, taken
/// after one untimed warm-up iteration, with every buffer preallocated
/// outside the timed windows so no allocator or cold-cache noise
/// contaminates the numbers.
pub fn measure_lrcg_iteration_sparse(
    x: &CsrMatrix,
    repeats: usize,
) -> Result<(f64, f64), MeasureError> {
    if repeats == 0 {
        return Err(MeasureError::ZeroRepeats);
    }
    let m = x.rows();
    let n = x.cols();
    // Every buffer — including the mat-vec outputs — lives outside the
    // timed regions; the timed kernels are the allocation-free `_into`
    // reference forms.
    let mut p = vec![0.0; m];
    let mut q = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut pdir = vec![0.1; n];
    let mut pattern_ms = f64::INFINITY;
    let mut blas1_ms = f64::INFINITY;
    for rep in 0..=repeats {
        // Pattern part of one Listing-1 iteration: q = X^T (X p).
        let t0 = Instant::now();
        reference::csr_mv_into(x, &pdir, &mut p);
        reference::csr_tmv_into(x, &p, &mut q);
        let dt_pattern = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&q);

        // BLAS-1 part: dot, 3 axpy, nrm2, scal over n-vectors (lines
        // 12-18 of Listing 1).
        let t1 = Instant::now();
        let pq = reference::dot(&pdir, &q);
        let alpha = 1.0 / (pq.abs() + 1.0);
        reference::axpy(alpha, &pdir, &mut w);
        reference::axpy(alpha, &q, &mut r);
        let nr2 = reference::norm2_sq(&r);
        let beta = nr2 / (nr2 + 1.0);
        reference::scal(beta, &mut pdir);
        reference::axpy(-1.0, &r, &mut pdir);
        let dt_blas1 = t1.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box((&w, &pdir));

        // rep 0 is the untimed warm-up.
        if rep > 0 {
            pattern_ms = pattern_ms.min(dt_pattern);
            blas1_ms = blas1_ms.min(dt_blas1);
        }
    }
    Ok((pattern_ms, blas1_ms))
}

/// Dense counterpart of [`measure_lrcg_iteration_sparse`] — same
/// methodology: preallocated buffers, untimed warm-up, min-over-repeats.
pub fn measure_lrcg_iteration_dense(
    x: &DenseMatrix,
    repeats: usize,
) -> Result<(f64, f64), MeasureError> {
    if repeats == 0 {
        return Err(MeasureError::ZeroRepeats);
    }
    let m = x.rows();
    let n = x.cols();
    let mut p = vec![0.0; m];
    let mut q = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut pdir = vec![0.1; n];
    let mut pattern_ms = f64::INFINITY;
    let mut blas1_ms = f64::INFINITY;
    for rep in 0..=repeats {
        let t0 = Instant::now();
        reference::dense_mv_into(x, &pdir, &mut p);
        reference::dense_tmv_into(x, &p, &mut q);
        let dt_pattern = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&q);

        let t1 = Instant::now();
        let pq = reference::dot(&pdir, &q);
        let alpha = 1.0 / (pq.abs() + 1.0);
        reference::axpy(alpha, &pdir, &mut w);
        reference::axpy(alpha, &q, &mut r);
        let nr2 = reference::norm2_sq(&r);
        let beta = nr2 / (nr2 + 1.0);
        reference::scal(beta, &mut pdir);
        reference::axpy(-1.0, &r, &mut pdir);
        let dt_blas1 = t1.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box((&w, &pdir));

        if rep > 0 {
            pattern_ms = pattern_ms.min(dt_pattern);
            blas1_ms = blas1_ms.min(dt_blas1);
        }
    }
    Ok((pattern_ms, blas1_ms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_matrix::gen::uniform_sparse;

    #[test]
    fn analytical_engine_accumulates() {
        let mut e = CpuEngine::mkl_8threads();
        let t1 = e.csrmv_ms(1_000_000, 100_000);
        let t2 = e.csrmv_t_ms(1_000_000, 100_000, 1000);
        assert!(t1 > 0.0 && t2 > t1 * 0.5);
        assert!((e.total_ms - (t1 + t2)).abs() < 1e-12);
        e.reset();
        assert_eq!(e.total_ms, 0.0);
    }

    #[test]
    fn sparse_pattern_costs_more_with_options() {
        let mut a = CpuEngine::mkl_8threads();
        let bare = a.pattern_sparse_ms(10_000, 500, 50_000, false, false, false);
        let mut b = CpuEngine::mkl_8threads();
        let full = b.pattern_sparse_ms(10_000, 500, 50_000, true, true, true);
        assert!(full > bare);
    }

    #[test]
    fn dense_pattern_bandwidth_dominated() {
        let mut e = CpuEngine::mkl_8threads();
        // 1M x 28 doubles = 224 MB per scan; two scans at 25.6 GB/s ≈ 17.5ms.
        let t = e.pattern_dense_ms(1_000_000, 28, false, false, false);
        assert!(t > 10.0 && t < 40.0, "unexpected dense pattern time {t}");
    }

    #[test]
    fn fused_sparse_pattern_models_cheaper_than_unfused() {
        let mut a = CpuEngine::mkl_8threads();
        let unfused = a.pattern_sparse_ms(100_000, 1000, 2_000_000, true, true, true);
        let mut b = CpuEngine::mkl_8threads();
        let fused = b.pattern_sparse_fused_ms(100_000, 1000, 2_000_000, true, true, true);
        assert!(
            fused < unfused,
            "fused {fused} should beat unfused {unfused}"
        );
    }

    #[test]
    fn measured_breakdown_pattern_dominates() {
        // Table 2's claim: the pattern accounts for the overwhelming share
        // of single-threaded compute time.
        let x = uniform_sparse(4000, 400, 0.05, 3);
        let (pattern, blas1) =
            measure_lrcg_iteration_sparse(&x, 3).expect("repeats > 0 always measures");
        assert!(pattern > 0.0 && blas1 >= 0.0);
        assert!(
            pattern / (pattern + blas1) > 0.5,
            "pattern {pattern} vs blas1 {blas1}"
        );
    }

    #[test]
    fn zero_repeats_is_a_typed_error_not_a_silent_rewrite() {
        let x = uniform_sparse(16, 8, 0.5, 4);
        assert_eq!(
            measure_lrcg_iteration_sparse(&x, 0),
            Err(MeasureError::ZeroRepeats)
        );
        assert_eq!(
            measure_lrcg_iteration_dense(&x.to_dense(), 0),
            Err(MeasureError::ZeroRepeats)
        );
    }
}
