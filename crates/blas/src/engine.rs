//! Operator-by-operator evaluation of the paper's generic pattern — the
//! baseline every figure compares the fused kernel against.
//!
//! `w = alpha * X^T (v ⊙ (X y)) + beta * z` is computed exactly the way a
//! cuBLAS/cuSPARSE (or BIDMat-GPU) composition would: one kernel launch per
//! operator, intermediates materialized in global memory.

use crate::csrmv::{vector_size_for_mean_nnz, SpmvStyle};
use crate::dev::{GpuCsr, GpuDense};
use crate::level1;
use fusedml_gpu_sim::{Counters, DeviceError, Gpu, GpuBuffer, LaunchStats};

/// Which library's composition style the engine mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// cuSPARSE (sparse) / cuBLAS (dense): CSR-vector SpMV, shared-tile
    /// transposed GEMV, every Level-1 op a separate launch.
    CuLibs,
    /// BIDMat-GPU: CSR-scalar SpMV, register-direct transposed GEMV.
    BidmatGpu,
}

/// A baseline execution engine. Accumulates the [`LaunchStats`] of every
/// kernel it launches so experiments can report simulated time and event
/// totals.
pub struct BaselineEngine<'g> {
    gpu: &'g Gpu,
    flavor: Flavor,
    /// Every launch performed since the last [`BaselineEngine::reset`].
    pub launches: Vec<LaunchStats>,
    scalar: GpuBuffer,
}

impl<'g> BaselineEngine<'g> {
    /// Construct the engine, reporting a device fault if the scratch
    /// scalar cannot be allocated.
    pub fn try_new(gpu: &'g Gpu, flavor: Flavor) -> Result<Self, DeviceError> {
        Ok(BaselineEngine {
            gpu,
            flavor,
            launches: Vec::new(),
            scalar: gpu.try_alloc_f64("engine.scalar", 1)?,
        })
    }

    /// Infallible [`BaselineEngine::try_new`]; panics on device faults.
    pub fn new(gpu: &'g Gpu, flavor: Flavor) -> Self {
        BaselineEngine::try_new(gpu, flavor).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn gpu(&self) -> &'g Gpu {
        self.gpu
    }

    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// Total simulated milliseconds since the last reset.
    pub fn total_sim_ms(&self) -> f64 {
        self.launches.iter().map(|l| l.sim_ms()).sum()
    }

    /// Total kernel launches since the last reset.
    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// Hardware event counters merged across every launch since the last
    /// reset (the per-phase export the benchmark reports aggregate).
    pub fn counters_total(&self) -> Counters {
        let mut total = Counters::new();
        for l in &self.launches {
            total.merge(&l.counters);
        }
        total
    }

    pub fn reset(&mut self) {
        self.launches.clear();
    }

    fn spmv_style(&self, x: &GpuCsr) -> SpmvStyle {
        match self.flavor {
            Flavor::CuLibs => SpmvStyle::Vector {
                vs: vector_size_for_mean_nnz(x.mean_nnz_per_row()),
            },
            Flavor::BidmatGpu => SpmvStyle::Scalar,
        }
    }

    // ---------------- recorded operator launches ----------------

    /// `p = X * y` (sparse), reporting device faults.
    pub fn try_csrmv(
        &mut self,
        x: &GpuCsr,
        y: &GpuBuffer,
        p: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        let s = crate::csrmv::try_csrmv(self.gpu, x, y, p, self.spmv_style(x))?;
        self.launches.push(s);
        Ok(())
    }

    /// `p = X * y` (sparse).
    pub fn csrmv(&mut self, x: &GpuCsr, y: &GpuBuffer, p: &GpuBuffer) {
        self.try_csrmv(x, y, p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `w = X^T * p` (sparse) — the library's slow path.
    ///
    /// * `CuLibs`: explicit `csr2csc` followed by a regular SpMV, the
    ///   behaviour the paper infers from cuSPARSE's 3.5x-higher load count
    ///   ("this may be due to explicit construction of X^T", §4.1). The
    ///   transpose is rebuilt on every call, as an opaque library kernel
    ///   must.
    /// * `BidmatGpu`: row-wise atomic scatter.
    pub fn try_csrmv_t(
        &mut self,
        x: &GpuCsr,
        p: &GpuBuffer,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        match self.flavor {
            Flavor::CuLibs => {
                let (xt, launches) = crate::transpose::try_csr2csc_device(self.gpu, x)?;
                self.launches.extend(launches);
                let s = crate::csrmv_t::try_csrmv_t_pretransposed(self.gpu, &xt, p, w);
                self.gpu.free(&xt.row_off);
                self.gpu.free(&xt.col_idx);
                self.gpu.free(&xt.values);
                self.launches.push(s?);
            }
            Flavor::BidmatGpu => {
                self.launches
                    .extend(crate::csrmv_t::try_csrmv_t_atomic(self.gpu, x, p, w)?);
            }
        }
        Ok(())
    }

    /// Infallible [`BaselineEngine::try_csrmv_t`]; panics on device faults.
    pub fn csrmv_t(&mut self, x: &GpuCsr, p: &GpuBuffer, w: &GpuBuffer) {
        self.try_csrmv_t(x, p, w).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `p = X * y` (dense), reporting device faults.
    pub fn try_gemv(
        &mut self,
        x: &GpuDense,
        y: &GpuBuffer,
        p: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        let s = crate::gemv::try_gemv(self.gpu, x, y, p)?;
        self.launches.push(s);
        Ok(())
    }

    /// `p = X * y` (dense).
    pub fn gemv(&mut self, x: &GpuDense, y: &GpuBuffer, p: &GpuBuffer) {
        self.try_gemv(x, y, p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// `w = X^T * p` (dense), reporting device faults.
    pub fn try_gemv_t(
        &mut self,
        x: &GpuDense,
        p: &GpuBuffer,
        w: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        let ls = match self.flavor {
            Flavor::CuLibs => crate::gemv::try_gemv_t(self.gpu, x, p, w)?,
            Flavor::BidmatGpu => crate::gemv::try_gemv_t_direct(self.gpu, x, p, w)?,
        };
        self.launches.extend(ls);
        Ok(())
    }

    /// `w = X^T * p` (dense).
    pub fn gemv_t(&mut self, x: &GpuDense, p: &GpuBuffer, w: &GpuBuffer) {
        self.try_gemv_t(x, p, w).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_fill(&mut self, buf: &GpuBuffer, v: f64) -> Result<(), DeviceError> {
        self.launches.push(level1::try_fill(self.gpu, buf, v)?);
        Ok(())
    }

    pub fn fill(&mut self, buf: &GpuBuffer, v: f64) {
        self.try_fill(buf, v).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_copy(&mut self, src: &GpuBuffer, dst: &GpuBuffer) -> Result<(), DeviceError> {
        self.launches.push(level1::try_copy(self.gpu, src, dst)?);
        Ok(())
    }

    pub fn copy(&mut self, src: &GpuBuffer, dst: &GpuBuffer) {
        self.try_copy(src, dst).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_axpy(&mut self, a: f64, x: &GpuBuffer, y: &GpuBuffer) -> Result<(), DeviceError> {
        self.launches.push(level1::try_axpy(self.gpu, a, x, y)?);
        Ok(())
    }

    pub fn axpy(&mut self, a: f64, x: &GpuBuffer, y: &GpuBuffer) {
        self.try_axpy(a, x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_scal(&mut self, a: f64, x: &GpuBuffer) -> Result<(), DeviceError> {
        self.launches.push(level1::try_scal(self.gpu, a, x)?);
        Ok(())
    }

    pub fn scal(&mut self, a: f64, x: &GpuBuffer) {
        self.try_scal(a, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_ewmul(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        self.launches.push(level1::try_ewmul(self.gpu, x, y, out)?);
        Ok(())
    }

    pub fn ewmul(&mut self, x: &GpuBuffer, y: &GpuBuffer, out: &GpuBuffer) {
        self.try_ewmul(x, y, out).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> Result<f64, DeviceError> {
        let (v, s) = level1::try_dot(self.gpu, x, y, &self.scalar)?;
        self.launches.push(s);
        Ok(v)
    }

    pub fn dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> f64 {
        self.try_dot(x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn try_nrm2_sq(&mut self, x: &GpuBuffer) -> Result<f64, DeviceError> {
        let (v, s) = level1::try_nrm2_sq(self.gpu, x, &self.scalar)?;
        self.launches.push(s);
        Ok(v)
    }

    pub fn nrm2_sq(&mut self, x: &GpuBuffer) -> f64 {
        self.try_nrm2_sq(x).unwrap_or_else(|e| panic!("{e}"))
    }

    // ---------------- pattern composition ----------------

    /// Evaluate the full generic pattern on sparse input, operator by
    /// operator: `w = alpha * X^T (v ⊙ (X y)) + beta * z`.
    ///
    /// `tmp_p` is scratch of length `X.rows` (reused across iterations the
    /// way Listing 1's intermediates are).
    #[allow(clippy::too_many_arguments)]
    pub fn try_pattern_sparse(
        &mut self,
        alpha: f64,
        x: &GpuCsr,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        beta: f64,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
        tmp_p: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        self.try_csrmv(x, y, tmp_p)?;
        if let Some(v) = v {
            self.try_ewmul(tmp_p, v, tmp_p)?;
        }
        self.try_csrmv_t(x, tmp_p, w)?;
        if alpha != 1.0 {
            self.try_scal(alpha, w)?;
        }
        if let Some(z) = z {
            self.try_axpy(beta, z, w)?;
        }
        Ok(())
    }

    /// Infallible [`BaselineEngine::try_pattern_sparse`].
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_sparse(
        &mut self,
        alpha: f64,
        x: &GpuCsr,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        beta: f64,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
        tmp_p: &GpuBuffer,
    ) {
        self.try_pattern_sparse(alpha, x, v, y, beta, z, w, tmp_p)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Dense counterpart of [`BaselineEngine::try_pattern_sparse`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_pattern_dense(
        &mut self,
        alpha: f64,
        x: &GpuDense,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        beta: f64,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
        tmp_p: &GpuBuffer,
    ) -> Result<(), DeviceError> {
        self.try_gemv(x, y, tmp_p)?;
        if let Some(v) = v {
            self.try_ewmul(tmp_p, v, tmp_p)?;
        }
        self.try_gemv_t(x, tmp_p, w)?;
        if alpha != 1.0 {
            self.try_scal(alpha, w)?;
        }
        if let Some(z) = z {
            self.try_axpy(beta, z, w)?;
        }
        Ok(())
    }

    /// Infallible [`BaselineEngine::try_pattern_dense`].
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_dense(
        &mut self,
        alpha: f64,
        x: &GpuDense,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        beta: f64,
        z: Option<&GpuBuffer>,
        w: &GpuBuffer,
        tmp_p: &GpuBuffer,
    ) {
        self.try_pattern_dense(alpha, x, v, y, beta, z, w, tmp_p)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn sparse_pattern_both_flavors_match_reference() {
        let g = gpu();
        let x = uniform_sparse(180, 96, 0.07, 31);
        let y = random_vector(96, 1);
        let v = random_vector(180, 2);
        let z = random_vector(96, 3);
        let expect = reference::pattern_csr(1.5, &x, Some(&v), &y, -0.25, Some(&z));

        for flavor in [Flavor::CuLibs, Flavor::BidmatGpu] {
            let xd = GpuCsr::upload(&g, "x", &x);
            let yd = g.upload_f64("y", &y);
            let vd = g.upload_f64("v", &v);
            let zd = g.upload_f64("z", &z);
            let wd = g.alloc_f64("w", 96);
            let pd = g.alloc_f64("p", 180);
            let mut e = BaselineEngine::new(&g, flavor);
            e.pattern_sparse(1.5, &xd, Some(&vd), &yd, -0.25, Some(&zd), &wd, &pd);
            assert!(
                reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12,
                "{flavor:?}"
            );
            match flavor {
                // spmv, ewmul, fill, scatter, scal, axpy.
                Flavor::BidmatGpu => assert_eq!(e.launch_count(), 6),
                // The transposed product alone is a multi-kernel
                // transposition plus an SpMV.
                Flavor::CuLibs => assert!(e.launch_count() > 8),
            }
            assert!(e.total_sim_ms() > 0.0);
        }
    }

    #[test]
    fn dense_pattern_matches_reference() {
        let g = gpu();
        let x = dense_random(120, 48, 33);
        let y = random_vector(48, 4);
        let expect = reference::pattern_dense(1.0, &x, None, &y, 0.0, None);

        for flavor in [Flavor::CuLibs, Flavor::BidmatGpu] {
            let xd = GpuDense::upload(&g, "x", &x);
            let yd = g.upload_f64("y", &y);
            let wd = g.alloc_f64("w", 48);
            let pd = g.alloc_f64("p", 120);
            let mut e = BaselineEngine::new(&g, flavor);
            e.pattern_dense(1.0, &xd, None, &yd, 0.0, None, &wd, &pd);
            assert!(
                reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12,
                "{flavor:?}"
            );
            // No v/z and alpha=1: gemv + (fill + gemv_t) only.
            assert_eq!(e.launch_count(), 3, "{flavor:?}");
        }
    }

    #[test]
    fn reset_clears_accounting() {
        let g = gpu();
        let x = g.upload_f64("x", &random_vector(64, 5));
        let mut e = BaselineEngine::new(&g, Flavor::CuLibs);
        e.scal(2.0, &x);
        assert_eq!(e.launch_count(), 1);
        e.reset();
        assert_eq!(e.launch_count(), 0);
        assert_eq!(e.total_sim_ms(), 0.0);
    }

    #[test]
    fn dot_returns_value_and_records() {
        let g = gpu();
        let xh = random_vector(300, 6);
        let x = g.upload_f64("x", &xh);
        let mut e = BaselineEngine::new(&g, Flavor::CuLibs);
        let d = e.dot(&x, &x);
        assert!((d - reference::norm2_sq(&xh)).abs() < 1e-9);
        assert_eq!(e.launch_count(), 1);
    }
}
