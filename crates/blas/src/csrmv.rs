//! Sparse matrix-vector multiplication kernels (`p = X * y`), the building
//! block the paper's baselines launch as standalone operators.
//!
//! Two styles are provided:
//! * **CSR-vector** (Bell & Garland \[3\]) — `VS` cooperating threads per row
//!   with a shuffle-based segmented reduction; this is the cuSPARSE-class
//!   baseline and also the first stage of the fused kernels.
//! * **CSR-scalar** — one thread per row, the simpler scheme BIDMat-style
//!   libraries use; its per-lane row marching produces uncoalesced loads.

use crate::dev::GpuCsr;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

/// SpMV kernel flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmvStyle {
    /// CSR-vector with the given vector size (power of two in [1, 32]).
    Vector { vs: usize },
    /// CSR-scalar: one thread per row.
    Scalar,
}

/// Choose the vector size from the mean row length, Equation 4 of the
/// paper: `VS = 32` if `mu > 32`, otherwise the enclosing power of two.
pub fn vector_size_for_mean_nnz(mu: f64) -> usize {
    if mu > 32.0 {
        return 32;
    }
    // Largest 2^i in [1, 16] with 2^i < mu (2^{i+1} >= mu > 2^i), else 1.
    let mut vs = 16;
    while vs > 1 && vs as f64 >= mu {
        vs /= 2;
    }
    vs
}

/// Grid size covering `work_items` items with `per_block` items per block,
/// capped so the simulator does not crawl through millions of tiny blocks
/// (a grid-stride loop picks up the remainder, as real kernels do).
pub(crate) fn capped_grid(gpu: &Gpu, work_items: usize, per_block: usize) -> usize {
    let cap = gpu.spec().num_sms * gpu.spec().max_blocks_per_sm * 4;
    work_items.div_ceil(per_block.max(1)).clamp(1, cap)
}

/// `p = X * y` on the device (see [`csrmv`]), reporting device faults.
pub fn try_csrmv(
    gpu: &Gpu,
    x: &GpuCsr,
    y: &GpuBuffer,
    p: &GpuBuffer,
    style: SpmvStyle,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(p.len(), x.rows, "p length mismatch");
    match style {
        SpmvStyle::Vector { vs } => csrmv_vector(gpu, x, y, p, vs),
        SpmvStyle::Scalar => csrmv_scalar(gpu, x, y, p),
    }
}

/// `p = X * y` on the device. `p.len() == X.rows`.
pub fn csrmv(gpu: &Gpu, x: &GpuCsr, y: &GpuBuffer, p: &GpuBuffer, style: SpmvStyle) -> LaunchStats {
    try_csrmv(gpu, x, y, p, style).unwrap_or_else(|e| panic!("{e}"))
}

fn csrmv_vector(
    gpu: &Gpu,
    x: &GpuCsr,
    y: &GpuBuffer,
    p: &GpuBuffer,
    vs: usize,
) -> Result<LaunchStats, DeviceError> {
    assert!(
        vs.is_power_of_two() && (1..=WARP_LANES).contains(&vs),
        "vector size must be a power of two in [1, 32], got {vs}"
    );
    let m = x.rows;
    let bs = 256;
    let grid = capped_grid(gpu, m * vs, bs);
    let cfg = LaunchConfig::new(grid, bs).with_regs(28);

    gpu.try_launch("csrmv_vector", cfg, |blk| {
        let grid_vectors = blk.grid_dim() * blk.block_dim() / vs;
        blk.each_warp(|w| {
            let base_vid = w.gtid(0) / vs;
            // Row handled by `lane` when the warp's first vector is at
            // `row0`; `None` past the matrix end.
            let mut row0 = base_vid;
            while row0 < m {
                let row_of = |lane: usize| {
                    let r = row0 + lane / vs;
                    (r < m).then_some(r)
                };
                let start = w.load_u32(&x.row_off, row_of);
                let end = w.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));

                let mut sum = [0.0f64; WARP_LANES];
                let mut iter = 0usize;
                let mut idx = [None; WARP_LANES];
                loop {
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        idx[lane] = row_of(lane).and_then(|_| {
                            let i = start[lane] as usize + (lane % vs) + iter * vs;
                            (i < end[lane] as usize).then_some(i)
                        });
                        active += idx[lane].is_some() as u64;
                    }
                    if active == 0 {
                        break;
                    }
                    let cols = w.load_u32(&x.col_idx, |l| idx[l]);
                    let vals = w.load_f64(&x.values, |l| idx[l]);
                    let ys = w.load_f64_tex(y, |l| idx[l].map(|_| cols[l] as usize));
                    for lane in 0..WARP_LANES {
                        if idx[lane].is_some() {
                            sum[lane] += vals[lane] * ys[lane];
                        }
                    }
                    w.flops(2 * active);
                    iter += 1;
                }
                w.shuffle_reduce_sum(&mut sum, vs);
                w.store_f64(p, |lane| {
                    (lane % vs == 0)
                        .then(|| row_of(lane).map(|r| (r, sum[lane])))
                        .flatten()
                });
                row0 += grid_vectors;
            }
        });
    })
}

fn csrmv_scalar(
    gpu: &Gpu,
    x: &GpuCsr,
    y: &GpuBuffer,
    p: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    let m = x.rows;
    let bs = 256;
    let grid = capped_grid(gpu, m, bs);
    let cfg = LaunchConfig::new(grid, bs).with_regs(20);

    gpu.try_launch("csrmv_scalar", cfg, |blk| {
        let grid_threads = blk.grid_dim() * blk.block_dim();
        blk.each_warp(|w| {
            let mut row0 = w.gtid(0);
            while row0 < m {
                let row_of = |lane: usize| {
                    let r = row0 + lane;
                    (r < m).then_some(r)
                };
                let start = w.load_u32(&x.row_off, row_of);
                let end = w.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));
                let mut sum = [0.0f64; WARP_LANES];
                let mut iter = 0usize;
                let mut idx = [None; WARP_LANES];
                loop {
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        idx[lane] = row_of(lane).and_then(|_| {
                            let i = start[lane] as usize + iter;
                            (i < end[lane] as usize).then_some(i)
                        });
                        active += idx[lane].is_some() as u64;
                    }
                    if active == 0 {
                        break;
                    }
                    let cols = w.load_u32(&x.col_idx, |l| idx[l]);
                    let vals = w.load_f64(&x.values, |l| idx[l]);
                    let ys = w.load_f64_tex(y, |l| idx[l].map(|_| cols[l] as usize));
                    for lane in 0..WARP_LANES {
                        if idx[lane].is_some() {
                            sum[lane] += vals[lane] * ys[lane];
                        }
                    }
                    w.flops(2 * active);
                    iter += 1;
                }
                w.store_f64(p, |lane| row_of(lane).map(|r| (r, sum[lane])));
                row0 += grid_threads;
            }
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn eq4_vector_size() {
        assert_eq!(vector_size_for_mean_nnz(50.0), 32);
        assert_eq!(vector_size_for_mean_nnz(33.0), 32);
        assert_eq!(vector_size_for_mean_nnz(32.0), 16);
        assert_eq!(vector_size_for_mean_nnz(20.0), 16);
        assert_eq!(vector_size_for_mean_nnz(16.0), 8);
        assert_eq!(vector_size_for_mean_nnz(5.0), 4);
        assert_eq!(vector_size_for_mean_nnz(3.0), 2);
        assert_eq!(vector_size_for_mean_nnz(2.0), 1);
        assert_eq!(vector_size_for_mean_nnz(0.5), 1);
    }

    #[test]
    fn vector_spmv_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(300, 120, 0.05, 42);
        let y = random_vector(120, 1);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let pd = g.alloc_f64("p", 300);
        for vs in [1usize, 2, 4, 8, 16, 32] {
            csrmv(&g, &xd, &yd, &pd, SpmvStyle::Vector { vs });
            let expect = reference::csr_mv(&x, &y);
            let got = pd.to_vec_f64();
            assert!(
                reference::max_abs_diff(&got, &expect) < 1e-12,
                "vs={vs} mismatch"
            );
        }
    }

    #[test]
    fn scalar_spmv_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(257, 64, 0.1, 7);
        let y = random_vector(64, 2);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let pd = g.alloc_f64("p", 257);
        csrmv(&g, &xd, &yd, &pd, SpmvStyle::Scalar);
        assert!(reference::max_abs_diff(&pd.to_vec_f64(), &reference::csr_mv(&x, &y)) < 1e-12);
    }

    #[test]
    fn scalar_style_costs_more_transactions_than_vector() {
        let g = gpu();
        // Long rows make per-lane marching badly uncoalesced.
        let x = uniform_sparse(128, 2048, 0.05, 3); // ~102 nnz/row
        let y = random_vector(2048, 2);
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &y);
        let pd = g.alloc_f64("p", 128);
        let v = csrmv(&g, &xd, &yd, &pd, SpmvStyle::Vector { vs: 32 });
        g.flush_caches();
        let s = csrmv(&g, &xd, &yd, &pd, SpmvStyle::Scalar);
        assert!(
            s.counters.gld_transactions > 2 * v.counters.gld_transactions,
            "scalar {} vs vector {}",
            s.counters.gld_transactions,
            v.counters.gld_transactions
        );
    }

    #[test]
    fn empty_rows_yield_zero() {
        let g = gpu();
        let x = fusedml_matrix::CsrMatrix::from_parts(
            3,
            4,
            vec![0, 0, 2, 2],
            vec![1, 3],
            vec![2.0, -1.0],
        );
        let xd = GpuCsr::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &[1.0, 1.0, 1.0, 1.0]);
        let pd = g.alloc_f64("p", 3);
        csrmv(&g, &xd, &yd, &pd, SpmvStyle::Vector { vs: 2 });
        assert_eq!(pd.to_vec_f64(), vec![0.0, 1.0, 0.0]);
    }
}
