//! ELL and HYB SpMV device kernels (Bell & Garland's formats).
//!
//! ELL's column-major slot layout makes one-thread-per-row loads perfectly
//! coalesced: at slot `s`, lane `l` reads `data[s * rows + row0 + l]` —
//! 32 consecutive elements. The price is that every padding slot is still
//! a load. HYB adds a COO tail processed with row atomics.

use crate::csrmv::capped_grid;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};
use fusedml_matrix::ell::ELL_PAD;
use fusedml_matrix::{EllMatrix, HybMatrix};

/// Device-resident ELL matrix.
#[derive(Debug, Clone)]
pub struct GpuEll {
    pub rows: usize,
    pub cols: usize,
    pub width: usize,
    /// Slot-major `width * rows` columns (`ELL_PAD` in padding).
    pub col_idx: GpuBuffer,
    pub values: GpuBuffer,
}

impl GpuEll {
    /// Upload a host ELL matrix, reporting allocation/transfer faults.
    pub fn try_upload(gpu: &Gpu, name: &str, x: &EllMatrix) -> Result<Self, DeviceError> {
        Ok(GpuEll {
            rows: x.rows(),
            cols: x.cols(),
            width: x.width(),
            col_idx: gpu.try_upload_u32(&format!("{name}.col_idx"), x.col_idx())?,
            values: gpu.try_upload_f64(&format!("{name}.values"), x.values())?,
        })
    }

    /// Infallible [`GpuEll::try_upload`]; panics on device faults.
    pub fn upload(gpu: &Gpu, name: &str, x: &EllMatrix) -> Self {
        GpuEll::try_upload(gpu, name, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn size_bytes(&self) -> u64 {
        self.col_idx.size_bytes() + self.values.size_bytes()
    }
}

/// Device-resident HYB matrix: ELL part + COO tail as three arrays.
#[derive(Debug, Clone)]
pub struct GpuHyb {
    pub ell: GpuEll,
    pub coo_rows: GpuBuffer,
    pub coo_cols: GpuBuffer,
    pub coo_vals: GpuBuffer,
    pub coo_nnz: usize,
}

impl GpuHyb {
    /// Upload a host HYB matrix, reporting allocation/transfer faults.
    pub fn try_upload(gpu: &Gpu, name: &str, x: &HybMatrix) -> Result<Self, DeviceError> {
        let rows: Vec<u32> = x.coo().iter().map(|t| t.0).collect();
        let cols: Vec<u32> = x.coo().iter().map(|t| t.1).collect();
        let vals: Vec<f64> = x.coo().iter().map(|t| t.2).collect();
        Ok(GpuHyb {
            ell: GpuEll::try_upload(gpu, name, x.ell())?,
            coo_rows: gpu.try_upload_u32(&format!("{name}.coo_rows"), &rows)?,
            coo_cols: gpu.try_upload_u32(&format!("{name}.coo_cols"), &cols)?,
            coo_vals: gpu.try_upload_f64(&format!("{name}.coo_vals"), &vals)?,
            coo_nnz: x.coo().len(),
        })
    }

    /// Infallible [`GpuHyb::try_upload`]; panics on device faults.
    pub fn upload(gpu: &Gpu, name: &str, x: &HybMatrix) -> Self {
        GpuHyb::try_upload(gpu, name, x).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// `p = X * y` over ELL (see [`ellmv`]), reporting device faults.
pub fn try_ellmv(
    gpu: &Gpu,
    x: &GpuEll,
    y: &GpuBuffer,
    p: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(p.len(), x.rows, "p length mismatch");
    let (m, width) = (x.rows, x.width);
    let bs = 256;
    let grid = capped_grid(gpu, m, bs);
    let cfg = LaunchConfig::new(grid, bs).with_regs(20).with_ilp(2.0);

    gpu.try_launch("ellmv", cfg, |blk| {
        let grid_threads = blk.grid_dim() * blk.block_dim();
        blk.each_warp(|w| {
            let mut row0 = w.gtid(0);
            while row0 < m {
                let mut sum = [0.0f64; WARP_LANES];
                for slot in 0..width {
                    let cols = w.load_u32(&x.col_idx, |lane| {
                        (row0 + lane < m).then(|| slot * m + row0 + lane)
                    });
                    let vals = w.load_f64(&x.values, |lane| {
                        (row0 + lane < m).then(|| slot * m + row0 + lane)
                    });
                    let ys = w.load_f64_tex(y, |lane| {
                        (row0 + lane < m && cols[lane] != ELL_PAD).then(|| cols[lane] as usize)
                    });
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        if row0 + lane < m && cols[lane] != ELL_PAD {
                            sum[lane] += vals[lane] * ys[lane];
                            active += 1;
                        }
                    }
                    w.flops(2 * active);
                }
                w.store_f64(p, |lane| {
                    (row0 + lane < m).then(|| (row0 + lane, sum[lane]))
                });
                row0 += grid_threads;
            }
        });
    })
}

/// `p = X * y` over ELL: one thread per row, slot loop, coalesced.
pub fn ellmv(gpu: &Gpu, x: &GpuEll, y: &GpuBuffer, p: &GpuBuffer) -> LaunchStats {
    try_ellmv(gpu, x, y, p).unwrap_or_else(|e| panic!("{e}"))
}

/// COO tail: `p[row] += v * y[col]` with row atomics.
fn coo_tail(
    gpu: &Gpu,
    x: &GpuHyb,
    y: &GpuBuffer,
    p: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    let nnz = x.coo_nnz;
    let bs = 256;
    let grid = capped_grid(gpu, nnz.max(1), bs);
    let cfg = LaunchConfig::new(grid, bs).with_regs(18);
    gpu.try_launch("hyb_coo_tail", cfg, |blk| {
        let grid_threads = blk.grid_dim() * blk.block_dim();
        blk.each_warp(|w| {
            let mut base = w.gtid(0);
            while base < nnz {
                let rows = w.load_u32(&x.coo_rows, |l| (base + l < nnz).then_some(base + l));
                let cols = w.load_u32(&x.coo_cols, |l| (base + l < nnz).then_some(base + l));
                let vals = w.load_f64(&x.coo_vals, |l| (base + l < nnz).then_some(base + l));
                let ys = w.load_f64_tex(y, |l| (base + l < nnz).then(|| cols[l] as usize));
                w.flops((nnz - base).min(WARP_LANES) as u64 * 2);
                w.atomic_add_f64(p, |l| {
                    (base + l < nnz).then(|| (rows[l] as usize, vals[l] * ys[l]))
                });
                base += grid_threads;
            }
        });
    })
}

/// `p = X * y` over HYB (see [`hybmv`]), reporting device faults.
pub fn try_hybmv(
    gpu: &Gpu,
    x: &GpuHyb,
    y: &GpuBuffer,
    p: &GpuBuffer,
) -> Result<Vec<LaunchStats>, DeviceError> {
    let mut launches = vec![try_ellmv(gpu, &x.ell, y, p)?];
    if x.coo_nnz > 0 {
        launches.push(coo_tail(gpu, x, y, p)?);
    }
    Ok(launches)
}

/// `p = X * y` over HYB (ELL pass, then the COO tail).
pub fn hybmv(gpu: &Gpu, x: &GpuHyb, y: &GpuBuffer, p: &GpuBuffer) -> Vec<LaunchStats> {
    try_hybmv(gpu, x, y, p).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{powerlaw_sparse, random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn ellmv_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(200, 100, 0.08, 21);
        let ell = EllMatrix::from_csr(&x);
        let y = random_vector(100, 1);
        let xd = GpuEll::upload(&g, "x", &ell);
        let yd = g.upload_f64("y", &y);
        let pd = g.alloc_f64("p", 200);
        ellmv(&g, &xd, &yd, &pd);
        let expect = reference::csr_mv(&x, &y);
        assert!(reference::max_abs_diff(&pd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn hybmv_matches_reference_on_skewed_rows() {
        let g = gpu();
        let x = powerlaw_sparse(300, 150, 6.0, 0.8, 22);
        let hyb = HybMatrix::from_csr(&x, 4);
        assert!(hyb.overflow_ratio() > 0.0, "need a COO tail to test");
        let y = random_vector(150, 2);
        let xd = GpuHyb::upload(&g, "x", &hyb);
        let yd = g.upload_f64("y", &y);
        let pd = g.alloc_f64("p", 300);
        let launches = hybmv(&g, &xd, &yd, &pd);
        assert_eq!(launches.len(), 2);
        let expect = reference::csr_mv(&x, &y);
        assert!(reference::rel_l2_error(&pd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn ell_loads_are_coalesced() {
        let g = gpu();
        // Uniform 8 nnz/row: ELL stores exactly nnz slots.
        let x = uniform_sparse(2048, 256, 8.0 / 256.0, 23);
        let ell = EllMatrix::from_csr(&x);
        assert_eq!(ell.padding_ratio(), 0.0);
        let xd = GpuEll::upload(&g, "x", &ell);
        let yd = g.upload_f64("y", &random_vector(256, 3));
        let pd = g.alloc_f64("p", 2048);
        g.flush_caches();
        let stats = ellmv(&g, &xd, &yd, &pd);
        // Values: nnz/32 instructions * 8 sectors; cols: * 4 sectors.
        let nnz = ell.nnz() as u64;
        let ideal = nnz / 32 * 8 + nnz / 32 * 4;
        assert!(
            stats.counters.gld_transactions < ideal + ideal / 2 + (2048 / 32) * 8,
            "transactions {} vs ideal {}",
            stats.counters.gld_transactions,
            ideal
        );
    }

    #[test]
    fn empty_tail_is_one_launch() {
        let g = gpu();
        let x = uniform_sparse(64, 64, 0.1, 24);
        let k = (0..64).map(|r| x.row_nnz(r)).max().unwrap();
        let hyb = HybMatrix::from_csr(&x, k);
        assert_eq!(hyb.overflow_ratio(), 0.0);
        let xd = GpuHyb::upload(&g, "x", &hyb);
        let yd = g.upload_f64("y", &random_vector(64, 4));
        let pd = g.alloc_f64("p", 64);
        assert_eq!(hybmv(&g, &xd, &yd, &pd).len(), 1);
    }
}
