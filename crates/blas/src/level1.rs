//! BLAS Level-1 device kernels: the vector arithmetic Listing 1's conjugate
//! gradient stitches between matrix-vector products (`axpy`, `scal`, `dot`,
//! `nrm2`, element-wise multiply), plus `fill`/`copy` utilities.
//!
//! Each function is a standalone kernel launch — exactly the baseline
//! regime the paper measures against, where every operator pays launch
//! overhead and round-trips its operands through global memory.

use crate::csrmv::capped_grid;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

const BS: usize = 256;

fn elementwise<F>(
    gpu: &Gpu,
    name: &'static str,
    n: usize,
    body: F,
) -> Result<LaunchStats, DeviceError>
where
    F: Fn(&mut fusedml_gpu_sim::WarpCtx, usize /* base */) + Sync,
{
    let grid = capped_grid(gpu, n, BS);
    let cfg = LaunchConfig::new(grid, BS).with_regs(16);
    gpu.try_launch(name, cfg, |blk| {
        let grid_threads = blk.grid_dim() * blk.block_dim();
        blk.each_warp(|w| {
            let mut base = w.gtid(0);
            while base < n {
                body(w, base);
                base += grid_threads;
            }
        });
    })
}

/// `buf[i] = value` for all i, reporting device faults.
pub fn try_fill(gpu: &Gpu, buf: &GpuBuffer, value: f64) -> Result<LaunchStats, DeviceError> {
    let n = buf.len();
    elementwise(gpu, "fill", n, |w, base| {
        w.store_f64(buf, |lane| {
            (base + lane < n).then_some((base + lane, value))
        });
    })
}

/// `buf[i] = value` for all i.
pub fn fill(gpu: &Gpu, buf: &GpuBuffer, value: f64) -> LaunchStats {
    try_fill(gpu, buf, value).unwrap_or_else(|e| panic!("{e}"))
}

/// `dst = src`, reporting device faults.
pub fn try_copy(gpu: &Gpu, src: &GpuBuffer, dst: &GpuBuffer) -> Result<LaunchStats, DeviceError> {
    assert_eq!(src.len(), dst.len());
    let n = src.len();
    elementwise(gpu, "copy", n, |w, base| {
        let v = w.load_f64(src, |lane| (base + lane < n).then_some(base + lane));
        w.store_f64(dst, |lane| {
            (base + lane < n).then_some((base + lane, v[lane]))
        });
    })
}

/// `dst = src`.
pub fn copy(gpu: &Gpu, src: &GpuBuffer, dst: &GpuBuffer) -> LaunchStats {
    try_copy(gpu, src, dst).unwrap_or_else(|e| panic!("{e}"))
}

/// `y += a * x` in place, reporting device faults.
pub fn try_axpy(
    gpu: &Gpu,
    a: f64,
    x: &GpuBuffer,
    y: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    elementwise(gpu, "axpy", n, |w, base| {
        let xs = w.load_f64(x, |lane| (base + lane < n).then_some(base + lane));
        let ys = w.load_f64(y, |lane| (base + lane < n).then_some(base + lane));
        w.flops(2 * (n - base).min(WARP_LANES) as u64);
        w.store_f64(y, |lane| {
            (base + lane < n).then(|| (base + lane, ys[lane] + a * xs[lane]))
        });
    })
}

/// `y += a * x` in place.
pub fn axpy(gpu: &Gpu, a: f64, x: &GpuBuffer, y: &GpuBuffer) -> LaunchStats {
    try_axpy(gpu, a, x, y).unwrap_or_else(|e| panic!("{e}"))
}

/// `x *= a` in place, reporting device faults.
pub fn try_scal(gpu: &Gpu, a: f64, x: &GpuBuffer) -> Result<LaunchStats, DeviceError> {
    let n = x.len();
    elementwise(gpu, "scal", n, |w, base| {
        let xs = w.load_f64(x, |lane| (base + lane < n).then_some(base + lane));
        w.flops((n - base).min(WARP_LANES) as u64);
        w.store_f64(x, |lane| {
            (base + lane < n).then(|| (base + lane, a * xs[lane]))
        });
    })
}

/// `x *= a` in place.
pub fn scal(gpu: &Gpu, a: f64, x: &GpuBuffer) -> LaunchStats {
    try_scal(gpu, a, x).unwrap_or_else(|e| panic!("{e}"))
}

/// `out = x .* y` element-wise, reporting device faults.
pub fn try_ewmul(
    gpu: &Gpu,
    x: &GpuBuffer,
    y: &GpuBuffer,
    out: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), out.len());
    let n = x.len();
    elementwise(gpu, "ewmul", n, |w, base| {
        let xs = w.load_f64(x, |lane| (base + lane < n).then_some(base + lane));
        let ys = w.load_f64(y, |lane| (base + lane < n).then_some(base + lane));
        w.flops((n - base).min(WARP_LANES) as u64);
        w.store_f64(out, |lane| {
            (base + lane < n).then(|| (base + lane, xs[lane] * ys[lane]))
        });
    })
}

/// `out = x .* y` element-wise (the `v ⊙ (...)` step when evaluated as a
/// standalone operator).
pub fn ewmul(gpu: &Gpu, x: &GpuBuffer, y: &GpuBuffer, out: &GpuBuffer) -> LaunchStats {
    try_ewmul(gpu, x, y, out).unwrap_or_else(|e| panic!("{e}"))
}

/// Dot product `x . y` (see [`dot`]), reporting device faults.
pub fn try_dot(
    gpu: &Gpu,
    x: &GpuBuffer,
    y: &GpuBuffer,
    out: &GpuBuffer,
) -> Result<(f64, LaunchStats), DeviceError> {
    assert_eq!(x.len(), y.len());
    assert!(!out.is_empty());
    out.host_write_f64(0, 0.0);
    let n = x.len();
    let grid = capped_grid(gpu, n, BS);
    let cfg = LaunchConfig::new(grid, BS)
        .with_regs(20)
        .with_shared_bytes(8);
    let stats = gpu.try_launch("dot", cfg, |blk| {
        let block_acc = blk.shared_f64(1);
        let grid_threads = blk.grid_dim() * blk.block_dim();
        blk.each_warp(|w| {
            let mut sum = [0.0f64; WARP_LANES];
            let mut base = w.gtid(0);
            while base < n {
                let xs = w.load_f64(x, |lane| (base + lane < n).then_some(base + lane));
                let ys = w.load_f64(y, |lane| (base + lane < n).then_some(base + lane));
                for lane in 0..WARP_LANES {
                    if base + lane < n {
                        sum[lane] += xs[lane] * ys[lane];
                    }
                }
                w.flops(2 * (n - base).min(WARP_LANES) as u64);
                base += grid_threads;
            }
            w.shuffle_reduce_sum(&mut sum, 32);
            w.shared_atomic_add(block_acc, |lane| (lane == 0).then_some((0, sum[0])));
        });
        blk.sync();
        blk.each_warp(|w| {
            if w.warp_id() == 0 {
                let v = w.shared_load(block_acc, |lane| (lane == 0).then_some(0));
                w.atomic_add_f64(out, |lane| (lane == 0).then_some((0, v[0])));
            }
        });
    })?;
    Ok((out.host_read_f64(0), stats))
}

/// Dot product `x . y`, reduced hierarchically (shuffle within warps,
/// shared memory within the block, one global atomic per block) into
/// `out[0]`. Returns the scalar alongside the launch stats.
pub fn dot(gpu: &Gpu, x: &GpuBuffer, y: &GpuBuffer, out: &GpuBuffer) -> (f64, LaunchStats) {
    try_dot(gpu, x, y, out).unwrap_or_else(|e| panic!("{e}"))
}

/// Squared 2-norm (see [`nrm2_sq`]), reporting device faults.
pub fn try_nrm2_sq(
    gpu: &Gpu,
    x: &GpuBuffer,
    out: &GpuBuffer,
) -> Result<(f64, LaunchStats), DeviceError> {
    try_dot(gpu, x, x, out)
}

/// Squared 2-norm `sum(x .* x)` — `nrm2`'s square, what Listing 1 uses.
pub fn nrm2_sq(gpu: &Gpu, x: &GpuBuffer, out: &GpuBuffer) -> (f64, LaunchStats) {
    dot(gpu, x, x, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::random_vector;
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn fill_and_copy() {
        let g = gpu();
        let a = g.alloc_f64("a", 1000);
        fill(&g, &a, 3.5);
        assert!(a.to_vec_f64().iter().all(|&v| v == 3.5));
        let b = g.alloc_f64("b", 1000);
        copy(&g, &a, &b);
        assert_eq!(b.to_vec_f64(), a.to_vec_f64());
    }

    #[test]
    fn axpy_matches_reference() {
        let g = gpu();
        let xh = random_vector(777, 1);
        let yh = random_vector(777, 2);
        let x = g.upload_f64("x", &xh);
        let y = g.upload_f64("y", &yh);
        axpy(&g, -1.5, &x, &y);
        let mut expect = yh.clone();
        reference::axpy(-1.5, &xh, &mut expect);
        assert!(reference::max_abs_diff(&y.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn scal_and_ewmul() {
        let g = gpu();
        let xh = random_vector(100, 3);
        let x = g.upload_f64("x", &xh);
        scal(&g, 2.0, &x);
        let got = x.to_vec_f64();
        assert!(got
            .iter()
            .zip(&xh)
            .all(|(a, b)| (a - 2.0 * b).abs() < 1e-15));

        let yh = random_vector(100, 4);
        let y = g.upload_f64("y", &yh);
        let out = g.alloc_f64("out", 100);
        ewmul(&g, &x, &y, &out);
        let expect: Vec<f64> = got.iter().zip(&yh).map(|(a, b)| a * b).collect();
        assert!(reference::max_abs_diff(&out.to_vec_f64(), &expect) < 1e-15);
    }

    #[test]
    fn dot_matches_reference() {
        let g = gpu();
        let xh = random_vector(4097, 5);
        let yh = random_vector(4097, 6);
        let x = g.upload_f64("x", &xh);
        let y = g.upload_f64("y", &yh);
        let out = g.alloc_f64("dot", 1);
        let (d, stats) = dot(&g, &x, &y, &out);
        assert!((d - reference::dot(&xh, &yh)).abs() < 1e-9);
        // One atomic per block, not per element.
        assert!(stats.counters.global_atomics <= stats.config.grid_blocks as u64);
    }

    #[test]
    fn nrm2_sq_positive() {
        let g = gpu();
        let xh = random_vector(513, 7);
        let x = g.upload_f64("x", &xh);
        let out = g.alloc_f64("n", 1);
        let (n2, _) = nrm2_sq(&g, &x, &out);
        assert!((n2 - reference::norm2_sq(&xh)).abs() < 1e-9);
    }

    #[test]
    fn dot_is_repeatable() {
        let g = gpu();
        let xh = random_vector(2048, 8);
        let x = g.upload_f64("x", &xh);
        let out = g.alloc_f64("d", 1);
        let (a, _) = dot(&g, &x, &x, &out);
        let (b, _) = dot(&g, &x, &x, &out);
        assert_eq!(a, b, "sequential simulation must be bitwise repeatable");
    }
}
