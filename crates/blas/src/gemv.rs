//! Dense matrix-vector kernels (cuBLAS-class baselines).
//!
//! * [`gemv`] — `p = X * y`, one warp per row with coalesced row scans.
//! * [`gemv_t`] — `w = X^T * p`, the tile-through-shared-memory scheme the
//!   paper describes for the baseline (§3: "blocks of X can be read and
//!   kept in shared memory... accesses to shared memory may cause memory
//!   bank conflicts"), finishing with global atomics per column tile.

use crate::csrmv::capped_grid;
use crate::dev::GpuDense;
use crate::level1::try_fill;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

/// `p = X * y` for row-major dense `X`: each warp scans one row in
/// 32-element coalesced chunks and reduces with shuffles.
pub fn gemv(gpu: &Gpu, x: &GpuDense, y: &GpuBuffer, p: &GpuBuffer) -> LaunchStats {
    try_gemv(gpu, x, y, p).unwrap_or_else(|e| panic!("{e}"))
}

/// See [`gemv`]; reports device faults instead of panicking.
pub fn try_gemv(
    gpu: &Gpu,
    x: &GpuDense,
    y: &GpuBuffer,
    p: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(y.len(), x.cols, "y length mismatch");
    assert_eq!(p.len(), x.rows, "p length mismatch");
    let (m, n) = (x.rows, x.cols);
    let bs = 256;
    let grid = capped_grid(gpu, m, bs / WARP_LANES);
    let cfg = LaunchConfig::new(grid, bs).with_regs(24);

    gpu.try_launch("gemv", cfg, |blk| {
        let grid_warps = blk.grid_dim() * (blk.block_dim() / WARP_LANES);
        blk.each_warp(|w| {
            let warp_gid = w.block_id() * (w.block_dim() / WARP_LANES) + w.warp_id();
            let mut row = warp_gid;
            while row < m {
                let mut sum = [0.0f64; WARP_LANES];
                let mut col = 0usize;
                while col < n {
                    let xs = w.load_f64(&x.data, |lane| {
                        (col + lane < n).then(|| x.at(row, col + lane))
                    });
                    let ys = w.load_f64_tex(y, |lane| (col + lane < n).then_some(col + lane));
                    let active = (n - col).min(WARP_LANES);
                    for lane in 0..active {
                        sum[lane] += xs[lane] * ys[lane];
                    }
                    w.flops(2 * active as u64);
                    col += WARP_LANES;
                }
                w.shuffle_reduce_sum(&mut sum, 32);
                w.store_f64(p, |lane| (lane == 0).then_some((row, sum[0])));
                row += grid_warps;
            }
        });
    })
}

/// `w += X^T * p` over zeroed `w` — the shared-memory-tile scheme of a
/// column-reducing library kernel, exactly the baseline behaviour §3
/// describes: "blocks of X can be read and kept in shared memory for
/// future access ... the accesses to shared memory may cause memory bank
/// conflicts, resulting in poor performance."
///
/// Each block owns a 32-column tile: 32x32 row chunks are staged into
/// shared memory with coalesced loads, then each column is reduced by
/// reading the tile *column-wise* — a stride-32 access pattern that
/// serializes on the 32 banks. Composed as zero + accumulate by [`gemv_t`].
fn gemv_t_accumulate(
    gpu: &Gpu,
    x: &GpuDense,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    let (m, n) = (x.rows, x.cols);
    let tiles = n.div_ceil(WARP_LANES);
    // Enough row-parallel blocks per tile to occupy the device.
    let row_blocks = (gpu.spec().num_sms * 8 / tiles.max(1)).clamp(1, 64);
    let grid = tiles * row_blocks;
    let bs = 256;
    let nwarps = bs / WARP_LANES;
    let rows_per_warp = WARP_LANES / nwarps; // 32-row chunk split over warps
    let tile_elems = WARP_LANES * WARP_LANES;
    let shared_bytes = (tile_elems + 2 * WARP_LANES) * 8;
    let cfg = LaunchConfig::new(grid, bs)
        .with_regs(30)
        .with_shared_bytes(shared_bytes);

    gpu.try_launch("gemv_t", cfg, |blk| {
        let tile_id = blk.block_id() % tiles;
        let row_block = blk.block_id() / tiles;
        let col0 = tile_id * WARP_LANES;
        let tile = blk.shared_f64(tile_elems);
        let pvals = blk.shared_f64(WARP_LANES);
        let acc = blk.shared_f64(WARP_LANES);

        let mut row0 = row_block * WARP_LANES;
        while row0 < m {
            // ---- stage a 32x32 chunk into shared, coalesced ----
            blk.each_warp(|wc| {
                let wid = wc.warp_id();
                for k in 0..rows_per_warp {
                    let r_local = wid * rows_per_warp + k;
                    let row = row0 + r_local;
                    if row < m {
                        let xs = wc.load_f64(&x.data, |lane| {
                            (col0 + lane < n).then(|| x.at(row, col0 + lane))
                        });
                        wc.shared_store(tile, |lane| Some((r_local * WARP_LANES + lane, xs[lane])));
                    } else {
                        wc.shared_store(tile, |lane| Some((r_local * WARP_LANES + lane, 0.0)));
                    }
                }
                if wid == 0 {
                    let pv = wc.load_f64_tex(p, |lane| (row0 + lane < m).then_some(row0 + lane));
                    wc.shared_store(pvals, |lane| Some((lane, pv[lane])));
                }
            });
            blk.sync();

            // ---- column reduction: stride-32 reads => bank conflicts ----
            let cols_per_warp = WARP_LANES / nwarps;
            blk.each_warp(|wc| {
                let wid = wc.warp_id();
                for k in 0..cols_per_warp {
                    let c = wid * cols_per_warp + k;
                    if col0 + c >= n {
                        continue;
                    }
                    // lane r reads tile[r][c]: all 32 words hit one bank.
                    let tv = wc.shared_load(tile, |lane| Some(lane * WARP_LANES + c));
                    let pv = wc.shared_load(pvals, Some);
                    let mut prod = [0.0f64; WARP_LANES];
                    for lane in 0..WARP_LANES {
                        prod[lane] = tv[lane] * pv[lane];
                    }
                    wc.flops(2 * WARP_LANES as u64);
                    wc.shuffle_reduce_sum(&mut prod, 32);
                    wc.shared_atomic_add(acc, |lane| (lane == 0).then_some((c, prod[0])));
                }
            });
            blk.sync();
            row0 += row_blocks * WARP_LANES;
        }

        // ---- flush the block's column accumulator ----
        blk.each_warp(|wc| {
            if wc.warp_id() == 0 {
                let v = wc.shared_load(acc, |lane| (col0 + lane < n).then_some(lane));
                wc.atomic_add_f64(w, |lane| (col0 + lane < n).then(|| (col0 + lane, v[lane])));
            }
        });
    })
}

/// `w = X^T * p` (zero then accumulate). Returns both launches.
pub fn gemv_t(gpu: &Gpu, x: &GpuDense, p: &GpuBuffer, w: &GpuBuffer) -> Vec<LaunchStats> {
    try_gemv_t(gpu, x, p, w).unwrap_or_else(|e| panic!("{e}"))
}

/// See [`gemv_t`]; reports device faults instead of panicking.
pub fn try_gemv_t(
    gpu: &Gpu,
    x: &GpuDense,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<Vec<LaunchStats>, DeviceError> {
    assert_eq!(p.len(), x.rows, "p length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let zero = try_fill(gpu, w, 0.0)?;
    let acc = gemv_t_accumulate(gpu, x, p, w)?;
    Ok(vec![zero, acc])
}

/// `w = X^T * p` without the shared-memory tile: each warp accumulates its
/// row slice in registers and issues one global atomic per column at the
/// end (BIDMat-style). Fewer on-chip operations than [`gemv_t`] but more
/// global atomics. Returns both launches (zero + accumulate).
pub fn gemv_t_direct(gpu: &Gpu, x: &GpuDense, p: &GpuBuffer, w: &GpuBuffer) -> Vec<LaunchStats> {
    try_gemv_t_direct(gpu, x, p, w).unwrap_or_else(|e| panic!("{e}"))
}

/// See [`gemv_t_direct`]; reports device faults instead of panicking.
pub fn try_gemv_t_direct(
    gpu: &Gpu,
    x: &GpuDense,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<Vec<LaunchStats>, DeviceError> {
    assert_eq!(p.len(), x.rows, "p length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let zero = try_fill(gpu, w, 0.0)?;
    let (m, n) = (x.rows, x.cols);
    let tiles = n.div_ceil(WARP_LANES);
    let row_blocks = (gpu.spec().num_sms * 8 / tiles.max(1)).clamp(1, 64);
    let grid = tiles * row_blocks;
    let bs = 256;
    let cfg = LaunchConfig::new(grid, bs).with_regs(40);

    let acc = gpu.try_launch("gemv_t_direct", cfg, |blk| {
        let tile = blk.block_id() % tiles;
        let row_block = blk.block_id() / tiles;
        let col0 = tile * WARP_LANES;
        let nwarps = blk.block_dim() / WARP_LANES;
        blk.each_warp(|wc| {
            let mut local = [0.0f64; WARP_LANES];
            let mut row = row_block * nwarps + wc.warp_id();
            while row < m {
                let xs = wc.load_f64(&x.data, |lane| {
                    (col0 + lane < n).then(|| x.at(row, col0 + lane))
                });
                let pr = wc.load_f64_tex(p, |lane| (lane == 0).then_some(row));
                let active = (n - col0).min(WARP_LANES);
                for lane in 0..active {
                    local[lane] += xs[lane] * pr[0];
                }
                wc.flops(2 * active as u64);
                row += row_blocks * nwarps;
            }
            wc.atomic_add_f64(w, |lane| {
                (col0 + lane < n).then(|| (col0 + lane, local[lane]))
            });
        });
    })?;
    Ok(vec![zero, acc])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{dense_random, random_vector};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn gemv_matches_reference() {
        let g = gpu();
        for (m, n) in [(97, 28), (64, 64), (33, 130)] {
            let x = dense_random(m, n, 3);
            let y = random_vector(n, 4);
            let xd = GpuDense::upload(&g, "x", &x);
            let yd = g.upload_f64("y", &y);
            let pd = g.alloc_f64("p", m);
            gemv(&g, &xd, &yd, &pd);
            let expect = reference::dense_mv(&x, &y);
            assert!(
                reference::max_abs_diff(&pd.to_vec_f64(), &expect) < 1e-12,
                "({m},{n})"
            );
        }
    }

    #[test]
    fn gemv_t_matches_reference() {
        let g = gpu();
        for (m, n) in [(200, 28), (128, 96), (50, 33)] {
            let x = dense_random(m, n, 5);
            let p = random_vector(m, 6);
            let xd = GpuDense::upload(&g, "x", &x);
            let pd = g.upload_f64("p", &p);
            let wd = g.alloc_f64("w", n);
            gemv_t(&g, &xd, &pd, &wd);
            let expect = reference::dense_tmv(&x, &p);
            assert!(
                reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12,
                "({m},{n})"
            );
        }
    }

    #[test]
    fn gemv_t_direct_matches_reference() {
        let g = gpu();
        let x = dense_random(150, 70, 9);
        let p = random_vector(150, 10);
        let xd = GpuDense::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 70);
        gemv_t_direct(&g, &xd, &pd, &wd);
        let expect = reference::dense_tmv(&x, &p);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn direct_variant_uses_less_shared_memory_traffic() {
        let g = gpu();
        let x = dense_random(512, 64, 11);
        let p = random_vector(512, 12);
        let xd = GpuDense::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &p);
        let w1 = g.alloc_f64("w1", 64);
        let tiled = gemv_t(&g, &xd, &pd, &w1).pop().unwrap();
        g.flush_caches();
        let w2 = g.alloc_f64("w2", 64);
        let direct = gemv_t_direct(&g, &xd, &pd, &w2).pop().unwrap();
        assert!(
            direct.counters.shared_accesses + direct.counters.shared_atomics
                < tiled.counters.shared_accesses + tiled.counters.shared_atomics
        );
        assert!(direct.counters.global_atomics >= tiled.counters.global_atomics);
    }

    #[test]
    fn tiled_gemv_t_suffers_bank_conflicts() {
        // The column-wise tile reads hit one bank 32 deep — the §3
        // complaint about the shared-memory baseline.
        let g = gpu();
        let x = dense_random(1024, 64, 13);
        let p = random_vector(1024, 14);
        let xd = GpuDense::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 64);
        let stats = gemv_t(&g, &xd, &pd, &wd).pop().unwrap();
        // Every 32-lane column read replays 31 times.
        let column_reads = stats
            .counters
            .shared_accesses
            .saturating_sub(stats.counters.shared_atomics);
        assert!(
            stats.counters.shared_bank_conflicts * 3 > column_reads / 32,
            "conflicts {} vs column reads {}",
            stats.counters.shared_bank_conflicts,
            column_reads
        );
        assert!(stats.time.shared_ms > 0.0);
    }

    #[test]
    fn gemv_loads_are_coalesced() {
        let g = gpu();
        let x = dense_random(64, 256, 7);
        let xd = GpuDense::upload(&g, "x", &x);
        let yd = g.upload_f64("y", &random_vector(256, 8));
        let pd = g.alloc_f64("p", 64);
        let stats = gemv(&g, &xd, &yd, &pd);
        // Perfect coalescing: 8 sectors per 32-wide f64 load. Matrix loads
        // dominate: 64 * 256 / 32 = 512 instructions * 8 sectors = 4096,
        // plus offsets/y overheads — allow slack but verify the order.
        let matrix_sectors = (64 * 256 / 32) * 8;
        assert!(stats.counters.gld_transactions < 2 * matrix_sectors);
    }
}
