//! Multithreaded fused CSR pattern kernel with a deterministic
//! reduction tree.
//!
//! The work decomposition is *canonical*: the matrix's rows are split
//! into a fixed number of contiguous blocks (default
//! [`CANONICAL_BLOCKS`]), each block gets its own accumulator, and the
//! main thread folds the block partials in ascending block order.
//! Threads claim contiguous runs of blocks, so the set of per-block
//! partial sums — and the order they are combined in — depends only on
//! the matrix shape and the block count, never on how many threads ran
//! or how the OS scheduled them. That is what makes the result
//! **bit-identical across thread counts**, the property
//! `tests/executor_equivalence.rs` locks in.
//!
//! With a single block the kernel degenerates to the single-threaded
//! fused pass and is bit-identical to [`super::fused_pattern_csr`].

use super::{pattern_epilogue, KernelExecutor};
use fusedml_matrix::CsrMatrix;

/// Default block count for the canonical row partition. Chosen larger
/// than typical core counts so threads load-balance, and fixed so the
/// reduction tree (and therefore the bits) never varies with hardware.
pub const CANONICAL_BLOCKS: usize = 8;

/// Preallocated per-block accumulators, so repeated kernel invocations
/// (warm-up + timed repeats) run allocation-free.
pub struct MtWorkspace {
    partials: Vec<Vec<f64>>,
}

impl MtWorkspace {
    /// Workspace for a matrix with `cols` columns and `blocks` canonical
    /// blocks (use the same value the [`MtFused`] was configured with).
    pub fn new(cols: usize, blocks: usize) -> Self {
        MtWorkspace {
            partials: vec![vec![0.0; cols]; blocks.max(1)],
        }
    }
}

/// Multithreaded fused evaluator for the Equation-1 pattern on CSR
/// input, layering `std::thread::scope` row-block parallelism over any
/// [`KernelExecutor`]'s single-pass row kernel.
pub struct MtFused<'e> {
    exec: &'e dyn KernelExecutor,
    threads: usize,
    blocks: usize,
}

impl<'e> MtFused<'e> {
    /// Fused evaluator running `threads` worker threads over the default
    /// canonical partition.
    pub fn new(exec: &'e dyn KernelExecutor, threads: usize) -> Self {
        MtFused {
            exec,
            threads: threads.max(1),
            blocks: CANONICAL_BLOCKS,
        }
    }

    /// Override the canonical block count (tests use this to exercise
    /// non-dividing partitions). Different block counts produce
    /// different — each internally deterministic — reduction trees.
    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks.max(1);
        self
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Canonical block count.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// The executor each worker runs row kernels through.
    pub fn executor(&self) -> &'e dyn KernelExecutor {
        self.exec
    }

    /// Fused `w = alpha * X^T (v ⊙ (X y)) + beta * z`, allocating its
    /// workspace internally. See [`Self::pattern_csr_with`].
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_csr(
        &self,
        alpha: f64,
        x: &CsrMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        beta: f64,
        z: Option<&[f64]>,
        w: &mut [f64],
    ) {
        let mut ws = MtWorkspace::new(x.cols(), self.blocks);
        self.pattern_csr_with(&mut ws, alpha, x, v, y, beta, z, w);
    }

    /// Fused pattern evaluation into `w` using a caller-provided
    /// workspace (no allocation — what wall-clock measurement calls).
    ///
    /// Each worker computes whole blocks with the executor's
    /// [`KernelExecutor::fused_pattern_rows_csr`] single pass; the main
    /// thread then folds block partials in ascending block index.
    #[allow(clippy::too_many_arguments)]
    pub fn pattern_csr_with(
        &self,
        ws: &mut MtWorkspace,
        alpha: f64,
        x: &CsrMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        beta: f64,
        z: Option<&[f64]>,
        w: &mut [f64],
    ) {
        let rows = x.rows();
        let cols = x.cols();
        assert_eq!(y.len(), cols, "dimension mismatch in fused pattern");
        assert_eq!(w.len(), cols, "output length mismatch in fused pattern");
        if let Some(v) = v {
            assert_eq!(v.len(), rows, "v length mismatch in fused pattern");
        }

        let nblocks = self.blocks.min(rows.max(1));
        let block_rows = rows.div_ceil(nblocks);
        assert!(
            ws.partials.len() >= nblocks && ws.partials.iter().all(|p| p.len() == cols),
            "workspace shaped for a different matrix or block count"
        );
        let partials = &mut ws.partials[..nblocks];
        for p in partials.iter_mut() {
            p.fill(0.0);
        }

        let block_range = |b: usize| {
            let lo = b * block_rows;
            lo..((b + 1) * block_rows).min(rows)
        };

        let threads = self.threads.min(nblocks);
        if threads <= 1 {
            for (b, acc) in partials.iter_mut().enumerate() {
                self.exec
                    .fused_pattern_rows_csr(x, v, y, block_range(b), acc);
            }
        } else {
            let per_thread = nblocks.div_ceil(threads);
            let exec = self.exec;
            std::thread::scope(|s| {
                for (ti, chunk) in partials.chunks_mut(per_thread).enumerate() {
                    s.spawn(move || {
                        for (bi, acc) in chunk.iter_mut().enumerate() {
                            let range = block_range(ti * per_thread + bi);
                            exec.fused_pattern_rows_csr(x, v, y, range, acc);
                        }
                    });
                }
            });
        }

        // Canonical fold: ascending block index, independent of which
        // thread produced which partial.
        w.copy_from_slice(&partials[0]);
        for p in &partials[1..] {
            for (wi, pi) in w.iter_mut().zip(p.iter()) {
                *wi += pi;
            }
        }
        pattern_epilogue(self.exec, alpha, beta, z, w);
    }

    /// Fused `q = X^T (X p)` — the LR-CG hot-loop instantiation.
    pub fn xtxp(&self, x: &CsrMatrix, p: &[f64], q: &mut [f64]) {
        self.pattern_csr(1.0, x, None, p, 0.0, None, q);
    }

    /// Allocation-free [`Self::xtxp`].
    pub fn xtxp_with(&self, ws: &mut MtWorkspace, x: &CsrMatrix, p: &[f64], q: &mut [f64]) {
        self.pattern_csr_with(ws, 1.0, x, None, p, 0.0, None, q);
    }
}

#[cfg(test)]
mod tests {
    use super::super::{fused_pattern_csr, scalar_executor};
    use super::*;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};

    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let exec = scalar_executor();
        // 53 rows over 8 blocks: the last block is short, and with 3
        // threads the block-to-thread assignment is non-uniform too.
        let x = uniform_sparse(53, 37, 0.2, 40);
        let y = random_vector(37, 41);
        let v = random_vector(53, 42);
        let z = random_vector(37, 43);

        let mut base = vec![0.0; 37];
        MtFused::new(exec, 1).pattern_csr(1.25, &x, Some(&v), &y, 0.5, Some(&z), &mut base);
        for threads in [2, 3, 4, 16] {
            let mut w = vec![0.0; 37];
            MtFused::new(exec, threads).pattern_csr(1.25, &x, Some(&v), &y, 0.5, Some(&z), &mut w);
            assert!(bits_eq(&w, &base), "{threads} threads diverged");
        }
    }

    #[test]
    fn single_block_matches_single_threaded_fused_bit_for_bit() {
        let exec = scalar_executor();
        let x = uniform_sparse(31, 23, 0.25, 50);
        let y = random_vector(23, 51);

        let mut st = vec![0.0; 23];
        fused_pattern_csr(exec, 1.0, &x, None, &y, 0.0, None, &mut st);
        let mut mt = vec![0.0; 23];
        MtFused::new(exec, 4).with_blocks(1).xtxp(&x, &y, &mut mt);
        assert!(bits_eq(&mt, &st));
    }

    #[test]
    fn non_dividing_partitions_stay_deterministic() {
        let exec = scalar_executor();
        let x = uniform_sparse(50, 30, 0.15, 60);
        let y = random_vector(30, 61);
        for blocks in [3, 7, 50, 64] {
            let mut a = vec![0.0; 30];
            let mut b = vec![0.0; 30];
            MtFused::new(exec, 1)
                .with_blocks(blocks)
                .xtxp(&x, &y, &mut a);
            MtFused::new(exec, 4)
                .with_blocks(blocks)
                .xtxp(&x, &y, &mut b);
            assert!(bits_eq(&a, &b), "blocks={blocks}");
        }
    }

    #[test]
    fn workspace_reuse_is_bit_stable() {
        let exec = scalar_executor();
        let x = uniform_sparse(40, 28, 0.2, 70);
        let y = random_vector(28, 71);
        let mt = MtFused::new(exec, 2);
        let mut ws = MtWorkspace::new(28, mt.blocks());
        let mut first = vec![0.0; 28];
        mt.xtxp_with(&mut ws, &x, &y, &mut first);
        for _ in 0..3 {
            let mut again = vec![f64::NAN; 28];
            mt.xtxp_with(&mut ws, &x, &y, &mut again);
            assert!(bits_eq(&again, &first));
        }
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        let exec = scalar_executor();
        // Fewer rows than blocks, and a single-row matrix.
        for rows in [1usize, 3] {
            let x = uniform_sparse(rows, 5, 0.9, 80 + rows as u64);
            let y = random_vector(5, 81);
            let mut w = vec![0.0; 5];
            MtFused::new(exec, 4).xtxp(&x, &y, &mut w);
            let mut st = vec![0.0; 5];
            fused_pattern_csr(exec, 1.0, &x, None, &y, 0.0, None, &mut st);
            // rows <= blocks means every block holds at most one row, so
            // the fold is a plain left-to-right sum — same as scalar.
            assert!(bits_eq(&w, &st));
        }
    }
}
