//! The portable reference executor: every kernel runs through the
//! [`KernelExecutor`] trait's default methods, which reproduce
//! `fusedml_matrix::reference` bit for bit. This is the implementation
//! `FUSEDML_FORCE_SCALAR=1` pins dispatch to, and the ground truth the
//! SIMD executors are compared against.

use super::KernelExecutor;

/// Scalar (non-SIMD) kernel executor. Zero-sized; share the canonical
/// instance via [`super::scalar_executor`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarExecutor;

impl KernelExecutor for ScalarExecutor {
    fn name(&self) -> &'static str {
        "scalar"
    }
}
