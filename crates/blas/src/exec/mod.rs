//! Real CPU kernel execution behind a runtime-dispatched trait.
//!
//! Everything else in this crate *models* kernels on a simulated device;
//! this module actually runs them on the host, as fast as the machine
//! allows. The design follows the `KernelExecutor` dispatch idiom of
//! LaurenzV's cpu-sparse-experiments: one trait describing the kernel
//! surface, a portable [`ScalarExecutor`] reference implementation, and a
//! SIMD implementation ([`Avx2Executor`] on x86-64) selected at runtime
//! with `is_x86_feature_detected!`. A multithreaded fused kernel
//! ([`fused_mt::MtFused`]) layers deterministic row-block parallelism on
//! top of whichever executor is active.
//!
//! Numerical contract, relied on by `tests/executor_equivalence.rs`:
//!
//! * [`ScalarExecutor`] (and every trait *default* method) reproduces the
//!   `fusedml_matrix::reference` implementations **bit for bit** — same
//!   accumulation order, same zero-skip in the transposed scatter.
//! * [`Avx2Executor`] re-associates reductions into 4-wide lanes, so its
//!   results may differ from scalar by a bounded reduction error (a few
//!   ULPs per element; no FMA is used, so every elementary product rounds
//!   identically). Cross-executor tests therefore compare with a tight
//!   relative tolerance rather than bit equality.
//! * [`fused_mt::MtFused`] is bit-identical *across thread counts* for a
//!   fixed block count, because its reduction tree is a function of the
//!   matrix partition only — never of the thread count or schedule.

#[cfg(target_arch = "x86_64")]
pub mod avx2;
pub mod fused_mt;
pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub use avx2::Avx2Executor;
pub use fused_mt::{MtFused, MtWorkspace, CANONICAL_BLOCKS};
pub use scalar::ScalarExecutor;

use fusedml_matrix::{CsrMatrix, DenseMatrix};
use std::ops::Range;
use std::sync::OnceLock;

/// The CPU kernel surface: operator-level BLAS pieces plus the fused
/// single-pass building blocks of the paper's pattern
/// `w = alpha * X^T (v ⊙ (X y)) + beta * z`.
///
/// Every method has a portable default implementation with scalar
/// reference semantics; SIMD executors override only the primitives they
/// accelerate (dot products, axpy-shaped loops), and the composite
/// kernels inherit the speedup through those primitives.
pub trait KernelExecutor: Sync {
    /// Stable name for reports ("scalar", "avx2").
    fn name(&self) -> &'static str;

    // ---- BLAS-1 primitives ----

    /// Dot product, sequential accumulation order in the scalar default.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `y += a * x`.
    fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// `x *= a`.
    fn scal(&self, a: f64, x: &mut [f64]) {
        for xi in x.iter_mut() {
            *xi *= a;
        }
    }

    /// `out[i] = x[i] * y[i]`.
    fn ewmul(&self, x: &[f64], y: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), out.len());
        for ((o, a), b) in out.iter_mut().zip(x).zip(y) {
            *o = a * b;
        }
    }

    // ---- sparse row primitive ----

    /// Dot product of CSR row `r` with the gathered vector `y`.
    fn row_dot_csr(&self, x: &CsrMatrix, r: usize, y: &[f64]) -> f64 {
        x.row_entries(r).map(|(c, v)| v * y[c as usize]).sum()
    }

    // ---- operator-level kernels ----

    /// `out = X * y` (CSR).
    fn csr_mv(&self, x: &CsrMatrix, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), x.cols(), "dimension mismatch in X*y");
        assert_eq!(out.len(), x.rows(), "output length mismatch in X*y");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.row_dot_csr(x, r, y);
        }
    }

    /// `w = X^T * p` (CSR row-wise scatter; `w` overwritten).
    fn csr_tmv(&self, x: &CsrMatrix, p: &[f64], w: &mut [f64]) {
        assert_eq!(p.len(), x.rows(), "dimension mismatch in X^T*p");
        assert_eq!(w.len(), x.cols(), "output length mismatch in X^T*p");
        w.fill(0.0);
        for (r, &pr) in p.iter().enumerate() {
            if pr != 0.0 {
                for (c, v) in x.row_entries(r) {
                    w[c as usize] += v * pr;
                }
            }
        }
    }

    /// `out = X * y` (dense row-major).
    fn dense_mv(&self, x: &DenseMatrix, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), x.cols(), "dimension mismatch in X*y");
        assert_eq!(out.len(), x.rows(), "output length mismatch in X*y");
        for (r, o) in out.iter_mut().enumerate() {
            *o = self.dot(x.row(r), y);
        }
    }

    /// `w = X^T * p` (dense; `w` overwritten). Runs as one axpy per row,
    /// so SIMD executors accelerate it by overriding [`Self::axpy`].
    fn dense_tmv(&self, x: &DenseMatrix, p: &[f64], w: &mut [f64]) {
        assert_eq!(p.len(), x.rows(), "dimension mismatch in X^T*p");
        assert_eq!(w.len(), x.cols(), "output length mismatch in X^T*p");
        w.fill(0.0);
        for (r, &pr) in p.iter().enumerate() {
            self.axpy(pr, x.row(r), w);
        }
    }

    // ---- fused single-pass building blocks ----

    /// Accumulate the *un-scaled* pattern core `X^T (v ⊙ (X y))` for the
    /// row range `rows` into `acc` (length `cols`, NOT zeroed): each row
    /// is read exactly once, its dot product with `y` stays in a
    /// register, and the scatter back into `acc` reuses the same row
    /// entries — the CPU analog of the paper's fused kernel, with the
    /// tiling/locality argument of "Improving Locality in Sparse and
    /// Dense Matrix Multiplications" applied at row-block granularity.
    ///
    /// The zero-skip mirrors [`Self::csr_tmv`] so a single full-range
    /// call is bit-identical to the unfused two-pass composition.
    fn fused_pattern_rows_csr(
        &self,
        x: &CsrMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        rows: Range<usize>,
        acc: &mut [f64],
    ) {
        assert_eq!(y.len(), x.cols());
        assert_eq!(acc.len(), x.cols());
        for r in rows {
            let mut t = self.row_dot_csr(x, r, y);
            if let Some(v) = v {
                t *= v[r];
            }
            if t != 0.0 {
                for (c, val) in x.row_entries(r) {
                    acc[c as usize] += val * t;
                }
            }
        }
    }

    /// Dense counterpart of [`Self::fused_pattern_rows_csr`]: one pass
    /// over the row-major matrix, dot + axpy per row.
    fn fused_pattern_rows_dense(
        &self,
        x: &DenseMatrix,
        v: Option<&[f64]>,
        y: &[f64],
        rows: Range<usize>,
        acc: &mut [f64],
    ) {
        assert_eq!(y.len(), x.cols());
        assert_eq!(acc.len(), x.cols());
        for r in rows {
            let mut t = self.dot(x.row(r), y);
            if let Some(v) = v {
                t *= v[r];
            }
            self.axpy(t, x.row(r), acc);
        }
    }
}

/// Scale-and-shift epilogue shared by the fused entry points:
/// `w = alpha * w + beta * z`, matching the operation order (and thus the
/// rounding) of `fusedml_matrix::reference::pattern_csr`.
pub(crate) fn pattern_epilogue(
    exec: &dyn KernelExecutor,
    alpha: f64,
    beta: f64,
    z: Option<&[f64]>,
    w: &mut [f64],
) {
    if alpha != 1.0 {
        exec.scal(alpha, w);
    }
    if let Some(z) = z {
        assert_eq!(z.len(), w.len());
        exec.axpy(beta, z, w);
    }
}

/// Single-threaded fused evaluation of the full Equation-1 pattern
/// `w = alpha * X^T (v ⊙ (X y)) + beta * z` on CSR input: one pass over
/// the matrix, intermediates in registers. With [`ScalarExecutor`] this
/// is bit-identical to `reference::pattern_csr`.
// The eight parameters are Equation 1's operands, in equation order.
#[allow(clippy::too_many_arguments)]
pub fn fused_pattern_csr(
    exec: &dyn KernelExecutor,
    alpha: f64,
    x: &CsrMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    beta: f64,
    z: Option<&[f64]>,
    w: &mut [f64],
) {
    if let Some(v) = v {
        assert_eq!(v.len(), x.rows());
    }
    w.fill(0.0);
    exec.fused_pattern_rows_csr(x, v, y, 0..x.rows(), w);
    pattern_epilogue(exec, alpha, beta, z, w);
}

/// Dense counterpart of [`fused_pattern_csr`].
#[allow(clippy::too_many_arguments)]
pub fn fused_pattern_dense(
    exec: &dyn KernelExecutor,
    alpha: f64,
    x: &DenseMatrix,
    v: Option<&[f64]>,
    y: &[f64],
    beta: f64,
    z: Option<&[f64]>,
    w: &mut [f64],
) {
    if let Some(v) = v {
        assert_eq!(v.len(), x.rows());
    }
    w.fill(0.0);
    exec.fused_pattern_rows_dense(x, v, y, 0..x.rows(), w);
    pattern_epilogue(exec, alpha, beta, z, w);
}

/// Fused `q = X^T (X p)` — the LR-CG hot loop's pattern instantiation —
/// in one pass over the CSR matrix.
pub fn fused_xtxp_csr(exec: &dyn KernelExecutor, x: &CsrMatrix, p: &[f64], q: &mut [f64]) {
    fused_pattern_csr(exec, 1.0, x, None, p, 0.0, None, q);
}

// ---------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------

static SCALAR: ScalarExecutor = ScalarExecutor;

/// The portable reference executor.
pub fn scalar_executor() -> &'static ScalarExecutor {
    &SCALAR
}

/// The AVX2 executor, when this host supports it (`None` elsewhere).
/// Detection runs once; the returned instance upholds the safety
/// invariant that its SIMD code paths only execute on AVX2 hardware.
pub fn avx2_executor() -> Option<&'static dyn KernelExecutor> {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: OnceLock<Option<Avx2Executor>> = OnceLock::new();
        AVX2.get_or_init(Avx2Executor::detect)
            .as_ref()
            .map(|e| e as &dyn KernelExecutor)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        None
    }
}

/// True when the `FUSEDML_FORCE_SCALAR` environment variable pins
/// dispatch to the scalar executor (read once per process; the CI
/// `cpu-bench` job uses it to keep the scalar path covered on SIMD
/// runners).
pub fn scalar_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("FUSEDML_FORCE_SCALAR")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// The executor runtime dispatch selects on this host: AVX2 when the CPU
/// supports it and `FUSEDML_FORCE_SCALAR` is not set, scalar otherwise.
pub fn active_executor() -> &'static dyn KernelExecutor {
    if scalar_forced() {
        return &SCALAR;
    }
    avx2_executor().unwrap_or(&SCALAR)
}

/// Look an executor up by its report name. `Some` for "scalar" always,
/// and for "avx2" when the host supports it.
pub fn executor_named(name: &str) -> Option<&'static dyn KernelExecutor> {
    match name {
        "scalar" => Some(&SCALAR),
        "avx2" => avx2_executor(),
        _ => None,
    }
}

/// Every executor this host can run, scalar first — what the benchmark
/// sweeps (honoring [`scalar_forced`]).
pub fn available_executors() -> Vec<&'static dyn KernelExecutor> {
    let mut v: Vec<&'static dyn KernelExecutor> = vec![&SCALAR];
    if !scalar_forced() {
        if let Some(a) = avx2_executor() {
            v.push(a);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn bits_eq(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn scalar_kernels_match_reference_bit_for_bit() {
        let exec = scalar_executor();
        let x = uniform_sparse(57, 33, 0.15, 7);
        let y = random_vector(33, 8);
        let p = random_vector(57, 9);

        let mut mv = vec![0.0; 57];
        exec.csr_mv(&x, &y, &mut mv);
        assert!(bits_eq(&mv, &reference::csr_mv(&x, &y)));

        let mut tmv = vec![0.0; 33];
        exec.csr_tmv(&x, &p, &mut tmv);
        assert!(bits_eq(&tmv, &reference::csr_tmv(&x, &p)));

        let xd = dense_random(21, 13, 10);
        let yd = random_vector(13, 11);
        let pd = random_vector(21, 12);
        let mut dm = vec![0.0; 21];
        exec.dense_mv(&xd, &yd, &mut dm);
        assert!(bits_eq(&dm, &reference::dense_mv(&xd, &yd)));
        let mut dt = vec![0.0; 13];
        exec.dense_tmv(&xd, &pd, &mut dt);
        assert!(bits_eq(&dt, &reference::dense_tmv(&xd, &pd)));
    }

    #[test]
    fn scalar_fused_pattern_matches_unfused_reference_bit_for_bit() {
        let exec = scalar_executor();
        let x = uniform_sparse(48, 29, 0.2, 20);
        let y = random_vector(29, 21);
        let v = random_vector(48, 22);
        let z = random_vector(29, 23);

        let mut w = vec![0.0; 29];
        fused_pattern_csr(exec, 1.75, &x, Some(&v), &y, -0.5, Some(&z), &mut w);
        let expect = reference::pattern_csr(1.75, &x, Some(&v), &y, -0.5, Some(&z));
        assert!(bits_eq(&w, &expect));

        // The dense path too, and the bare X^T(Xp) instantiation.
        let xd = x.to_dense();
        let mut wd = vec![0.0; 29];
        fused_pattern_dense(exec, 1.75, &xd, Some(&v), &y, -0.5, Some(&z), &mut wd);
        assert!(bits_eq(
            &wd,
            &reference::pattern_dense(1.75, &xd, Some(&v), &y, -0.5, Some(&z))
        ));

        let mut q = vec![0.0; 29];
        fused_xtxp_csr(exec, &x, &y, &mut q);
        assert!(bits_eq(
            &q,
            &reference::csr_tmv(&x, &reference::csr_mv(&x, &y))
        ));
    }

    #[test]
    fn dispatch_always_yields_a_working_executor() {
        let exec = active_executor();
        assert!(!exec.name().is_empty());
        let d = exec.dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(d, 32.0);

        assert_eq!(executor_named("scalar").map(|e| e.name()), Some("scalar"));
        assert!(executor_named("riscv-vector").is_none());
        let avail = available_executors();
        assert_eq!(avail[0].name(), "scalar");
    }
}
