//! AVX2 kernel executor for x86-64 hosts.
//!
//! Only the primitives worth vectorizing are overridden — dense dot,
//! axpy/scal/ewmul, and the gathered CSR row dot — and the composite
//! kernels (`csr_mv`, `dense_tmv`, the fused pattern rows) inherit the
//! speedup through them via the trait defaults.
//!
//! Numerics: the element-wise kernels (`axpy`, `scal`, `ewmul`) perform
//! exactly one rounding per element in the same order as scalar code, so
//! they are bit-identical to [`super::ScalarExecutor`]. The reductions
//! (`dot`, `row_dot_csr`) re-associate the sum into four SIMD lanes
//! folded in a fixed order, so they may differ from the scalar result by
//! a small bounded reduction error; multiplication deliberately avoids
//! FMA so every elementary product still rounds identically to scalar.
//! Cross-executor tests compare with a tight relative tolerance.
//!
//! Safety model: [`Avx2Executor`] can only be constructed through
//! [`Avx2Executor::detect`], which gates on
//! `is_x86_feature_detected!("avx2")` — so by the time any of the
//! `#[target_feature]` functions below run, the CPU is known to support
//! them. The intrinsics stay `unsafe fn` (not safe `target_feature`
//! calls) to keep the crate building on the 1.76 MSRV toolchain.

use super::KernelExecutor;
use fusedml_matrix::CsrMatrix;
use std::arch::x86_64::*;

/// AVX2-accelerated kernel executor. Construct via [`Avx2Executor::detect`]
/// (or borrow the shared instance from [`super::avx2_executor`]).
#[derive(Debug, Clone, Copy)]
pub struct Avx2Executor {
    _proof_of_detection: (),
}

impl Avx2Executor {
    /// Returns the executor iff this CPU supports AVX2.
    pub fn detect() -> Option<Self> {
        if is_x86_feature_detected!("avx2") {
            Some(Avx2Executor {
                _proof_of_detection: (),
            })
        } else {
            None
        }
    }
}

impl KernelExecutor for Avx2Executor {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        // SAFETY: `detect` proved AVX2 support; slices are equal-length.
        unsafe { dot_avx2(a, b) }
    }

    fn axpy(&self, a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len());
        // SAFETY: `detect` proved AVX2 support; slices are equal-length.
        unsafe { axpy_avx2(a, x, y) }
    }

    fn scal(&self, a: f64, x: &mut [f64]) {
        // SAFETY: `detect` proved AVX2 support.
        unsafe { scal_avx2(a, x) }
    }

    fn ewmul(&self, x: &[f64], y: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), y.len());
        assert_eq!(x.len(), out.len());
        // SAFETY: `detect` proved AVX2 support; slices are equal-length.
        unsafe { ewmul_avx2(x, y, out) }
    }

    fn row_dot_csr(&self, x: &CsrMatrix, r: usize, y: &[f64]) -> f64 {
        assert_eq!(y.len(), x.cols(), "gather source length mismatch");
        let lo = x.row_off()[r];
        let hi = x.row_off()[r + 1];
        let cols = &x.col_idx()[lo..hi];
        let vals = &x.values()[lo..hi];
        // SAFETY: `detect` proved AVX2 support; the CSR construction
        // invariant guarantees every column index < cols() == y.len(),
        // so the gather stays inside `y`.
        unsafe { row_dot_avx2(cols, vals, y) }
    }
}

/// Fixed-order horizontal sum: `((lane0 + lane1) + lane2) + lane3`, so
/// the reduction tree is the same on every call.
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: __m256d) -> f64 {
    let mut buf = [0.0f64; 4];
    _mm256_storeu_pd(buf.as_mut_ptr(), v);
    ((buf[0] + buf[1]) + buf[2]) + buf[3]
}

#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 4;
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let av = _mm256_loadu_pd(a.as_ptr().add(4 * i));
        let bv = _mm256_loadu_pd(b.as_ptr().add(4 * i));
        // mul + add, not FMA: each product rounds exactly like scalar.
        acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
    }
    let mut sum = hsum(acc);
    for i in 4 * chunks..n {
        sum += a[i] * b[i];
    }
    sum
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(a: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len();
    let chunks = n / 4;
    let av = _mm256_set1_pd(a);
    for i in 0..chunks {
        let xv = _mm256_loadu_pd(x.as_ptr().add(4 * i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(4 * i));
        let r = _mm256_add_pd(yv, _mm256_mul_pd(av, xv));
        _mm256_storeu_pd(y.as_mut_ptr().add(4 * i), r);
    }
    for i in 4 * chunks..n {
        y[i] += a * x[i];
    }
}

#[target_feature(enable = "avx2")]
unsafe fn scal_avx2(a: f64, x: &mut [f64]) {
    let n = x.len();
    let chunks = n / 4;
    let av = _mm256_set1_pd(a);
    for i in 0..chunks {
        let xv = _mm256_loadu_pd(x.as_ptr().add(4 * i));
        _mm256_storeu_pd(x.as_mut_ptr().add(4 * i), _mm256_mul_pd(xv, av));
    }
    for xi in &mut x[4 * chunks..] {
        *xi *= a;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn ewmul_avx2(x: &[f64], y: &[f64], out: &mut [f64]) {
    let n = x.len();
    let chunks = n / 4;
    for i in 0..chunks {
        let xv = _mm256_loadu_pd(x.as_ptr().add(4 * i));
        let yv = _mm256_loadu_pd(y.as_ptr().add(4 * i));
        _mm256_storeu_pd(out.as_mut_ptr().add(4 * i), _mm256_mul_pd(xv, yv));
    }
    for i in 4 * chunks..n {
        out[i] = x[i] * y[i];
    }
}

/// Gathered sparse row dot: 4 column indices at a time via
/// `_mm256_i32gather_pd` (scale 8 = f64 stride), values via unaligned
/// load, mul + add into a single accumulator, scalar tail.
///
/// # Safety
/// Requires AVX2, and every index in `cols` must be in-bounds for `y`.
#[target_feature(enable = "avx2")]
unsafe fn row_dot_avx2(cols: &[u32], vals: &[f64], y: &[f64]) -> f64 {
    let n = vals.len();
    let chunks = n / 4;
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        let idx = _mm_loadu_si128(cols.as_ptr().add(4 * i) as *const __m128i);
        let g = _mm256_i32gather_pd::<8>(y.as_ptr(), idx);
        let v = _mm256_loadu_pd(vals.as_ptr().add(4 * i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, g));
    }
    let mut sum = hsum(acc);
    for i in 4 * chunks..n {
        sum += vals[i] * y[cols[i] as usize];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::super::scalar_executor;
    use super::*;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    #[test]
    fn elementwise_kernels_are_bit_identical_to_scalar() {
        let Some(avx) = Avx2Executor::detect() else {
            return; // nothing to test on non-AVX2 hosts
        };
        let sc = scalar_executor();
        let x = random_vector(103, 1); // odd length exercises the tails
        let y = random_vector(103, 2);

        let (mut ya, mut ys) = (y.clone(), y.clone());
        avx.axpy(1.5, &x, &mut ya);
        sc.axpy(1.5, &x, &mut ys);
        assert!(ya.iter().zip(&ys).all(|(a, b)| a.to_bits() == b.to_bits()));

        let (mut xa, mut xs) = (x.clone(), x.clone());
        avx.scal(-0.75, &mut xa);
        sc.scal(-0.75, &mut xs);
        assert!(xa.iter().zip(&xs).all(|(a, b)| a.to_bits() == b.to_bits()));

        let (mut ea, mut es) = (vec![0.0; 103], vec![0.0; 103]);
        avx.ewmul(&x, &y, &mut ea);
        sc.ewmul(&x, &y, &mut es);
        assert!(ea.iter().zip(&es).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn reductions_match_scalar_within_reduction_tolerance() {
        let Some(avx) = Avx2Executor::detect() else {
            return;
        };
        let sc = scalar_executor();
        let a = random_vector(517, 3);
        let b = random_vector(517, 4);
        let d_avx = avx.dot(&a, &b);
        let d_sc = sc.dot(&a, &b);
        assert!(
            (d_avx - d_sc).abs() <= 1e-13 * d_sc.abs().max(1.0),
            "{d_avx} vs {d_sc}"
        );

        let x = uniform_sparse(64, 41, 0.3, 5);
        let y = random_vector(41, 6);
        let mut out = vec![0.0; 64];
        avx.csr_mv(&x, &y, &mut out);
        let expect = reference::csr_mv(&x, &y);
        assert!(reference::rel_l2_error(&out, &expect) < 1e-13);
    }
}
