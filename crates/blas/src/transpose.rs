//! Device-side `csr2csc` — explicit sparse transposition, the alternative
//! NVIDIA recommends for `X^T * y` whose amortization cost Fig. 2 studies.
//!
//! Classic three-phase algorithm, each phase a kernel launch:
//! 1. histogram of column occupancy (global atomics),
//! 2. exclusive prefix sum of the histogram (Hillis–Steele, `log2 n`
//!    ping-pong launches — this is why transposition is expensive),
//! 3. scatter of every entry to its column segment via fetch-add cursors
//!    (uncoalesced writes).

use crate::csrmv::capped_grid;
use crate::dev::GpuCsr;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

const BS: usize = 256;

/// Zero-fill a u32 buffer on device.
fn fill_u32(gpu: &Gpu, buf: &GpuBuffer, value: u32) -> Result<LaunchStats, DeviceError> {
    let n = buf.len();
    let grid = capped_grid(gpu, n, BS);
    gpu.try_launch(
        "fill_u32",
        LaunchConfig::new(grid, BS).with_regs(12),
        |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    w.store_u32(buf, |lane| {
                        (base + lane < n).then_some((base + lane, value))
                    });
                    base += grid_threads;
                }
            });
        },
    )
}

/// Inclusive-to-exclusive Hillis–Steele scan of `src` (u32, length `n`)
/// into `dst` (u32, length `n + 1`, `dst[0] = 0`). Returns one launch per
/// doubling step plus the final shift.
fn exclusive_scan_u32(
    gpu: &Gpu,
    src: &GpuBuffer,
    dst: &GpuBuffer,
    scratch: (&GpuBuffer, &GpuBuffer),
) -> Result<Vec<LaunchStats>, DeviceError> {
    let n = src.len();
    assert_eq!(dst.len(), n + 1);
    let (mut a, mut b) = scratch;
    assert!(a.len() >= n && b.len() >= n);
    let mut launches = Vec::new();

    // Copy src into ping buffer.
    let grid = capped_grid(gpu, n, BS);
    launches.push(gpu.try_launch(
        "scan_init",
        LaunchConfig::new(grid, BS).with_regs(12),
        |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    let v = w.load_u32(src, |lane| (base + lane < n).then_some(base + lane));
                    w.store_u32(a, |lane| {
                        (base + lane < n).then_some((base + lane, v[lane]))
                    });
                    base += grid_threads;
                }
            });
        },
    )?);

    let mut offset = 1usize;
    while offset < n {
        let (input, output) = (a, b);
        launches.push(gpu.try_launch(
            "scan_step",
            LaunchConfig::new(grid, BS).with_regs(16),
            |blk| {
                let grid_threads = blk.grid_dim() * blk.block_dim();
                blk.each_warp(|w| {
                    let mut base = w.gtid(0);
                    while base < n {
                        let cur =
                            w.load_u32(input, |lane| (base + lane < n).then_some(base + lane));
                        let prev = w.load_u32(input, |lane| {
                            let i = base + lane;
                            (i < n && i >= offset).then(|| i - offset)
                        });
                        w.store_u32(output, |lane| {
                            let i = base + lane;
                            (i < n).then(|| {
                                let add = if i >= offset { prev[lane] } else { 0 };
                                (i, cur[lane] + add)
                            })
                        });
                        base += grid_threads;
                    }
                });
            },
        )?);
        std::mem::swap(&mut a, &mut b);
        offset *= 2;
    }

    // Shift into the exclusive result: dst[0] = 0, dst[i+1] = inclusive[i].
    let inclusive = a;
    launches.push(gpu.try_launch(
        "scan_shift",
        LaunchConfig::new(grid, BS).with_regs(12),
        |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                if w.block_id() == 0 && w.warp_id() == 0 {
                    w.store_u32(dst, |lane| (lane == 0).then_some((0, 0)));
                }
                let mut base = w.gtid(0);
                while base < n {
                    let v = w.load_u32(inclusive, |lane| (base + lane < n).then_some(base + lane));
                    w.store_u32(dst, |lane| {
                        (base + lane < n).then(|| (base + lane + 1, v[lane]))
                    });
                    base += grid_threads;
                }
            });
        },
    )?);
    Ok(launches)
}

/// Full device-side `csr2csc`: returns the transposed matrix (as a CSR of
/// `X^T`, with unsorted row order inside each column) together with every
/// launch performed — the total simulated time is the "transpose cost"
/// that Fig. 2's amortization study divides by the per-product saving.
pub fn try_csr2csc_device(
    gpu: &Gpu,
    x: &GpuCsr,
) -> Result<(GpuCsr, Vec<LaunchStats>), DeviceError> {
    let n = x.cols;
    let m = x.rows;
    let nnz = x.nnz;
    let mut launches = Vec::new();

    let counts = gpu.try_alloc_u32("csc.counts", n.max(1))?;
    launches.push(fill_u32(gpu, &counts, 0)?);

    // Phase 1: histogram of column occupancy.
    let grid = capped_grid(gpu, m, BS);
    launches.push(gpu.try_launch(
        "csr2csc_histogram",
        LaunchConfig::new(grid, BS).with_regs(18),
        |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                // One thread per row (scalar style suffices for counting).
                let mut row0 = w.gtid(0);
                while row0 < m {
                    let row_of = |lane: usize| {
                        let r = row0 + lane;
                        (r < m).then_some(r)
                    };
                    let start = w.load_u32(&x.row_off, row_of);
                    let end = w.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));
                    let mut iter = 0usize;
                    let mut idx = [None; WARP_LANES];
                    loop {
                        let mut active = 0u64;
                        for lane in 0..WARP_LANES {
                            idx[lane] = row_of(lane).and_then(|_| {
                                let i = start[lane] as usize + iter;
                                (i < end[lane] as usize).then_some(i)
                            });
                            active += idx[lane].is_some() as u64;
                        }
                        if active == 0 {
                            break;
                        }
                        let cols = w.load_u32(&x.col_idx, |l| idx[l]);
                        w.atomic_fetch_add_u32(&counts, |lane| {
                            idx[lane].map(|_| (cols[lane] as usize, 1))
                        });
                        iter += 1;
                    }
                    row0 += grid_threads;
                }
            });
        },
    )?);

    // Phase 2: exclusive scan into the new row offsets (cols + 1).
    let col_off = gpu.try_alloc_u32("csc.col_off", n + 1)?;
    let ping = gpu.try_alloc_u32("csc.scan_ping", n.max(1))?;
    let pong = gpu.try_alloc_u32("csc.scan_pong", n.max(1))?;
    launches.extend(exclusive_scan_u32(gpu, &counts, &col_off, (&ping, &pong))?);
    gpu.free(&ping);
    gpu.free(&pong);
    gpu.free(&counts);

    // Phase 3: scatter via fetch-add cursors seeded from col_off.
    let cursor = gpu.try_alloc_u32("csc.cursor", n.max(1))?;
    {
        let grid = capped_grid(gpu, n, BS);
        launches.push(gpu.try_launch(
            "csr2csc_seed_cursor",
            LaunchConfig::new(grid, BS).with_regs(12),
            |blk| {
                let grid_threads = blk.grid_dim() * blk.block_dim();
                blk.each_warp(|w| {
                    let mut base = w.gtid(0);
                    while base < n {
                        let v =
                            w.load_u32(&col_off, |lane| (base + lane < n).then_some(base + lane));
                        w.store_u32(&cursor, |lane| {
                            (base + lane < n).then(|| (base + lane, v[lane]))
                        });
                        base += grid_threads;
                    }
                });
            },
        )?);
    }

    let row_idx_out = gpu.try_alloc_u32("csc.row_idx", nnz)?;
    let values_out = gpu.try_alloc_f64("csc.values", nnz)?;
    let grid = capped_grid(gpu, m, BS);
    launches.push(gpu.try_launch(
        "csr2csc_scatter",
        LaunchConfig::new(grid, BS).with_regs(24),
        |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut row0 = w.gtid(0);
                while row0 < m {
                    let row_of = |lane: usize| {
                        let r = row0 + lane;
                        (r < m).then_some(r)
                    };
                    let start = w.load_u32(&x.row_off, row_of);
                    let end = w.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));
                    let mut iter = 0usize;
                    let mut idx = [None; WARP_LANES];
                    loop {
                        let mut active = 0u64;
                        for lane in 0..WARP_LANES {
                            idx[lane] = row_of(lane).and_then(|_| {
                                let i = start[lane] as usize + iter;
                                (i < end[lane] as usize).then_some(i)
                            });
                            active += idx[lane].is_some() as u64;
                        }
                        if active == 0 {
                            break;
                        }
                        let cols = w.load_u32(&x.col_idx, |l| idx[l]);
                        let vals = w.load_f64(&x.values, |l| idx[l]);
                        let dst = w.atomic_fetch_add_u32(&cursor, |lane| {
                            idx[lane].map(|_| (cols[lane] as usize, 1))
                        });
                        w.store_u32(&row_idx_out, |lane| {
                            idx[lane]
                                .and_then(|_| row_of(lane).map(|r| (dst[lane] as usize, r as u32)))
                        });
                        w.store_f64(&values_out, |lane| {
                            idx[lane].map(|_| (dst[lane] as usize, vals[lane]))
                        });
                        iter += 1;
                    }
                    row0 += grid_threads;
                }
            });
        },
    )?);
    gpu.free(&cursor);

    let xt = GpuCsr {
        rows: n,
        cols: m,
        nnz,
        row_off: col_off,
        col_idx: row_idx_out,
        values: values_out,
        unsorted: true,
    };
    Ok((xt, launches))
}

/// Infallible [`try_csr2csc_device`]; panics on device faults.
pub fn csr2csc_device(gpu: &Gpu, x: &GpuCsr) -> (GpuCsr, Vec<LaunchStats>) {
    try_csr2csc_device(gpu, x).unwrap_or_else(|e| panic!("{e}"))
}

/// Total simulated milliseconds across a sequence of launches.
pub fn total_sim_ms(launches: &[LaunchStats]) -> f64 {
    launches.iter().map(|l| l.sim_ms()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csrmv::{csrmv, SpmvStyle};
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn device_transpose_produces_valid_spmv() {
        let g = gpu();
        let x = uniform_sparse(120, 75, 0.1, 21);
        let xd = GpuCsr::upload(&g, "x", &x);
        let (xt, launches) = csr2csc_device(&g, &xd);
        assert_eq!(xt.rows, 75);
        assert_eq!(xt.cols, 120);
        assert_eq!(xt.nnz, x.nnz());
        assert!(launches.len() >= 5, "expected multi-phase transposition");
        assert!(xt.unsorted);

        // X^T * p via the transposed matrix equals the reference.
        let p = random_vector(120, 9);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 75);
        csrmv(&g, &xt, &pd, &wd, SpmvStyle::Vector { vs: 4 });
        let expect = reference::csr_tmv(&x, &p);
        assert!(reference::max_abs_diff(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn transpose_offsets_match_host() {
        let g = gpu();
        let x = uniform_sparse(64, 40, 0.15, 5);
        let xd = GpuCsr::upload(&g, "x", &x);
        let (xt, _) = csr2csc_device(&g, &xd);
        let host_t = x.transpose();
        assert_eq!(
            xt.row_off.to_vec_u32(),
            host_t
                .row_off()
                .iter()
                .map(|&o| o as u32)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn transpose_cost_is_material() {
        let g = gpu();
        let x = uniform_sparse(500, 256, 0.05, 6);
        let xd = GpuCsr::upload(&g, "x", &x);
        let (_, launches) = csr2csc_device(&g, &xd);
        // Cost should exceed a single SpMV over the same data.
        let y = g.upload_f64("y", &random_vector(256, 1));
        let p = g.alloc_f64("p", 500);
        let spmv = csrmv(&g, &xd, &y, &p, SpmvStyle::Vector { vs: 8 });
        assert!(total_sim_ms(&launches) > spmv.sim_ms());
    }

    #[test]
    fn empty_matrix_transposes() {
        let g = gpu();
        let x = fusedml_matrix::CsrMatrix::empty(10, 6);
        let xd = GpuCsr::upload(&g, "x", &x);
        let (xt, _) = csr2csc_device(&g, &xd);
        assert_eq!(xt.nnz, 0);
        assert_eq!(xt.row_off.to_vec_u32(), vec![0; 7]);
    }
}
