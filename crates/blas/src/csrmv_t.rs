//! Transposed sparse matrix-vector multiplication baselines
//! (`w = X^T * p` with `X` in CSR).
//!
//! This is the operation the paper identifies as cuSPARSE's weak spot (§3.1):
//! the access pattern is column-major but the storage is row-major, so the
//! library either (a) scatters with global atomics straight from the CSR
//! rows — uncoalesced stores and heavy contention when `n` is small — or
//! (b) explicitly transposes with `csr2csc` first (see [`crate::transpose`])
//! and runs a regular SpMV, paying the transposition and double storage.

use crate::csrmv::{capped_grid, try_csrmv, SpmvStyle};
use crate::dev::GpuCsr;
use crate::level1::try_fill;
use fusedml_gpu_sim::{DeviceError, Gpu, GpuBuffer, LaunchConfig, LaunchStats, WARP_LANES};

/// `w += X^T * p` by row-wise atomic scatter (cuSPARSE
/// `csrmv(OP_TRANSPOSE)`-style). `w` must be zeroed first — use
/// [`csrmv_t_atomic`] for the zero-and-scatter composition.
pub fn csrmv_t_scatter(gpu: &Gpu, x: &GpuCsr, p: &GpuBuffer, w: &GpuBuffer) -> LaunchStats {
    try_csrmv_t_scatter(gpu, x, p, w).unwrap_or_else(|e| panic!("{e}"))
}

/// See [`csrmv_t_scatter`]; reports device faults instead of panicking.
pub fn try_csrmv_t_scatter(
    gpu: &Gpu,
    x: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    assert_eq!(p.len(), x.rows, "p length mismatch");
    assert_eq!(w.len(), x.cols, "w length mismatch");
    let m = x.rows;
    let vs = crate::csrmv::vector_size_for_mean_nnz(x.mean_nnz_per_row());
    let bs = 256;
    let grid = capped_grid(gpu, m * vs, bs);
    let cfg = LaunchConfig::new(grid, bs).with_regs(26);

    gpu.try_launch("csrmv_t_scatter", cfg, |blk| {
        let grid_vectors = blk.grid_dim() * blk.block_dim() / vs;
        blk.each_warp(|w_ctx| {
            let base_vid = w_ctx.gtid(0) / vs;
            let mut row0 = base_vid;
            while row0 < m {
                let row_of = |lane: usize| {
                    let r = row0 + lane / vs;
                    (r < m).then_some(r)
                };
                let start = w_ctx.load_u32(&x.row_off, row_of);
                let end = w_ctx.load_u32(&x.row_off, |l| row_of(l).map(|r| r + 1));
                // p[row] broadcast to the vector's lanes via texture.
                let pr = w_ctx.load_f64_tex(p, row_of);

                let mut iter = 0usize;
                let mut idx = [None; WARP_LANES];
                loop {
                    let mut active = 0u64;
                    for lane in 0..WARP_LANES {
                        idx[lane] = row_of(lane).and_then(|_| {
                            let i = start[lane] as usize + (lane % vs) + iter * vs;
                            (i < end[lane] as usize).then_some(i)
                        });
                        active += idx[lane].is_some() as u64;
                    }
                    if active == 0 {
                        break;
                    }
                    let cols = w_ctx.load_u32(&x.col_idx, |l| idx[l]);
                    let vals = w_ctx.load_f64(&x.values, |l| idx[l]);
                    w_ctx.flops(2 * active);
                    // Uncoalesced atomic scatter into w — the baseline's cost.
                    w_ctx.atomic_add_f64(w, |lane| {
                        idx[lane].map(|_| (cols[lane] as usize, vals[lane] * pr[lane]))
                    });
                    iter += 1;
                }
                row0 += grid_vectors;
            }
        });
    })
}

/// `w = X^T * p`: zero `w`, then atomic scatter. Returns the two launches'
/// stats in order.
pub fn csrmv_t_atomic(gpu: &Gpu, x: &GpuCsr, p: &GpuBuffer, w: &GpuBuffer) -> Vec<LaunchStats> {
    try_csrmv_t_atomic(gpu, x, p, w).unwrap_or_else(|e| panic!("{e}"))
}

/// See [`csrmv_t_atomic`]; reports device faults instead of panicking.
pub fn try_csrmv_t_atomic(
    gpu: &Gpu,
    x: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<Vec<LaunchStats>, DeviceError> {
    let zero = try_fill(gpu, w, 0.0)?;
    let scatter = try_csrmv_t_scatter(gpu, x, p, w)?;
    Ok(vec![zero, scatter])
}

/// `w = X^T * p` via a pre-transposed matrix: a plain CSR-vector SpMV over
/// `X^T` (the explicit-transpose strategy whose amortization Fig. 2
/// studies). The caller produces `xt` once with [`crate::transpose::csr2csc_device`].
pub fn csrmv_t_pretransposed(gpu: &Gpu, xt: &GpuCsr, p: &GpuBuffer, w: &GpuBuffer) -> LaunchStats {
    try_csrmv_t_pretransposed(gpu, xt, p, w).unwrap_or_else(|e| panic!("{e}"))
}

/// See [`csrmv_t_pretransposed`]; reports device faults instead of panicking.
pub fn try_csrmv_t_pretransposed(
    gpu: &Gpu,
    xt: &GpuCsr,
    p: &GpuBuffer,
    w: &GpuBuffer,
) -> Result<LaunchStats, DeviceError> {
    let vs = crate::csrmv::vector_size_for_mean_nnz(xt.mean_nnz_per_row());
    try_csrmv(gpu, xt, p, w, SpmvStyle::Vector { vs: vs.max(1) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn atomic_scatter_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(200, 90, 0.08, 11);
        let p = random_vector(200, 3);
        let xd = GpuCsr::upload(&g, "x", &x);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 90);
        csrmv_t_atomic(&g, &xd, &pd, &wd);
        let expect = reference::csr_tmv(&x, &p);
        assert!(reference::rel_l2_error(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn pretransposed_matches_reference() {
        let g = gpu();
        let x = uniform_sparse(150, 60, 0.1, 13);
        let xt = x.transpose();
        let p = random_vector(150, 5);
        let xtd = GpuCsr::upload(&g, "xt", &xt);
        let pd = g.upload_f64("p", &p);
        let wd = g.alloc_f64("w", 60);
        csrmv_t_pretransposed(&g, &xtd, &pd, &wd);
        let expect = reference::csr_tmv(&x, &p);
        assert!(reference::max_abs_diff(&wd.to_vec_f64(), &expect) < 1e-12);
    }

    #[test]
    fn narrow_output_contends_harder_than_wide() {
        let g = gpu();
        // Same nnz scattered into 16 vs 4096 output columns.
        let narrow = uniform_sparse(2000, 16, 0.25, 17); // 4 nnz/row
        let wide = uniform_sparse(2000, 4096, 4.0 / 4096.0, 17);
        let p = random_vector(2000, 1);
        let pd = g.upload_f64("p", &p);

        let nd = GpuCsr::upload(&g, "narrow", &narrow);
        let wn = g.alloc_f64("wn", 16);
        let sn = csrmv_t_atomic(&g, &nd, &pd, &wn).pop().unwrap();

        let wd_m = GpuCsr::upload(&g, "wide", &wide);
        let ww = g.alloc_f64("ww", 4096);
        let sw = csrmv_t_atomic(&g, &wd_m, &pd, &ww).pop().unwrap();

        assert!(
            sn.counters.hottest_atomic_address_count()
                > 8 * sw.counters.hottest_atomic_address_count().max(1),
            "narrow {} vs wide {}",
            sn.counters.hottest_atomic_address_count(),
            sw.counters.hottest_atomic_address_count()
        );
        assert!(sn.time.atomic_serial_ms > sw.time.atomic_serial_ms);
    }
}
