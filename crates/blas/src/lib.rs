//! # fusedml-blas
//!
//! Baseline operator-level kernels on the simulated GPU — the stand-ins for
//! NVIDIA cuBLAS / cuSPARSE and BIDMat that the paper's fused kernels are
//! measured against, plus the analytical CPU engine standing in for
//! BIDMat-CPU (Intel MKL).
//!
//! Everything here follows the *un-fused* discipline the paper criticizes:
//! one kernel launch per primitive operator, intermediates materialized in
//! global memory, and the transposed products either scattering through
//! global atomics or paying for an explicit `csr2csc`.
//!
//! The exception is [`exec`]: real host-CPU kernels (scalar, AVX2, and a
//! multithreaded fused pattern kernel) behind the runtime-dispatched
//! [`KernelExecutor`] trait, which the `fusedml-bench cpu` subcommand
//! measures in wall-clock to validate the analytical [`CpuEngine`].

// Lane-indexed loops over parallel arrays are the natural idiom for
// warp-level kernel code; iterator zips would obscure the SIMT shape.
#![allow(clippy::needless_range_loop)]
// Simulator/kernels code surfaces failures as typed errors or explicit
// panics with context; bare unwrap/expect is reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cpu;
pub mod csrmv;
pub mod csrmv_t;
pub mod dev;
pub mod ellmv;
pub mod engine;
pub mod exec;
pub mod gemv;
pub mod level1;
pub mod transpose;

pub use cpu::{
    measure_lrcg_iteration_dense, measure_lrcg_iteration_sparse, CpuEngine, MeasureError,
};
pub use csrmv::{csrmv, try_csrmv, vector_size_for_mean_nnz, SpmvStyle};
pub use csrmv_t::{
    csrmv_t_atomic, csrmv_t_pretransposed, csrmv_t_scatter, try_csrmv_t_atomic,
    try_csrmv_t_pretransposed, try_csrmv_t_scatter,
};
pub use dev::{GpuCsr, GpuDense};
pub use ellmv::{ellmv, hybmv, try_ellmv, try_hybmv, GpuEll, GpuHyb};
pub use engine::{BaselineEngine, Flavor};
#[cfg(target_arch = "x86_64")]
pub use exec::Avx2Executor;
pub use exec::{
    active_executor, available_executors, avx2_executor, executor_named, fused_pattern_csr,
    fused_pattern_dense, fused_xtxp_csr, scalar_executor, scalar_forced, KernelExecutor, MtFused,
    MtWorkspace, ScalarExecutor, CANONICAL_BLOCKS,
};
pub use gemv::{gemv, gemv_t, gemv_t_direct, try_gemv, try_gemv_t, try_gemv_t_direct};
pub use transpose::{csr2csc_device, total_sim_ms, try_csr2csc_device};
