//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **hierarchical aggregation** — the shared-memory inter-vector stage
//!   vs aggregating every contribution directly in global memory;
//! * **coarsening** — the tuner's `C` vs no coarsening (one row per
//!   vector, many small blocks);
//! * **code generation** — monomorphized thread loads (register residency
//!   + ILP) vs the `TL = 1` un-unrolled kernel;
//! * **texture binding for `y`** — the paper binds the multiplicand vector
//!   to the read-only path.
//!
//! Like `paper.rs` these measure host wall-time of the simulation; the
//! simulated-millisecond ablation numbers are printed to stdout once per
//! bench so the effect on the modelled device is visible too.

use criterion::{criterion_group, criterion_main, Criterion};
use fusedml_blas::GpuCsr;
use fusedml_core::executor::FusedExecutor;
use fusedml_core::tuner::manual_sparse_plan;
use fusedml_core::{plan_dense, plan_sparse, PatternSpec};
use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
use std::hint::black_box;
use std::sync::Once;

const M: usize = 20_000;

/// Shared vs global aggregation on a matrix narrow enough for both.
fn ablation_aggregation(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let n = 512;
    let x = uniform_sparse(M, n, 0.01, 1);
    let xd = GpuCsr::upload(&gpu, "x", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 2));
    let w = gpu.alloc_f64("w", n);
    let spec = PatternSpec::xtxy();

    let shared_plan = plan_sparse(gpu.spec(), M, n, x.mean_nnz_per_row());
    assert!(shared_plan.use_shared_w);
    let mut global_plan = shared_plan;
    global_plan.use_shared_w = false;
    global_plan.shared_bytes = (global_plan.bs / global_plan.vs) * 8;

    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut a = FusedExecutor::new(&gpu);
        a.pattern_sparse_with_plan(&shared_plan, spec, &xd, None, &y, None, &w);
        let mut b = FusedExecutor::new(&gpu);
        b.pattern_sparse_with_plan(&global_plan, spec, &xd, None, &y, None, &w);
        println!(
            "[ablation] aggregation, simulated: shared {:.4} ms vs global {:.4} ms",
            a.total_sim_ms(),
            b.total_sim_ms()
        );
    });

    let mut g = c.benchmark_group("ablation_aggregation");
    g.sample_size(10);
    g.bench_function("hierarchical_shared", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&shared_plan, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("all_global_atomics", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&global_plan, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.finish();
}

/// Tuned coarsening vs C = 1 (grid explodes, per-block flush repeats).
fn ablation_coarsening(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let n = 512;
    let x = uniform_sparse(M, n, 0.01, 3);
    let xd = GpuCsr::upload(&gpu, "x", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 4));
    let w = gpu.alloc_f64("w", n);
    let spec = PatternSpec::xtxy();

    let tuned = plan_sparse(gpu.spec(), M, n, x.mean_nnz_per_row());
    let uncoarsened = manual_sparse_plan(gpu.spec(), M, n, tuned.vs, tuned.bs, 1).expect("valid");

    let mut g = c.benchmark_group("ablation_coarsening");
    g.sample_size(10);
    g.bench_function("tuned_c", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&tuned, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("c_equals_1", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&uncoarsened, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.finish();
}

/// Tuned thread load (unrolled registers, ILP) vs TL = 1.
fn ablation_thread_load(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let n = 512;
    let x = dense_random(M / 2, n, 5);
    let xd = fusedml_blas::GpuDense::upload(&gpu, "x", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 6));
    let w = gpu.alloc_f64("w", n);
    let spec = PatternSpec::xtxy();

    let tuned = plan_dense(gpu.spec(), M / 2, n);
    // TL = 1 on a 512-column row forces a block-wide (512-thread) vector:
    // no register blocking, no ILP, two barriers per row.
    let mut tl1 = tuned;
    tl1.tl = 1;
    tl1.bs = n;
    tl1.vs = n;
    tl1.regs = fusedml_core::tuner::dense_kernel_regs(1);
    tl1.grid = gpu.spec().num_sms * 4;
    tl1.c = (M / 2).div_ceil(tl1.grid).max(1);
    assert!(tl1.vs * tl1.tl >= n);

    let mut g = c.benchmark_group("ablation_thread_load");
    g.sample_size(10);
    g.bench_function("tuned_tl", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_dense_with_plan(&tuned, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("tl_equals_1", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_dense_with_plan(&tl1, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_aggregation,
    ablation_coarsening,
    ablation_thread_load
);
criterion_main!(benches);
