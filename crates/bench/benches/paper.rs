//! Criterion benchmarks, one group per table/figure of the paper.
//!
//! These measure the **host wall-time of the functional simulation**, which
//! is proportional to the data-movement work each engine performs — a
//! second, independent check of the relative shapes. The authoritative
//! reproduction numbers (simulated device milliseconds from the event
//! counters) come from `cargo run --release -p fusedml-bench --bin repro`.
//!
//! Workload sizes are deliberately small so `cargo bench` completes in
//! minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fusedml_blas::{csr2csc_device, BaselineEngine, Flavor, GpuCsr, GpuDense};
use fusedml_core::executor::FusedExecutor;
use fusedml_core::tuner::manual_sparse_plan;
use fusedml_core::{plan_sparse, PatternSpec};
use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{dense_random, kdd2010_spec, random_vector, uniform_sparse};
use fusedml_ml::{lr_cg, BaselineBackend, FusedBackend, LrCgOptions};
use std::hint::black_box;

const SPARSE_ROWS: usize = 20_000;
const DENSE_ROWS: usize = 10_000;

/// Fig. 2: fused X^T y vs the transpose+SpMV path, across column counts.
fn fig2_xty_sparse(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let mut g = c.benchmark_group("fig2_xty_sparse");
    g.sample_size(10);
    for n in [256usize, 1024] {
        let x = uniform_sparse(SPARSE_ROWS, n, 0.01, 1);
        let xd = GpuCsr::upload(&gpu, "x", &x);
        let y = gpu.upload_f64("y", &random_vector(SPARSE_ROWS, 2));
        let w = gpu.alloc_f64("w", n);
        g.bench_with_input(BenchmarkId::new("fused", n), &n, |b, _| {
            b.iter(|| {
                let mut ex = FusedExecutor::new(&gpu);
                ex.xt_y_sparse(1.0, &xd, &y, &w);
                black_box(ex.total_sim_ms())
            })
        });
        g.bench_with_input(BenchmarkId::new("cusparse_transpose", n), &n, |b, _| {
            b.iter(|| {
                let (xt, launches) = csr2csc_device(&gpu, &xd);
                gpu.free(&xt.row_off);
                gpu.free(&xt.col_idx);
                gpu.free(&xt.values);
                black_box(launches.len())
            })
        });
    }
    g.finish();
}

/// Figs. 3/4: the sparse pattern across engines.
fn fig3_fig4_sparse_pattern(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let n = 512;
    let x = uniform_sparse(SPARSE_ROWS, n, 0.01, 3);
    let xd = GpuCsr::upload(&gpu, "x", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 4));
    let v = gpu.upload_f64("v", &random_vector(SPARSE_ROWS, 5));
    let z = gpu.upload_f64("z", &random_vector(n, 6));
    let w = gpu.alloc_f64("w", n);
    let p = gpu.alloc_f64("p", SPARSE_ROWS);
    let spec = PatternSpec::full(1.5, -0.5);

    let mut g = c.benchmark_group("fig3_fig4_sparse_pattern");
    g.sample_size(10);
    g.bench_function("fused", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse(spec, &xd, Some(&v), &y, Some(&z), &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("cusparse", |b| {
        b.iter(|| {
            let mut e = BaselineEngine::new(&gpu, Flavor::CuLibs);
            e.pattern_sparse(1.5, &xd, Some(&v), &y, -0.5, Some(&z), &w, &p);
            black_box(e.total_sim_ms())
        })
    });
    g.bench_function("bidmat_gpu", |b| {
        b.iter(|| {
            let mut e = BaselineEngine::new(&gpu, Flavor::BidmatGpu);
            e.pattern_sparse(1.5, &xd, Some(&v), &y, -0.5, Some(&z), &w, &p);
            black_box(e.total_sim_ms())
        })
    });
    g.finish();
}

/// Fig. 5: the dense pattern across engines.
fn fig5_dense_pattern(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let n = 256;
    let x = dense_random(DENSE_ROWS, n, 7);
    let xd = GpuDense::upload(&gpu, "x", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 8));
    let w = gpu.alloc_f64("w", n);
    let p = gpu.alloc_f64("p", DENSE_ROWS);

    let mut g = c.benchmark_group("fig5_dense_pattern");
    g.sample_size(10);
    g.bench_function("fused", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_dense(PatternSpec::xtxy(), &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("cublas", |b| {
        b.iter(|| {
            let mut e = BaselineEngine::new(&gpu, Flavor::CuLibs);
            e.pattern_dense(1.0, &xd, None, &y, 0.0, None, &w, &p);
            black_box(e.total_sim_ms())
        })
    });
    g.bench_function("bidmat_gpu", |b| {
        b.iter(|| {
            let mut e = BaselineEngine::new(&gpu, Flavor::BidmatGpu);
            e.pattern_dense(1.0, &xd, None, &y, 0.0, None, &w, &p);
            black_box(e.total_sim_ms())
        })
    });
    g.finish();
}

/// Fig. 6: the analytical tuner itself (planning must be cheap — the
/// paper stresses "minimal overhead") plus one good and one bad manual
/// configuration executed.
fn fig6_tuning(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let (m, n) = (SPARSE_ROWS, 1000);
    let x = uniform_sparse(m, n, 0.01, 9);
    let xd = GpuCsr::upload(&gpu, "x", &x);
    let y = gpu.upload_f64("y", &random_vector(n, 10));
    let w = gpu.alloc_f64("w", n);
    let spec = PatternSpec::xtxy();

    let mut g = c.benchmark_group("fig6_tuning");
    g.sample_size(10);
    g.bench_function("plan_sparse_model", |b| {
        b.iter(|| black_box(plan_sparse(gpu.spec(), m, n, x.mean_nnz_per_row())))
    });
    let model = plan_sparse(gpu.spec(), m, n, x.mean_nnz_per_row());
    let bad = manual_sparse_plan(gpu.spec(), m, n, model.vs, 32, 1).expect("valid");
    g.bench_function("execute_model_plan", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&model, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("execute_worst_class_plan", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse_with_plan(&bad, spec, &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.finish();
}

/// Table 4: the ultra-sparse (global-aggregation) regime.
fn table4_kdd_regime(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let x = kdd2010_spec(0.03).build_sparse(11);
    let xd = GpuCsr::upload(&gpu, "kdd", &x);
    let y = gpu.upload_f64("y", &random_vector(x.cols(), 12));
    let w = gpu.alloc_f64("w", x.cols());
    let p = gpu.alloc_f64("p", x.rows());

    let mut g = c.benchmark_group("table4_kdd_regime");
    g.sample_size(10);
    g.bench_function("fused_global_variant", |b| {
        b.iter(|| {
            let mut ex = FusedExecutor::new(&gpu);
            ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &y, None, &w);
            black_box(ex.total_sim_ms())
        })
    });
    g.bench_function("cusparse", |b| {
        b.iter(|| {
            let mut e = BaselineEngine::new(&gpu, Flavor::CuLibs);
            e.pattern_sparse(1.0, &xd, None, &y, 0.0, None, &w, &p);
            black_box(e.total_sim_ms())
        })
    });
    g.finish();
}

/// Tables 5/6: one LR-CG iteration loop, fused vs baseline pipelines.
fn table5_table6_end_to_end(c: &mut Criterion) {
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let n = 128;
    let x = uniform_sparse(SPARSE_ROWS, n, 0.02, 13);
    let labels = random_vector(SPARSE_ROWS, 14);
    let opts = LrCgOptions {
        max_iterations: 5,
        tolerance: 0.0,
        ..Default::default()
    };

    let mut g = c.benchmark_group("table5_table6_lrcg");
    g.sample_size(10);
    g.bench_function("fused_backend", |b| {
        b.iter(|| {
            let mut be = FusedBackend::new_sparse(&gpu, &x);
            black_box(lr_cg(&mut be, &labels, opts).iterations)
        })
    });
    g.bench_function("baseline_backend", |b| {
        b.iter(|| {
            let mut be = BaselineBackend::new_sparse(&gpu, &x);
            black_box(lr_cg(&mut be, &labels, opts).iterations)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig2_xty_sparse,
    fig3_fig4_sparse_pattern,
    fig5_dense_pattern,
    fig6_tuning,
    table4_kdd_regime,
    table5_table6_end_to_end
);
criterion_main!(benches);
