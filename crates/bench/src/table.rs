//! Result-table plumbing shared by every experiment: aligned text output
//! for the terminal plus JSON serialization for EXPERIMENTS.md records.
//!
//! Serialization goes through the workspace's own zero-dependency
//! [`Json`] layer, so table exports work in offline builds where
//! third-party serializers are compile-surface stubs.

use crate::regress::json::Json;

/// One regenerated table or figure, as rows of formatted cells.
#[derive(Debug, Clone)]
pub struct Table {
    /// Paper artifact id, e.g. "fig2" or "table4".
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (scaling factors, caveats, paper reference values).
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }

    pub fn to_json(&self) -> Json {
        let strings = |xs: &[String]| Json::Arr(xs.iter().map(|s| Json::str(s.clone())).collect());
        Json::obj(vec![
            ("id", Json::str(self.id.clone())),
            ("title", Json::str(self.title.clone())),
            ("headers", strings(&self.headers)),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| strings(r)).collect()),
            ),
            ("notes", strings(&self.notes)),
        ])
    }
}

/// Format milliseconds with sensible precision.
pub fn fmt_ms(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Format a speedup factor.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a large count compactly.
pub fn fmt_count(x: u64) -> String {
    if x >= 10_000_000 {
        format!("{:.1}M", x as f64 / 1e6)
    } else if x >= 10_000 {
        format!("{:.1}K", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", "demo", &["a", "speedup"]);
        t.row(vec!["1".into(), "10.00x".into()]);
        t.row(vec!["200".into(), "3.50x".into()]);
        t.note("scaled");
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("10.00x"));
        assert!(r.contains("note: scaled"));
        // Column alignment: both rows same width.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(0.01234), "0.0123");
        assert_eq!(fmt_x(2.5), "2.50x");
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(52_000), "52.0K");
        assert_eq!(fmt_count(12_000_000), "12.0M");
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("fig9", "x", &["h"]);
        t.row(vec!["v".into()]);
        let j = t.to_json();
        assert_eq!(j.field_str("id").unwrap(), "fig9");
        let rows = j.field("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].as_arr().unwrap()[0].as_str(), Some("v"));
        // The render must survive the workspace's own parser.
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}
