//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # every experiment at the default scale (0.25)
//! repro fig3 table5         # a subset
//! repro fig2 --scale 0.05   # quick run
//! repro all --json results  # also dump JSON rows per experiment
//! ```

// Failures must carry a worded panic message, never a bare unwrap/expect.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use fusedml_bench::experiments::{self, Ctx};
use fusedml_bench::Table;
use fusedml_gpu_sim::DeviceSpec;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "table4", "table5", "table6",
];

/// Extension experiments beyond the paper (run by name, not by `all`).
const EXTENSIONS: &[&str] = &["ell"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25f64;
    let mut json_dir: Option<String> = None;
    let mut device = DeviceSpec::gtx_titan();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number in (0, 1]"));
            }
            "--device" => {
                device = match it.next().as_deref() {
                    Some("titan") => DeviceSpec::gtx_titan(),
                    Some("k20") => DeviceSpec::tesla_k20(),
                    other => die(&format!("--device must be 'titan' or 'k20', got {other:?}")),
                };
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) || EXTENSIONS.contains(&other) => {
                wanted.push(other.to_string())
            }
            other => die(&format!(
                "unknown experiment '{other}'; available: {}, extensions: {}, or 'all'",
                ALL.join(", "),
                EXTENSIONS.join(", ")
            )),
        }
    }
    if wanted.is_empty() {
        die(&format!("usage: repro <experiment...|all> [--scale f] [--json dir] [--device titan|k20]\navailable: {}", ALL.join(", ")));
    }
    wanted.dedup();

    let ctx = Ctx::with_device(scale, device);
    println!(
        "device: {} | workload scale: {scale} (1.0 = paper sizes)\n",
        ctx.gpu.spec().name
    );

    for name in &wanted {
        let t0 = Instant::now();
        let table = run_one(&ctx, name);
        table.print();
        println!("  ({} regenerated in {:.1?})\n", name, t0.elapsed());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create json dir {dir}: {e}"));
            let path = format!("{dir}/{name}.json");
            let text = serde_json::to_string_pretty(&table.to_json())
                .unwrap_or_else(|e| panic!("table does not serialize: {e}"));
            std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("  wrote {path}\n");
        }
    }
}

fn run_one(ctx: &Ctx, name: &str) -> Table {
    match name {
        "table1" => experiments::table1::run(ctx),
        "table2" => experiments::table2::run(ctx),
        "fig2" => experiments::fig2::run(ctx),
        "fig3" => experiments::fig3::run(ctx),
        "fig4" => experiments::fig4::run(ctx),
        "fig5" => experiments::fig5::run(ctx),
        "fig6" => experiments::fig6::run(ctx),
        "table4" => experiments::table4::run(ctx),
        "table5" => experiments::table5::run(ctx),
        "table6" => experiments::table6::run(ctx),
        "ell" => experiments::ext_ell::run(ctx),
        other => die(&format!("unknown experiment {other}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
