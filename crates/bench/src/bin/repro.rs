//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # every experiment at the default scale (0.25)
//! repro fig3 table5         # a subset
//! repro fig2 --scale 0.05   # quick run
//! repro all --json results  # also dump JSON rows per experiment
//! repro fig3 --trace        # also export a Chrome trace of the run
//! ```
//!
//! Exit codes: 0 on success, 1 on usage or I/O failure, 2 when an
//! experiment name is unknown (so scripts can tell a typo from a broken
//! run).

// Failures must carry a worded panic message, never a bare unwrap/expect.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use fusedml_bench::experiments::{self, Ctx};
use fusedml_bench::regress::{chrome_trace, Json};
use fusedml_bench::Table;
use fusedml_gpu_sim::DeviceSpec;
use std::time::Instant;

const ALL: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "table4", "table5", "table6",
];

/// Extension experiments beyond the paper (run by name, not by `all`).
const EXTENSIONS: &[&str] = &["ell"];

/// Unknown experiment names get their own exit code, distinct from the
/// generic failure exit (1).
const EXIT_UNKNOWN_EXPERIMENT: i32 = 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25f64;
    let mut json_dir: Option<String> = None;
    let mut device = DeviceSpec::gtx_titan();
    let mut trace_out: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number in (0, 1]"));
            }
            "--device" => {
                device = match it.next().as_deref() {
                    Some("titan") => DeviceSpec::gtx_titan(),
                    Some("k20") => DeviceSpec::tesla_k20(),
                    other => die(&format!("--device must be 'titan' or 'k20', got {other:?}")),
                };
            }
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| die("--json needs a directory")));
            }
            "--trace" => {
                trace_out.get_or_insert_with(|| "repro_trace.json".to_string());
            }
            "--trace-out" => {
                trace_out = Some(it.next().unwrap_or_else(|| die("--trace-out needs a path")));
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) || EXTENSIONS.contains(&other) => {
                wanted.push(other.to_string())
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag '{other}'"));
            }
            other => die_unknown(&format!(
                "unknown experiment '{other}'; available: {}, extensions: {}, or 'all'",
                ALL.join(", "),
                EXTENSIONS.join(", ")
            )),
        }
    }
    if wanted.is_empty() {
        die(&format!("usage: repro <experiment...|all> [--scale f] [--json dir] [--device titan|k20] [--trace] [--trace-out PATH]\navailable: {}", ALL.join(", ")));
    }
    wanted.dedup();

    let ctx = Ctx::with_device(scale, device);
    println!(
        "device: {} | workload scale: {scale} (1.0 = paper sizes)\n",
        ctx.gpu.spec().name
    );

    if trace_out.is_some() {
        fusedml_trace::enable();
    }

    for name in &wanted {
        let t0 = Instant::now();
        let table = run_one(&ctx, name);
        table.print();
        println!("  ({} regenerated in {:.1?})\n", name, t0.elapsed());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create json dir {dir}: {e}"));
            let path = format!("{dir}/{name}.json");
            let text = table.to_json().render();
            std::fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            println!("  wrote {path}\n");
        }
    }

    if let Some(out) = &trace_out {
        export_trace(out);
    }
}

/// Export the accumulated event stream as the same Chrome trace-event
/// document `fusedml-bench trace` writes (Perfetto-loadable), with the
/// same round-trip validation through the zero-dependency JSON parser.
fn export_trace(out: &str) {
    fusedml_trace::disable();
    let events = fusedml_trace::take();
    let dropped = fusedml_trace::dropped_events();

    let doc = chrome_trace(&events);
    let text = doc.render();
    let back = Json::parse(&text)
        .unwrap_or_else(|e| die(&format!("trace export does not round-trip: {e}")));
    if back != doc {
        die("trace export does not round-trip: parsed tree differs");
    }

    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
        }
    }
    std::fs::write(out, &text).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    eprintln!("wrote {out} ({} events, {dropped} dropped)", events.len());
}

fn run_one(ctx: &Ctx, name: &str) -> Table {
    match name {
        "table1" => experiments::table1::run(ctx),
        "table2" => experiments::table2::run(ctx),
        "fig2" => experiments::fig2::run(ctx),
        "fig3" => experiments::fig3::run(ctx),
        "fig4" => experiments::fig4::run(ctx),
        "fig5" => experiments::fig5::run(ctx),
        "fig6" => experiments::fig6::run(ctx),
        "table4" => experiments::table4::run(ctx),
        "table5" => experiments::table5::run(ctx),
        "table6" => experiments::table6::run(ctx),
        "ell" => experiments::ext_ell::run(ctx),
        other => die_unknown(&format!("unknown experiment {other}")),
    }
}

/// Generic failure: bad usage, bad flag value, I/O error.
fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// A typo in an experiment name (see the module docs on exit codes).
fn die_unknown(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(EXIT_UNKNOWN_EXPERIMENT);
}
