//! `fusedml-bench` — continuous benchmarking CLI.
//!
//! ```text
//! fusedml-bench run --quick                      # suite -> BENCH_fusion.json
//! fusedml-bench run --quick --out results/x.json
//! fusedml-bench compare baseline.json cand.json  # exit 1 on regression
//! fusedml-bench compare a.json b.json --ignore-wall --modeled-tol 0.05
//! fusedml-bench list --quick                     # workload ids, no run
//! fusedml-bench trace --quick --out trace.json   # traced LR-CG -> Chrome trace
//! fusedml-bench stream --quick --check results/baselines/STREAM_fusion.json
//! fusedml-bench serve --out SERVE_fusion.json
//! fusedml-bench serve --check results/baselines/SERVE_fusion.json
//! ```
//!
//! Exit codes (the `repro` convention from PR 6): 0 = ok / no
//! regression, 1 = regression detected or a runtime/I-O failure,
//! 2 = unknown subcommand, unknown flag, or other usage error.

// CLI failures must go through `die`/`fail` (or a worded panic), never a
// bare unwrap/expect — the exit-code contract above depends on it.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use fusedml_bench::regress::{
    chrome_trace, compare, hostperf_summary, hostperf_table, hostperf_totals, metrics_summary,
    plan_drift, plan_report, run_campaign, run_cpu_bench, run_scenario, run_suite,
    serve_bench_report, serve_invariants, serve_regressions, stream_invariants, stream_regressions,
    stream_report, workload_ids, BenchReport, ChaosOptions, CompareOptions, CpuBenchOptions,
    FaultClass, Json, Mode, Scenario, ServeBenchOptions, ServeGateOptions, StreamGateOptions,
    SuiteOptions, STREAM_DEFAULT_PASSES,
};
use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_runtime::{
    run_device, DataSet, EngineKind, SessionConfig, SparseStreamer, StreamConfig, TransferModel,
};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => cmd_run(args.collect()),
        Some("compare") => cmd_compare(args.collect()),
        Some("list") => cmd_list(args.collect()),
        Some("plans") => cmd_plans(args.collect()),
        Some("trace") => cmd_trace(args.collect()),
        Some("hostperf") => cmd_hostperf(args.collect()),
        Some("chaos") => cmd_chaos(args.collect()),
        Some("cpu") => cmd_cpu(args.collect()),
        Some("stream") => cmd_stream(args.collect()),
        Some("serve") => cmd_serve(args.collect()),
        Some(other) => die(&format!("unknown subcommand '{other}'\n{USAGE}")),
        None => die(USAGE),
    }
}

const USAGE: &str = "usage:
  fusedml-bench run [--quick|--full] [--scale f] [--seed u64] [--device titan|k20]
                [--out PATH] [--no-plan-cache]
  fusedml-bench compare <baseline.json> <candidate.json>
                [--modeled-tol f] [--counter-tol f] [--speedup-tol f]
                [--wall-tol f] [--ignore-wall]
  fusedml-bench list [--quick|--full] [--scale f]
  fusedml-bench plans [--quick|--full] [--scale f] [--seed u64] [--device titan|k20]
                [--out PATH] [--check GOLDEN.json]
  fusedml-bench trace [--quick|--full] [--scale f] [--seed u64] [--device titan|k20]
                [--out PATH] [--summary-out PATH]
  fusedml-bench hostperf [--from REPORT.json] [--out SUMMARY.json]
                [--quick|--full] [--scale f] [--seed u64] [--device titan|k20]
  fusedml-bench chaos [--scenarios N] [--seed u64] [--out PATH] [--class NAME]
  fusedml-bench chaos replay --seed u64
  fusedml-bench cpu [--quick|--full] [--scale f] [--seed u64] [--repeats N]
                [--threads LIST] [--out PATH]
  fusedml-bench stream [--quick|--full] [--scale f] [--seed u64] [--device titan|k20]
                [--passes N] [--out PATH] [--check BASELINE.json]
                [--wall-tol f] [--counter-tol f]
  fusedml-bench serve [--tenants N] [--requests N] [--slots N] [--seed u64]
                [--device titan|k20] [--out PATH] [--check BASELINE.json]
                [--latency-tol f] [--throughput-tol f]";

/// Parse the suite-shaping flags shared by `run` and `list`.
fn parse_suite_opts(args: &[String]) -> (SuiteOptions, Vec<String>) {
    let mut opts = SuiteOptions::quick();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.mode = Mode::Quick,
            "--full" => opts.mode = Mode::Full,
            "--scale" => {
                opts.scale = next_f64(&mut it, "--scale");
                if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                    die("--scale must be in (0, 1]");
                }
            }
            "--seed" => {
                opts.seed = next_arg(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an unsigned integer"));
            }
            "--device" => {
                opts.device = match next_arg(&mut it, "--device").as_str() {
                    "titan" => DeviceSpec::gtx_titan().into(),
                    "k20" => DeviceSpec::tesla_k20().into(),
                    other => die(&format!("--device must be 'titan' or 'k20', got '{other}'")),
                };
            }
            _ => rest.push(a.clone()),
        }
    }
    (opts, rest)
}

fn cmd_run(args: Vec<String>) {
    let (opts, rest) = parse_suite_opts(&args);
    let mut out = "BENCH_fusion.json".to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = next_arg(&mut it, "--out"),
            // CI's bit-identity check: a cache-off run must produce the
            // same modeled metrics as a cache-on run (only the host block
            // may differ). Executors created after this call inherit it.
            "--no-plan-cache" => fusedml_core::set_plan_cache_enabled(false),
            other => die(&format!("unknown flag '{other}' for run\n{USAGE}")),
        }
    }

    eprintln!(
        "running {} suite on {} (scale {}, seed {:#x})",
        opts.mode.as_str(),
        opts.device.name,
        opts.scale,
        opts.seed
    );
    let t0 = Instant::now();
    let report = run_suite(&opts, |id| eprintln!("  {id}"));
    report.save(&out).unwrap_or_else(|e| fail(&e));
    eprintln!(
        "wrote {} ({} workloads, {:.1?})",
        out,
        report.workloads.len(),
        t0.elapsed()
    );
    for w in &report.workloads {
        eprintln!(
            "  {:<32} fused {:>10.3} ms  baseline {:>10.3} ms  speedup {:>6.2}x",
            w.id, w.fused.modeled_ms, w.baseline.modeled_ms, w.speedup
        );
    }
}

fn cmd_compare(args: Vec<String>) {
    let mut opts = CompareOptions::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--modeled-tol" => opts.modeled_tol = next_f64(&mut it, "--modeled-tol"),
            "--counter-tol" => opts.counter_tol = next_f64(&mut it, "--counter-tol"),
            "--speedup-tol" => opts.speedup_tol = next_f64(&mut it, "--speedup-tol"),
            "--wall-tol" => opts.wall_tol = next_f64(&mut it, "--wall-tol"),
            "--ignore-wall" => opts.check_wall = false,
            flag if flag.starts_with("--") => {
                die(&format!("unknown flag '{flag}' for compare\n{USAGE}"))
            }
            path => paths.push(path.to_string()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        die(&format!(
            "compare needs exactly two report paths, got {}\n{USAGE}",
            paths.len()
        ));
    };

    let base = BenchReport::load(base_path).unwrap_or_else(|e| fail(&e));
    let cand = BenchReport::load(cand_path).unwrap_or_else(|e| fail(&e));
    eprintln!(
        "baseline:  {} @ {}\ncandidate: {} @ {}",
        base_path, base.git_sha, cand_path, cand.git_sha
    );
    let outcome = compare(&base, &cand, &opts).unwrap_or_else(|e| die(&e));
    print!("{}", outcome.render());
    if !outcome.passed() {
        std::process::exit(1);
    }
}

fn cmd_list(args: Vec<String>) {
    let (opts, rest) = parse_suite_opts(&args);
    if let Some(flag) = rest.first() {
        die(&format!("unknown flag '{flag}' for list\n{USAGE}"));
    }
    for id in workload_ids(&opts) {
        println!("{id}");
    }
}

/// Compile the fusion plan for every DAG-executed bench workload and dump
/// it as deterministic JSON — the CI plan-regression gate. `--check`
/// diffs the fresh dump against a committed golden and exits 1 on drift.
fn cmd_plans(args: Vec<String>) {
    let (opts, rest) = parse_suite_opts(&args);
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(next_arg(&mut it, "--out")),
            "--check" => check = Some(next_arg(&mut it, "--check")),
            other => die(&format!("unknown flag '{other}' for plans\n{USAGE}")),
        }
    }

    let report = plan_report(&opts).unwrap_or_else(|e| fail(&e));
    let text = report.render();

    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
            }
        }
        std::fs::write(path, &text).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &check {
        let golden_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read golden {path}: {e}")));
        let golden = Json::parse(&golden_text)
            .unwrap_or_else(|e| fail(&format!("golden {path} does not parse: {e}")));
        let drift = plan_drift(&golden, &report);
        if !drift.is_empty() {
            for d in &drift {
                eprintln!("plan drift: {d}");
            }
            eprintln!(
                "{} divergence{} from {path}; if the change is intended, regenerate the \
                 golden with `fusedml-bench plans --out {path}`",
                drift.len(),
                if drift.len() == 1 { "" } else { "s" }
            );
            std::process::exit(1);
        }
        eprintln!("plans match {path}");
    }
    if out.is_none() && check.is_none() {
        println!("{text}");
    }
}

/// Run one end-to-end LR-CG session with tracing on and export the event
/// stream as a Chrome trace-event file (Perfetto-loadable) plus a flat
/// metrics summary. The workload routes through the runtime session so
/// the trace covers every instrumented layer: kernel launches on the
/// simulated device track, memory-manager transfers on the PCIe track,
/// and solver iterations / session phases on the host track.
fn cmd_trace(args: Vec<String>) {
    let (opts, rest) = parse_suite_opts(&args);
    let mut out = "trace_lr_cg.json".to_string();
    let mut summary_out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = next_arg(&mut it, "--out"),
            "--summary-out" => summary_out = Some(next_arg(&mut it, "--summary-out")),
            other => die(&format!("unknown flag '{other}' for trace\n{USAGE}")),
        }
    }

    // Mirror the suite's LR-CG/CSR workload shape for the chosen mode.
    let (base_rows, cols, iters) = match opts.mode {
        Mode::Quick => (6_000usize, 512usize, 3usize),
        Mode::Full => (25_000, 1024, 8),
    };
    let rows = ((base_rows as f64 * opts.scale).round() as usize).max(64);
    eprintln!(
        "tracing lr_cg/csr/{rows}x{cols} ({} iterations) on {}",
        iters, opts.device.name
    );

    let x = uniform_sparse(rows, cols, 0.01, opts.seed);
    let w_true = random_vector(cols, opts.seed + 10);
    let labels = reference::csr_mv(&x, &w_true);

    fusedml_trace::enable();
    // A short streamed segment on its own device: its flow events link
    // each chunk's host-side iteration arrow through the PCIe transfer
    // to the kernel span, and the smoke check below requires them.
    {
        let stream_gpu = Gpu::new(opts.device.clone());
        let cfg = StreamConfig::fixed(rows.div_ceil(4), 2).with_residency(x.size_bytes());
        let mut s = SparseStreamer::try_new(&stream_gpu, &x, TransferModel::native(), cfg)
            .unwrap_or_else(|e| fail(&format!("streamed trace segment: {e}")));
        let y = random_vector(cols, opts.seed + 20);
        for _ in 0..2 {
            let mut w = vec![0.0; cols];
            s.try_pattern_host(fusedml_core::PatternSpec::xtxy(), None, &y, None, &mut w)
                .unwrap_or_else(|e| fail(&format!("streamed trace segment: {e}")));
        }
        s.release();
    }
    let data = DataSet::Sparse(x);
    let gpu = Gpu::new(opts.device.clone());
    let report = run_device(
        &gpu,
        &data,
        &labels,
        &SessionConfig::native(EngineKind::Fused, iters),
    );
    fusedml_trace::disable();
    let events = fusedml_trace::take();
    let dropped = fusedml_trace::dropped_events();

    let doc = chrome_trace(&events);
    let text = doc.render();
    // The export must survive our own zero-dependency parser: a cheap
    // structural guarantee before anyone feeds the file to Perfetto.
    let back = Json::parse(&text)
        .unwrap_or_else(|e| fail(&format!("trace export does not round-trip: {e}")));
    if back != doc {
        fail("trace export does not round-trip: parsed tree differs");
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
        }
    }
    std::fs::write(&out, &text).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));

    let summary = metrics_summary(&events, dropped);
    if let Some(path) = &summary_out {
        std::fs::write(path, summary.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    }

    let categories: Vec<&str> = match summary.field("by_category") {
        Ok(Json::Obj(m)) => m.keys().map(String::as_str).collect(),
        _ => Vec::new(),
    };
    eprintln!(
        "wrote {} ({} events, {} dropped; layers: {})",
        out,
        events.len(),
        dropped,
        categories.join(", ")
    );
    eprintln!(
        "session totals: kernel {:.3} ms, transfer {:.3} ms, {} launches",
        report.kernel_ms, report.transfer_ms, report.launches
    );
    for layer in ["kernel", "solver", "session", "stream"] {
        if !categories.contains(&layer) {
            fail(&format!("trace is missing the '{layer}' layer"));
        }
    }
    // The streamed segment must contribute linkable flow events
    // (iteration -> chunk transfer -> kernel); an export with none would
    // silently drop the cross-layer arrows in Perfetto.
    let flows = summary
        .field_u64("flows")
        .unwrap_or_else(|e| fail(&format!("trace summary: {e}")));
    if flows == 0 {
        fail("trace has no flow events linking iterations to transfers and kernels");
    }
    eprintln!("flow events: {flows}");
}

/// Render the host-overhead view: plan-cache and buffer-pool traffic plus
/// host milliseconds per solver iteration, per workload and in aggregate.
/// Reads an existing report with `--from`, otherwise runs the suite.
fn cmd_hostperf(args: Vec<String>) {
    let (opts, rest) = parse_suite_opts(&args);
    let mut from: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--from" => from = Some(next_arg(&mut it, "--from")),
            "--out" => out = Some(next_arg(&mut it, "--out")),
            other => die(&format!("unknown flag '{other}' for hostperf\n{USAGE}")),
        }
    }

    let report = match &from {
        Some(path) => BenchReport::load(path).unwrap_or_else(|e| fail(&e)),
        None => {
            eprintln!(
                "running {} suite on {} (scale {}, seed {:#x})",
                opts.mode.as_str(),
                opts.device.name,
                opts.scale,
                opts.seed
            );
            run_suite(&opts, |id| eprintln!("  {id}"))
        }
    };

    hostperf_table(&report).print();

    if let Some(path) = &out {
        let summary = hostperf_summary(&report);
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
            }
        }
        std::fs::write(path, summary.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }

    let totals = hostperf_totals(&report);
    if totals.pool_hits + totals.pool_misses == 0 {
        eprintln!("no host activity recorded (v1 report or kernel-only matrix)");
    }
}

/// Chaos campaign / replay. A campaign sweeps derived fault scenarios and
/// writes the schema-versioned report; exit 1 if any invariant failed.
/// `chaos replay --seed <s>` re-derives one scenario from its seed (as
/// recorded in a report), runs it twice, and proves the two outcomes are
/// bit-identical.
fn cmd_chaos(args: Vec<String>) {
    if args.first().map(String::as_str) == Some("replay") {
        let mut seed: Option<u64> = None;
        let mut it = args[1..].iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => seed = Some(parse_seed(&next_arg(&mut it, "--seed"))),
                other => die(&format!("unknown flag '{other}' for chaos replay\n{USAGE}")),
            }
        }
        let Some(seed) = seed else {
            die(&format!("chaos replay needs --seed\n{USAGE}"));
        };
        let sc = Scenario::from_seed(0, seed);
        eprintln!(
            "replaying scenario {:#018x}: {} under {} faults (rate {}, {} device{}{})",
            seed,
            sc.workload.name(),
            sc.class.name(),
            sc.rate,
            sc.device_count,
            if sc.device_count == 1 { "" } else { "s" },
            if sc.device_count == 1 {
                String::new()
            } else {
                format!(" over {}", sc.interconnect)
            }
        );
        let first = run_scenario(&sc);
        let second = run_scenario(&sc);
        print!("{}", first.to_json().render());
        if first != second {
            eprintln!("replay diverged: two runs of the same seed disagree");
            std::process::exit(1);
        }
        eprintln!("replay is bit-identical");
        if !first.pass() {
            std::process::exit(1);
        }
        return;
    }

    let mut opts = ChaosOptions::default();
    let mut out = "CHAOS_fusion.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenarios" => {
                opts.scenarios = next_arg(&mut it, "--scenarios")
                    .parse()
                    .unwrap_or_else(|_| die("--scenarios needs an unsigned integer"));
            }
            "--seed" => opts.seed = parse_seed(&next_arg(&mut it, "--seed")),
            "--out" => out = next_arg(&mut it, "--out"),
            "--class" => {
                opts.only_class = Some(
                    FaultClass::from_name(&next_arg(&mut it, "--class"))
                        .unwrap_or_else(|e| die(&format!("{e}\n{USAGE}"))),
                );
            }
            other => die(&format!("unknown flag '{other}' for chaos\n{USAGE}")),
        }
    }

    eprintln!(
        "chaos campaign: {} scenarios, seed {:#x}{}",
        opts.scenarios,
        opts.seed,
        opts.only_class
            .map(|c| format!(", class {}", c.name()))
            .unwrap_or_default()
    );
    let report = run_campaign(&opts, |r| {
        eprintln!(
            "  [{:>4}] {:<7} {:<11} rate {:<5} x{} -> {} on {} ({} attempt{}){}",
            r.scenario.index,
            r.scenario.workload.name(),
            r.scenario.class.name(),
            r.scenario.rate,
            r.scenario.device_count,
            r.outcome,
            r.tier,
            r.attempts,
            if r.attempts == 1 { "" } else { "s" },
            if r.pass() { "" } else { "  INVARIANT VIOLATED" }
        );
    });
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
        }
    }
    std::fs::write(&out, report.render())
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    eprintln!(
        "wrote {} ({} scenarios, {} failure{})",
        out,
        report.results.len(),
        report.failures(),
        if report.failures() == 1 { "" } else { "s" }
    );
    if !report.passed() {
        std::process::exit(1);
    }
}

/// The measured CPU benchmark: real wall-clock fused-vs-unfused through
/// the `KernelExecutor` backends (scalar / AVX2 / multithreaded fused),
/// with the analytical roofline's predicted-vs-measured ratio per kernel.
/// Numerical equivalence between executors is verified before timing and
/// exits 1 on violation; wall-clock numbers themselves are never gated.
fn cmd_cpu(args: Vec<String>) {
    let (suite, rest) = parse_suite_opts(&args);
    let mut opts = CpuBenchOptions {
        mode: suite.mode,
        scale: suite.scale,
        seed: suite.seed,
        ..CpuBenchOptions::default()
    };
    let mut out = "CPU_fusion.json".to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = next_arg(&mut it, "--out"),
            "--repeats" => {
                opts.repeats = next_arg(&mut it, "--repeats")
                    .parse()
                    .unwrap_or_else(|_| die("--repeats needs an unsigned integer"));
            }
            "--threads" => {
                opts.threads = next_arg(&mut it, "--threads")
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse()
                            .unwrap_or_else(|_| die("--threads needs a comma-separated list"))
                    })
                    .collect();
            }
            other => die(&format!("unknown flag '{other}' for cpu\n{USAGE}")),
        }
    }
    if opts.repeats == 0 {
        die("--repeats must be >= 1");
    }

    eprintln!(
        "measured cpu bench: {} mode, scale {}, seed {:#x}, {} repeats",
        opts.mode.as_str(),
        opts.scale,
        opts.seed,
        opts.repeats
    );
    let report = run_cpu_bench(&opts).unwrap_or_else(|e| fail(&e));

    if let Ok(host) = report.field("host") {
        eprintln!(
            "host: active executor '{}', avx2 detected: {}, forced scalar: {}",
            host.field_str("active_executor").unwrap_or("?"),
            host.get("avx2_detected")
                .is_some_and(|v| *v == Json::Bool(true)),
            host.get("forced_scalar")
                .is_some_and(|v| *v == Json::Bool(true)),
        );
    }
    for wl in report
        .field("workloads")
        .ok()
        .and_then(|w| w.as_arr())
        .unwrap_or(&[])
    {
        let id = wl.field_str("id").unwrap_or("?");
        let unfused_ms = wl
            .field("unfused")
            .and_then(|u| u.field_f64("measured_ms"))
            .unwrap_or(f64::NAN);
        eprintln!("  {id:<28} unfused {unfused_ms:>9.3} ms");
        for leg in wl
            .field("fused")
            .ok()
            .and_then(|l| l.as_arr())
            .unwrap_or(&[])
        {
            eprintln!(
                "    fused {:<10} x{:<2} {:>9.3} ms  speedup {:>5.2}x  pred/meas {:>5.2}",
                leg.field_str("executor").unwrap_or("?"),
                leg.field_u64("threads").unwrap_or(0),
                leg.field_f64("measured_ms").unwrap_or(f64::NAN),
                leg.field_f64("speedup_vs_unfused").unwrap_or(f64::NAN),
                leg.field_f64("predicted_over_measured").unwrap_or(f64::NAN),
            );
        }
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
        }
    }
    std::fs::write(&out, report.render())
        .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    eprintln!("wrote {out}");
}

/// The copy-engine streaming ladder: per workload, run the multi-pass
/// chunked pattern job at depth 1 (serial), depth 2 (the legacy double
/// buffer), depth 3 over two queues with full residency, and the
/// cost-model-searched configuration; write the schema-versioned report
/// and gate it. The model-level invariants (depth 1 == serial model;
/// pipelined residency strictly below double-buffer on wall AND H2D
/// bytes) are enforced on every run, baseline or not; `--check` also
/// diffs against a committed baseline with noise-aware tolerances.
fn cmd_stream(args: Vec<String>) {
    let (opts, rest) = parse_suite_opts(&args);
    let mut passes = STREAM_DEFAULT_PASSES;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut gate = StreamGateOptions::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--passes" => {
                passes = next_arg(&mut it, "--passes")
                    .parse()
                    .unwrap_or_else(|_| die("--passes needs an unsigned integer"));
            }
            "--out" => out = Some(next_arg(&mut it, "--out")),
            "--check" => check = Some(next_arg(&mut it, "--check")),
            "--wall-tol" => gate.wall_tol = next_f64(&mut it, "--wall-tol"),
            "--counter-tol" => gate.counter_tol = next_f64(&mut it, "--counter-tol"),
            other => die(&format!("unknown flag '{other}' for stream\n{USAGE}")),
        }
    }
    if passes < 2 {
        die("--passes must be >= 2 (one cold pass, at least one warm)");
    }

    eprintln!(
        "stream bench: {} mode on {} (scale {}, seed {:#x}, {} passes)",
        opts.mode.as_str(),
        opts.device.name,
        opts.scale,
        opts.seed,
        passes
    );
    let report = stream_report(&opts, passes).unwrap_or_else(|e| fail(&e));
    for wl in report
        .field("workloads")
        .ok()
        .and_then(|w| w.as_arr())
        .unwrap_or(&[])
    {
        eprintln!("  {}", wl.field_str("id").unwrap_or("?"));
        for leg in wl
            .field("legs")
            .ok()
            .and_then(|l| l.as_arr())
            .unwrap_or(&[])
        {
            eprintln!(
                "    {:<18} depth {} x{}q  wall {:>9.3} ms  h2d {:>11} B  hit rate {:>5.2}  bubble {:>8.3} ms",
                leg.field_str("name").unwrap_or("?"),
                leg.field_u64("depth").unwrap_or(0),
                leg.field_u64("queues").unwrap_or(0),
                leg.field_f64("modeled_wall_ms").unwrap_or(f64::NAN),
                leg.field_u64("h2d_bytes").unwrap_or(0),
                leg.field_f64("residency_hit_rate").unwrap_or(f64::NAN),
                leg.field_f64("bubble_ms").unwrap_or(f64::NAN),
            );
        }
    }

    let violations = stream_invariants(&report);
    for v in &violations {
        eprintln!("stream invariant violated: {v}");
    }

    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
            }
        }
        std::fs::write(path, report.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    if let Some(path) = &check {
        let baseline_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {path}: {e}")));
        let baseline = Json::parse(&baseline_text)
            .unwrap_or_else(|e| fail(&format!("baseline {path} does not parse: {e}")));
        let regressions = stream_regressions(&baseline, &report, &gate);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("stream regression: {r}");
            }
            eprintln!(
                "{} regression{} against {path}; if the change is intended, regenerate the \
                 baseline with `fusedml-bench stream --out {path}`",
                regressions.len(),
                if regressions.len() == 1 { "" } else { "s" }
            );
            std::process::exit(1);
        }
        eprintln!("stream metrics within tolerance of {path}");
    }
    if out.is_none() && check.is_none() {
        println!("{}", report.render());
    }
}

/// The multi-tenant serving bench: run the seeded tenant grid and mixed
/// arrival process through the runtime's serving layer, write the
/// schema-versioned `SERVE_fusion.json` and gate it. The structural
/// invariants (request accounting, no ladder exhaustion, latency
/// monotonicity, fault containment) are enforced on every run, baseline
/// or not; `--check` also diffs against a committed baseline with
/// noise-aware tolerances on latency and throughput and exact gates on
/// the deterministic shed/reject counters.
fn cmd_serve(args: Vec<String>) {
    let mut opts = ServeBenchOptions::default();
    let mut gate = ServeGateOptions::default();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tenants" => {
                opts.tenants = next_arg(&mut it, "--tenants")
                    .parse()
                    .unwrap_or_else(|_| die("--tenants needs an unsigned integer"));
            }
            "--requests" => {
                opts.requests = next_arg(&mut it, "--requests")
                    .parse()
                    .unwrap_or_else(|_| die("--requests needs an unsigned integer"));
            }
            "--slots" => {
                opts.slots = next_arg(&mut it, "--slots")
                    .parse()
                    .unwrap_or_else(|_| die("--slots needs an unsigned integer"));
            }
            "--seed" => opts.seed = parse_seed(&next_arg(&mut it, "--seed")),
            "--device" => {
                opts.device = match next_arg(&mut it, "--device").as_str() {
                    "titan" => DeviceSpec::gtx_titan().into(),
                    "k20" => DeviceSpec::tesla_k20().into(),
                    other => die(&format!("--device must be 'titan' or 'k20', got '{other}'")),
                };
            }
            "--out" => out = Some(next_arg(&mut it, "--out")),
            "--check" => check = Some(next_arg(&mut it, "--check")),
            "--latency-tol" => gate.latency_tol = next_f64(&mut it, "--latency-tol"),
            "--throughput-tol" => gate.throughput_tol = next_f64(&mut it, "--throughput-tol"),
            other => die(&format!("unknown flag '{other}' for serve\n{USAGE}")),
        }
    }
    if opts.tenants < 3 {
        die("--tenants must be >= 3 (the grid needs its chaotic, bursty and metered tenants)");
    }
    if opts.requests == 0 || opts.slots == 0 {
        die("--requests and --slots must be >= 1");
    }

    eprintln!(
        "serve bench: {} tenants x {} requests on {} slots ({}, seed {:#x})",
        opts.tenants, opts.requests, opts.slots, opts.device.name, opts.seed
    );
    let report = serve_bench_report(&opts).unwrap_or_else(|e| fail(&e));
    if let Ok(totals) = report.field("totals") {
        eprintln!(
            "  completed {} / {}  rejected {}+{}  shed {}  recoveries {}  deadline misses {}",
            totals.field_u64("completed").unwrap_or(0),
            totals.field_u64("submitted").unwrap_or(0),
            totals.field_u64("rejected_queue").unwrap_or(0),
            totals.field_u64("rejected_quota").unwrap_or(0),
            totals.field_u64("shed").unwrap_or(0),
            totals.field_u64("recoveries").unwrap_or(0),
            totals.field_u64("deadline_misses").unwrap_or(0),
        );
    }
    if let Ok(lat) = report.field("latency_ms") {
        eprintln!(
            "  latency p50 {:>8.3} ms  p99 {:>8.3} ms  p999 {:>8.3} ms  throughput {:>8.1} req/s",
            lat.field_f64("p50").unwrap_or(f64::NAN),
            lat.field_f64("p99").unwrap_or(f64::NAN),
            lat.field_f64("p999").unwrap_or(f64::NAN),
            report.field_f64("throughput_rps").unwrap_or(f64::NAN),
        );
    }
    for t in report
        .field("tenants")
        .ok()
        .and_then(|t| t.as_arr())
        .unwrap_or(&[])
    {
        eprintln!(
            "  {:<10} completed {:>3}/{:<3}  recoveries {:>2}  faults {:>3}  max depth {}",
            t.field_str("name").unwrap_or("?"),
            t.field_u64("completed").unwrap_or(0),
            t.field_u64("submitted").unwrap_or(0),
            t.field_u64("recoveries").unwrap_or(0),
            t.field_u64("faults_injected").unwrap_or(0),
            t.field_u64("max_queue_depth").unwrap_or(0),
        );
    }

    let violations = serve_invariants(&report);
    for v in &violations {
        eprintln!("serve invariant violated: {v}");
    }

    if let Some(path) = &out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
            }
        }
        std::fs::write(path, report.render())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
    if let Some(path) = &check {
        let baseline_text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read baseline {path}: {e}")));
        let baseline = Json::parse(&baseline_text)
            .unwrap_or_else(|e| fail(&format!("baseline {path} does not parse: {e}")));
        let regressions = serve_regressions(&baseline, &report, &gate);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("serve regression: {r}");
            }
            eprintln!(
                "{} regression{} against {path}; if the change is intended, regenerate the \
                 baseline with `fusedml-bench serve --out {path}`",
                regressions.len(),
                if regressions.len() == 1 { "" } else { "s" }
            );
            std::process::exit(1);
        }
        eprintln!("serve metrics within tolerance of {path}");
    }
    if out.is_none() && check.is_none() {
        println!("{}", report.render());
    }
}

/// Seeds print as hex in reports; accept both hex and decimal back.
fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| die("--seed needs an unsigned integer (decimal or 0x hex)"))
}

fn next_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next()
        .cloned()
        .unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn next_f64(it: &mut std::slice::Iter<'_, String>, flag: &str) -> f64 {
    next_arg(it, flag)
        .parse()
        .unwrap_or_else(|_| die(&format!("{flag} needs a number")))
}

/// Usage error: unknown subcommand/flag, missing or malformed value.
fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Runtime failure (I/O, parse, planning): the generic failure exit,
/// distinct from usage errors per the `repro` exit-code convention.
fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}
