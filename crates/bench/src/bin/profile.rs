//! `profile` — run one kernel configuration and print the simulator's
//! nvprof-style report (counters, time breakdown, advice).
//!
//! ```text
//! profile fused-sparse  [--rows m] [--cols n] [--density d]
//! profile fused-dense   [--rows m] [--cols n]
//! profile csrmv-t       [--rows m] [--cols n] [--density d]   # baseline scatter
//! profile fused-ell     [--rows m] [--cols n] [--density d]
//! ```

// Dev tool or not, a missing launch is a worded panic, not a bare expect.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use fusedml_blas::csrmv_t_scatter;
use fusedml_blas::ellmv::GpuEll;
use fusedml_blas::level1::fill;
use fusedml_blas::{GpuCsr, GpuDense};
use fusedml_core::ell_fused::{fused_pattern_ell, plan_ell};
use fusedml_core::executor::FusedExecutor;
use fusedml_core::PatternSpec;
use fusedml_gpu_sim::{profile_report, DeviceSpec, Gpu, LaunchStats};
use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
use fusedml_matrix::EllMatrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel = None;
    let mut rows = 50_000usize;
    let mut cols = 512usize;
    let mut density = 0.01f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rows" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => rows = v,
                None => usage(),
            },
            "--cols" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => cols = v,
                None => usage(),
            },
            "--density" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => density = v,
                None => usage(),
            },
            k @ ("fused-sparse" | "fused-dense" | "csrmv-t" | "fused-ell") => {
                kernel = Some(k.to_string())
            }
            _ => {
                usage();
            }
        }
    }
    let Some(kernel) = kernel else {
        usage();
    };

    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    let stats: LaunchStats = match kernel.as_str() {
        "fused-sparse" => {
            let x = uniform_sparse(rows, cols, density, 1);
            let xd = GpuCsr::upload(&gpu, "X", &x);
            let y = gpu.upload_f64("y", &random_vector(cols, 2));
            let w = gpu.alloc_f64("w", cols);
            let mut ex = FusedExecutor::new(&gpu);
            println!("plan: {:?}\n", ex.sparse_plan(&xd));
            ex.pattern_sparse(PatternSpec::xtxy(), &xd, None, &y, None, &w);
            ex.launches
                .pop()
                .unwrap_or_else(|| panic!("kernel did not launch"))
        }
        "fused-dense" => {
            let x = dense_random(rows, cols, 1);
            let xd = GpuDense::upload(&gpu, "X", &x);
            let y = gpu.upload_f64("y", &random_vector(cols, 2));
            let w = gpu.alloc_f64("w", cols);
            let mut ex = FusedExecutor::new(&gpu);
            println!("plan: {:?}\n", ex.dense_plan(&xd));
            ex.pattern_dense(PatternSpec::xtxy(), &xd, None, &y, None, &w);
            ex.launches
                .pop()
                .unwrap_or_else(|| panic!("kernel did not launch"))
        }
        "csrmv-t" => {
            let x = uniform_sparse(rows, cols, density, 1);
            let xd = GpuCsr::upload(&gpu, "X", &x);
            let p = gpu.upload_f64("p", &random_vector(rows, 2));
            let w = gpu.alloc_f64("w", cols);
            fill(&gpu, &w, 0.0);
            csrmv_t_scatter(&gpu, &xd, &p, &w)
        }
        "fused-ell" => {
            let x = uniform_sparse(rows, cols, density, 1);
            let ell = EllMatrix::from_csr(&x);
            println!(
                "ELL width {} ({}% padding)\n",
                ell.width(),
                (ell.padding_ratio() * 100.0) as u32
            );
            let xd = GpuEll::upload(&gpu, "X", &ell);
            let y = gpu.upload_f64("y", &random_vector(cols, 2));
            let w = gpu.alloc_f64("w", cols);
            fill(&gpu, &w, 0.0);
            let plan = plan_ell(&gpu, rows, cols);
            fused_pattern_ell(&gpu, &plan, PatternSpec::xtxy(), &xd, None, &y, None, &w)
        }
        _ => usage(),
    };
    print!("{}", profile_report(&stats));
}

fn usage() -> ! {
    eprintln!(
        "usage: profile <fused-sparse|fused-dense|csrmv-t|fused-ell> \
         [--rows m] [--cols n] [--density d]"
    );
    std::process::exit(2);
}
