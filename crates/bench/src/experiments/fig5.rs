//! Figure 5 — dense `X^T x (X x y)`: fused-kernel speedup against cuBLAS,
//! BIDMat-GPU and BIDMat-CPU across column counts up to 2K.

use crate::experiments::Ctx;
use crate::table::{fmt_ms, fmt_x, Table};
use fusedml_blas::{BaselineEngine, CpuEngine, Flavor, GpuDense};
use fusedml_core::executor::FusedExecutor;
use fusedml_core::PatternSpec;
use fusedml_matrix::gen::{dense_random, random_vector};

pub struct DensePoint {
    pub n: usize,
    pub fused_ms: f64,
    pub cublas_ms: f64,
    pub bidmat_gpu_ms: f64,
    pub bidmat_cpu_ms: f64,
}

pub fn measure_point(ctx: &Ctx, m: usize, n: usize, seed: u64) -> DensePoint {
    let x = dense_random(m, n, seed);
    let xd = GpuDense::upload(&ctx.gpu, "x", &x);
    let y = ctx.gpu.upload_f64("y", &random_vector(n, seed + 1));
    let w = ctx.gpu.alloc_f64("w", n);
    let p = ctx.gpu.alloc_f64("p", m);
    let spec = PatternSpec::xtxy();

    ctx.gpu.flush_caches();
    let mut ex = FusedExecutor::new(&ctx.gpu);
    ex.pattern_dense(spec, &xd, None, &y, None, &w);
    let fused_ms = ex.total_sim_ms();

    ctx.gpu.flush_caches();
    let mut cu = BaselineEngine::new(&ctx.gpu, Flavor::CuLibs);
    cu.pattern_dense(1.0, &xd, None, &y, 0.0, None, &w, &p);
    let cublas_ms = cu.total_sim_ms();

    ctx.gpu.flush_caches();
    let mut bg = BaselineEngine::new(&ctx.gpu, Flavor::BidmatGpu);
    bg.pattern_dense(1.0, &xd, None, &y, 0.0, None, &w, &p);
    let bidmat_gpu_ms = bg.total_sim_ms();

    let mut cpu = CpuEngine::mkl_8threads();
    let bidmat_cpu_ms = cpu.pattern_dense_ms(m, n, false, false, false);

    DensePoint {
        n,
        fused_ms,
        cublas_ms,
        bidmat_gpu_ms,
        bidmat_cpu_ms,
    }
}

pub fn run(ctx: &Ctx) -> Table {
    let m = ctx.dense_sweep_rows();
    let mut t = Table::new(
        "fig5",
        "dense X^T(Xy): fused vs cuBLAS / BIDMat-GPU / BIDMat-CPU",
        &[
            "n",
            "fused_ms",
            "vs_cublas",
            "vs_bidmat_gpu",
            "vs_bidmat_cpu",
        ],
    );
    t.note(format!("m = {m} dense (scale {})", ctx.scale));
    t.note("paper averages: 4.27x (cuBLAS), 2.18x (BIDMat-GPU), 15.33x (BIDMat-CPU)");
    for (i, n) in ctx.dense_sweep_cols().into_iter().enumerate() {
        let pt = measure_point(ctx, m, n, ctx.seed + 20 * i as u64);
        t.row(vec![
            n.to_string(),
            fmt_ms(pt.fused_ms),
            fmt_x(pt.cublas_ms / pt.fused_ms),
            fmt_x(pt.bidmat_gpu_ms / pt.fused_ms),
            fmt_x(pt.bidmat_cpu_ms / pt.fused_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_engine_ordering() {
        let ctx = Ctx::new(0.02);
        let pt = measure_point(&ctx, 10_000, 256, 3);
        // Paper's dense ordering: fused < BIDMat-GPU < cuBLAS < CPU.
        assert!(pt.fused_ms < pt.bidmat_gpu_ms);
        assert!(pt.bidmat_gpu_ms < pt.cublas_ms);
        assert!(pt.cublas_ms < pt.bidmat_cpu_ms);
        // Dense gains are modest, far below the sparse ones.
        let cublas_speedup = pt.cublas_ms / pt.fused_ms;
        assert!(
            (1.2..12.0).contains(&cublas_speedup),
            "dense cuBLAS speedup {cublas_speedup}"
        );
    }
}
