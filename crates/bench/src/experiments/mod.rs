//! One module per paper artifact. Each `run` function regenerates the
//! table/figure at a configurable scale and returns a [`crate::Table`].

pub mod ext_ell;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod table5;
pub mod table6;

use fusedml_gpu_sim::{DeviceSpec, Gpu};

/// Shared experiment context: the simulated device plus the workload scale
/// factor (1.0 = the paper's sizes; the default 0.25 keeps host runtime in
/// the minutes on a laptop-class machine — see DESIGN.md's scaling note).
pub struct Ctx {
    pub gpu: Gpu,
    pub scale: f64,
    pub seed: u64,
}

impl Ctx {
    pub fn new(scale: f64) -> Self {
        Self::with_device(scale, DeviceSpec::gtx_titan())
    }

    /// Run the experiments on a different simulated device (the paper
    /// notes hand-tuned kernels "get worse with new GPU generations" —
    /// the analytical tuner re-plans per device spec automatically).
    pub fn with_device(scale: f64, device: DeviceSpec) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Ctx {
            gpu: Gpu::new(device),
            scale,
            seed: 0x5EED,
        }
    }

    /// The sparse-sweep row count (paper: 500k).
    pub fn sweep_rows(&self) -> usize {
        (500_000.0 * self.scale) as usize
    }

    /// The column counts of the paper's sparse sweeps (200..4096).
    pub fn sparse_sweep_cols(&self) -> Vec<usize> {
        vec![200, 400, 800, 1600, 2048, 3072, 4096]
    }

    /// The column counts of the dense sweep (up to 2K).
    pub fn dense_sweep_cols(&self) -> Vec<usize> {
        vec![32, 64, 128, 256, 512, 1024, 2048]
    }

    /// Dense sweeps use fewer rows: at n = 2048 the full-scale matrix
    /// would not even fit the real device (the paper makes the same
    /// observation for m > 2K... columns), and simulation visits every
    /// element three times in the baseline.
    pub fn dense_sweep_rows(&self) -> usize {
        (250_000.0 * self.scale) as usize
    }
}
