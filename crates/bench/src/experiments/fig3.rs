//! Figure 3 — sparse `X^T x (X x y)`: fused-kernel speedup against
//! cuSPARSE, BIDMat-GPU and BIDMat-CPU (modelled MKL with 8 hyper-threads).

use crate::experiments::Ctx;
use crate::table::{fmt_ms, fmt_x, Table};
use fusedml_blas::{BaselineEngine, CpuEngine, Flavor, GpuCsr};
use fusedml_core::executor::FusedExecutor;
use fusedml_core::PatternSpec;
use fusedml_matrix::gen::{random_vector, uniform_sparse};

/// Measured times of the four engines at one sweep point.
pub struct EnginePoint {
    pub n: usize,
    pub fused_ms: f64,
    pub cusparse_ms: f64,
    pub bidmat_gpu_ms: f64,
    pub bidmat_cpu_ms: f64,
}

/// Evaluate one sweep point for a pattern selected by `spec`.
pub fn measure_point(ctx: &Ctx, m: usize, n: usize, seed: u64, spec: PatternSpec) -> EnginePoint {
    let x = uniform_sparse(m, n, 0.01, seed);
    let xd = GpuCsr::upload(&ctx.gpu, "x", &x);
    let y = ctx.gpu.upload_f64("y", &random_vector(n, seed + 1));
    let v = spec
        .with_v
        .then(|| ctx.gpu.upload_f64("v", &random_vector(m, seed + 2)));
    let z = spec
        .with_z
        .then(|| ctx.gpu.upload_f64("z", &random_vector(n, seed + 3)));
    let w = ctx.gpu.alloc_f64("w", n);
    let p = ctx.gpu.alloc_f64("p", m);

    ctx.gpu.flush_caches();
    let mut ex = FusedExecutor::new(&ctx.gpu);
    ex.pattern_sparse(spec, &xd, v.as_ref(), &y, z.as_ref(), &w);
    let fused_ms = ex.total_sim_ms();

    ctx.gpu.flush_caches();
    let mut cu = BaselineEngine::new(&ctx.gpu, Flavor::CuLibs);
    cu.pattern_sparse(
        spec.alpha,
        &xd,
        v.as_ref(),
        &y,
        spec.beta,
        z.as_ref(),
        &w,
        &p,
    );
    let cusparse_ms = cu.total_sim_ms();

    ctx.gpu.flush_caches();
    let mut bg = BaselineEngine::new(&ctx.gpu, Flavor::BidmatGpu);
    bg.pattern_sparse(
        spec.alpha,
        &xd,
        v.as_ref(),
        &y,
        spec.beta,
        z.as_ref(),
        &w,
        &p,
    );
    let bidmat_gpu_ms = bg.total_sim_ms();

    let mut cpu = CpuEngine::mkl_8threads();
    let bidmat_cpu_ms =
        cpu.pattern_sparse_ms(m, n, x.nnz(), spec.with_v, spec.with_z, spec.alpha != 1.0);

    EnginePoint {
        n,
        fused_ms,
        cusparse_ms,
        bidmat_gpu_ms,
        bidmat_cpu_ms,
    }
}

pub(crate) fn sweep_table(
    ctx: &Ctx,
    id: &str,
    title: &str,
    spec: PatternSpec,
    paper_note: &str,
) -> Table {
    let m = ctx.sweep_rows();
    let mut t = Table::new(
        id,
        title,
        &[
            "n",
            "fused_ms",
            "vs_cusparse",
            "vs_bidmat_gpu",
            "vs_bidmat_cpu",
        ],
    );
    t.note(format!(
        "m = {m} (paper: 500k, scale {}), sparsity 0.01",
        ctx.scale
    ));
    t.note(paper_note.to_string());
    for (i, n) in ctx.sparse_sweep_cols().into_iter().enumerate() {
        let pt = measure_point(ctx, m, n, ctx.seed + 10 * i as u64, spec);
        t.row(vec![
            n.to_string(),
            fmt_ms(pt.fused_ms),
            fmt_x(pt.cusparse_ms / pt.fused_ms),
            fmt_x(pt.bidmat_gpu_ms / pt.fused_ms),
            fmt_x(pt.bidmat_cpu_ms / pt.fused_ms),
        ]);
    }
    t
}

pub fn run(ctx: &Ctx) -> Table {
    sweep_table(
        ctx,
        "fig3",
        "sparse X^T(Xy): fused vs cuSPARSE / BIDMat-GPU / BIDMat-CPU",
        PatternSpec::xtxy(),
        "paper averages: 20.33x (cuSPARSE), 14.66x (BIDMat-GPU), 9.28x (BIDMat-CPU)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_engine_ordering() {
        let ctx = Ctx::new(0.02);
        let pt = measure_point(&ctx, 10_000, 512, 1, PatternSpec::xtxy());
        // The paper's ordering: fused < CPU <= BIDMat-GPU < cuSPARSE.
        assert!(pt.fused_ms < pt.bidmat_cpu_ms);
        assert!(pt.fused_ms < pt.bidmat_gpu_ms);
        assert!(
            pt.bidmat_gpu_ms < pt.cusparse_ms,
            "BIDMat {} vs cuSPARSE {}",
            pt.bidmat_gpu_ms,
            pt.cusparse_ms
        );
    }
}
