//! Table 5 — end-to-end Linear Regression Conjugate Gradient: fused-kernel
//! pipeline vs pure cuBLAS/cuSPARSE pipeline, including PCIe transfer time
//! amortized over the ML iterations (HIGGS: 32 iterations, KDD: 100).

use crate::experiments::Ctx;
use crate::table::{fmt_ms, fmt_x, Table};
use fusedml_matrix::gen::{higgs_spec, kdd2010_spec, random_vector};
use fusedml_matrix::reference;
use fusedml_ml::ops::TransposePolicy;
use fusedml_runtime::session::{run_device_extrapolated, DataSet, EngineKind, SessionConfig};

pub fn run(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "table5",
        "end-to-end LR-CG speedup, fused vs pure cuBLAS/cuSPARSE (incl. PCIe)",
        &[
            "data_set",
            "iters",
            "fused_total_ms",
            "culibs_total_ms",
            "speedup",
            "transfer_ms",
        ],
    );
    t.note(
        "paper: HIGGS 4.8x (32 iters), KDD2010 9x (100 iters); KDD transfer 939 ms at full scale",
    );
    t.note("baseline uses library semantics (transpose per call); the amortized variant is reported below");

    let cases = [
        ("HIGGS-like (dense)", higgs_dataset(ctx), 32usize),
        ("KDD2010-like (sparse)", kdd_dataset(ctx), 100usize),
    ];

    let mut amortized_notes = Vec::new();
    for (name, (data, labels), iters) in cases {
        let fused = run_device_extrapolated(
            &ctx.gpu,
            &data,
            &labels,
            &SessionConfig::native(EngineKind::Fused, iters),
            3,
        );
        ctx.gpu.flush_caches();
        let base = run_device_extrapolated(
            &ctx.gpu,
            &data,
            &labels,
            &SessionConfig::native(EngineKind::Baseline, iters),
            3,
        );
        ctx.gpu.flush_caches();
        let base_amortized = run_device_extrapolated(
            &ctx.gpu,
            &data,
            &labels,
            &SessionConfig::native(EngineKind::Baseline, iters)
                .with_transpose_policy(TransposePolicy::CachedOnce),
            3,
        );
        t.row(vec![
            name.to_string(),
            iters.to_string(),
            fmt_ms(fused.total_ms),
            fmt_ms(base.total_ms),
            fmt_x(base.total_ms / fused.total_ms),
            fmt_ms(fused.transfer_ms),
        ]);
        amortized_notes.push(format!(
            "{name}: with the baseline caching X^T once (keeping both on device), \
             speedup is {}",
            fmt_x(base_amortized.total_ms / fused.total_ms)
        ));
    }
    for n in amortized_notes {
        t.note(n);
    }
    t
}

pub(crate) fn higgs_dataset(ctx: &Ctx) -> (DataSet, Vec<f64>) {
    let x = higgs_spec(ctx.scale).build_dense(ctx.seed);
    let w = random_vector(x.cols(), ctx.seed + 1);
    let labels = reference::dense_mv(&x, &w);
    (DataSet::Dense(x), labels)
}

pub(crate) fn kdd_dataset(ctx: &Ctx) -> (DataSet, Vec<f64>) {
    // The end-to-end KDD run is the heaviest simulation; use half the
    // stand-in scale (still hundreds of thousands of columns).
    let x = kdd2010_spec(0.5 * ctx.scale).build_sparse(ctx.seed + 2);
    let w = random_vector(x.cols(), ctx.seed + 3);
    let labels = reference::csr_mv(&x, &w);
    (DataSet::Sparse(x), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_fused_wins_both_datasets() {
        let ctx = Ctx::new(0.02);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let speedup: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.1, "{}: end-to-end speedup {speedup}", row[0]);
        }
        // Sparse (KDD) gains more than dense (HIGGS), as in the paper
        // (9x vs 4.8x).
        let higgs: f64 = t.rows[0][4].trim_end_matches('x').parse().unwrap();
        let kdd: f64 = t.rows[1][4].trim_end_matches('x').parse().unwrap();
        assert!(kdd > higgs, "kdd {kdd} <= higgs {higgs}");
    }
}
