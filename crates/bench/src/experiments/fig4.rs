//! Figure 4 — the complete pattern
//! `alpha * X^T (v ⊙ (X y)) + beta * z` on sparse input: fused-kernel
//! speedups against cuBLAS/cuSPARSE, BIDMat-GPU and BIDMat-CPU. The paper
//! expects results similar to or slightly better than Fig. 3 since the
//! computation is bottlenecked by `X^T(Xy)`.

use crate::experiments::fig3::sweep_table;
use crate::experiments::Ctx;
use crate::table::Table;
use fusedml_core::PatternSpec;

pub fn run(ctx: &Ctx) -> Table {
    sweep_table(
        ctx,
        "fig4",
        "full pattern a*X^T(v.(Xy)) + b*z sparse: fused vs the three engines",
        PatternSpec::full(1.5, -0.5),
        "paper averages: 26.21x (cuBLAS/cuSPARSE), 19.62x (BIDMat-GPU), 13.41x (BIDMat-CPU)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig3::measure_point;

    #[test]
    fn full_pattern_at_least_as_good_as_bare() {
        let ctx = Ctx::new(0.02);
        let bare = measure_point(&ctx, 10_000, 512, 7, PatternSpec::xtxy());
        let full = measure_point(&ctx, 10_000, 512, 7, PatternSpec::full(1.5, -0.5));
        let bare_speedup = bare.cusparse_ms / bare.fused_ms;
        let full_speedup = full.cusparse_ms / full.fused_ms;
        // "similar or slightly better" — allow 25% slack downward.
        assert!(
            full_speedup > bare_speedup * 0.75,
            "full {full_speedup} vs bare {bare_speedup}"
        );
    }
}
