//! Table 2 — breakdown of single-threaded CPU compute time for LR-CG:
//! what fraction goes to the generic pattern vs BLAS-1 vector arithmetic.
//! Unlike the other experiments this one *measures wall time* of the real
//! single-threaded reference implementation on this host.

use crate::experiments::Ctx;
use crate::table::Table;
use fusedml_blas::cpu::{measure_lrcg_iteration_dense, measure_lrcg_iteration_sparse};
use fusedml_matrix::gen::{higgs_spec, kdd2010_spec};

pub fn run(ctx: &Ctx) -> Table {
    // Table 2 only needs the time *shares*, which are scale-stable; use a
    // modest slice of the stand-in data sets so the measured run is quick.
    let kdd = kdd2010_spec(0.2 * ctx.scale.max(0.1)).build_sparse(ctx.seed);
    let higgs = higgs_spec(0.2 * ctx.scale.max(0.1)).build_dense(ctx.seed + 1);

    let mut t = Table::new(
        "table2",
        "share of single-threaded CPU time in LR-CG (measured wall clock)",
        &["data_set", "pattern_%", "blas1_%", "total_%"],
    );
    t.note("paper: KDD 82.9% / 16.9% / 99.8%; HIGGS 99.4% / 0.1% / 99.5%");

    // Min-over-3-repeats after an untimed warm-up (the measure functions'
    // methodology); repeats is a non-zero literal, so the error arm is
    // unreachable by construction.
    let (kp, kb) = measure_lrcg_iteration_sparse(&kdd, 3)
        .unwrap_or_else(|e| panic!("table2 sparse measurement: {e}"));
    let ktot = kp + kb;
    t.row(vec![
        format!("KDD2010-like {}x{}", kdd.rows(), kdd.cols()),
        format!("{:.1}", 100.0 * kp / ktot),
        format!("{:.1}", 100.0 * kb / ktot),
        "100.0".to_string(),
    ]);

    let (hp, hb) = measure_lrcg_iteration_dense(&higgs, 3)
        .unwrap_or_else(|e| panic!("table2 dense measurement: {e}"));
    let htot = hp + hb;
    t.row(vec![
        format!("HIGGS-like {}x{}", higgs.rows(), higgs.cols()),
        format!("{:.1}", 100.0 * hp / htot),
        format!("{:.1}", 100.0 * hb / htot),
        "100.0".to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_dominates_cpu_time() {
        let ctx = Ctx::new(0.05);
        let t = run(&ctx);
        for row in &t.rows {
            let pattern_pct: f64 = row[1].parse().unwrap();
            assert!(
                pattern_pct > 60.0,
                "{}: pattern share only {pattern_pct}%",
                row[0]
            );
        }
        // Dense (HIGGS) is even more pattern-dominated than sparse, as in
        // the paper (99.4% vs 82.9%).
        let kdd: f64 = t.rows[0][1].parse().unwrap();
        let higgs: f64 = t.rows[1][1].parse().unwrap();
        assert!(higgs > kdd - 10.0, "kdd {kdd}% vs higgs {higgs}%");
    }
}
