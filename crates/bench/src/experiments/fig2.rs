//! Figure 2 — sparse `X^T x y`:
//! (top) speedup of the fused Algorithm-1 kernel over the cuSPARSE-style
//! path (explicit `csr2csc` + SpMV);
//! (bottom) global load transactions of both, whose ratio explains the
//! speedup (the paper measures cuSPARSE issuing ~3.5x more loads);
//! plus the second axis: iterations needed to amortize one explicit
//! transposition against reusing it for cheap products.

use crate::experiments::Ctx;
use crate::table::{fmt_count, fmt_ms, fmt_x, Table};
use fusedml_blas::{csr2csc_device, csrmv_t_pretransposed, GpuCsr};
use fusedml_core::executor::FusedExecutor;
use fusedml_gpu_sim::Counters;
use fusedml_matrix::gen::{random_vector, uniform_sparse};

pub fn run(ctx: &Ctx) -> Table {
    let m = ctx.sweep_rows();
    let mut t = Table::new(
        "fig2",
        "sparse X^T*y: fused kernel vs cuSPARSE (transpose + SpMV)",
        &[
            "n",
            "fused_ms",
            "cusparse_ms",
            "speedup",
            "fused_loads",
            "cusparse_loads",
            "loads_ratio",
            "amortize_iters",
        ],
    );
    t.note(format!(
        "m = {m} (paper: 500k, scale {}), sparsity 0.01; loads = 32B global sectors",
        ctx.scale
    ));
    t.note("paper: avg ~35x, up to 67x at small n; cuSPARSE ~3.5x more loads");

    for (i, n) in ctx.sparse_sweep_cols().into_iter().enumerate() {
        let x = uniform_sparse(m, n, 0.01, ctx.seed + i as u64);
        let xd = GpuCsr::upload(&ctx.gpu, "x", &x);
        let y = ctx.gpu.upload_f64("y", &random_vector(m, ctx.seed + 100));
        let w = ctx.gpu.alloc_f64("w", n);

        // Fused Algorithm 1.
        ctx.gpu.flush_caches();
        let mut ex = FusedExecutor::new(&ctx.gpu);
        ex.xt_y_sparse(1.0, &xd, &y, &w);
        let fused_ms = ex.total_sim_ms();
        let fused_loads: u64 = ex
            .launches
            .iter()
            .map(|l| l.counters.gld_transactions)
            .sum();

        // cuSPARSE path: transpose, then SpMV over X^T.
        ctx.gpu.flush_caches();
        let (xt, transpose_launches) = csr2csc_device(&ctx.gpu, &xd);
        let transpose_ms: f64 = transpose_launches.iter().map(|l| l.sim_ms()).sum();
        let spmv_stats = csrmv_t_pretransposed(&ctx.gpu, &xt, &y, &w);
        let spmv_xt_ms = spmv_stats.sim_ms();
        let cusparse_ms = transpose_ms + spmv_xt_ms;
        let mut cu_counters = Counters::new();
        for l in &transpose_launches {
            cu_counters.merge(&l.counters);
        }
        cu_counters.merge(&spmv_stats.counters);
        ctx.gpu.free(&xt.row_off);
        ctx.gpu.free(&xt.col_idx);
        ctx.gpu.free(&xt.values);

        // Amortization: transposing once then running the cheap SpMV
        // repeatedly beats the fused kernel only after this many products.
        let saving_per_product = fused_ms - spmv_xt_ms;
        let amortize = if saving_per_product > 1e-9 {
            format!("{:.0}", transpose_ms / saving_per_product)
        } else {
            "never".to_string()
        };

        t.row(vec![
            n.to_string(),
            fmt_ms(fused_ms),
            fmt_ms(cusparse_ms),
            fmt_x(cusparse_ms / fused_ms),
            fmt_count(fused_loads),
            fmt_count(cu_counters.gld_transactions),
            format!(
                "{:.2}",
                cu_counters.gld_transactions as f64 / fused_loads as f64
            ),
            amortize,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_holds_at_small_scale() {
        let ctx = Ctx::new(0.02); // 10k rows: fast smoke run
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 7);
        // Fused wins everywhere and cuSPARSE issues more loads.
        for row in &t.rows {
            let speedup: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.0, "n={} speedup {}", row[0], speedup);
            let ratio: f64 = row[6].parse().unwrap();
            assert!(ratio > 1.5, "n={} loads ratio {}", row[0], ratio);
        }
        // Average speedup in the paper's class (~35x at full scale; the
        // small-n decay shape only emerges at realistic row counts, so it
        // is asserted by the full-scale run in EXPERIMENTS.md, not here).
        let speedups: Vec<f64> = t
            .rows
            .iter()
            .map(|r| r[3].trim_end_matches('x').parse().unwrap())
            .collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!((4.0..150.0).contains(&avg), "average speedup {avg}");
    }
}
