//! Table 4 — the KDD 2010 regime: ultra-sparse input whose 30M-column
//! output forces the fused kernel's global-memory aggregation variant.
//! Execution time (ms) of the proposed kernels against the
//! cuBLAS/cuSPARSE composition for the three pattern instantiations.

use crate::experiments::Ctx;
use crate::table::{fmt_ms, fmt_x, Table};
use fusedml_blas::{BaselineEngine, Flavor, GpuCsr};
use fusedml_core::executor::FusedExecutor;
use fusedml_core::PatternSpec;
use fusedml_matrix::gen::{kdd2010_spec, random_vector};

pub fn run(ctx: &Ctx) -> Table {
    let spec = kdd2010_spec(ctx.scale);
    let x = spec.build_sparse(ctx.seed);
    let (m, n) = (x.rows(), x.cols());
    let xd = GpuCsr::upload(&ctx.gpu, "kdd", &x);

    let mut t = Table::new(
        "table4",
        "KDD2010-like ultra-sparse: execution time, proposed vs cuBLAS/cuSPARSE",
        &["pattern", "proposed_ms", "culibs_ms", "speedup"],
    );
    t.note(format!(
        "{m} x {n}, {} nnz — the real set is ~40x larger in every dimension \
         (scale {} of the 1/40 stand-in; see DESIGN.md)",
        x.nnz(),
        ctx.scale
    ));
    t.note("paper (full scale): 50.5 vs 5552.1 | 78.3 vs 5683.1 | 85.2 vs 5704.1 ms");

    // Row 1: X^T y.
    {
        let y = ctx.gpu.upload_f64("y", &random_vector(m, ctx.seed + 1));
        let w = ctx.gpu.alloc_f64("w", n);
        ctx.gpu.flush_caches();
        let mut ex = FusedExecutor::new(&ctx.gpu);
        ex.xt_y_sparse(1.0, &xd, &y, &w);
        let fused = ex.total_sim_ms();
        ctx.gpu.flush_caches();
        let mut cu = BaselineEngine::new(&ctx.gpu, Flavor::CuLibs);
        cu.csrmv_t(&xd, &y, &w);
        let base = cu.total_sim_ms();
        t.row(vec![
            "X^T x y".into(),
            fmt_ms(fused),
            fmt_ms(base),
            fmt_x(base / fused),
        ]);
    }

    // Rows 2-3: X^T(Xy) and the full pattern.
    for (label, pattern) in [
        ("X^T x (X x y)", PatternSpec::xtxy()),
        ("full pattern", PatternSpec::full(1.5, -0.5)),
    ] {
        let y = ctx.gpu.upload_f64("y", &random_vector(n, ctx.seed + 2));
        let v = pattern
            .with_v
            .then(|| ctx.gpu.upload_f64("v", &random_vector(m, ctx.seed + 3)));
        let z = pattern
            .with_z
            .then(|| ctx.gpu.upload_f64("z", &random_vector(n, ctx.seed + 4)));
        let w = ctx.gpu.alloc_f64("w", n);
        let p = ctx.gpu.alloc_f64("p", m);

        ctx.gpu.flush_caches();
        let mut ex = FusedExecutor::new(&ctx.gpu);
        ex.pattern_sparse(pattern, &xd, v.as_ref(), &y, z.as_ref(), &w);
        let fused = ex.total_sim_ms();
        // The plan must have chosen the global-aggregation variant.
        assert!(
            !ex.sparse_plan(&xd).use_shared_w,
            "KDD-like n={n} should exceed the shared-memory limit"
        );

        ctx.gpu.flush_caches();
        let mut cu = BaselineEngine::new(&ctx.gpu, Flavor::CuLibs);
        cu.pattern_sparse(
            pattern.alpha,
            &xd,
            v.as_ref(),
            &y,
            pattern.beta,
            z.as_ref(),
            &w,
            &p,
        );
        let base = cu.total_sim_ms();
        t.row(vec![
            label.into(),
            fmt_ms(fused),
            fmt_ms(base),
            fmt_x(base / fused),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kdd_regime_fused_wins_every_pattern() {
        let ctx = Ctx::new(0.05);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 3);
        let xty_speedup: f64 = t.rows[0][3].trim_end_matches('x').parse().unwrap();
        // The paper reports 110x here, dominated by closed-source cuSPARSE
        // behaviour it can only speculate about ("may be due to ... the
        // use of semaphores"); our mechanistic model reproduces the
        // direction and a material factor, not the black-box magnitude
        // (see EXPERIMENTS.md).
        assert!(xty_speedup > 1.5, "X^T y speedup only {xty_speedup}");
        let full_speedup: f64 = t.rows[2][3].trim_end_matches('x').parse().unwrap();
        assert!(full_speedup > 1.3, "full-pattern speedup {full_speedup}");
    }
}
