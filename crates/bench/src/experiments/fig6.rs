//! Figure 6 — the launch-parameter space: sweep `BS x C` (with `VS` fixed
//! at the Equation-4 choice) for `X^T(Xy)` on the 500k x 1k sparse matrix,
//! and place the analytical model's pick inside the distribution. The paper
//! finds the model within 2% of the optimum and inside the best 1% of all
//! configurations.

use crate::experiments::Ctx;
use crate::table::{fmt_ms, Table};
use fusedml_blas::GpuCsr;
use fusedml_core::executor::FusedExecutor;
use fusedml_core::tuner::manual_sparse_plan;
use fusedml_core::{plan_sparse, PatternSpec};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use serde::Serialize;

/// One evaluated configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    pub bs: usize,
    pub c: usize,
    pub grid: usize,
    pub occupancy: f64,
    pub sim_ms: f64,
    pub is_model_choice: bool,
}

/// Run the sweep; returns all points sorted fastest-first plus the model's
/// own timing.
pub fn sweep(ctx: &Ctx, m: usize, n: usize) -> (Vec<SweepPoint>, SweepPoint) {
    let x = uniform_sparse(m, n, 0.01, ctx.seed);
    let xd = GpuCsr::upload(&ctx.gpu, "x", &x);
    let y = ctx.gpu.upload_f64("y", &random_vector(n, ctx.seed + 1));
    let w = ctx.gpu.alloc_f64("w", n);
    let spec_pattern = PatternSpec::xtxy();

    let model_plan = plan_sparse(ctx.gpu.spec(), m, n, x.mean_nnz_per_row());
    let vs = model_plan.vs;

    // C candidates around the model's choice (paper: "set to possible
    // numbers around what our model selects"), log-spaced.
    let c_model = model_plan.c;
    let c_candidates: Vec<usize> = [
        c_model / 16,
        c_model / 8,
        c_model / 4,
        c_model / 2,
        (c_model * 3) / 4,
        c_model,
        (c_model * 3) / 2,
        c_model * 2,
        c_model * 4,
        c_model * 8,
        c_model * 16,
        c_model * 64,
    ]
    .iter()
    .map(|&c| c.max(1))
    .collect();

    let mut points = Vec::new();
    for bs_mult in 1..=32 {
        let bs = 32 * bs_mult;
        for &c in &c_candidates {
            let Some(plan) = manual_sparse_plan(ctx.gpu.spec(), m, n, vs, bs, c) else {
                continue;
            };
            ctx.gpu.flush_caches();
            let mut ex = FusedExecutor::new(&ctx.gpu);
            ex.pattern_sparse_with_plan(&plan, spec_pattern, &xd, None, &y, None, &w);
            points.push(SweepPoint {
                bs,
                c,
                grid: plan.grid,
                occupancy: plan.occupancy.occupancy,
                sim_ms: ex.total_sim_ms(),
                is_model_choice: false,
            });
        }
    }

    ctx.gpu.flush_caches();
    let mut ex = FusedExecutor::new(&ctx.gpu);
    ex.pattern_sparse_with_plan(&model_plan, spec_pattern, &xd, None, &y, None, &w);
    let model_point = SweepPoint {
        bs: model_plan.bs,
        c: model_plan.c,
        grid: model_plan.grid,
        occupancy: model_plan.occupancy.occupancy,
        sim_ms: ex.total_sim_ms(),
        is_model_choice: true,
    };

    points.sort_by(|a, b| a.sim_ms.total_cmp(&b.sim_ms));
    (points, model_point)
}

pub fn run(ctx: &Ctx) -> Table {
    let m = ctx.sweep_rows();
    let n = 1000;
    let (points, model) = sweep(ctx, m, n);
    let best = &points[0];
    let Some(worst) = points.last() else {
        panic!("non-empty sweep")
    };
    let rank = points.iter().filter(|p| p.sim_ms < model.sim_ms).count();
    let percentile = 100.0 * rank as f64 / points.len() as f64;

    let mut t = Table::new(
        "fig6",
        "launch-parameter sweep (VS fixed by Eq. 4) vs the analytical model's choice",
        &["config", "BS", "C", "grid", "occupancy", "sim_ms"],
    );
    t.note(format!(
        "{} configurations swept on a {m} x {n} sparse matrix (sparsity 0.01)",
        points.len()
    ));
    for (label, p) in [
        ("best", best),
        ("model", &model),
        ("median", &points[points.len() / 2]),
        ("worst", worst),
    ] {
        t.row(vec![
            label.to_string(),
            p.bs.to_string(),
            p.c.to_string(),
            p.grid.to_string(),
            format!("{:.2}", p.occupancy),
            fmt_ms(p.sim_ms),
        ]);
    }
    t.note(format!(
        "model is {:.1}% slower than the sweep optimum and ranks in the best {:.1}% \
         of configurations (paper: <2% off optimum, best 1%)",
        100.0 * (model.sim_ms / best.sim_ms - 1.0),
        percentile.max(100.0 / points.len() as f64)
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_choice_is_near_optimal() {
        let ctx = Ctx::new(0.02);
        let (points, model) = sweep(&ctx, 10_000, 512);
        assert!(points.len() > 100, "sweep too small: {}", points.len());
        let best = points[0].sim_ms;
        let worst = points.last().unwrap().sim_ms;
        assert!(worst > 1.5 * best, "sweep has no spread: {best}..{worst}");
        // Model within 25% of optimum and in the top quartile at this
        // reduced scale (paper achieves 2% / top 1% at full scale).
        assert!(
            model.sim_ms < 1.25 * best,
            "model {} vs best {best}",
            model.sim_ms
        );
        let rank = points.iter().filter(|p| p.sim_ms < model.sim_ms).count();
        assert!(
            (rank as f64) < 0.25 * points.len() as f64,
            "model rank {rank}/{}",
            points.len()
        );
    }
}
