//! Table 6 — LR-CG inside the SystemML-like runtime: total GPU-vs-CPU
//! speedup shrinks to low single digits once JNI copies, sparse-row → CSR
//! conversion, per-instruction dispatch and scalar readbacks are charged,
//! even though the fused kernel itself remains several times faster than
//! the operator composition ("Fused Kernel Speedup").

use crate::experiments::table5::{higgs_dataset, kdd_dataset};
use crate::experiments::Ctx;
use crate::table::{fmt_ms, fmt_x, Table};
use fusedml_runtime::session::{
    run_cpu_extrapolated, run_device_extrapolated, EngineKind, SessionConfig,
};

pub fn run(ctx: &Ctx) -> Table {
    let mut t = Table::new(
        "table6",
        "GPU-enabled SystemML-like runtime vs its CPU backend (LR-CG)",
        &[
            "data_set",
            "iters",
            "cpu_ms",
            "gpu_total_ms",
            "total_speedup",
            "fused_kernel_speedup",
            "overhead_share_%",
        ],
    );
    t.note("paper: total 1.2x (HIGGS) / 1.9x (KDD); fused-kernel-only 11.2x / 4.1x");
    t.note("overhead_share = (transfer + conversion + dispatch + readback) / gpu_total");

    let cases = [
        ("HIGGS-like (dense)", higgs_dataset(ctx), 32usize),
        ("KDD2010-like (sparse)", kdd_dataset(ctx), 100usize),
    ];

    for (name, (data, labels), iters) in cases {
        let cpu_ms = run_cpu_extrapolated(&data, &labels, iters, 3);

        ctx.gpu.flush_caches();
        let fused = run_device_extrapolated(
            &ctx.gpu,
            &data,
            &labels,
            &SessionConfig::systemml(EngineKind::Fused, iters),
            3,
        );
        ctx.gpu.flush_caches();
        let base = run_device_extrapolated(
            &ctx.gpu,
            &data,
            &labels,
            &SessionConfig::systemml(EngineKind::Baseline, iters),
            3,
        );

        let overhead = fused.transfer_ms + fused.readback_ms + fused.dispatch_ms;
        t.row(vec![
            name.to_string(),
            iters.to_string(),
            fmt_ms(cpu_ms),
            fmt_ms(fused.total_ms),
            fmt_x(cpu_ms / fused.total_ms),
            // "the overall speedup from the fused kernel alone": CPU time
            // against just the kernel portion of the integrated run.
            fmt_x(cpu_ms / fused.kernel_ms),
            format!("{:.0}", 100.0 * overhead / fused.total_ms),
        ]);
        let _ = &base; // baseline retained for the launch-count context
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integration_overheads_shrink_total_speedup() {
        let ctx = Ctx::new(0.02);
        let t = run(&ctx);
        for row in &t.rows {
            let total: f64 = row[4].trim_end_matches('x').parse().unwrap();
            let kernel: f64 = row[5].trim_end_matches('x').parse().unwrap();
            // The paper's headline observation: kernel-level speedup far
            // exceeds the end-to-end integrated speedup.
            assert!(
                kernel > 1.5 * total,
                "{}: kernel {kernel}x vs total {total}x",
                row[0]
            );
            assert!(kernel > 1.5, "{}: fused kernel speedup {kernel}", row[0]);
        }
    }
}
