//! Extension experiment (not in the paper): storage-format choice for the
//! fused kernel — CSR (the paper's format) vs ELLPACK vs HYB — on uniform
//! and power-law row-length distributions.
//!
//! Expected shape: on uniform rows, ELL matches or beats CSR (perfect
//! coalescing, no intra-vector reductions, zero padding); on power-law
//! rows, ELL's padding explodes its traffic and CSR wins decisively, with
//! HYB's bounded-width ELL part in between.

use crate::experiments::Ctx;
use crate::table::{fmt_ms, Table};
use fusedml_blas::ellmv::{GpuEll, GpuHyb};
use fusedml_blas::{hybmv, GpuCsr};
use fusedml_core::ell_fused::{fused_pattern_ell, plan_ell};
use fusedml_core::executor::FusedExecutor;
use fusedml_core::PatternSpec;
use fusedml_gpu_sim::Gpu;
use fusedml_matrix::gen::{powerlaw_sparse, random_vector, uniform_sparse};
use fusedml_matrix::{CsrMatrix, EllMatrix, HybMatrix};

struct FormatPoint {
    csr_fused_ms: f64,
    ell_fused_ms: f64,
    hyb_spmv_ms: f64,
    ell_padding: f64,
    hyb_overflow: f64,
}

fn measure(gpu: &Gpu, x: &CsrMatrix, seed: u64) -> FormatPoint {
    let (m, n) = (x.rows(), x.cols());
    let y = random_vector(n, seed);
    let yd = gpu.upload_f64("y", &y);
    let wd = gpu.alloc_f64("w", n);
    let spec = PatternSpec::xtxy();

    // CSR fused (the paper's kernel).
    let xd = GpuCsr::upload(gpu, "csr", x);
    gpu.flush_caches();
    let mut ex = FusedExecutor::new(gpu);
    ex.pattern_sparse(spec, &xd, None, &yd, None, &wd);
    let csr_fused_ms = ex.total_sim_ms();

    // ELL fused (extension kernel).
    let ell = EllMatrix::from_csr(x);
    let eld = GpuEll::upload(gpu, "ell", &ell);
    gpu.flush_caches();
    let plan = plan_ell(gpu, m, n);
    fusedml_blas::level1::fill(gpu, &wd, 0.0);
    let s = fused_pattern_ell(gpu, &plan, spec, &eld, None, &yd, None, &wd);
    let ell_fused_ms = s.sim_ms();

    // HYB SpMV (the X*y half only — HYB has no transposed-scan fusion, its
    // COO tail cannot be rescanned cheaply; reported for SpMV context).
    let k = HybMatrix::suggested_width(x, 1.0 / 3.0);
    let hyb = HybMatrix::from_csr(x, k);
    let hd = GpuHyb::upload(gpu, "hyb", &hyb);
    let pd = gpu.alloc_f64("p", m);
    gpu.flush_caches();
    let hyb_spmv_ms: f64 = hybmv(gpu, &hd, &yd, &pd).iter().map(|l| l.sim_ms()).sum();

    FormatPoint {
        csr_fused_ms,
        ell_fused_ms,
        hyb_spmv_ms,
        ell_padding: ell.padding_ratio(),
        hyb_overflow: hyb.overflow_ratio(),
    }
}

pub fn run(ctx: &Ctx) -> Table {
    let m = ctx.sweep_rows() / 2;
    let n = 1024;
    let mut t = Table::new(
        "ext_ell",
        "EXTENSION: fused-kernel storage formats (CSR vs ELL vs HYB)",
        &[
            "distribution",
            "csr_fused_ms",
            "ell_fused_ms",
            "ell/csr",
            "ell_padding",
            "hyb_spmv_ms",
            "hyb_overflow",
        ],
    );
    t.note(format!(
        "m = {m}, n = {n}; pattern X^T(Xy); not a paper artifact"
    ));

    let uniform = uniform_sparse(m, n, 0.01, ctx.seed);
    let skewed = powerlaw_sparse(m, n, 10.0, 0.8, ctx.seed + 1);
    for (name, x) in [("uniform", &uniform), ("power-law", &skewed)] {
        let p = measure(&ctx.gpu, x, ctx.seed + 2);
        t.row(vec![
            name.to_string(),
            fmt_ms(p.csr_fused_ms),
            fmt_ms(p.ell_fused_ms),
            format!("{:.2}", p.ell_fused_ms / p.csr_fused_ms),
            format!("{:.2}", p.ell_padding),
            fmt_ms(p.hyb_spmv_ms),
            format!("{:.2}", p.hyb_overflow),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_tradeoff_shape() {
        let ctx = Ctx::new(0.05);
        let gpu = &ctx.gpu;
        let m = 8000;
        let uniform = uniform_sparse(m, 512, 0.02, 61);
        let skewed = powerlaw_sparse(m, 512, 10.0, 0.8, 62);

        let u = measure(gpu, &uniform, 63);
        let s = measure(gpu, &skewed, 64);

        // Uniform rows: no padding, ELL competitive (within 2x of CSR).
        assert!(u.ell_padding < 0.01, "uniform padding {}", u.ell_padding);
        assert!(
            u.ell_fused_ms < 2.0 * u.csr_fused_ms,
            "uniform: ell {} vs csr {}",
            u.ell_fused_ms,
            u.csr_fused_ms
        );

        // Skewed rows: padding blows up and CSR wins by more than the
        // uniform gap.
        assert!(s.ell_padding > 0.3, "skewed padding {}", s.ell_padding);
        let uniform_gap = u.ell_fused_ms / u.csr_fused_ms;
        let skewed_gap = s.ell_fused_ms / s.csr_fused_ms;
        assert!(
            skewed_gap > uniform_gap,
            "skew should hurt ELL: {skewed_gap} vs {uniform_gap}"
        );
        // HYB bounds the damage relative to full-width ELL traffic.
        assert!(s.hyb_overflow > 0.0 && s.hyb_overflow < 1.0);
    }
}
