//! # fusedml-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the artifact on the simulated device at a
//! configurable workload scale, plus the `repro` CLI, the `fusedml-bench`
//! continuous-benchmarking CLI (see [`regress`]), and Criterion benches.

pub mod experiments;
pub mod regress;
pub mod table;

pub use experiments::Ctx;
pub use table::Table;
