//! # fusedml-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, each regenerating the artifact on the simulated device at a
//! configurable workload scale, plus the `repro` CLI, the `fusedml-bench`
//! continuous-benchmarking CLI (see [`regress`]), and Criterion benches.

// The harness feeds CI gates: failures must carry a typed or explicitly
// worded panic message, never a bare unwrap/expect. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod experiments;
pub mod regress;
pub mod table;

pub use experiments::Ctx;
pub use table::Table;
