//! `fusedml-bench stream` — the copy-engine streaming benchmark and its
//! CI regression gate.
//!
//! For each streaming workload the bench runs the same multi-pass
//! chunked pattern job under a ladder of configurations ("legs"):
//!
//! * `serial` — depth 1, no residency: every chunk transfer completes
//!   before its kernel starts. The pipeline model must collapse to the
//!   serial model here, and CI checks that it does.
//! * `double_buffer` — depth 2, no residency: the legacy
//!   `max(transfer, prev_kernel)` regime, kept as the comparison point.
//! * `pipeline3_resident` — depth 3 over two copy-engine queues with a
//!   residency budget covering the whole matrix: after the cold pass,
//!   chunks are served from device memory. This leg must *strictly*
//!   lower both the modeled wall and the H2D byte traffic relative to
//!   `double_buffer` — that gap is the point of the whole subsystem,
//!   and [`stream_invariants`] fails the run if it ever closes.
//! * `auto_resident` — the cost-model search picks chunk size and depth
//!   (memoized under the plan cache's streaming key), with the same
//!   residency budget. Informative and gated like any other leg.
//!
//! Every metric in the report is modeled (simulated device time, copy
//! engine counters), so the dump is deterministic for a fixed
//! fingerprint; [`stream_regressions`] diffs a candidate against the
//! committed baseline with the same noise-aware relative tolerances the
//! main bench gate uses. Legacy reports that predate the pipeline
//! fields (`depth`, `bubble_ms`, `residency_hits`, ...) still load: the
//! reader applies the double-buffer defaults, mirroring the serde
//! defaults on the runtime's `StreamReport`.

use super::json::Json;
use super::suite::SuiteOptions;
use fusedml_core::PatternSpec;
use fusedml_gpu_sim::Gpu;
use fusedml_matrix::gen::{powerlaw_sparse, random_vector, uniform_sparse};
use fusedml_matrix::CsrMatrix;
use fusedml_runtime::{SparseStreamer, StreamConfig, TransferModel};

/// Bumped when the report's structure changes incompatibly.
pub const STREAM_SCHEMA_VERSION: u64 = 1;

/// Solver passes per leg. Pass 0 streams cold; the rest replay the same
/// access pattern, which is what gives residency something to serve.
pub const STREAM_DEFAULT_PASSES: usize = 3;

/// Gate tolerances: relative *increases* beyond these fail the compare.
/// Decreases never fail (an improvement re-baselines on merge).
#[derive(Debug, Clone, Copy)]
pub struct StreamGateOptions {
    /// Modeled pipeline wall (simulated ms).
    pub wall_tol: f64,
    /// Deterministic copy-engine counters (H2D bytes).
    pub counter_tol: f64,
}

impl Default for StreamGateOptions {
    fn default() -> Self {
        StreamGateOptions {
            wall_tol: 0.02,
            counter_tol: 0.02,
        }
    }
}

/// One streaming workload: a synthetic matrix plus the fixed chunking
/// shared by the non-auto legs so their schedules are comparable.
struct StreamWorkload {
    id: String,
    x: CsrMatrix,
    rows_per_chunk: usize,
}

fn workloads(opts: &SuiteOptions) -> Vec<StreamWorkload> {
    let scaled = |base: usize| ((base as f64 * opts.scale).round() as usize).max(64);
    let mut specs: Vec<(&str, usize, usize, bool)> = vec![
        ("uniform", scaled(6_000), 512, false),
        ("powerlaw", scaled(6_000), 512, true),
    ];
    if opts.mode == super::suite::Mode::Full {
        specs.push(("uniform", scaled(20_000), 1024, false));
    }
    specs
        .into_iter()
        .map(|(dist, rows, cols, powerlaw)| {
            let x = if powerlaw {
                powerlaw_sparse(rows, cols, 10.0, 0.8, opts.seed)
            } else {
                uniform_sparse(rows, cols, 0.01, opts.seed)
            };
            StreamWorkload {
                id: format!("stream/{dist}/{rows}x{cols}"),
                x,
                // Eight chunks: enough in flight for depth 3 over two
                // queues to pipeline, small enough to stay quick.
                rows_per_chunk: rows.div_ceil(8),
            }
        })
        .collect()
}

/// The configuration ladder for one workload.
fn legs(rows_per_chunk: usize, matrix_bytes: u64) -> Vec<(&'static str, StreamConfig)> {
    vec![
        ("serial", StreamConfig::fixed(rows_per_chunk, 1)),
        ("double_buffer", StreamConfig::fixed(rows_per_chunk, 2)),
        (
            "pipeline3_resident",
            StreamConfig::fixed(rows_per_chunk, 3)
                .with_queues(2)
                .with_residency(matrix_bytes),
        ),
        (
            "auto_resident",
            StreamConfig::auto().with_residency(matrix_bytes),
        ),
    ]
}

/// Run one leg on a fresh device. A shared device would let the
/// simulator's warm-across-launches L2 model leak one leg's cache state
/// into the next, making kernel costs depend on leg order.
fn run_leg(
    opts: &SuiteOptions,
    wl: &StreamWorkload,
    name: &str,
    cfg: StreamConfig,
    passes: usize,
) -> Result<Json, String> {
    let gpu = Gpu::new(opts.device.clone());
    let mut s = SparseStreamer::try_new(&gpu, &wl.x, TransferModel::native(), cfg)
        .map_err(|e| format!("{}/{name}: {e}", wl.id))?;
    let y = random_vector(wl.x.cols(), opts.seed ^ 0x57EA);

    let (mut wall, mut serial, mut kernel, mut transfer, mut bubble) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for _ in 0..passes {
        let mut w = vec![0.0; wl.x.cols()];
        let r = s
            .try_pattern_host(PatternSpec::xtxy(), None, &y, None, &mut w)
            .map_err(|e| format!("{}/{name}: {e}", wl.id))?;
        wall += r.overlapped_ms;
        serial += r.serial_ms;
        kernel += r.kernel_ms;
        transfer += r.transfer_ms;
        bubble += r.bubble_ms;
    }

    let copy = s.copy_stats();
    let chunks = s.chunk_count();
    let hits = s.residency_hits_total();
    let hit_rate = hits as f64 / (passes * chunks) as f64;
    Ok(Json::obj(vec![
        ("name", Json::str(name)),
        ("depth", Json::u64(s.depth() as u64)),
        ("queues", Json::u64(cfg.queues as u64)),
        ("rows_per_chunk", Json::u64(s.rows_per_chunk() as u64)),
        ("chunks", Json::u64(chunks as u64)),
        ("resident_bytes_cap", Json::u64(cfg.resident_bytes_cap)),
        ("modeled_wall_ms", Json::num(wall)),
        ("serial_ms", Json::num(serial)),
        ("kernel_ms", Json::num(kernel)),
        ("transfer_ms", Json::num(transfer)),
        ("bubble_ms", Json::num(bubble)),
        ("h2d_bytes", Json::u64(copy.bytes)),
        ("h2d_transfers", Json::u64(copy.transfers)),
        ("residency_hits", Json::u64(hits)),
        ("residency_hit_rate", Json::num(hit_rate)),
        ("launches", Json::u64(s.launch_count() as u64)),
    ]))
}

/// Run the streaming matrix and assemble the schema-versioned report.
/// Everything in it is modeled, so two runs of one fingerprint are
/// byte-identical.
pub fn stream_report(opts: &SuiteOptions, passes: usize) -> Result<Json, String> {
    if passes < 2 {
        return Err("stream bench needs at least 2 passes (one cold, one warm)".to_string());
    }
    let mut out = Vec::new();
    for wl in workloads(opts) {
        let bytes = wl.x.size_bytes();
        let mut leg_docs = Vec::new();
        for (name, cfg) in legs(wl.rows_per_chunk, bytes) {
            leg_docs.push(run_leg(opts, &wl, name, cfg, passes)?);
        }
        out.push(Json::obj(vec![
            ("id", Json::str(wl.id.clone())),
            ("rows", Json::u64(wl.x.rows() as u64)),
            ("cols", Json::u64(wl.x.cols() as u64)),
            ("nnz", Json::u64(wl.x.nnz() as u64)),
            ("matrix_bytes", Json::u64(bytes)),
            ("legs", Json::Arr(leg_docs)),
        ]));
    }
    Ok(Json::obj(vec![
        ("schema_version", Json::u64(STREAM_SCHEMA_VERSION)),
        ("fingerprint", opts.fingerprint().to_json()),
        ("passes", Json::u64(passes as u64)),
        ("workloads", Json::Arr(out)),
    ]))
}

/// The modeled metrics of one leg, read with legacy defaults: reports
/// written before the pipeline fields existed describe the
/// double-buffer regime, so a missing `depth` reads as 2 and the
/// missing residency/bubble counters read as zero — the same defaults
/// the runtime's `StreamReport` deserializer applies.
struct LegMetrics {
    depth: u64,
    wall: f64,
    serial: f64,
    bytes: u64,
    bubble: f64,
    hits: u64,
}

fn leg_metrics(leg: &Json) -> Result<LegMetrics, String> {
    Ok(LegMetrics {
        depth: leg.field_u64("depth").unwrap_or(2),
        wall: leg.field_f64("modeled_wall_ms")?,
        serial: leg.field_f64("serial_ms")?,
        bytes: leg.field_u64("h2d_bytes")?,
        bubble: leg.field_f64("bubble_ms").unwrap_or(0.0),
        hits: leg.field_u64("residency_hits").unwrap_or(0),
    })
}

fn find_leg<'a>(wl: &'a Json, name: &str) -> Option<&'a Json> {
    wl.get("legs")?
        .as_arr()?
        .iter()
        .find(|l| l.get("name").and_then(Json::as_str) == Some(name))
}

/// The model-level guarantees CI holds every run to, baseline or not:
/// the depth-1 leg must match the serial model, and the pipelined
/// residency leg must strictly beat double-buffer re-streaming on both
/// modeled wall and H2D traffic. Returns one message per violation.
pub fn stream_invariants(report: &Json) -> Vec<String> {
    let mut bad = Vec::new();
    let Some(wls) = report.get("workloads").and_then(Json::as_arr) else {
        return vec!["report has no workloads array".to_string()];
    };
    for wl in wls {
        let id = wl.field_str("id").unwrap_or("?").to_string();
        let get = |name: &str| -> Result<LegMetrics, String> {
            find_leg(wl, name)
                .ok_or_else(|| format!("{id}: missing leg '{name}'"))
                .and_then(leg_metrics)
        };
        let (serial, double, pipe) = match (
            get("serial"),
            get("double_buffer"),
            get("pipeline3_resident"),
        ) {
            (Ok(s), Ok(d), Ok(p)) => (s, d, p),
            (s, d, p) => {
                for r in [s, d, p] {
                    if let Err(e) = r {
                        bad.push(e);
                    }
                }
                continue;
            }
        };
        if serial.depth != 1 || (serial.wall - serial.serial).abs() > 1e-9 * serial.serial.max(1.0)
        {
            bad.push(format!(
                "{id}: depth-1 leg diverges from the serial model ({} vs {})",
                serial.wall, serial.serial
            ));
        }
        if pipe.wall >= double.wall {
            bad.push(format!(
                "{id}: pipelined residency wall {} does not beat double-buffer {}",
                pipe.wall, double.wall
            ));
        }
        if pipe.bytes >= double.bytes {
            bad.push(format!(
                "{id}: pipelined residency moved {} H2D bytes, double-buffer {}",
                pipe.bytes, double.bytes
            ));
        }
        if pipe.hits == 0 {
            bad.push(format!(
                "{id}: residency leg never hit device-resident data"
            ));
        }
        if double.bubble < 0.0 || pipe.bubble < 0.0 {
            bad.push(format!("{id}: negative pipeline bubble time"));
        }
    }
    bad
}

fn rel_increase(base: f64, cand: f64) -> f64 {
    if base <= 0.0 {
        if cand > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (cand - base) / base
    }
}

/// Diff a candidate report against the committed baseline. Returns one
/// message per regression; empty means the gate passes. Structural
/// mismatches (schema, fingerprint, lost workloads or legs) are
/// regressions — a gate that silently compares different configurations
/// gates nothing.
pub fn stream_regressions(
    baseline: &Json,
    candidate: &Json,
    gate: &StreamGateOptions,
) -> Vec<String> {
    let mut bad = Vec::new();
    let (bv, cv) = (
        baseline.field_u64("schema_version").unwrap_or(0),
        candidate.field_u64("schema_version").unwrap_or(0),
    );
    if bv != cv {
        bad.push(format!("schema_version: baseline {bv} != candidate {cv}"));
        return bad;
    }
    match (
        baseline.field("fingerprint"),
        candidate.field("fingerprint"),
    ) {
        (Ok(b), Ok(c)) if b == c => {}
        (Ok(b), Ok(c)) => bad.push(format!(
            "fingerprint mismatch: baseline {} vs candidate {} — regenerate the baseline \
             instead of comparing different configurations",
            b.render().trim(),
            c.render().trim()
        )),
        _ => bad.push("a report is missing its fingerprint".to_string()),
    }
    let (bp, cp) = (
        baseline.field_u64("passes").unwrap_or(0),
        candidate.field_u64("passes").unwrap_or(0),
    );
    if bp != cp {
        bad.push(format!("passes: baseline {bp} != candidate {cp}"));
    }

    let empty = Vec::new();
    let b_wls = baseline
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let c_wls = candidate
        .get("workloads")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for bw in b_wls {
        let id = bw.field_str("id").unwrap_or("?");
        let Some(cw) = c_wls
            .iter()
            .find(|w| w.get("id").and_then(Json::as_str) == Some(id))
        else {
            bad.push(format!("{id}: workload missing from candidate"));
            continue;
        };
        let b_legs = bw.get("legs").and_then(Json::as_arr).unwrap_or(&empty);
        for bl in b_legs {
            let name = bl.get("name").and_then(Json::as_str).unwrap_or("?");
            let Some(cl) = find_leg(cw, name) else {
                bad.push(format!("{id}/{name}: leg missing from candidate"));
                continue;
            };
            let (bm, cm) = match (leg_metrics(bl), leg_metrics(cl)) {
                (Ok(b), Ok(c)) => (b, c),
                (b, c) => {
                    for r in [b, c] {
                        if let Err(e) = r {
                            bad.push(format!("{id}/{name}: {e}"));
                        }
                    }
                    continue;
                }
            };
            let wall_up = rel_increase(bm.wall, cm.wall);
            if wall_up > gate.wall_tol {
                bad.push(format!(
                    "{id}/{name}: modeled wall regressed {:.1}% ({} -> {})",
                    wall_up * 100.0,
                    bm.wall,
                    cm.wall
                ));
            }
            let bytes_up = rel_increase(bm.bytes as f64, cm.bytes as f64);
            if bytes_up > gate.counter_tol {
                bad.push(format!(
                    "{id}/{name}: H2D bytes regressed {:.1}% ({} -> {})",
                    bytes_up * 100.0,
                    bm.bytes,
                    cm.bytes
                ));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> SuiteOptions {
        let mut opts = SuiteOptions::quick();
        // ~600 rows keeps the three-pass ladder fast while leaving eight
        // real chunks per workload.
        opts.scale = 0.1;
        opts
    }

    #[test]
    fn report_is_deterministic_and_passes_its_own_invariants() {
        let opts = tiny_opts();
        let a = stream_report(&opts, STREAM_DEFAULT_PASSES).unwrap();
        let b = stream_report(&opts, STREAM_DEFAULT_PASSES).unwrap();
        assert_eq!(
            a.render(),
            b.render(),
            "stream report must be deterministic"
        );
        assert_eq!(stream_invariants(&a), Vec::<String>::new());

        // The report round-trips through the zero-dependency parser.
        assert_eq!(Json::parse(&a.render()).unwrap(), a);

        // Spot-check the headline gap on every workload: the residency
        // leg re-uses the matrix instead of re-streaming it each pass.
        for wl in a.field("workloads").unwrap().as_arr().unwrap() {
            let double = leg_metrics(find_leg(wl, "double_buffer").unwrap()).unwrap();
            let pipe = leg_metrics(find_leg(wl, "pipeline3_resident").unwrap()).unwrap();
            let matrix_bytes = wl.field_u64("matrix_bytes").unwrap();
            assert!(
                pipe.bytes < matrix_bytes * 2,
                "residency leg must stream the matrix roughly once, moved {} of {}",
                pipe.bytes,
                matrix_bytes
            );
            assert!(
                double.bytes > matrix_bytes * 2,
                "double-buffer must re-stream"
            );
        }
        assert_eq!(
            stream_regressions(&a, &b, &StreamGateOptions::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn gate_flags_wall_and_byte_regressions_and_structural_drift() {
        let opts = tiny_opts();
        let base = stream_report(&opts, 2).unwrap();
        let gate = StreamGateOptions::default();

        // Inflate the first workload's first leg by 10% wall and bytes.
        let mut cand = base.clone();
        if let Json::Obj(m) = &mut cand {
            if let Some(Json::Arr(wls)) = m.get_mut("workloads") {
                if let Some(Json::Obj(w)) = wls.first_mut() {
                    if let Some(Json::Arr(legs)) = w.get_mut("legs") {
                        if let Some(Json::Obj(leg)) = legs.first_mut() {
                            let wall = leg["modeled_wall_ms"].as_f64().unwrap();
                            leg.insert("modeled_wall_ms".into(), Json::num(wall * 1.10));
                            let bytes = leg["h2d_bytes"].as_u64().unwrap();
                            leg.insert("h2d_bytes".into(), Json::u64(bytes + bytes / 10));
                        }
                    }
                    // And drop the last leg entirely.
                    if let Some(Json::Arr(legs)) = w.get_mut("legs") {
                        legs.pop();
                    }
                }
            }
        }
        let bad = stream_regressions(&base, &cand, &gate);
        assert!(
            bad.iter().any(|b| b.contains("modeled wall regressed")),
            "{bad:?}"
        );
        assert!(
            bad.iter().any(|b| b.contains("H2D bytes regressed")),
            "{bad:?}"
        );
        assert!(bad.iter().any(|b| b.contains("leg missing")), "{bad:?}");

        // Improvements never fail: swap roles so the candidate is faster.
        assert!(stream_regressions(&cand, &base, &gate)
            .iter()
            .all(|b| b.contains("leg missing") || b.contains("not in")));
    }

    #[test]
    fn legacy_double_buffer_report_reads_with_defaults() {
        // A report leg written before the pipeline fields existed: no
        // depth, no bubble, no residency counters. It must read as the
        // double-buffer regime, and gating it against a modern candidate
        // must work on the shared fields.
        let legacy_leg = Json::obj(vec![
            ("name", Json::str("double_buffer")),
            ("modeled_wall_ms", Json::num(4.0)),
            ("serial_ms", Json::num(6.0)),
            ("h2d_bytes", Json::u64(1_000_000)),
        ]);
        let m = leg_metrics(&legacy_leg).unwrap();
        assert_eq!(m.depth, 2);
        assert_eq!(m.bubble, 0.0);
        assert_eq!(m.hits, 0);

        let wrap = |leg: Json| {
            Json::obj(vec![
                ("schema_version", Json::u64(STREAM_SCHEMA_VERSION)),
                ("fingerprint", Json::obj(vec![("device", Json::str("d"))])),
                ("passes", Json::u64(2)),
                (
                    "workloads",
                    Json::Arr(vec![Json::obj(vec![
                        ("id", Json::str("stream/legacy/1x1")),
                        ("legs", Json::Arr(vec![leg])),
                    ])]),
                ),
            ])
        };
        let legacy = wrap(legacy_leg);
        let modern_leg = Json::obj(vec![
            ("name", Json::str("double_buffer")),
            ("depth", Json::u64(2)),
            ("modeled_wall_ms", Json::num(4.4)),
            ("serial_ms", Json::num(6.0)),
            ("bubble_ms", Json::num(0.5)),
            ("h2d_bytes", Json::u64(1_000_000)),
            ("residency_hits", Json::u64(0)),
        ]);
        let modern = wrap(modern_leg);
        let bad = stream_regressions(&legacy, &modern, &StreamGateOptions::default());
        assert!(
            bad.iter().any(|b| b.contains("modeled wall regressed")),
            "legacy baseline must still gate the shared metrics: {bad:?}"
        );
    }

    #[test]
    fn invariants_catch_a_cooked_report() {
        let opts = tiny_opts();
        let mut report = stream_report(&opts, 2).unwrap();
        if let Json::Obj(m) = &mut report {
            if let Some(Json::Arr(wls)) = m.get_mut("workloads") {
                if let Some(Json::Obj(w)) = wls.first_mut() {
                    if let Some(Json::Arr(legs)) = w.get_mut("legs") {
                        for leg in legs.iter_mut() {
                            if leg.get("name").and_then(Json::as_str) == Some("pipeline3_resident")
                            {
                                if let Json::Obj(l) = leg {
                                    l.insert("modeled_wall_ms".into(), Json::num(1e9));
                                    l.insert("residency_hits".into(), Json::u64(0));
                                }
                            }
                        }
                    }
                }
            }
        }
        let bad = stream_invariants(&report);
        assert!(bad.iter().any(|b| b.contains("does not beat")), "{bad:?}");
        assert!(bad.iter().any(|b| b.contains("never hit")), "{bad:?}");
    }
}
