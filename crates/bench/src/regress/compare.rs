//! Diff two `BENCH_fusion.json` reports and decide whether the candidate
//! regressed — the gate `fusedml-bench compare` (and the CI bench job)
//! runs.
//!
//! Two threshold families, matching the report's two metric classes:
//! modeled metrics (simulated time, traffic, counters) are deterministic
//! and get tight tolerances; host wall-clock is machine-dependent and gets
//! a loose tolerance or is skipped entirely (cross-machine compares).

use super::report::{BenchReport, VariantMetrics};

/// Noise thresholds, all as relative fractions (0.02 = 2%).
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Tolerated relative increase in modeled milliseconds / cycles.
    pub modeled_tol: f64,
    /// Tolerated relative increase in deterministic event counters
    /// (DRAM bytes, transactions, global atomics, launches).
    pub counter_tol: f64,
    /// Tolerated relative decrease in fused-over-baseline speedup.
    pub speedup_tol: f64,
    /// Tolerated relative increase in host wall-clock (loose: scheduler
    /// noise, CPU differences).
    pub wall_tol: f64,
    /// Gate wall-clock at all? Disable when the two reports come from
    /// different machines (e.g. CI vs. the machine that seeded the
    /// committed baseline).
    pub check_wall: bool,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            modeled_tol: 0.02,
            counter_tol: 0.02,
            speedup_tol: 0.05,
            wall_tol: 3.0,
            check_wall: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Beyond tolerance in the bad direction: fails the gate.
    Regression,
    /// Beyond tolerance in the good direction: reported, never fails.
    Improvement,
    /// Structural observation (new workload, zero-baseline metric).
    Note,
}

/// One metric delta worth reporting.
#[derive(Debug, Clone)]
pub struct Finding {
    pub workload: String,
    pub metric: String,
    pub base: f64,
    pub cand: f64,
    /// `(cand - base) / base`; infinite when base is 0 and cand is not.
    pub rel_delta: f64,
    pub severity: Severity,
}

impl Finding {
    fn render(&self) -> String {
        let tag = match self.severity {
            Severity::Regression => "REGRESSION",
            Severity::Improvement => "improvement",
            Severity::Note => "note",
        };
        format!(
            "{tag:>11}  {:<40} {:<28} {:>14.4} -> {:>14.4}  ({:+.1}%)",
            self.workload,
            self.metric,
            self.base,
            self.cand,
            self.rel_delta * 100.0
        )
    }
}

/// Outcome of a comparison that was structurally possible (matching
/// schema and fingerprint). Regressions make [`Comparison::passed`] false.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    pub findings: Vec<Finding>,
    pub workloads_compared: usize,
}

impl Comparison {
    pub fn regressions(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Regression)
            .count()
    }

    pub fn passed(&self) -> bool {
        self.regressions() == 0
    }

    /// Human-readable summary (what the CI log shows).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} workloads compared, {} regression(s), {} improvement(s)\n",
            self.workloads_compared,
            self.regressions(),
            self.findings
                .iter()
                .filter(|f| f.severity == Severity::Improvement)
                .count()
        ));
        out
    }
}

struct Checker<'a> {
    findings: &'a mut Vec<Finding>,
    workload: String,
}

impl Checker<'_> {
    /// Gate a metric where *increases* are bad. `tol` is the tolerated
    /// relative increase; symmetric decreases are reported as improvements.
    fn increase_is_bad(&mut self, metric: &str, base: f64, cand: f64, tol: f64) {
        if base == cand {
            return;
        }
        if base == 0.0 {
            // A metric appearing out of nowhere: flag as a regression when
            // it is gated (a fused kernel suddenly doing global atomics is
            // exactly what this catches).
            self.findings.push(Finding {
                workload: self.workload.clone(),
                metric: metric.to_string(),
                base,
                cand,
                rel_delta: f64::INFINITY,
                severity: Severity::Regression,
            });
            return;
        }
        let rel = (cand - base) / base;
        let severity = if rel > tol {
            Severity::Regression
        } else if rel < -tol {
            Severity::Improvement
        } else {
            return;
        };
        self.findings.push(Finding {
            workload: self.workload.clone(),
            metric: metric.to_string(),
            base,
            cand,
            rel_delta: rel,
            severity,
        });
    }

    /// Gate a metric where *decreases* are bad (speedup).
    fn decrease_is_bad(&mut self, metric: &str, base: f64, cand: f64, tol: f64) {
        if base == cand || base == 0.0 {
            return;
        }
        let rel = (cand - base) / base;
        let severity = if rel < -tol {
            Severity::Regression
        } else if rel > tol {
            Severity::Improvement
        } else {
            return;
        };
        self.findings.push(Finding {
            workload: self.workload.clone(),
            metric: metric.to_string(),
            base,
            cand,
            rel_delta: rel,
            severity,
        });
    }

    fn variant(
        &mut self,
        prefix: &str,
        base: &VariantMetrics,
        cand: &VariantMetrics,
        opts: &CompareOptions,
    ) {
        self.increase_is_bad(
            &format!("{prefix}.modeled_ms"),
            base.modeled_ms,
            cand.modeled_ms,
            opts.modeled_tol,
        );
        self.increase_is_bad(
            &format!("{prefix}.dram_bytes"),
            base.dram_bytes() as f64,
            cand.dram_bytes() as f64,
            opts.counter_tol,
        );
        self.increase_is_bad(
            &format!("{prefix}.global_transactions"),
            (base.gld_transactions + base.gst_transactions) as f64,
            (cand.gld_transactions + cand.gst_transactions) as f64,
            opts.counter_tol,
        );
        self.increase_is_bad(
            &format!("{prefix}.global_atomic_ops"),
            base.global_atomic_ops as f64,
            cand.global_atomic_ops as f64,
            opts.counter_tol,
        );
        self.increase_is_bad(
            &format!("{prefix}.launches"),
            base.launches as f64,
            cand.launches as f64,
            opts.counter_tol,
        );
        if opts.check_wall {
            self.increase_is_bad(
                &format!("{prefix}.wall_ms"),
                base.wall_ms,
                cand.wall_ms,
                opts.wall_tol,
            );
        }
        // The `host` block (plan-cache / pool traffic, host ms per
        // iteration) is deliberately NOT gated: it legitimately differs
        // between cache-on and cache-off runs of the same commit, and the
        // CI bit-identity check relies on comparing such a pair cleanly.
    }
}

/// Compare `cand` against `base`. `Err` means the reports are structurally
/// incomparable (different config fingerprint) — the CLI maps that to
/// exit code 2, distinct from exit 1 for a genuine regression. A schema
/// version skew between loadable versions is only a [`Severity::Note`].
pub fn compare(
    base: &BenchReport,
    cand: &BenchReport,
    opts: &CompareOptions,
) -> Result<Comparison, String> {
    let mut cmp = Comparison::default();
    if base.schema_version != cand.schema_version {
        // Versions that load at all are field-compatible (missing fields
        // default), so a version skew is worth a note, not a refusal —
        // otherwise every schema bump would orphan the committed baseline.
        cmp.findings.push(Finding {
            workload: "(report)".to_string(),
            metric: "schema_version".to_string(),
            base: base.schema_version as f64,
            cand: cand.schema_version as f64,
            rel_delta: 0.0,
            severity: Severity::Note,
        });
    }
    if base.fingerprint != cand.fingerprint {
        return Err(format!(
            "config fingerprint mismatch — reports are not comparable\n  baseline:  {:?}\n  candidate: {:?}",
            base.fingerprint, cand.fingerprint
        ));
    }

    for bw in &base.workloads {
        let Some(cw) = cand.find(&bw.id) else {
            // Losing a workload silently would shrink coverage; fail.
            cmp.findings.push(Finding {
                workload: bw.id.clone(),
                metric: "missing in candidate".to_string(),
                base: 1.0,
                cand: 0.0,
                rel_delta: -1.0,
                severity: Severity::Regression,
            });
            continue;
        };
        cmp.workloads_compared += 1;
        let mut ck = Checker {
            findings: &mut cmp.findings,
            workload: bw.id.clone(),
        };
        ck.decrease_is_bad("speedup", bw.speedup, cw.speedup, opts.speedup_tol);
        ck.variant("fused", &bw.fused, &cw.fused, opts);
        ck.variant("baseline", &bw.baseline, &cw.baseline, opts);
    }
    for cw in &cand.workloads {
        if base.find(&cw.id).is_none() {
            cmp.findings.push(Finding {
                workload: cw.id.clone(),
                metric: "new workload (not in baseline)".to_string(),
                base: 0.0,
                cand: 1.0,
                rel_delta: f64::INFINITY,
                severity: Severity::Note,
            });
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::report::{ConfigFingerprint, WorkloadResult, SCHEMA_VERSION};
    use fusedml_gpu_sim::Counters;

    fn variant(ms: f64, dram: u64) -> VariantMetrics {
        let mut c = Counters::new();
        c.dram_read_bytes = dram;
        c.gld_transactions = dram / 32;
        VariantMetrics::new(ms, 0.837, ms * 2.0, 3, 0.5, &c)
    }

    fn report(fused_ms: f64, base_ms: f64) -> BenchReport {
        let fused = variant(fused_ms, 100_000);
        let baseline = variant(base_ms, 300_000);
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "test".into(),
            fingerprint: ConfigFingerprint {
                device: "dev".into(),
                clock_ghz: 0.837,
                scale: 1.0,
                seed: 1,
                mode: "quick".into(),
            },
            workloads: vec![WorkloadResult {
                id: "w/csr/1x1".into(),
                algorithm: "w".into(),
                format: "csr".into(),
                rows: 1,
                cols: 1,
                nnz: 1,
                iterations: 0,
                speedup: base_ms / fused_ms,
                fused,
                baseline,
            }],
        }
    }

    #[test]
    fn self_compare_is_clean() {
        let r = report(1.0, 3.0);
        let c = compare(&r, &r, &CompareOptions::default()).unwrap();
        assert!(c.passed(), "{}", c.render());
        assert_eq!(c.workloads_compared, 1);
    }

    #[test]
    fn modeled_slowdown_is_a_regression() {
        let base = report(1.0, 3.0);
        let cand = report(1.1, 3.0); // 10% fused modeled-time regression
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(!c.passed());
        assert!(c
            .findings
            .iter()
            .any(|f| f.metric == "fused.modeled_ms" && f.severity == Severity::Regression));
        // The derived speedup drop is flagged too.
        assert!(c
            .findings
            .iter()
            .any(|f| f.metric == "speedup" && f.severity == Severity::Regression));
    }

    #[test]
    fn speedup_gain_is_an_improvement_not_a_failure() {
        let base = report(1.0, 3.0);
        let cand = report(0.8, 3.0);
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(c.passed(), "{}", c.render());
        assert!(c
            .findings
            .iter()
            .any(|f| f.severity == Severity::Improvement));
    }

    #[test]
    fn schema_version_skew_is_a_note_not_an_error() {
        let base = {
            let mut r = report(1.0, 3.0);
            r.schema_version = 1; // committed baseline predates the bump
            r
        };
        let cand = report(1.0, 3.0);
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(c.passed(), "{}", c.render());
        assert!(c
            .findings
            .iter()
            .any(|f| f.metric == "schema_version" && f.severity == Severity::Note));
    }

    #[test]
    fn host_metrics_never_gate() {
        use crate::regress::report::HostPerf;
        let base = report(1.0, 3.0);
        let mut cand = report(1.0, 3.0);
        for w in &mut cand.workloads {
            // A cache-off rerun: many more plans computed, no pool reuse.
            w.fused.host = HostPerf {
                plans_computed: 500,
                plan_cache_hits: 0,
                pool_hits: 0,
                pool_misses: 4000,
                pool_bytes_recycled: 0,
                host_ms_per_iter: 9.0,
            };
        }
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(c.passed(), "{}", c.render());
    }

    #[test]
    fn fingerprint_mismatch_is_incomparable() {
        let base = report(1.0, 3.0);
        let mut cand = report(1.0, 3.0);
        cand.fingerprint.scale = 0.5;
        assert!(compare(&base, &cand, &CompareOptions::default()).is_err());
    }

    #[test]
    fn missing_workload_fails_the_gate() {
        let base = report(1.0, 3.0);
        let mut cand = report(1.0, 3.0);
        cand.workloads.clear();
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(!c.passed());
    }

    #[test]
    fn wall_clock_needs_a_big_swing_and_can_be_disabled() {
        let base = report(1.0, 3.0);
        let mut cand = report(1.0, 3.0);
        for w in &mut cand.workloads {
            w.fused.wall_ms *= 2.0; // 2x wall noise: under the loose default
        }
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(c.passed(), "{}", c.render());

        for w in &mut cand.workloads {
            w.fused.wall_ms *= 4.0; // now 8x: beyond tolerance
        }
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(!c.passed());
        let c = compare(
            &base,
            &cand,
            &CompareOptions {
                check_wall: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(c.passed());
    }

    #[test]
    fn counter_appearing_from_zero_is_flagged() {
        let base = report(1.0, 3.0);
        let mut cand = report(1.0, 3.0);
        for w in &mut cand.workloads {
            w.fused.global_atomic_ops = 500; // baseline had none
        }
        let c = compare(&base, &cand, &CompareOptions::default()).unwrap();
        assert!(!c.passed());
        assert!(c
            .findings
            .iter()
            .any(|f| f.metric == "fused.global_atomic_ops" && f.rel_delta.is_infinite()));
    }
}
