//! `fusedml-bench plans` — the data source of the CI plan-regression
//! gate.
//!
//! For every bench workload that executes through the DAG fusion
//! compiler, compile the cost-selected plan against the workload's exact
//! matrix shape and render it as deterministic JSON: which ops fused into
//! which kernel group, how many intermediates materialize in DRAM vs.
//! stay in registers, the modeled cost, and every rejected candidate with
//! the cost that killed it. CI diffs the dump against the committed
//! golden under `results/baselines/`; any drift — a different candidate
//! winning, a cost shift, a DAG fingerprint change — fails the gate.
//!
//! Planning is pure host work on [`select_plan`] (no simulated device is
//! constructed), so the dump takes milliseconds plus dataset generation.
//! Floats render through Rust's shortest-roundtrip `Display`, so string
//! equality of two dumps is *bit* equality of the modeled costs — the
//! gate pins the cost model, not an approximation of it.

use super::json::Json;
use super::suite::{full_spec, matrix, Algo, Dist, Kind, SuiteOptions, WorkloadSpec};
use fusedml_core::{select_plan, Dag, FusionPlan, MatrixShape, PatternSpec};
use fusedml_matrix::gen::{powerlaw_sparse, uniform_sparse};
use fusedml_ml::LrCgOptions;

/// Bumped when the dump's structure changes incompatibly.
pub const PLANS_SCHEMA_VERSION: u64 = 1;

/// One DAG a workload compiles: a stable name, the definition, and the
/// matrix shape it is planned against.
struct Compilation {
    name: &'static str,
    dag: Dag,
    shape: MatrixShape,
}

/// The DAG compilations a workload performs, mirroring exactly what its
/// suite runner executes. Workloads outside the DAG layer (the hand-fused
/// kernel benchmarks' baselines, the ELL planner, the non-LR-CG solvers)
/// contribute nothing.
fn compilations(spec: &WorkloadSpec, seed: u64) -> Vec<Compilation> {
    let (m, n) = (spec.rows, spec.cols);
    let sparse = |nnz: u64| MatrixShape {
        rows: m,
        cols: n,
        nnz,
        dense: false,
    };
    let dense = MatrixShape {
        rows: m,
        cols: n,
        nnz: m as u64 * n as u64,
        dense: true,
    };
    // The iteration pattern LR-CG hands the backend (`X^T(Xp) + eps*p`).
    let lr_cg_iter = || Dag::equation1(PatternSpec::xtxy_plus_bz(LrCgOptions::default().eps));
    match &spec.kind {
        Kind::PatternCsr { dist } => {
            let x = match dist {
                Dist::Uniform => uniform_sparse(m, n, spec.sparsity, seed),
                Dist::PowerLaw => powerlaw_sparse(m, n, 10.0, 0.8, seed),
            };
            vec![Compilation {
                name: "equation1",
                dag: Dag::equation1(full_spec()),
                shape: sparse(x.nnz() as u64),
            }]
        }
        Kind::XtY => {
            let x = uniform_sparse(m, n, spec.sparsity, seed);
            vec![Compilation {
                name: "xt_y",
                dag: Dag::xt_y(1.0),
                shape: sparse(x.nnz() as u64),
            }]
        }
        // ELL storage is planned by `plan_ell`, outside the DAG compiler.
        Kind::PatternEll => Vec::new(),
        Kind::PatternDense => vec![Compilation {
            name: "equation1",
            dag: Dag::equation1(full_spec()),
            shape: dense,
        }],
        Kind::AlgoCsr(Algo::LrCg) => {
            let x = uniform_sparse(m, n, spec.sparsity, seed);
            let shape = sparse(x.nnz() as u64);
            vec![
                Compilation {
                    name: "lr_cg.init",
                    dag: Dag::xt_y(-1.0),
                    shape,
                },
                Compilation {
                    name: "lr_cg.iter",
                    dag: lr_cg_iter(),
                    shape,
                },
            ]
        }
        Kind::AlgoDense(Algo::LrCg) => vec![
            Compilation {
                name: "lr_cg.init",
                dag: Dag::xt_y(-1.0),
                shape: dense,
            },
            Compilation {
                name: "lr_cg.iter",
                dag: lr_cg_iter(),
                shape: dense,
            },
        ],
        // The remaining solvers run on the hand-fused backend.
        Kind::AlgoCsr(_) | Kind::AlgoDense(_) => Vec::new(),
        Kind::Pagerank => {
            let x = uniform_sparse(m, n, spec.sparsity, seed);
            vec![Compilation {
                name: "pagerank.iter",
                dag: Dag::pagerank(),
                shape: sparse(x.nnz() as u64),
            }]
        }
    }
}

fn compilation_to_json(c: &Compilation, plan: &FusionPlan) -> Json {
    Json::obj(vec![
        ("name", Json::str(c.name)),
        (
            "dag_fingerprint",
            Json::str(format!("{:016x}", plan.dag_fingerprint)),
        ),
        ("rows", Json::u64(c.shape.rows as u64)),
        ("cols", Json::u64(c.shape.cols as u64)),
        ("nnz", Json::u64(c.shape.nnz)),
        ("dense", Json::Bool(c.shape.dense)),
        ("selected", Json::str(plan.desc.clone())),
        ("modeled_ms", Json::num(plan.modeled_ms)),
        (
            "groups",
            Json::Arr(
                plan.groups
                    .iter()
                    .map(|g| {
                        Json::obj(vec![
                            ("kernel", Json::str(g.desc.clone())),
                            ("modeled_ms", Json::num(g.modeled_ms)),
                            ("dram_bytes", Json::u64(g.dram_bytes)),
                            ("launches", Json::u64(g.launches)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("materialized", Json::u64(plan.materialized.len() as u64)),
        ("in_registers", Json::u64(plan.in_registers.len() as u64)),
        (
            "rejected",
            Json::Arr(
                plan.rejected
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("candidate", Json::str(r.desc.clone())),
                            ("modeled_ms", Json::num(r.modeled_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Compile every DAG workload's plan and assemble the dump. No git sha:
/// the file must be byte-diffable against the committed golden.
pub fn plan_report(opts: &SuiteOptions) -> Result<Json, String> {
    let mut workloads = Vec::new();
    for spec in matrix(opts.mode, opts.scale) {
        let comps = compilations(&spec, opts.seed);
        if comps.is_empty() {
            continue;
        }
        let mut dags = Vec::new();
        for c in comps {
            let plan = select_plan(&opts.device, &c.dag, c.shape)
                .map_err(|e| format!("planning {} for {}: {e}", c.name, spec.id()))?;
            dags.push(compilation_to_json(&c, &plan));
        }
        workloads.push(Json::obj(vec![
            ("id", Json::str(spec.id())),
            ("dags", Json::Arr(dags)),
        ]));
    }
    Ok(Json::obj(vec![
        ("schema_version", Json::u64(PLANS_SCHEMA_VERSION)),
        ("fingerprint", opts.fingerprint().to_json()),
        ("workloads", Json::Arr(workloads)),
    ]))
}

/// Structural diff of two plan dumps: every divergence as one
/// human-readable `path: golden X != current Y` line. Empty = no drift.
pub fn plan_drift(golden: &Json, current: &Json) -> Vec<String> {
    let mut drift = Vec::new();
    diff("$", golden, current, &mut drift);
    drift
}

fn diff(path: &str, a: &Json, b: &Json, out: &mut Vec<String>) {
    match (a, b) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            for (k, va) in ma {
                match mb.get(k) {
                    Some(vb) => diff(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(format!("{path}.{k}: missing from current dump")),
                }
            }
            for k in mb.keys() {
                if !ma.contains_key(k) {
                    out.push(format!("{path}.{k}: not in golden"));
                }
            }
        }
        (Json::Arr(xa), Json::Arr(xb)) => {
            if xa.len() != xb.len() {
                out.push(format!(
                    "{path}: golden has {} entries, current has {}",
                    xa.len(),
                    xb.len()
                ));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(format!(
            "{path}: golden {} != current {}",
            a.render(),
            b.render()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_is_deterministic_and_covers_the_dag_workloads() {
        let opts = SuiteOptions::quick();
        let a = plan_report(&opts).unwrap();
        let b = plan_report(&opts).unwrap();
        assert_eq!(a.render(), b.render(), "two dumps of one config must match");

        let ids: Vec<&str> = a
            .field("workloads")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|w| w.field_str("id").unwrap())
            .collect();
        for needle in [
            "pattern/csr",
            "xty/csr",
            "lr_cg/csr",
            "lr_cg/dense",
            "pagerank/csr",
        ] {
            assert!(
                ids.iter().any(|id| id.starts_with(needle)),
                "dump is missing a {needle} workload: {ids:?}"
            );
        }
        // Non-DAG workloads must not sneak in.
        assert!(ids.iter().all(|id| !id.contains("ell")));
        assert!(ids.iter().all(|id| !id.starts_with("hits")));
    }

    #[test]
    fn fused_dags_price_and_reject_the_unfused_candidate() {
        let report = plan_report(&SuiteOptions::quick()).unwrap();
        let mut headline_dags = 0;
        for w in report.field("workloads").unwrap().as_arr().unwrap() {
            for d in w.field("dags").unwrap().as_arr().unwrap() {
                assert!(
                    d.field_f64("modeled_ms").unwrap() > 0.0,
                    "modeled cost must be positive"
                );
                // The multi-op DAGs must select a fused candidate with
                // at least one priced-and-rejected alternative. (Sparser
                // DAGs like `xt_y` or the v-less LR-CG iteration collapse
                // several feature choices to the same grouping, so their
                // unfused tier can be deduped under an earlier candidate
                // name — only the full-spec Equation-1 and PageRank DAGs
                // keep every tier distinct.)
                let name = d.field_str("name").unwrap();
                if !(name == "equation1" || name.ends_with(".iter")) {
                    continue;
                }
                headline_dags += 1;
                let selected = d.field_str("selected").unwrap();
                let rejected: Vec<&str> = d
                    .field("rejected")
                    .unwrap()
                    .as_arr()
                    .unwrap()
                    .iter()
                    .map(|r| r.field_str("candidate").unwrap())
                    .collect();
                let id = w.field_str("id").unwrap();
                assert_ne!(selected, "unfused", "{id}/{name}: fusion must win");
                assert!(
                    !rejected.is_empty(),
                    "{id}/{name}: no alternative was priced"
                );
                if name == "pagerank.iter" || (name == "equation1" && id.starts_with("pattern")) {
                    assert!(
                        rejected.contains(&"unfused"),
                        "{id}/{name}: unfused never priced (rejected {rejected:?})"
                    );
                }
            }
        }
        assert!(
            headline_dags >= 5,
            "expected the eq1/iter DAGs, saw {headline_dags}"
        );
    }

    #[test]
    fn drift_detection_flags_a_cost_change_and_a_lost_workload() {
        let report = plan_report(&SuiteOptions::quick()).unwrap();
        assert!(plan_drift(&report, &report).is_empty());

        let mut tampered = report.clone();
        if let Json::Obj(m) = &mut tampered {
            m.insert("schema_version".into(), Json::u64(99));
            if let Some(Json::Arr(ws)) = m.get_mut("workloads") {
                ws.pop();
            }
        }
        let drift = plan_drift(&report, &tampered);
        assert!(
            drift.iter().any(|d| d.contains("schema_version")),
            "drift: {drift:?}"
        );
        assert!(
            drift.iter().any(|d| d.contains("entries")),
            "drift: {drift:?}"
        );
    }
}
