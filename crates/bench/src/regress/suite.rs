//! The deterministic workload matrix behind `fusedml-bench run`.
//!
//! Two layers, mirroring the paper's evaluation:
//!
//! * **kernel-level** workloads: one evaluation of the generic pattern
//!   (or its `X^T y` instantiation) on the fused executor vs. the
//!   cuBLAS/cuSPARSE-style operator composition — CSR uniform, CSR
//!   power-law, ELL, and dense storage;
//! * **algorithm-level** workloads: full solver loops (LR-CG, GLM,
//!   logistic regression, SVM, HITS) on [`FusedBackend`] vs.
//!   [`BaselineBackend`] — the `ours-end2end` / `cu-end2end`
//!   configurations of §4.4.
//!
//! Every dataset is seeded, every variant runs on a freshly constructed
//! simulated device, and all modeled metrics are bit-deterministic across
//! hosts; only `wall_ms` depends on the machine running the suite.

use super::report::{
    current_git_sha, BenchReport, ConfigFingerprint, HostPerf, VariantMetrics, WorkloadResult,
    SCHEMA_VERSION,
};
use fusedml_blas::ellmv::GpuEll;
use fusedml_blas::{level1, BaselineEngine, Flavor, GpuCsr, GpuDense};
use fusedml_core::ell_fused::{fused_pattern_ell, plan_ell};
use fusedml_core::{FusedExecutor, PatternSpec};
use fusedml_gpu_sim::{Counters, DevicePool, DeviceSpec, Gpu, LaunchStats};
use fusedml_matrix::gen::{
    dense_random, powerlaw_sparse, random_labels, random_vector, uniform_sparse,
};
use fusedml_matrix::{reference, CsrMatrix, DenseMatrix, EllMatrix};
use fusedml_ml::{
    glm, hits, logreg, lr_cg, pagerank, svm_primal, Backend, BackendStats, BaselineBackend,
    DagBackend, FusedBackend, GlmOptions, HitsOptions, LogRegOptions, LrCgOptions, PagerankOptions,
    PagerankPlan, SvmOptions,
};
use std::sync::Arc;
use std::time::Instant;

/// Suite depth. `Quick` is the CI gate (seconds of host time); `Full`
/// approaches the paper's scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Quick,
    Full,
}

impl Mode {
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
        }
    }

    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "quick" => Ok(Mode::Quick),
            "full" => Ok(Mode::Full),
            other => Err(format!("unknown mode '{other}' (expected quick or full)")),
        }
    }
}

/// Everything `run_suite` needs; becomes the report's fingerprint.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    pub mode: Mode,
    /// Multiplies every workload's row count, in (0, 1].
    pub scale: f64,
    pub seed: u64,
    /// Shared device spec: every per-variant `Gpu` construction bumps the
    /// refcount instead of cloning the 28-field struct.
    pub device: Arc<DeviceSpec>,
}

impl SuiteOptions {
    pub fn quick() -> Self {
        SuiteOptions {
            mode: Mode::Quick,
            scale: 1.0,
            seed: 0x5EED,
            device: Arc::new(DeviceSpec::gtx_titan()),
        }
    }

    pub fn full() -> Self {
        SuiteOptions {
            mode: Mode::Full,
            ..Self::quick()
        }
    }

    pub fn fingerprint(&self) -> ConfigFingerprint {
        ConfigFingerprint {
            device: self.device.name.clone(),
            clock_ghz: self.device.clock_ghz,
            scale: self.scale,
            seed: self.seed,
            mode: self.mode.as_str().to_string(),
        }
    }
}

/// Row-length distribution of a synthetic sparse matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dist {
    Uniform,
    PowerLaw,
}

/// Which solver an algorithm-level workload drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Algo {
    LrCg,
    Glm,
    LogReg,
    Svm,
    Hits,
}

impl Algo {
    fn name(&self) -> &'static str {
        match self {
            Algo::LrCg => "lr_cg",
            Algo::Glm => "glm",
            Algo::LogReg => "logreg",
            Algo::Svm => "svm",
            Algo::Hits => "hits",
        }
    }
}

/// One entry of the workload matrix, before any data is generated.
pub(crate) enum Kind {
    /// One full-pattern evaluation, CSR storage.
    PatternCsr { dist: Dist },
    /// One `X^T y` evaluation (fused scan vs. cuSPARSE transposed SpMV).
    XtY,
    /// One `X^T(Xy)` evaluation, ELL storage (fused) vs. the CSR
    /// operator composition.
    PatternEll,
    /// One full-pattern evaluation, dense storage.
    PatternDense,
    /// A solver loop on sparse CSR input.
    AlgoCsr(Algo),
    /// A solver loop on dense input.
    AlgoDense(Algo),
    /// PageRank power iteration on a square link matrix, defined as an
    /// operator DAG: cost-selected fusion plan vs. the unfused
    /// one-kernel-per-operator plan of the same DAG.
    Pagerank,
}

pub(crate) struct WorkloadSpec {
    pub(crate) kind: Kind,
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Fill fraction for sparse workloads (unused for dense).
    pub(crate) sparsity: f64,
    /// Solver iterations (0 for kernel-level workloads).
    pub(crate) iterations: u64,
}

impl WorkloadSpec {
    fn algorithm(&self) -> &'static str {
        match &self.kind {
            Kind::PatternCsr { .. } | Kind::PatternEll | Kind::PatternDense => "pattern",
            Kind::XtY => "xty",
            Kind::AlgoCsr(a) | Kind::AlgoDense(a) => a.name(),
            Kind::Pagerank => "pagerank",
        }
    }

    fn format(&self) -> &'static str {
        match &self.kind {
            Kind::PatternCsr { .. } | Kind::XtY | Kind::AlgoCsr(_) | Kind::Pagerank => "csr",
            Kind::PatternEll => "ell",
            Kind::PatternDense | Kind::AlgoDense(_) => "dense",
        }
    }

    pub(crate) fn id(&self) -> String {
        let variant = match &self.kind {
            Kind::PatternCsr {
                dist: Dist::Uniform,
            } => "/uniform",
            Kind::PatternCsr {
                dist: Dist::PowerLaw,
            } => "/powerlaw",
            _ => "",
        };
        format!(
            "{}/{}{variant}/{}x{}",
            self.algorithm(),
            self.format(),
            self.rows,
            self.cols
        )
    }
}

/// The matrix itself. Row counts are pre-`scale`; everything here must stay
/// deterministic — ids feed the compare gate.
pub(crate) fn matrix(mode: Mode, scale: f64) -> Vec<WorkloadSpec> {
    let rows = |base: usize| ((base as f64 * scale).round() as usize).max(64);
    let mut specs = Vec::new();
    let (kern_m, kern_n, algo_m, algo_n, algo_iters, outer) = match mode {
        Mode::Quick => (20_000, 1024, 6_000, 512, 3u64, 2u64),
        Mode::Full => (100_000, 2048, 25_000, 1024, 8, 3),
    };

    specs.push(WorkloadSpec {
        kind: Kind::PatternCsr {
            dist: Dist::Uniform,
        },
        rows: rows(kern_m),
        cols: kern_n,
        sparsity: 0.01,
        iterations: 0,
    });
    specs.push(WorkloadSpec {
        kind: Kind::PatternCsr {
            dist: Dist::PowerLaw,
        },
        rows: rows(kern_m),
        cols: kern_n,
        sparsity: 0.01,
        iterations: 0,
    });
    specs.push(WorkloadSpec {
        kind: Kind::XtY,
        rows: rows(kern_m),
        cols: kern_n,
        sparsity: 0.01,
        iterations: 0,
    });
    specs.push(WorkloadSpec {
        kind: Kind::PatternEll,
        rows: rows(kern_m / 2),
        cols: kern_n / 2,
        sparsity: 0.02,
        iterations: 0,
    });
    specs.push(WorkloadSpec {
        kind: Kind::PatternDense,
        rows: rows(kern_m / 4),
        cols: 256,
        sparsity: 1.0,
        iterations: 0,
    });

    for algo in [Algo::LrCg, Algo::Glm, Algo::LogReg, Algo::Svm, Algo::Hits] {
        let iterations = match algo {
            Algo::LrCg | Algo::Hits => algo_iters,
            _ => outer,
        };
        specs.push(WorkloadSpec {
            kind: Kind::AlgoCsr(algo),
            rows: rows(algo_m),
            cols: algo_n,
            sparsity: 0.01,
            iterations,
        });
    }
    specs.push(WorkloadSpec {
        kind: Kind::AlgoDense(Algo::LrCg),
        rows: rows(algo_m / 2),
        cols: 128,
        sparsity: 1.0,
        iterations: algo_iters,
    });
    // PageRank needs a square link matrix, so both dims scale together.
    let pr_n = match mode {
        Mode::Quick => 4_000,
        Mode::Full => 20_000,
    };
    specs.push(WorkloadSpec {
        kind: Kind::Pagerank,
        rows: rows(pr_n),
        cols: rows(pr_n),
        sparsity: 0.002,
        iterations: algo_iters,
    });
    specs
}

/// Workload ids for the given options, without running anything
/// (`fusedml-bench list`).
pub fn workload_ids(opts: &SuiteOptions) -> Vec<String> {
    matrix(opts.mode, opts.scale)
        .iter()
        .map(|s| s.id())
        .collect()
}

/// Aggregate a launch list into (modeled_ms, counters, launches,
/// time-weighted occupancy).
fn fold_launches(launches: &[LaunchStats]) -> (f64, Counters, u64, f64) {
    let mut counters = Counters::new();
    let mut ms = 0.0;
    let mut occ_ms = 0.0;
    for l in launches {
        counters.merge(&l.counters);
        ms += l.sim_ms();
        occ_ms += l.occupancy.occupancy * l.sim_ms();
    }
    let occ = if ms > 0.0 { occ_ms / ms } else { 0.0 };
    (ms, counters, launches.len() as u64, occ)
}

fn variant_from_launches(launches: &[LaunchStats], wall_ms: f64, clock_ghz: f64) -> VariantMetrics {
    let (ms, counters, n, occ) = fold_launches(launches);
    VariantMetrics::new(ms, clock_ghz, wall_ms, n, occ, &counters)
}

fn variant_from_stats(
    stats: &BackendStats,
    wall_ms: f64,
    clock_ghz: f64,
    iters: u64,
) -> VariantMetrics {
    VariantMetrics::new(
        stats.sim_ms,
        clock_ghz,
        wall_ms,
        stats.launches as u64,
        stats.mean_occupancy(),
        &stats.counters,
    )
    .with_host(HostPerf {
        plans_computed: stats.plan.plans_computed(),
        plan_cache_hits: stats.plan.hits,
        pool_hits: stats.pool.hits,
        pool_misses: stats.pool.misses,
        pool_bytes_recycled: stats.pool.bytes_recycled,
        host_ms_per_iter: wall_ms / iters.max(1) as f64,
    })
}

fn wall_ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// Per-variant device on the suite's shared buffer pool. Each variant gets
/// its own `Gpu` (isolated counters, caches, and address space) but blocks
/// freed by earlier workloads warm up later ones — the caching-allocator
/// model, and what makes the pool hit rate meaningful across a matrix of
/// same-shaped workloads.
fn suite_gpu(opts: &SuiteOptions, pool: &DevicePool) -> Gpu {
    Gpu::new(opts.device.clone()).with_shared_pool(pool)
}

/// Full pattern with every term, exercising v-scaling and the z-axpy tail.
pub(crate) fn full_spec() -> PatternSpec {
    PatternSpec::full(1.5, -0.5)
}

/// Kernel-level CSR workload: fused executor vs. operator composition.
fn run_pattern_csr(
    opts: &SuiteOptions,
    pool: &DevicePool,
    x: &CsrMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let (m, n) = (x.rows(), x.cols());
    let spec = full_spec();
    let seed = opts.seed;

    let fused = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuCsr::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(n, seed + 1));
        let vd = gpu.upload_f64("v", &random_vector(m, seed + 2));
        let zd = gpu.upload_f64("z", &random_vector(n, seed + 3));
        let wd = gpu.alloc_f64("w", n);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut ex = FusedExecutor::new(&gpu);
        ex.pattern_sparse(spec, &xd, Some(&vd), &yd, Some(&zd), &wd);
        variant_from_launches(&ex.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };

    let baseline = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuCsr::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(n, seed + 1));
        let vd = gpu.upload_f64("v", &random_vector(m, seed + 2));
        let zd = gpu.upload_f64("z", &random_vector(n, seed + 3));
        let wd = gpu.alloc_f64("w", n);
        let pd = gpu.alloc_f64("p", m);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut cu = BaselineEngine::new(&gpu, Flavor::CuLibs);
        cu.pattern_sparse(
            spec.alpha,
            &xd,
            Some(&vd),
            &yd,
            spec.beta,
            Some(&zd),
            &wd,
            &pd,
        );
        variant_from_launches(&cu.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };
    (fused, baseline)
}

/// `X^T y`: the fused transposed scan vs. the cuSPARSE-style transposed
/// SpMV (which rebuilds `X^T` per call).
fn run_xty(
    opts: &SuiteOptions,
    pool: &DevicePool,
    x: &CsrMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let (m, n) = (x.rows(), x.cols());
    let seed = opts.seed;

    let fused = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuCsr::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(m, seed + 4));
        let wd = gpu.alloc_f64("w", n);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut ex = FusedExecutor::new(&gpu);
        ex.xt_y_sparse(1.0, &xd, &yd, &wd);
        variant_from_launches(&ex.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };

    let baseline = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuCsr::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(m, seed + 4));
        let wd = gpu.alloc_f64("w", n);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut cu = BaselineEngine::new(&gpu, Flavor::CuLibs);
        cu.csrmv_t(&xd, &yd, &wd);
        variant_from_launches(&cu.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };
    (fused, baseline)
}

/// ELL-stored fused kernel vs. the CSR operator composition on the same
/// logical matrix — the storage-format extension workload.
fn run_pattern_ell(
    opts: &SuiteOptions,
    pool: &DevicePool,
    x: &CsrMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let (m, n) = (x.rows(), x.cols());
    let spec = PatternSpec::xtxy();
    let seed = opts.seed;

    let fused = {
        let gpu = suite_gpu(opts, pool);
        let ell = EllMatrix::from_csr(x);
        let eld = GpuEll::upload(&gpu, "ell", &ell);
        let yd = gpu.upload_f64("y", &random_vector(n, seed + 5));
        let wd = gpu.alloc_f64("w", n);
        gpu.flush_caches();
        let t0 = Instant::now();
        let plan = plan_ell(&gpu, m, n);
        let launches = vec![
            level1::fill(&gpu, &wd, 0.0),
            fused_pattern_ell(&gpu, &plan, spec, &eld, None, &yd, None, &wd),
        ];
        variant_from_launches(&launches, wall_ms_since(t0), opts.device.clock_ghz)
    };

    let baseline = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuCsr::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(n, seed + 5));
        let wd = gpu.alloc_f64("w", n);
        let pd = gpu.alloc_f64("p", m);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut cu = BaselineEngine::new(&gpu, Flavor::CuLibs);
        cu.pattern_sparse(spec.alpha, &xd, None, &yd, spec.beta, None, &wd, &pd);
        variant_from_launches(&cu.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };
    (fused, baseline)
}

/// Dense full pattern: generated fused kernel vs. cuBLAS-style composition.
fn run_pattern_dense(
    opts: &SuiteOptions,
    pool: &DevicePool,
    x: &DenseMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let (m, n) = (x.rows(), x.cols());
    let spec = full_spec();
    let seed = opts.seed;

    let fused = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuDense::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(n, seed + 6));
        let vd = gpu.upload_f64("v", &random_vector(m, seed + 7));
        let zd = gpu.upload_f64("z", &random_vector(n, seed + 8));
        let wd = gpu.alloc_f64("w", n);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut ex = FusedExecutor::new(&gpu);
        ex.pattern_dense(spec, &xd, Some(&vd), &yd, Some(&zd), &wd);
        variant_from_launches(&ex.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };

    let baseline = {
        let gpu = suite_gpu(opts, pool);
        let xd = GpuDense::upload(&gpu, "X", x);
        let yd = gpu.upload_f64("y", &random_vector(n, seed + 6));
        let vd = gpu.upload_f64("v", &random_vector(m, seed + 7));
        let zd = gpu.upload_f64("z", &random_vector(n, seed + 8));
        let wd = gpu.alloc_f64("w", n);
        let pd = gpu.alloc_f64("p", m);
        gpu.flush_caches();
        let t0 = Instant::now();
        let mut cu = BaselineEngine::new(&gpu, Flavor::CuLibs);
        cu.pattern_dense(
            spec.alpha,
            &xd,
            Some(&vd),
            &yd,
            spec.beta,
            Some(&zd),
            &wd,
            &pd,
        );
        variant_from_launches(&cu.launches, wall_ms_since(t0), opts.device.clock_ghz)
    };
    (fused, baseline)
}

/// Drive one solver on any backend with deterministic labels/targets.
fn drive_algo<B: Backend>(
    b: &mut B,
    algo: Algo,
    iters: u64,
    seed: u64,
    x_csr: Option<&CsrMatrix>,
    x_dense: Option<&DenseMatrix>,
) {
    let m = b.rows();
    let n = b.cols();
    let w_true = random_vector(n, seed + 10);
    let targets = match (x_csr, x_dense) {
        (Some(x), _) => reference::csr_mv(x, &w_true),
        (_, Some(x)) => reference::dense_mv(x, &w_true),
        _ => unreachable!("algo workload without a matrix"),
    };
    match algo {
        Algo::LrCg => {
            lr_cg(
                b,
                &targets,
                LrCgOptions {
                    max_iterations: iters as usize,
                    ..Default::default()
                },
            );
        }
        Algo::Glm => {
            let counts: Vec<f64> = targets.iter().map(|&e| e.clamp(-3.0, 3.0).exp()).collect();
            glm(
                b,
                &counts,
                GlmOptions {
                    max_outer: iters as usize,
                    ..Default::default()
                },
            );
        }
        Algo::LogReg => {
            let labels = random_labels(m, seed + 11);
            logreg(
                b,
                &labels,
                LogRegOptions {
                    max_outer: iters as usize,
                    ..Default::default()
                },
            );
        }
        Algo::Svm => {
            let labels = random_labels(m, seed + 11);
            svm_primal(
                b,
                &labels,
                SvmOptions {
                    max_outer: iters as usize,
                    ..Default::default()
                },
            );
        }
        Algo::Hits => {
            hits(
                b,
                HitsOptions {
                    max_iterations: iters as usize,
                    ..Default::default()
                },
            );
        }
    }
}

/// Algorithm-level workload on CSR input: `ours-end2end` vs. `cu-end2end`.
/// LR-CG's fused variant goes through the DAG fusion compiler
/// ([`DagBackend`]) rather than the hand-fused executor — the two produce
/// bit-identical launches, so the gate also pins the compiler's output.
fn run_algo_csr(
    opts: &SuiteOptions,
    pool: &DevicePool,
    algo: Algo,
    iters: u64,
    x: &CsrMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let fused = {
        let gpu = suite_gpu(opts, pool);
        let t0 = Instant::now();
        let stats = if algo == Algo::LrCg {
            let mut b = DagBackend::new_sparse(&gpu, x);
            drive_algo(&mut b, algo, iters, opts.seed, Some(x), None);
            b.stats()
        } else {
            let mut b = FusedBackend::new_sparse(&gpu, x);
            drive_algo(&mut b, algo, iters, opts.seed, Some(x), None);
            b.stats()
        };
        variant_from_stats(&stats, wall_ms_since(t0), opts.device.clock_ghz, iters)
    };
    let baseline = {
        let gpu = suite_gpu(opts, pool);
        let t0 = Instant::now();
        let mut b = BaselineBackend::new_sparse(&gpu, x);
        drive_algo(&mut b, algo, iters, opts.seed, Some(x), None);
        variant_from_stats(&b.stats(), wall_ms_since(t0), opts.device.clock_ghz, iters)
    };
    (fused, baseline)
}

/// Algorithm-level workload on dense input.
fn run_algo_dense(
    opts: &SuiteOptions,
    pool: &DevicePool,
    algo: Algo,
    iters: u64,
    x: &DenseMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let fused = {
        let gpu = suite_gpu(opts, pool);
        let t0 = Instant::now();
        let stats = if algo == Algo::LrCg {
            let mut b = DagBackend::new_dense(&gpu, x);
            drive_algo(&mut b, algo, iters, opts.seed, None, Some(x));
            b.stats()
        } else {
            let mut b = FusedBackend::new_dense(&gpu, x);
            drive_algo(&mut b, algo, iters, opts.seed, None, Some(x));
            b.stats()
        };
        variant_from_stats(&stats, wall_ms_since(t0), opts.device.clock_ghz, iters)
    };
    let baseline = {
        let gpu = suite_gpu(opts, pool);
        let t0 = Instant::now();
        let mut b = BaselineBackend::new_dense(&gpu, x);
        drive_algo(&mut b, algo, iters, opts.seed, None, Some(x));
        variant_from_stats(&b.stats(), wall_ms_since(t0), opts.device.clock_ghz, iters)
    };
    (fused, baseline)
}

/// PageRank workload: the DAG compiler's cost-selected plan vs. the
/// unfused one-kernel-per-operator plan of the *same* DAG. Both run the
/// identical solver loop, so the speedup isolates what fusion buys.
fn run_pagerank(
    opts: &SuiteOptions,
    pool: &DevicePool,
    iters: u64,
    links: &CsrMatrix,
) -> (VariantMetrics, VariantMetrics) {
    let run = |plan: PagerankPlan| {
        let gpu = suite_gpu(opts, pool);
        let pool_base = gpu.pool_stats();
        let t0 = Instant::now();
        let res = pagerank(
            &gpu,
            links,
            PagerankOptions {
                max_iterations: iters as usize,
                // Fixed iteration count: the gate compares modeled
                // counters, which must not depend on a convergence race.
                tolerance: 0.0,
                plan,
                ..Default::default()
            },
        );
        let wall = wall_ms_since(t0);
        let pool_delta = gpu.pool_stats().delta_since(&pool_base);
        VariantMetrics::new(
            res.sim_ms,
            opts.device.clock_ghz,
            wall,
            res.launches as u64,
            res.occupancy,
            &res.counters,
        )
        .with_host(HostPerf {
            plans_computed: res.plan_stats.plans_computed(),
            plan_cache_hits: res.plan_stats.hits,
            pool_hits: pool_delta.hits,
            pool_misses: pool_delta.misses,
            pool_bytes_recycled: pool_delta.bytes_recycled,
            host_ms_per_iter: wall / iters.max(1) as f64,
        })
    };
    (run(PagerankPlan::Selected), run(PagerankPlan::Unfused))
}

/// Run the whole matrix and assemble the report. `progress` receives the
/// id of each workload as it starts (pass `|_| {}` to silence).
pub fn run_suite(opts: &SuiteOptions, mut progress: impl FnMut(&str)) -> BenchReport {
    let mut workloads = Vec::new();
    // One buffer pool for the whole matrix: freed blocks from one variant
    // serve the next variant's allocations (many workloads share size
    // classes), so only the first touch of each size class ever misses.
    let pool = DevicePool::new();
    for spec in matrix(opts.mode, opts.scale) {
        let id = spec.id();
        progress(&id);
        let (m, n) = (spec.rows, spec.cols);
        let (nnz, fused, baseline) = match &spec.kind {
            Kind::PatternCsr { dist } => {
                let x = match dist {
                    Dist::Uniform => uniform_sparse(m, n, spec.sparsity, opts.seed),
                    Dist::PowerLaw => powerlaw_sparse(m, n, 10.0, 0.8, opts.seed),
                };
                let (f, b) = run_pattern_csr(opts, &pool, &x);
                (x.nnz() as u64, f, b)
            }
            Kind::XtY => {
                let x = uniform_sparse(m, n, spec.sparsity, opts.seed);
                let (f, b) = run_xty(opts, &pool, &x);
                (x.nnz() as u64, f, b)
            }
            Kind::PatternEll => {
                let x = uniform_sparse(m, n, spec.sparsity, opts.seed);
                let (f, b) = run_pattern_ell(opts, &pool, &x);
                (x.nnz() as u64, f, b)
            }
            Kind::PatternDense => {
                let x = dense_random(m, n, opts.seed);
                let (f, b) = run_pattern_dense(opts, &pool, &x);
                ((m * n) as u64, f, b)
            }
            Kind::AlgoCsr(algo) => {
                let x = uniform_sparse(m, n, spec.sparsity, opts.seed);
                let (f, b) = run_algo_csr(opts, &pool, *algo, spec.iterations, &x);
                (x.nnz() as u64, f, b)
            }
            Kind::AlgoDense(algo) => {
                let x = dense_random(m, n, opts.seed);
                let (f, b) = run_algo_dense(opts, &pool, *algo, spec.iterations, &x);
                ((m * n) as u64, f, b)
            }
            Kind::Pagerank => {
                let x = uniform_sparse(m, n, spec.sparsity, opts.seed);
                let (f, b) = run_pagerank(opts, &pool, spec.iterations, &x);
                (x.nnz() as u64, f, b)
            }
        };
        let speedup = if fused.modeled_ms > 0.0 {
            baseline.modeled_ms / fused.modeled_ms
        } else {
            0.0
        };
        workloads.push(WorkloadResult {
            id,
            algorithm: spec.algorithm().to_string(),
            format: spec.format().to_string(),
            rows: m as u64,
            cols: n as u64,
            nnz,
            iterations: spec.iterations,
            fused,
            baseline,
            speedup,
        });
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        git_sha: current_git_sha(),
        fingerprint: opts.fingerprint(),
        workloads,
    }
}
