//! `fusedml-bench serve` — the multi-tenant serving benchmark and its
//! CI regression gate.
//!
//! The bench drives [`fn@fusedml_runtime::serve`] with a seeded,
//! deterministic arrival process: a fixed tenant grid (one tenant with
//! an injected kernel-fault profile, one with a single-slot queue, one
//! with a byte quota tight enough to force streamed admissions and
//! quota rejections) and a mixed stream of workload classes with
//! integer-derived interarrival gaps — no `ln`, no wall clock, nothing
//! host-dependent. Every metric in `SERVE_fusion.json` is modeled
//! (throughput, p50/p99/p999 latency, shed/reject/recovery counters,
//! shared-pool contention gauges), so the report is byte-identical for
//! a fixed fingerprint and gates in CI exactly like `regress` and
//! `stream`: [`serve_invariants`] holds the structural guarantees on
//! every run, [`serve_regressions`] diffs a candidate against the
//! committed baseline with noise-aware relative tolerances.

use super::json::Json;
use fusedml_gpu_sim::{DeviceSpec, FaultProfile};
use fusedml_runtime::{serve, ServeConfig, ServeReport, ServeRequest, TenantSpec, WorkloadClass};
use std::sync::Arc;

/// Bumped when the report's structure changes incompatibly.
pub const SERVE_SCHEMA_VERSION: u64 = 1;

/// Gate tolerances: relative changes beyond these fail the compare.
/// Latency/throughput gates only fire on the *bad* direction
/// (increase/decrease); deterministic counters must not regress at all.
#[derive(Debug, Clone, Copy)]
pub struct ServeGateOptions {
    /// Modeled latency percentiles (relative increase).
    pub latency_tol: f64,
    /// Modeled throughput (relative decrease).
    pub throughput_tol: f64,
}

impl Default for ServeGateOptions {
    fn default() -> Self {
        ServeGateOptions {
            latency_tol: 0.02,
            throughput_tol: 0.02,
        }
    }
}

/// Shape of one serve bench run; becomes the report's fingerprint.
#[derive(Debug, Clone)]
pub struct ServeBenchOptions {
    pub tenants: usize,
    pub requests: usize,
    pub slots: usize,
    pub seed: u64,
    pub device: Arc<DeviceSpec>,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            tenants: 4,
            requests: 48,
            slots: 2,
            seed: 0x5E12_5EED,
            device: Arc::new(DeviceSpec::gtx_titan()),
        }
    }
}

impl ServeBenchOptions {
    fn fingerprint(&self) -> Json {
        Json::obj(vec![
            ("device", Json::str(self.device.name.clone())),
            ("tenants", Json::u64(self.tenants as u64)),
            ("requests", Json::u64(self.requests as u64)),
            ("slots", Json::u64(self.slots as u64)),
            ("seed", Json::str(format!("{:#018x}", self.seed))),
        ])
    }
}

/// SplitMix64 finalizer: every random draw in the arrival process is an
/// integer function of the seed — bit-identical on every host, unlike
/// `f64::ln`-based exponential interarrivals whose libm varies.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Kernel-fault probability injected into tenant 0, high enough that the
/// default grid deterministically exercises the recovery ladder.
const FAULT_RATE: f64 = 0.05;

/// Byte quota of the "metered" tenant: between the streamed and fused
/// footprints of the solver classes, and below the streamed footprint of
/// the graph classes — one constant yields streamed admissions *and*
/// quota rejections.
const METERED_QUOTA: u64 = 9_500;

/// Deadline slack (ms past arrival) of deadline-carrying requests. Tight
/// enough that the tail of a burst sheds, loose enough that an idle grid
/// meets it.
const DEADLINE_SLACK_MS: f64 = 4.5;

/// Build the deterministic tenant grid. Tenant 0 carries the fault
/// profile (the isolation probe), tenant 1 the single-slot queue, tenant
/// 2 the tight byte quota; the rest are steady background load.
fn tenant_grid(opts: &ServeBenchOptions) -> Vec<TenantSpec> {
    (0..opts.tenants)
        .map(|i| match i {
            0 => TenantSpec::new("chaotic", 4, 1 << 20).with_faults(
                FaultProfile::seeded(mix64(opts.seed ^ 0xFA)).with_kernel_fault_rate(FAULT_RATE),
            ),
            1 => TenantSpec::new("bursty", 1, 1 << 20),
            2 => TenantSpec::new("metered", 4, METERED_QUOTA),
            _ => TenantSpec::new(format!("steady-{i}"), 4, 1 << 20),
        })
        .collect()
}

/// The seeded arrival process: interarrival gaps of 0.50..=2.99 ms in
/// 0.01 ms steps (integer-derived), tenant and class drawn uniformly,
/// every third request carrying a deadline. One draw in eight becomes a
/// four-request burst landing on a single tenant at one arrival instant
/// — the backlog that exercises the queue bound and deadline shedding.
fn request_stream(opts: &ServeBenchOptions) -> Vec<ServeRequest> {
    let mut reqs = Vec::with_capacity(opts.requests);
    let mut t = 0.0f64;
    let mut i = 0u64;
    let mut bursts = 0u64;
    while reqs.len() < opts.requests {
        let draw = mix64(opts.seed ^ i.wrapping_mul(0x9E37));
        i += 1;
        t += 0.5 + (draw % 250) as f64 / 100.0;
        let fan = if draw % 8 == 0 { 4 } else { 1 };
        let tenant = if fan > 1 {
            // Alternate bursts between the single-slot tenant (queue
            // rejections) and a drawn tenant (deadline sheds).
            bursts += 1;
            if bursts % 2 == 1 {
                1
            } else {
                (mix64(draw ^ 0x7E) % opts.tenants as u64) as usize
            }
        } else {
            (mix64(draw ^ 0x7E) % opts.tenants as u64) as usize
        };
        for k in 0..fan {
            if reqs.len() == opts.requests {
                break;
            }
            let class = WorkloadClass::ALL
                [(mix64(draw ^ 0xC1 ^ k) % WorkloadClass::ALL.len() as u64) as usize];
            let req = ServeRequest::new(tenant, class, t);
            // Bursts model a latency-sensitive batch: every member
            // carries the deadline; steady traffic every third request.
            reqs.push(if fan > 1 || reqs.len() % 3 == 2 {
                req.with_deadline(t + DEADLINE_SLACK_MS)
            } else {
                req
            });
        }
    }
    reqs
}

fn serve_config(opts: &ServeBenchOptions) -> ServeConfig {
    ServeConfig {
        device: (*opts.device).clone(),
        slots: opts.slots,
        ..ServeConfig::default()
    }
}

/// Nearest-rank percentile of an ascending slice (0 when empty).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Run the serve grid and assemble the schema-versioned report. Every
/// field is modeled, so two runs of one fingerprint are byte-identical.
pub fn serve_bench_report(opts: &ServeBenchOptions) -> Result<Json, String> {
    if opts.tenants < 3 {
        return Err("serve bench needs at least 3 tenants (chaotic, bursty, metered)".to_string());
    }
    if opts.requests == 0 {
        return Err("serve bench needs at least one request".to_string());
    }
    let tenants = tenant_grid(opts);
    let requests = request_stream(opts);
    let cfg = serve_config(opts);
    let report = serve(&tenants, &requests, &cfg).map_err(|e| format!("serve bench: {e}"))?;
    Ok(report_to_json(opts, &report))
}

fn report_to_json(opts: &ServeBenchOptions, report: &ServeReport) -> Json {
    let mut lat = report.latencies_ms();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<f64>() / lat.len() as f64
    };
    let completed = report.completed();
    let throughput_rps = if report.makespan_ms > 0.0 {
        completed as f64 / report.makespan_ms * 1_000.0
    } else {
        0.0
    };
    let sum = |f: fn(&fusedml_runtime::TenantSummary) -> usize| -> u64 {
        report.tenants.iter().map(|t| f(t) as u64).sum()
    };
    let tenants: Vec<Json> = report
        .tenants
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("name", Json::str(t.name.clone())),
                ("faulted", Json::Bool(t.faults_injected > 0)),
                ("submitted", Json::u64(t.submitted as u64)),
                ("completed", Json::u64(t.completed as u64)),
                ("rejected_queue", Json::u64(t.rejected_queue as u64)),
                ("rejected_quota", Json::u64(t.rejected_quota as u64)),
                ("shed", Json::u64(t.shed as u64)),
                ("failed", Json::u64(t.failed as u64)),
                ("recoveries", Json::u64(t.recoveries as u64)),
                ("deadline_misses", Json::u64(t.deadline_misses as u64)),
                ("max_queue_depth", Json::u64(t.max_queue_depth as u64)),
                ("busy_ms", Json::num(t.busy_ms)),
                ("faults_injected", Json::u64(t.faults_injected)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema_version", Json::u64(SERVE_SCHEMA_VERSION)),
        ("fingerprint", opts.fingerprint()),
        (
            "totals",
            Json::obj(vec![
                ("submitted", Json::u64(report.outcomes.len() as u64)),
                ("completed", Json::u64(completed as u64)),
                ("rejected_queue", Json::u64(sum(|t| t.rejected_queue))),
                ("rejected_quota", Json::u64(sum(|t| t.rejected_quota))),
                ("shed", Json::u64(report.shed() as u64)),
                ("failed", Json::u64(report.failed() as u64)),
                ("recoveries", Json::u64(sum(|t| t.recoveries))),
                ("deadline_misses", Json::u64(sum(|t| t.deadline_misses))),
                (
                    "faults_injected",
                    Json::u64(report.tenants.iter().map(|t| t.faults_injected).sum()),
                ),
            ]),
        ),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::num(percentile(&lat, 0.50))),
                ("p99", Json::num(percentile(&lat, 0.99))),
                ("p999", Json::num(percentile(&lat, 0.999))),
                ("max", Json::num(lat.last().copied().unwrap_or(0.0))),
                ("mean", Json::num(mean)),
            ]),
        ),
        ("throughput_rps", Json::num(throughput_rps)),
        ("makespan_ms", Json::num(report.makespan_ms)),
        ("slot_busy_ms", Json::num(report.slot_busy_ms)),
        (
            "pool",
            Json::obj(vec![
                ("hits", Json::u64(report.pool.hits)),
                ("misses", Json::u64(report.pool.misses)),
                ("attached_devices", Json::u64(report.pool.attached_devices)),
                (
                    "peak_outstanding_bytes",
                    Json::u64(report.pool.peak_outstanding_bytes),
                ),
            ]),
        ),
        ("tenants", Json::Arr(tenants)),
    ])
}

/// The structural guarantees CI holds every serve report to, baseline or
/// not. Returns one message per violation.
pub fn serve_invariants(report: &Json) -> Vec<String> {
    let mut bad = Vec::new();
    let totals = match report.field("totals") {
        Ok(t) => t,
        Err(e) => return vec![format!("report has no totals: {e}")],
    };
    let count = |key: &str| totals.field_u64(key).unwrap_or(u64::MAX);
    let (submitted, completed) = (count("submitted"), count("completed"));
    let accounted = completed
        + count("rejected_queue")
        + count("rejected_quota")
        + count("shed")
        + count("failed");
    if submitted != accounted {
        bad.push(format!(
            "request accounting leaks: {submitted} submitted, {accounted} accounted for"
        ));
    }
    if completed == 0 {
        bad.push("no request completed".to_string());
    }
    // With degradation enabled the CPU tier cannot fault, so a failed
    // request means the ladder is broken.
    if count("failed") != 0 {
        bad.push(format!(
            "{} request(s) exhausted the recovery ladder",
            count("failed")
        ));
    }
    let lat = |key: &str| -> f64 {
        report
            .field("latency_ms")
            .and_then(|l| l.field_f64(key))
            .unwrap_or(f64::NAN)
    };
    let (p50, p99, p999, max) = (lat("p50"), lat("p99"), lat("p999"), lat("max"));
    if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
        bad.push(format!(
            "latency percentiles are not monotone: p50 {p50}, p99 {p99}, p999 {p999}, max {max}"
        ));
    }
    match report.field_f64("makespan_ms") {
        Ok(m) if m > 0.0 => {}
        _ => bad.push("makespan is not positive".to_string()),
    }
    // Blast-radius containment: faults stay inside the tenants that carry
    // a fault profile, and a faulted tenant still completes everything it
    // admitted (recovery, not failure).
    let empty = Vec::new();
    let tenants = report
        .get("tenants")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    if tenants.is_empty() {
        bad.push("report has no tenants array".to_string());
    }
    for t in tenants {
        let name = t.field_str("name").unwrap_or("?").to_string();
        let faulted = t.get("faulted") == Some(&Json::Bool(true));
        let g = |key: &str| t.field_u64(key).unwrap_or(u64::MAX);
        if g("failed") != 0 {
            bad.push(format!("tenant {name}: {} failed request(s)", g("failed")));
        }
        if !faulted && g("faults_injected") != 0 {
            bad.push(format!(
                "tenant {name}: {} fault(s) leaked into an unfaulted tenant",
                g("faults_injected")
            ));
        }
        if faulted
            && g("completed") + g("rejected_queue") + g("rejected_quota") + g("shed")
                != g("submitted")
        {
            bad.push(format!(
                "tenant {name}: faulted tenant lost requests (completed {} of {} submitted)",
                g("completed"),
                g("submitted")
            ));
        }
    }
    bad
}

fn rel_increase(base: f64, cand: f64) -> f64 {
    if base <= 0.0 {
        if cand > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (cand - base) / base
    }
}

fn find_tenant<'a>(report: &'a Json, name: &str) -> Option<&'a Json> {
    report
        .get("tenants")?
        .as_arr()?
        .iter()
        .find(|t| t.get("name").and_then(Json::as_str) == Some(name))
}

/// Diff a candidate serve report against the committed baseline. Returns
/// one message per regression; empty means the gate passes. The
/// shed/reject/failed counters are fully deterministic, so any *increase*
/// is a real behavioral regression and gates exactly; the latency and
/// throughput gates carry the noise-aware tolerances.
pub fn serve_regressions(
    baseline: &Json,
    candidate: &Json,
    gate: &ServeGateOptions,
) -> Vec<String> {
    let mut bad = Vec::new();
    let (bv, cv) = (
        baseline.field_u64("schema_version").unwrap_or(0),
        candidate.field_u64("schema_version").unwrap_or(0),
    );
    if bv != cv {
        bad.push(format!("schema_version: baseline {bv} != candidate {cv}"));
        return bad;
    }
    match (
        baseline.field("fingerprint"),
        candidate.field("fingerprint"),
    ) {
        (Ok(b), Ok(c)) if b == c => {}
        (Ok(b), Ok(c)) => bad.push(format!(
            "fingerprint mismatch: baseline {} vs candidate {} — regenerate the baseline \
             instead of comparing different configurations",
            b.render().trim(),
            c.render().trim()
        )),
        _ => bad.push("a report is missing its fingerprint".to_string()),
    }

    // Latency percentiles: increases beyond tolerance fail.
    for key in ["p50", "p99", "p999"] {
        let get = |r: &Json| r.field("latency_ms").and_then(|l| l.field_f64(key));
        match (get(baseline), get(candidate)) {
            (Ok(b), Ok(c)) => {
                let up = rel_increase(b, c);
                if up > gate.latency_tol {
                    bad.push(format!(
                        "latency {key} regressed {:.1}% ({b} -> {c})",
                        up * 100.0
                    ));
                }
            }
            _ => bad.push(format!("latency {key} missing from a report")),
        }
    }
    // Throughput: decreases beyond tolerance fail.
    match (
        baseline.field_f64("throughput_rps"),
        candidate.field_f64("throughput_rps"),
    ) {
        (Ok(b), Ok(c)) => {
            let down = rel_increase(c, b);
            if down > gate.throughput_tol {
                bad.push(format!(
                    "throughput regressed {:.1}% ({b} -> {c} req/s)",
                    down * 100.0
                ));
            }
        }
        _ => bad.push("throughput missing from a report".to_string()),
    }
    // Deterministic counters: completions must not drop, failure-shaped
    // counters must not grow.
    let count = |r: &Json, key: &str| r.field("totals").and_then(|t| t.field_u64(key));
    match (count(baseline, "completed"), count(candidate, "completed")) {
        (Ok(b), Ok(c)) if c < b => {
            bad.push(format!("completed requests dropped {b} -> {c}"));
        }
        (Ok(_), Ok(_)) => {}
        _ => bad.push("completed count missing from a report".to_string()),
    }
    for key in [
        "rejected_queue",
        "rejected_quota",
        "shed",
        "failed",
        "deadline_misses",
    ] {
        if let (Ok(b), Ok(c)) = (count(baseline, key), count(candidate, key)) {
            if c > b {
                bad.push(format!("{key} grew {b} -> {c}"));
            }
        }
    }
    // Per-tenant structure: a tenant disappearing means the grids differ.
    let empty = Vec::new();
    for bt in baseline
        .get("tenants")
        .and_then(Json::as_arr)
        .unwrap_or(&empty)
    {
        let name = bt.field_str("name").unwrap_or("?");
        let Some(ct) = find_tenant(candidate, name) else {
            bad.push(format!("tenant {name} missing from candidate"));
            continue;
        };
        if let (Ok(b), Ok(c)) = (bt.field_u64("completed"), ct.field_u64("completed")) {
            if c < b {
                bad.push(format!("tenant {name}: completed dropped {b} -> {c}"));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ServeBenchOptions {
        ServeBenchOptions {
            requests: 24,
            ..Default::default()
        }
    }

    #[test]
    fn report_is_deterministic_and_passes_its_own_invariants() {
        let opts = tiny_opts();
        let a = serve_bench_report(&opts).unwrap();
        let b = serve_bench_report(&opts).unwrap();
        assert_eq!(a.render(), b.render(), "serve report must be deterministic");
        assert_eq!(serve_invariants(&a), Vec::<String>::new());
        assert_eq!(Json::parse(&a.render()).unwrap(), a);
        assert_eq!(
            serve_regressions(&a, &b, &ServeGateOptions::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn default_grid_exercises_every_admission_path() {
        // The committed baseline must cover the whole admission state
        // machine, or the gate gates nothing: recoveries on the faulted
        // tenant, queue rejections on the single-slot tenant, quota
        // rejections and streamed degradation on the metered tenant, and
        // shed requests under deadline pressure.
        let report = serve_bench_report(&ServeBenchOptions::default()).unwrap();
        let count = |key: &str| {
            report
                .field("totals")
                .and_then(|t| t.field_u64(key))
                .unwrap()
        };
        assert!(count("recoveries") > 0, "no recovery exercised");
        assert!(count("rejected_queue") > 0, "no queue rejection exercised");
        assert!(count("rejected_quota") > 0, "no quota rejection exercised");
        assert!(count("shed") > 0, "no deadline shed exercised");
        assert_eq!(count("failed"), 0);
        assert!(count("faults_injected") > 0, "fault profile never fired");
        // Faults stay on the chaotic tenant.
        let chaotic = find_tenant(&report, "chaotic").unwrap();
        assert!(chaotic.field_u64("faults_injected").unwrap() > 0);
        for t in report.get("tenants").unwrap().as_arr().unwrap() {
            if t.field_str("name").unwrap() != "chaotic" {
                assert_eq!(t.field_u64("faults_injected").unwrap(), 0);
            }
        }
    }

    #[test]
    fn gate_flags_latency_counter_and_structural_regressions() {
        let opts = tiny_opts();
        let base = serve_bench_report(&opts).unwrap();
        let gate = ServeGateOptions::default();

        let mut cand = base.clone();
        if let Json::Obj(m) = &mut cand {
            if let Some(Json::Obj(l)) = m.get_mut("latency_ms") {
                let p99 = l["p99"].as_f64().unwrap();
                l.insert("p99".into(), Json::num(p99 * 1.20));
            }
            if let Some(Json::Obj(t)) = m.get_mut("totals") {
                let shed = t["shed"].as_u64().unwrap();
                t.insert("shed".into(), Json::u64(shed + 3));
            }
            if let Some(Json::Arr(ts)) = m.get_mut("tenants") {
                ts.pop();
            }
        }
        let bad = serve_regressions(&base, &cand, &gate);
        assert!(
            bad.iter().any(|b| b.contains("latency p99 regressed")),
            "{bad:?}"
        );
        assert!(bad.iter().any(|b| b.contains("shed grew")), "{bad:?}");
        assert!(
            bad.iter().any(|b| b.contains("missing from candidate")),
            "{bad:?}"
        );

        // Improvements never fail: swapping roles only leaves the
        // structural finding.
        assert!(serve_regressions(&cand, &base, &gate)
            .iter()
            .all(|b| b.contains("missing")));
    }

    #[test]
    fn invariants_catch_a_cooked_report() {
        let opts = tiny_opts();
        let mut report = serve_bench_report(&opts).unwrap();
        if let Json::Obj(m) = &mut report {
            if let Some(Json::Obj(t)) = m.get_mut("totals") {
                t.insert("failed".into(), Json::u64(2));
            }
            if let Some(Json::Obj(l)) = m.get_mut("latency_ms") {
                l.insert("p50".into(), Json::num(1e9));
            }
            if let Some(Json::Arr(ts)) = m.get_mut("tenants") {
                for t in ts.iter_mut() {
                    if let Json::Obj(o) = t {
                        if o.get("faulted") != Some(&Json::Bool(true)) {
                            o.insert("faults_injected".into(), Json::u64(7));
                            break;
                        }
                    }
                }
            }
        }
        let bad = serve_invariants(&report);
        assert!(
            bad.iter().any(|b| b.contains("accounting leaks")),
            "{bad:?}"
        );
        assert!(
            bad.iter()
                .any(|b| b.contains("exhausted the recovery ladder")),
            "{bad:?}"
        );
        assert!(bad.iter().any(|b| b.contains("not monotone")), "{bad:?}");
        assert!(bad.iter().any(|b| b.contains("leaked")), "{bad:?}");
    }
}
