//! `fusedml-bench cpu` — the *real wall-clock* CPU benchmark.
//!
//! Everything else in the bench suite reports modeled device time; this
//! module actually runs the CPU kernels behind
//! `fusedml_blas::exec::KernelExecutor` (scalar / AVX2 / multithreaded
//! fused) on the host and measures them, then reports the analytical
//! [`CpuEngine`] roofline's predicted-vs-measured ratio per kernel — the
//! first point where the repo's CPU model is validated against reality.
//!
//! Methodology (the fix this subsystem exists to hold onto):
//! * every buffer is preallocated outside the timed regions,
//! * each timing takes the **minimum over `repeats`** timed runs after
//!   one untimed warm-up run,
//! * numerical equivalence between executors is verified **before** any
//!   timing and is a hard failure (exit 1 from the CLI); wall-clock
//!   numbers themselves are never gated — CI runners are too noisy.

use super::json::Json;
use super::suite::Mode;
use fusedml_blas::exec::{
    available_executors, fused_xtxp_csr, scalar_executor, scalar_forced, MtFused, MtWorkspace,
};
use fusedml_blas::CpuEngine;
use fusedml_matrix::gen::{dense_random, random_vector, uniform_sparse};
use fusedml_matrix::{reference, CsrMatrix, DenseMatrix};
use std::time::Instant;

/// Schema version of the `CPU_fusion.json` report.
pub const CPU_SCHEMA_VERSION: u64 = 1;

/// Shape of a `fusedml-bench cpu` run.
#[derive(Debug, Clone)]
pub struct CpuBenchOptions {
    pub mode: Mode,
    /// Row-count multiplier in (0, 1].
    pub scale: f64,
    pub seed: u64,
    /// Timed repeats per kernel (min is reported); must be > 0.
    pub repeats: usize,
    /// Thread counts for the multithreaded fused kernel.
    pub threads: Vec<usize>,
}

impl Default for CpuBenchOptions {
    fn default() -> Self {
        CpuBenchOptions {
            mode: Mode::Quick,
            scale: 1.0,
            seed: 0x5eed,
            repeats: 5,
            threads: vec![1, 2, 4],
        }
    }
}

/// Maximum relative-L2 divergence tolerated between a SIMD executor and
/// the scalar reference on the fused kernel: the 4-lane reduction
/// re-association error, orders of magnitude above what mul+add (no FMA)
/// can accumulate at these sizes.
pub const SIMD_REL_L2_TOL: f64 = 1e-12;

/// One untimed warm-up, then the minimum over `repeats` timed runs.
fn min_ms(repeats: usize, mut kernel: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..=repeats {
        let t = Instant::now();
        kernel();
        let dt = t.elapsed().as_secs_f64() * 1e3;
        if rep > 0 {
            best = best.min(dt);
        }
    }
    best
}

fn leg_json(
    executor: &str,
    threads: usize,
    measured_ms: f64,
    predicted_ms: f64,
    unfused_ms: f64,
) -> Json {
    Json::obj(vec![
        ("executor", Json::str(executor)),
        ("threads", Json::u64(threads as u64)),
        ("measured_ms", Json::num(measured_ms)),
        ("predicted_ms", Json::num(predicted_ms)),
        (
            "predicted_over_measured",
            Json::num(predicted_ms / measured_ms.max(1e-9)),
        ),
        (
            "speedup_vs_unfused",
            Json::num(unfused_ms / measured_ms.max(1e-9)),
        ),
    ])
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Measured fused-vs-unfused `q = X^T (X p)` on one sparse matrix.
fn sparse_workload(x: &CsrMatrix, opts: &CpuBenchOptions) -> Result<Json, String> {
    let (m, n) = (x.rows(), x.cols());
    let p = random_vector(n, opts.seed + 1);
    let execs = available_executors();

    // ---- equivalence gate (before any timing) ----
    let mut tmp = vec![0.0; m];
    let mut unfused = vec![0.0; n];
    reference::csr_mv_into(x, &p, &mut tmp);
    reference::csr_tmv_into(x, &tmp, &mut unfused);

    let mut q_scalar = vec![0.0; n];
    fused_xtxp_csr(scalar_executor(), x, &p, &mut q_scalar);
    if !bits_eq(&q_scalar, &unfused) {
        return Err(
            "equivalence violation: scalar fused kernel is not bit-identical to the \
                    unfused reference"
                .to_string(),
        );
    }
    let mut simd_rel_l2 = 0.0f64;
    for exec in &execs {
        let mut q = vec![0.0; n];
        fused_xtxp_csr(*exec, x, &p, &mut q);
        let err = reference::rel_l2_error(&q, &q_scalar);
        simd_rel_l2 = simd_rel_l2.max(err);
        if err > SIMD_REL_L2_TOL {
            return Err(format!(
                "equivalence violation: executor '{}' diverges from scalar by rel_l2 {err:e} \
                 (tolerance {SIMD_REL_L2_TOL:e})",
                exec.name()
            ));
        }
    }
    // Multithreaded fused: bit-identical across every thread count, per
    // executor, and within SIMD tolerance of the unfused reference.
    for exec in &execs {
        let mt_ref = {
            let mt = MtFused::new(*exec, 1);
            let mut q = vec![0.0; n];
            mt.xtxp(x, &p, &mut q);
            q
        };
        if reference::rel_l2_error(&mt_ref, &unfused) > SIMD_REL_L2_TOL {
            return Err(format!(
                "equivalence violation: multithreaded fused ('{}') diverges from the unfused \
                 reference",
                exec.name()
            ));
        }
        for &t in &opts.threads {
            let mut q = vec![0.0; n];
            MtFused::new(*exec, t).xtxp(x, &p, &mut q);
            if !bits_eq(&q, &mt_ref) {
                return Err(format!(
                    "determinism violation: multithreaded fused ('{}', {t} threads) is not \
                     bit-identical to its single-thread result",
                    exec.name()
                ));
            }
        }
    }

    // ---- roofline predictions ----
    let mut clock = CpuEngine::mkl_8threads();
    let unfused_pred = clock.csrmv_ms(x.nnz(), m) + clock.csrmv_t_ms(x.nnz(), m, n);
    let fused_pred = clock.pattern_sparse_fused_ms(m, n, x.nnz(), false, false, false);

    // ---- timings (preallocated buffers, warm-up, min-over-repeats) ----
    let mut q = vec![0.0; n];
    let unfused_ms = min_ms(opts.repeats, || {
        reference::csr_mv_into(x, &p, &mut tmp);
        reference::csr_tmv_into(x, &tmp, &mut q);
        std::hint::black_box(&q);
    });

    let mut legs = Vec::new();
    for exec in &execs {
        let fused_ms = min_ms(opts.repeats, || {
            fused_xtxp_csr(*exec, x, &p, &mut q);
            std::hint::black_box(&q);
        });
        legs.push(leg_json(exec.name(), 1, fused_ms, fused_pred, unfused_ms));

        for &t in &opts.threads {
            let mt = MtFused::new(*exec, t);
            let mut ws = MtWorkspace::new(n, mt.blocks());
            let mt_ms = min_ms(opts.repeats, || {
                mt.xtxp_with(&mut ws, x, &p, &mut q);
                std::hint::black_box(&q);
            });
            legs.push(leg_json(
                &format!("{}+mt", exec.name()),
                t,
                mt_ms,
                fused_pred,
                unfused_ms,
            ));
        }
    }

    Ok(Json::obj(vec![
        ("id", Json::str(format!("xtxp/csr/{m}x{n}"))),
        ("rows", Json::u64(m as u64)),
        ("cols", Json::u64(n as u64)),
        ("nnz", Json::u64(x.nnz() as u64)),
        (
            "unfused",
            Json::obj(vec![
                ("measured_ms", Json::num(unfused_ms)),
                ("predicted_ms", Json::num(unfused_pred)),
                (
                    "predicted_over_measured",
                    Json::num(unfused_pred / unfused_ms.max(1e-9)),
                ),
            ]),
        ),
        ("fused", Json::Arr(legs)),
        (
            "equivalence",
            Json::obj(vec![
                ("scalar_bit_identical", Json::Bool(true)),
                ("simd_rel_l2", Json::num(simd_rel_l2)),
                (
                    "mt_bit_identical_threads",
                    Json::Arr(opts.threads.iter().map(|&t| Json::u64(t as u64)).collect()),
                ),
            ]),
        ),
    ]))
}

/// Measured fused-vs-unfused pattern on one dense matrix (single-threaded
/// legs only: the dense fused pass is dot+axpy per row through each
/// executor's SIMD primitives).
fn dense_workload(x: &DenseMatrix, opts: &CpuBenchOptions) -> Result<Json, String> {
    let (m, n) = (x.rows(), x.cols());
    let p = random_vector(n, opts.seed + 2);
    let execs = available_executors();

    let mut tmp = vec![0.0; m];
    let mut unfused = vec![0.0; n];
    reference::dense_mv_into(x, &p, &mut tmp);
    reference::dense_tmv_into(x, &tmp, &mut unfused);

    let mut simd_rel_l2 = 0.0f64;
    for exec in &execs {
        let mut w = vec![0.0; n];
        fusedml_blas::exec::fused_pattern_dense(*exec, 1.0, x, None, &p, 0.0, None, &mut w);
        let err = reference::rel_l2_error(&w, &unfused);
        simd_rel_l2 = simd_rel_l2.max(err);
        if err > SIMD_REL_L2_TOL {
            return Err(format!(
                "equivalence violation: dense fused ('{}') diverges from the unfused reference \
                 by rel_l2 {err:e}",
                exec.name()
            ));
        }
    }

    let mut clock = CpuEngine::mkl_8threads();
    let unfused_pred = clock.gemv_ms(m, n) + clock.gemv_t_ms(m, n);
    let fused_pred = clock.pattern_dense_fused_ms(m, n, false, false, false);

    let mut w = vec![0.0; n];
    let unfused_ms = min_ms(opts.repeats, || {
        reference::dense_mv_into(x, &p, &mut tmp);
        reference::dense_tmv_into(x, &tmp, &mut w);
        std::hint::black_box(&w);
    });

    let mut legs = Vec::new();
    for exec in &execs {
        let fused_ms = min_ms(opts.repeats, || {
            fusedml_blas::exec::fused_pattern_dense(*exec, 1.0, x, None, &p, 0.0, None, &mut w);
            std::hint::black_box(&w);
        });
        legs.push(leg_json(exec.name(), 1, fused_ms, fused_pred, unfused_ms));
    }

    Ok(Json::obj(vec![
        ("id", Json::str(format!("pattern/dense/{m}x{n}"))),
        ("rows", Json::u64(m as u64)),
        ("cols", Json::u64(n as u64)),
        (
            "unfused",
            Json::obj(vec![
                ("measured_ms", Json::num(unfused_ms)),
                ("predicted_ms", Json::num(unfused_pred)),
                (
                    "predicted_over_measured",
                    Json::num(unfused_pred / unfused_ms.max(1e-9)),
                ),
            ]),
        ),
        ("fused", Json::Arr(legs)),
        (
            "equivalence",
            Json::obj(vec![
                ("scalar_bit_identical", Json::Bool(true)),
                ("simd_rel_l2", Json::num(simd_rel_l2)),
            ]),
        ),
    ]))
}

/// Run the measured CPU benchmark and produce the schema-versioned JSON
/// report. `Err` means an equivalence/determinism invariant failed or the
/// options are unusable (`repeats == 0`) — the CLI exits 1 on it.
pub fn run_cpu_bench(opts: &CpuBenchOptions) -> Result<Json, String> {
    if opts.repeats == 0 {
        return Err(
            "cpu bench needs --repeats >= 1 (one untimed warm-up plus timed runs)".to_string(),
        );
    }
    if opts.threads.is_empty() || opts.threads.contains(&0) {
        return Err("cpu bench thread list must be non-empty positive counts".to_string());
    }

    let (sp_rows, sp_cols, density) = match opts.mode {
        Mode::Quick => (4_000usize, 384usize, 0.02),
        Mode::Full => (30_000, 1024, 0.01),
    };
    let (d_rows, d_cols) = match opts.mode {
        Mode::Quick => (800usize, 128usize),
        Mode::Full => (6_000, 256),
    };
    let scale = |rows: usize| ((rows as f64 * opts.scale).round() as usize).max(64);

    let x_sparse = uniform_sparse(scale(sp_rows), sp_cols, density, opts.seed);
    let x_dense = dense_random(scale(d_rows), d_cols, opts.seed + 7);

    let workloads = vec![
        sparse_workload(&x_sparse, opts)?,
        dense_workload(&x_dense, opts)?,
    ];

    Ok(Json::obj(vec![
        ("schema_version", Json::u64(CPU_SCHEMA_VERSION)),
        ("kind", Json::str("cpu-bench")),
        ("mode", Json::str(opts.mode.as_str())),
        ("scale", Json::num(opts.scale)),
        ("seed", Json::str(format!("{:#x}", opts.seed))),
        ("repeats", Json::u64(opts.repeats as u64)),
        (
            "host",
            Json::obj(vec![
                (
                    "active_executor",
                    Json::str(fusedml_blas::exec::active_executor().name()),
                ),
                (
                    "avx2_detected",
                    Json::Bool(fusedml_blas::exec::avx2_executor().is_some()),
                ),
                ("forced_scalar", Json::Bool(scalar_forced())),
                (
                    "available_parallelism",
                    Json::u64(
                        std::thread::available_parallelism()
                            .map(|n| n.get() as u64)
                            .unwrap_or(1),
                    ),
                ),
            ]),
        ),
        ("workloads", Json::Arr(workloads)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> CpuBenchOptions {
        CpuBenchOptions {
            scale: 0.02,
            repeats: 1,
            threads: vec![1, 2],
            ..Default::default()
        }
    }

    #[test]
    fn report_has_schema_and_round_trips() {
        let report = run_cpu_bench(&tiny_opts()).expect("equivalence must hold");
        assert_eq!(
            report.field_u64("schema_version").unwrap(),
            CPU_SCHEMA_VERSION
        );
        assert_eq!(report.field_str("kind").unwrap(), "cpu-bench");
        let text = report.render();
        let back = Json::parse(&text).expect("report parses");
        assert_eq!(back, report, "report must round-trip bit-exactly");

        let wls = report.field("workloads").unwrap().as_arr().unwrap();
        assert_eq!(wls.len(), 2);
        for wl in wls {
            let unfused = wl.field("unfused").unwrap();
            assert!(unfused.field_f64("measured_ms").unwrap() >= 0.0);
            assert!(unfused.field_f64("predicted_over_measured").unwrap() > 0.0);
            let legs = wl.field("fused").unwrap().as_arr().unwrap();
            assert!(!legs.is_empty());
            for leg in legs {
                assert!(leg.field_f64("measured_ms").unwrap() >= 0.0);
                assert!(leg.field_f64("speedup_vs_unfused").unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn zero_repeats_is_an_error() {
        let mut opts = tiny_opts();
        opts.repeats = 0;
        assert!(run_cpu_bench(&opts).is_err());
    }

    #[test]
    fn zero_threads_is_an_error() {
        let mut opts = tiny_opts();
        opts.threads = vec![1, 0];
        assert!(run_cpu_bench(&opts).is_err());
    }

    #[test]
    fn host_block_reports_dispatch_state() {
        let report = run_cpu_bench(&tiny_opts()).expect("equivalence must hold");
        let host = report.field("host").unwrap();
        let active = host.field_str("active_executor").unwrap();
        assert!(active == "scalar" || active == "avx2");
        host.field("avx2_detected").unwrap();
        host.field("forced_scalar").unwrap();
        assert!(host.field_u64("available_parallelism").unwrap() >= 1);
    }
}
