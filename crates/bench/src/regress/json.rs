//! Minimal self-contained JSON tree, writer, and parser for the benchmark
//! reports.
//!
//! The regression gate must round-trip `BENCH_fusion.json` in every
//! environment this repo builds in — including the offline dev container,
//! where the `serde_json` dependency resolves to a compile-surface stub
//! (see `.stubs/`). The report schema is small and flat, so a ~200-line
//! hand-rolled JSON layer is cheaper than gating the whole subsystem on a
//! functional serde stack.
//!
//! Numbers are emitted via Rust's shortest-roundtrip float formatting, so
//! deterministic f64 metrics survive a write/parse cycle bit-exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are ordered (BTreeMap) so report files are
/// byte-stable for a given input.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(x: f64) -> Json {
        Json::Num(x)
    }

    pub fn u64(x: u64) -> Json {
        Json::Num(x as f64)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|x| x.round() as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Fetch a required field, with a path-carrying error for diagnosis.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    pub fn field_f64(&self, key: &str) -> Result<f64, String> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| format!("field '{key}' is not a number"))
    }

    pub fn field_u64(&self, key: &str) -> Result<u64, String> {
        self.field(key)?
            .as_u64()
            .ok_or_else(|| format!("field '{key}' is not a number"))
    }

    pub fn field_str(&self, key: &str) -> Result<&str, String> {
        self.field(key)?
            .as_str()
            .ok_or_else(|| format!("field '{key}' is not a string"))
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Accepts exactly the subset `render` emits
    /// (plus arbitrary whitespace), which covers any standard-conforming
    /// producer of the report schema.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; clamp to null (never produced by the suite).
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    let mut chars = text[*pos..].char_indices();
    while let Some((off, c)) = chars.next() {
        match c {
            '"' => {
                *pos += off + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars
                            .next()
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        code = code * 16
                            + h.to_digit(16).ok_or_else(|| "bad \\u escape".to_string())?;
                    }
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_report_shaped_document() {
        let doc = Json::obj(vec![
            ("schema_version", Json::u64(1)),
            ("git_sha", Json::str("abc123")),
            (
                "workloads",
                Json::Arr(vec![Json::obj(vec![
                    ("id", Json::str("lr_cg/csr/50000x1024")),
                    ("modeled_ms", Json::num(1.2345678901234567)),
                    ("dram_read_bytes", Json::u64(123_456_789)),
                    ("ok", Json::Bool(true)),
                    ("none", Json::Null),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            123456.789012345,
            4.9e-324,
            1.7976931348623157e308,
        ] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn large_u64_counters_roundtrip() {
        // Counter values fit f64's 2^53 integer range comfortably.
        let x = 9_007_199_254_740_991u64; // 2^53 - 1
        let back = Json::parse(&Json::u64(x).render()).unwrap();
        assert_eq!(back.as_u64().unwrap(), x);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ newline\n tab\t unicode\u{1}";
        let back = Json::parse(&Json::str(s).render()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_foreign_whitespace_styles() {
        let text = "{\r\n\t\"a\": [1, 2.5, -3e2],  \"b\": {\"c\": null}}";
        let v = Json::parse(text).unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.field("a").unwrap().as_arr().unwrap()[2].as_f64().unwrap(),
            -300.0
        );
    }
}
