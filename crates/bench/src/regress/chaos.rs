//! Deterministic chaos campaign: `fusedml-bench chaos`.
//!
//! Sweeps seeded fault scenarios — every fault class the simulated device
//! can inject (kernel faults, allocation failures, transfer timeouts,
//! silent bit-flip corruption under the integrity layer, mid-run memory
//! pressure, a mixed profile, and — on multi-device scenarios — whole
//! device loss and stragglers) crossed with every solver workload — and
//! checks a small set of robustness invariants per scenario:
//!
//! 1. **never panics** — each scenario runs under `catch_unwind`; a panic
//!    is an invariant failure, not a campaign crash;
//! 2. **converges or aborts typed** — the run ends in a finite solution
//!    or a typed [`SolverError`], never a silently non-finite result;
//! 3. **retries are bounded** — at most [`MAX_DEVICE_ATTEMPTS`] device
//!    attempts before the CPU fallback, counted and checked;
//! 4. **accounting stays consistent** — device allocation never exceeds
//!    capacity, fault classes that were off drew nothing, and (with the
//!    integrity layer on) every injected bit flip was detected;
//! 5. **sharding is bit-transparent** — for multi-device LR-CG scenarios,
//!    the modeled result is bit-identical across an unfaulted 1-device
//!    run, an unfaulted N-device run, and an N-device run that lost one
//!    device (resharded onto the survivors).
//!
//! 6. **tenant isolation holds** — serving scenarios (a multi-tenant
//!    [`fn@fusedml_runtime::serve`] grid with the fault profile pinned to
//!    one seed-derived tenant) require the faulted tenant to recover and
//!    every co-tenant's outcomes to stay bit-identical to a fault-free
//!    run of the same grid: no error, no deadline miss, no latency shift
//!    caused by someone else's faults.
//!
//! Every scenario is a pure function of its 64-bit seed: the workload,
//! fault class, rates, device count, tenant count, interconnect and
//! dataset are all derived from it, and the report contains no
//! wall-clock times — so `chaos replay --seed <s>` reproduces any
//! scenario from a report bit-identically.

use super::json::Json;
use fusedml_gpu_sim::{DeviceGroup, DeviceSpec, FaultCounts, FaultProfile, Gpu, InterconnectSpec};
use fusedml_matrix::gen::{random_labels, random_vector, uniform_sparse};
use fusedml_matrix::{reference, CsrMatrix};
use fusedml_ml::{
    try_glm, try_hits, try_logreg, try_lr_cg, try_svm, Backend, CpuBackend, FusedBackend,
    GlmOptions, HitsOptions, LogRegOptions, LrCgOptions, ShardedBackend, SolverError, SvmOptions,
};
use fusedml_runtime::{
    clean_run, serve, RequestStatus, ServeConfig, ServeRequest, ServeTier, TenantSpec,
    WorkloadClass,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Version of the chaos-report JSON layout. v2 added the multi-device
/// axis: `device_count` / `interconnect` per scenario, the device-loss
/// and straggler fault counts, and the `bit_identity` invariant. v3
/// added the serving axis: a `tenants` count per scenario and the
/// `tenant_isolation` invariant.
pub const CHAOS_SCHEMA_VERSION: u64 = 3;

/// Oldest report layout [`ChaosReport::from_json`] still accepts. v1/v2
/// reports load with the missing fields at their single-session
/// defaults (one device, no interconnect, zero tenants, `bit_identity`
/// and `tenant_isolation` vacuously true).
pub const CHAOS_MIN_SCHEMA_VERSION: u64 = 1;

/// Device attempts (fresh backend each) before falling back to the CPU.
pub const MAX_DEVICE_ATTEMPTS: usize = 4;

/// Scenario-derivation salt, distinct from the injector's per-class salts.
const SCENARIO_SALT: u64 = 0x6368616f735f7363; // "chaos_sc"

/// SplitMix64 finalizer — same mixer the fault injector uses, so scenario
/// derivation inherits its avalanche properties.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Which solver a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    LrCg,
    Glm,
    LogReg,
    Svm,
    Hits,
}

impl Workload {
    pub const ALL: [Workload; 5] = [
        Workload::LrCg,
        Workload::Glm,
        Workload::LogReg,
        Workload::Svm,
        Workload::Hits,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::LrCg => "lr_cg",
            Workload::Glm => "glm",
            Workload::LogReg => "logreg",
            Workload::Svm => "svm",
            Workload::Hits => "hits",
        }
    }

    /// Inverse of [`Workload::name`], for the report loader.
    pub fn from_name(name: &str) -> Result<Workload, String> {
        Workload::ALL
            .into_iter()
            .find(|w| w.name() == name)
            .ok_or_else(|| format!("unknown workload '{name}'"))
    }
}

/// Which injector knob a scenario turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    KernelFaults,
    AllocFaults,
    TransferTimeouts,
    /// Bit flips with the integrity layer armed.
    Corruption,
    /// Mid-run reserve that rejects late allocations.
    MemoryPressure,
    /// Every class at once, at reduced rates (integrity armed).
    Mixed,
    /// Whole-device loss on a sharded multi-device group.
    DeviceLoss,
    /// Straggling shards on a multi-device group (timing-only faults;
    /// the run must still converge to the bit-exact result).
    Straggler,
}

impl FaultClass {
    pub const ALL: [FaultClass; 8] = [
        FaultClass::KernelFaults,
        FaultClass::AllocFaults,
        FaultClass::TransferTimeouts,
        FaultClass::Corruption,
        FaultClass::MemoryPressure,
        FaultClass::Mixed,
        FaultClass::DeviceLoss,
        FaultClass::Straggler,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultClass::KernelFaults => "kernel",
            FaultClass::AllocFaults => "alloc",
            FaultClass::TransferTimeouts => "transfer",
            FaultClass::Corruption => "corruption",
            FaultClass::MemoryPressure => "pressure",
            FaultClass::Mixed => "mixed",
            FaultClass::DeviceLoss => "device-loss",
            FaultClass::Straggler => "straggler",
        }
    }

    /// Inverse of [`FaultClass::name`], for the report loader.
    pub fn from_name(name: &str) -> Result<FaultClass, String> {
        FaultClass::ALL
            .into_iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| format!("unknown fault class '{name}'"))
    }

    /// Classes that require a device group (the rest run on one device).
    fn multi_device(self) -> bool {
        matches!(self, FaultClass::DeviceLoss | FaultClass::Straggler)
    }
}

/// One fully derived scenario. Everything below `seed` is a pure function
/// of it; the struct exists so reports can show the derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Position in the campaign (0 for standalone replays).
    pub index: usize,
    pub seed: u64,
    pub workload: Workload,
    pub class: FaultClass,
    /// Per-opportunity fault probability (reserve fraction for pressure).
    pub rate: f64,
    /// Allocation requests before the pressure reserve arms.
    pub pressure_after_allocs: Option<u64>,
    /// Seed for the scenario's dataset.
    pub data_seed: u64,
    /// Devices the scenario shards over (1 for single-device classes).
    pub device_count: usize,
    /// Interconnect profile name for multi-device scenarios; `"none"`
    /// on one device.
    pub interconnect: &'static str,
    /// Serving-grid tenant count: 0 runs the classic single-session
    /// ladder; `>= 2` runs the workload through the multi-tenant serving
    /// layer with the fault profile pinned to one seed-derived tenant.
    pub tenants: usize,
}

/// Fault-probability tiers: occasional, common, heavy, certain.
const RATES: [f64; 4] = [0.002, 0.02, 0.2, 1.0];

/// Device-loss probability tiers. A loss is terminal for its device, so
/// even the heavy tier stays below the per-launch certainty of [`RATES`]
/// — a rate-1.0 loss class would only ever measure the CPU fallback.
const LOSS_RATES: [f64; 4] = [0.001, 0.005, 0.02, 0.1];

/// Modeled-time slowdown a straggling launch suffers.
const STRAGGLER_SLOWDOWN: f64 = 8.0;

/// Interconnect profiles the multi-device axis draws from.
const INTERCONNECTS: [&str; 2] = ["pcie-gen3-x16", "nvlink2"];

/// `"none"` or a name [`InterconnectSpec::by_name`] accepts.
fn interconnect_static(name: &str) -> Result<&'static str, String> {
    if name == "none" {
        return Ok("none");
    }
    INTERCONNECTS
        .into_iter()
        .find(|n| *n == name)
        .ok_or_else(|| format!("unknown interconnect '{name}'"))
}

/// Derive scenario `index` of the campaign with the given seed.
pub fn scenario(campaign_seed: u64, index: usize) -> Scenario {
    let seed = mix64(campaign_seed.wrapping_add(mix64(SCENARIO_SALT ^ index as u64)));
    Scenario::from_seed(index, seed)
}

impl Scenario {
    /// Derive a scenario purely from its own seed (`chaos replay`).
    pub fn from_seed(index: usize, seed: u64) -> Scenario {
        let workload = Workload::ALL[(mix64(seed ^ 0xA1) % Workload::ALL.len() as u64) as usize];
        let class = FaultClass::ALL[(mix64(seed ^ 0xB2) % FaultClass::ALL.len() as u64) as usize];
        let (rate, pressure_after_allocs) = match class {
            // The reserve must cover the whole (huge) device to reject the
            // campaign's small buffers at all, so the knob is the arming
            // threshold, not the fraction.
            FaultClass::MemoryPressure => (1.0, Some(2 + mix64(seed ^ 0xD4) % 12)),
            FaultClass::DeviceLoss => (
                LOSS_RATES[(mix64(seed ^ 0xC3) % LOSS_RATES.len() as u64) as usize],
                None,
            ),
            _ => (
                RATES[(mix64(seed ^ 0xC3) % RATES.len() as u64) as usize],
                None,
            ),
        };
        let (device_count, interconnect) = if class.multi_device() {
            (
                2 + (mix64(seed ^ 0xF6) % 3) as usize, // 2..=4 devices
                INTERCONNECTS[(mix64(seed ^ 0x1C) % INTERCONNECTS.len() as u64) as usize],
            )
        } else {
            (1, "none")
        };
        // One single-device scenario in four serves its workload through
        // the multi-tenant grid (2..=4 tenants) instead of the classic
        // single-session ladder.
        let tenants = if !class.multi_device() && mix64(seed ^ 0x5E11) % 4 == 0 {
            2 + (mix64(seed ^ 0x7E4A) % 3) as usize
        } else {
            0
        };
        Scenario {
            index,
            seed,
            workload,
            class,
            rate,
            pressure_after_allocs,
            data_seed: mix64(seed ^ 0xE5),
            device_count,
            interconnect,
            tenants,
        }
    }

    fn profile(&self) -> FaultProfile {
        let p = FaultProfile::seeded(self.seed);
        match self.class {
            FaultClass::KernelFaults => p.with_kernel_fault_rate(self.rate),
            FaultClass::AllocFaults => p.with_alloc_fault_rate(self.rate),
            FaultClass::TransferTimeouts => p.with_transfer_timeout_rate(self.rate),
            FaultClass::Corruption => p.with_corruption_rate(self.rate),
            FaultClass::MemoryPressure => {
                p.with_memory_pressure(self.pressure_after_allocs.unwrap_or(2), self.rate)
            }
            FaultClass::Mixed => p
                .with_kernel_fault_rate(self.rate * 0.5)
                .with_alloc_fault_rate(self.rate * 0.25)
                .with_transfer_timeout_rate(self.rate * 0.25)
                .with_corruption_rate(self.rate * 0.25),
            FaultClass::DeviceLoss => p.with_device_loss_rate(self.rate),
            FaultClass::Straggler => p.with_straggler(self.rate, STRAGGLER_SLOWDOWN),
        }
    }

    /// The interconnect spec of a multi-device scenario.
    fn interconnect_spec(&self) -> InterconnectSpec {
        InterconnectSpec::by_name(self.interconnect).unwrap_or_else(|| {
            panic!(
                "scenario carries unknown interconnect {}",
                self.interconnect
            )
        })
    }

    /// Corruption-bearing scenarios arm the checksum layer; pure
    /// fail-stop classes leave it off, matching production defaults.
    fn integrity(&self) -> bool {
        matches!(self.class, FaultClass::Corruption | FaultClass::Mixed)
    }

    /// The serving-layer workload class of a serving scenario (the
    /// logistic solver serves on its trust-region implementation).
    fn serve_class(&self) -> WorkloadClass {
        match self.workload {
            Workload::LrCg => WorkloadClass::LrCg,
            Workload::Glm => WorkloadClass::Glm,
            Workload::LogReg => WorkloadClass::Tron,
            Workload::Svm => WorkloadClass::Svm,
            Workload::Hits => WorkloadClass::Hits,
        }
    }
}

/// Dataset shared by every attempt of one scenario.
struct ScenarioData {
    x: CsrMatrix,
    labels: Vec<f64>,
}

/// Small enough that a 200-scenario campaign stays in CI-smoke territory,
/// large enough that every solver does real device work.
const ROWS: usize = 160;
const COLS: usize = 24;

impl ScenarioData {
    fn generate(sc: &Scenario) -> ScenarioData {
        let x = uniform_sparse(ROWS, COLS, 0.08, sc.data_seed);
        let labels = match sc.workload {
            Workload::LrCg => reference::csr_mv(&x, &random_vector(COLS, sc.data_seed + 1)),
            Workload::Glm => reference::csr_mv(&x, &random_vector(COLS, sc.data_seed + 1))
                .iter()
                .map(|&e| e.clamp(-3.0, 3.0).exp())
                .collect(),
            Workload::LogReg | Workload::Svm => random_labels(ROWS, sc.data_seed + 1),
            Workload::Hits => Vec::new(),
        };
        ScenarioData { x, labels }
    }
}

/// Drive the scenario's solver; the returned vector is the iterate the
/// finiteness invariant inspects.
fn run_workload<B: Backend>(
    b: &mut B,
    workload: Workload,
    data: &ScenarioData,
) -> Result<Vec<f64>, SolverError> {
    match workload {
        Workload::LrCg => try_lr_cg(
            b,
            &data.labels,
            LrCgOptions {
                max_iterations: 6,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::Glm => try_glm(
            b,
            &data.labels,
            GlmOptions {
                max_outer: 3,
                max_inner_cg: 8,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::LogReg => try_logreg(
            b,
            &data.labels,
            LogRegOptions {
                max_outer: 3,
                max_inner_cg: 8,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::Svm => try_svm(
            b,
            &data.labels,
            SvmOptions {
                max_outer: 3,
                max_inner_cg: 8,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::Hits => try_hits(
            b,
            HitsOptions {
                max_iterations: 6,
                ..Default::default()
            },
        )
        .map(|r| r.authorities),
    }
}

/// Per-scenario invariant verdicts (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantChecks {
    pub no_panic: bool,
    pub typed_outcome: bool,
    pub finite_result: bool,
    pub bounded_attempts: bool,
    pub accounting: bool,
    /// Multi-device LR-CG scenarios: the modeled result is bit-identical
    /// across a 1-device run, an N-device run, and an N-device run that
    /// lost one device, all unfaulted. Serving scenarios: every completion
    /// that stayed on its admitted tier is bit-identical to the fault-free
    /// single-session [`clean_run`] of that tier. Vacuously true elsewhere.
    pub bit_identity: bool,
    /// Serving scenarios only (vacuously true elsewhere): the faulted
    /// tenant recovered (no `Failed` outcome) and every co-tenant's
    /// outcomes — status, timing bits, weight bits — are identical to a
    /// fault-free run of the same grid, with zero faults leaking into
    /// co-tenant attempts.
    pub tenant_isolation: bool,
}

impl InvariantChecks {
    pub fn pass(&self) -> bool {
        self.no_panic
            && self.typed_outcome
            && self.finite_result
            && self.bounded_attempts
            && self.accounting
            && self.bit_identity
            && self.tenant_isolation
    }

    fn failed() -> InvariantChecks {
        InvariantChecks {
            no_panic: false,
            typed_outcome: false,
            finite_result: false,
            bounded_attempts: false,
            accounting: false,
            bit_identity: false,
            tenant_isolation: false,
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("no_panic", Json::Bool(self.no_panic)),
            ("typed_outcome", Json::Bool(self.typed_outcome)),
            ("finite_result", Json::Bool(self.finite_result)),
            ("bounded_attempts", Json::Bool(self.bounded_attempts)),
            ("accounting", Json::Bool(self.accounting)),
            ("bit_identity", Json::Bool(self.bit_identity)),
            ("tenant_isolation", Json::Bool(self.tenant_isolation)),
        ])
    }

    fn from_json(j: &Json) -> Result<InvariantChecks, String> {
        let flag = |key: &str| -> Result<bool, String> {
            match j.field(key)? {
                Json::Bool(b) => Ok(*b),
                _ => Err(format!("field '{key}' is not a bool")),
            }
        };
        Ok(InvariantChecks {
            no_panic: flag("no_panic")?,
            typed_outcome: flag("typed_outcome")?,
            finite_result: flag("finite_result")?,
            bounded_attempts: flag("bounded_attempts")?,
            accounting: flag("accounting")?,
            // v1 reports predate the invariant; it held vacuously there.
            bit_identity: match j.get("bit_identity") {
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("field 'bit_identity' is not a bool".to_string()),
                None => true,
            },
            // v1/v2 reports predate serving scenarios.
            tenant_isolation: match j.get("tenant_isolation") {
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("field 'tenant_isolation' is not a bool".to_string()),
                None => true,
            },
        })
    }
}

/// Outcome of one scenario. Deterministic for a given scenario seed —
/// nothing in here depends on the host or the clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    pub scenario: Scenario,
    /// `"converged"`, `"typed-abort"` or `"panic"`.
    pub outcome: &'static str,
    /// Tier that produced the outcome: `"fused"`, `"cpu"`, or `"none"`.
    pub tier: &'static str,
    /// Error class of a typed abort (`None` when converged).
    pub error_kind: Option<String>,
    /// Total solver attempts, CPU fallback included.
    pub attempts: usize,
    pub faults: FaultCounts,
    pub integrity_checks: u64,
    pub integrity_violations: u64,
    pub invariants: InvariantChecks,
}

impl ScenarioResult {
    pub fn pass(&self) -> bool {
        self.invariants.pass()
    }

    pub fn to_json(&self) -> Json {
        let sc = &self.scenario;
        Json::obj(vec![
            ("index", Json::u64(sc.index as u64)),
            ("seed", Json::str(format!("{:#018x}", sc.seed))),
            ("workload", Json::str(sc.workload.name())),
            ("fault_class", Json::str(sc.class.name())),
            ("rate", Json::num(sc.rate)),
            (
                "pressure_after_allocs",
                sc.pressure_after_allocs.map_or(Json::Null, Json::u64),
            ),
            ("device_count", Json::u64(sc.device_count as u64)),
            ("interconnect", Json::str(sc.interconnect)),
            ("tenants", Json::u64(sc.tenants as u64)),
            ("outcome", Json::str(self.outcome)),
            ("tier", Json::str(self.tier)),
            (
                "error_kind",
                self.error_kind.as_deref().map_or(Json::Null, Json::str),
            ),
            ("attempts", Json::u64(self.attempts as u64)),
            (
                "faults",
                Json::obj(vec![
                    ("kernel", Json::u64(self.faults.kernel_faults)),
                    ("alloc", Json::u64(self.faults.alloc_faults)),
                    ("transfer", Json::u64(self.faults.transfer_timeouts)),
                    ("watchdog", Json::u64(self.faults.watchdog_timeouts)),
                    ("corruptions", Json::u64(self.faults.corruptions)),
                    (
                        "pressure_rejections",
                        Json::u64(self.faults.pressure_rejections),
                    ),
                    ("device_losses", Json::u64(self.faults.device_losses)),
                    ("stragglers", Json::u64(self.faults.stragglers)),
                ]),
            ),
            (
                "integrity",
                Json::obj(vec![
                    ("checks", Json::u64(self.integrity_checks)),
                    ("violations", Json::u64(self.integrity_violations)),
                ]),
            ),
            ("invariants", self.invariants.to_json()),
            ("pass", Json::Bool(self.pass())),
        ])
    }

    /// Parse one result row; accepts v1 rows (multi-device fields absent).
    fn from_json(j: &Json) -> Result<ScenarioResult, String> {
        let seed = parse_hex_u64(j.field_str("seed")?)?;
        let scenario = Scenario {
            index: j.field_u64("index")? as usize,
            seed,
            workload: Workload::from_name(j.field_str("workload")?)?,
            class: FaultClass::from_name(j.field_str("fault_class")?)?,
            rate: j.field_f64("rate")?,
            pressure_after_allocs: match j.field("pressure_after_allocs")? {
                Json::Null => None,
                v => Some(v.as_u64().ok_or("pressure_after_allocs is not a number")?),
            },
            // Not serialized: a pure function of the seed, like the rest
            // of the derivation.
            data_seed: mix64(seed ^ 0xE5),
            device_count: match j.get("device_count") {
                Some(v) => v.as_u64().ok_or("device_count is not a number")? as usize,
                None => 1, // v1 report: everything ran on one device
            },
            interconnect: match j.get("interconnect") {
                Some(v) => interconnect_static(v.as_str().ok_or("interconnect is not a string")?)?,
                None => "none",
            },
            tenants: match j.get("tenants") {
                Some(v) => v.as_u64().ok_or("tenants is not a number")? as usize,
                None => 0, // v1/v2 report: no serving axis yet
            },
        };
        let outcome = match j.field_str("outcome")? {
            "converged" => "converged",
            "typed-abort" => "typed-abort",
            "panic" => "panic",
            other => return Err(format!("unknown outcome '{other}'")),
        };
        let tier = match j.field_str("tier")? {
            "fused" => "fused",
            "sharded" => "sharded",
            "serve" => "serve",
            "cpu" => "cpu",
            "none" => "none",
            other => return Err(format!("unknown tier '{other}'")),
        };
        let f = j.field("faults")?;
        let opt_count = |key: &str| -> Result<u64, String> {
            match f.get(key) {
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("faults.{key} is not a number")),
                None => Ok(0), // v1 report: class did not exist yet
            }
        };
        let integrity = j.field("integrity")?;
        Ok(ScenarioResult {
            scenario,
            outcome,
            tier,
            error_kind: match j.field("error_kind")? {
                Json::Null => None,
                v => Some(v.as_str().ok_or("error_kind is not a string")?.to_string()),
            },
            attempts: j.field_u64("attempts")? as usize,
            faults: FaultCounts {
                kernel_faults: f.field_u64("kernel")?,
                alloc_faults: f.field_u64("alloc")?,
                transfer_timeouts: f.field_u64("transfer")?,
                watchdog_timeouts: f.field_u64("watchdog")?,
                corruptions: f.field_u64("corruptions")?,
                pressure_rejections: f.field_u64("pressure_rejections")?,
                device_losses: opt_count("device_losses")?,
                stragglers: opt_count("stragglers")?,
            },
            integrity_checks: integrity.field_u64("checks")?,
            integrity_violations: integrity.field_u64("violations")?,
            invariants: InvariantChecks::from_json(j.field("invariants")?)?,
        })
    }
}

/// Parse the `{:#018x}` seeds reports carry.
fn parse_hex_u64(s: &str) -> Result<u64, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("seed '{s}' is not 0x-hex"))?;
    u64::from_str_radix(hex, 16).map_err(|e| format!("seed '{s}': {e}"))
}

/// The fallback ladder of one scenario, minus the panic guard: fresh
/// fused backends up to the attempt budget, then the CPU.
fn run_scenario_inner(sc: &Scenario, data: &ScenarioData) -> ScenarioResult {
    if sc.device_count > 1 {
        return run_scenario_sharded(sc, data);
    }
    if sc.tenants >= 2 {
        return run_scenario_serving(sc);
    }
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
        .with_fault_profile(sc.profile())
        .with_integrity_checks(sc.integrity());

    let mut attempts = 0usize;
    let mut device_ok: Option<Vec<f64>> = None;
    while attempts < MAX_DEVICE_ATTEMPTS {
        attempts += 1;
        let outcome = FusedBackend::try_new_sparse(&gpu, &data.x)
            .map_err(SolverError::from)
            .and_then(|mut b| run_workload(&mut b, sc.workload, data));
        match outcome {
            Ok(v) => {
                device_ok = Some(v);
                break;
            }
            Err(e) if e.is_transient() => continue,
            Err(_) => break, // permanent on this device: straight to CPU
        }
    }
    let (tier, result) = match device_ok {
        Some(v) => ("fused", Ok(v)),
        None => {
            attempts += 1;
            let mut b = CpuBackend::new_sparse(data.x.clone());
            ("cpu", run_workload(&mut b, sc.workload, data))
        }
    };

    let faults = gpu.faults().counts();
    let integrity = gpu.integrity_stats();
    let capacity_ok = gpu.allocated_bytes() <= gpu.spec().global_mem_bytes as u64;

    // Classes that were off must not have drawn; with checksums armed,
    // every injected flip must have been caught (a pure-corruption run
    // checks each flip the moment the poisoned buffer lands, so the
    // counts match exactly; under the mixed profile another fault can
    // abort the transfer between the draw and the check).
    let kernel_on = matches!(sc.class, FaultClass::KernelFaults | FaultClass::Mixed);
    let alloc_on = matches!(sc.class, FaultClass::AllocFaults | FaultClass::Mixed);
    let transfer_on = matches!(sc.class, FaultClass::TransferTimeouts | FaultClass::Mixed);
    let corruption_on = matches!(sc.class, FaultClass::Corruption | FaultClass::Mixed);
    let pressure_on = matches!(sc.class, FaultClass::MemoryPressure);
    let gating_ok = (kernel_on || faults.kernel_faults == 0)
        && (alloc_on || faults.alloc_faults == 0)
        && (transfer_on || faults.transfer_timeouts == 0)
        && (corruption_on || faults.corruptions == 0)
        && (pressure_on || faults.pressure_rejections == 0)
        && faults.watchdog_timeouts == 0
        // Single-device classes never lose devices or straggle.
        && faults.device_losses == 0
        && faults.stragglers == 0;
    let detection_ok = match sc.class {
        FaultClass::Corruption => integrity.violations == faults.corruptions,
        FaultClass::Mixed => integrity.violations <= faults.corruptions,
        _ => integrity.violations == 0,
    };

    let (outcome, error_kind, finite_result) = match &result {
        Ok(v) => (
            "converged",
            None,
            v.iter().all(|x| x.is_finite()) && !v.is_empty(),
        ),
        Err(e) => ("typed-abort", Some(e.kind().to_string()), true),
    };

    ScenarioResult {
        scenario: *sc,
        outcome,
        tier,
        error_kind,
        attempts,
        faults,
        integrity_checks: integrity.checks,
        integrity_violations: integrity.violations,
        invariants: InvariantChecks {
            no_panic: true,
            typed_outcome: true, // by construction: Ok or SolverError
            finite_result,
            bounded_attempts: attempts <= MAX_DEVICE_ATTEMPTS + 1,
            accounting: capacity_ok && gating_ok && detection_ok,
            bit_identity: true,     // single-device: nothing to compare
            tenant_isolation: true, // single-session: no co-tenants
        },
    }
}

/// The multi-device ladder: fresh sharded backends up to the attempt
/// budget, then the CPU. A device loss is permanent for its device but
/// not for the group — the next attempt's backend construction filters
/// the lost ordinal and reshards the rows onto the survivors, so losses
/// retry like transients as long as anyone is alive.
fn run_scenario_sharded(sc: &Scenario, data: &ScenarioData) -> ScenarioResult {
    let group = DeviceGroup::new(
        DeviceSpec::gtx_titan(),
        sc.device_count,
        sc.interconnect_spec(),
        &sc.profile(),
    );

    let mut attempts = 0usize;
    let mut device_ok: Option<Vec<f64>> = None;
    while attempts < MAX_DEVICE_ATTEMPTS {
        attempts += 1;
        let outcome = ShardedBackend::try_new_sparse(&group, &data.x)
            .map_err(SolverError::from)
            .and_then(|mut b| run_workload(&mut b, sc.workload, data));
        match outcome {
            Ok(v) => {
                device_ok = Some(v);
                break;
            }
            Err(e)
                if group.alive_count() > 0
                    && (e.is_transient()
                        || e.device_error().map(|d| d.kind()) == Some("device-lost")) =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let (tier, result) = match device_ok {
        Some(v) => ("sharded", Ok(v)),
        None => {
            attempts += 1;
            let mut b = CpuBackend::new_sparse(data.x.clone());
            ("cpu", run_workload(&mut b, sc.workload, data))
        }
    };

    let faults = group.fault_counts();
    let capacity_ok = (0..group.len()).all(|i| {
        group.device(i).allocated_bytes() <= group.device(i).spec().global_mem_bytes as u64
    });
    // Only the scenario's own class may draw; the integrity layer is off,
    // so no violations can be reported.
    let loss_on = sc.class == FaultClass::DeviceLoss;
    let straggler_on = sc.class == FaultClass::Straggler;
    let gating_ok = faults.kernel_faults == 0
        && faults.alloc_faults == 0
        && faults.transfer_timeouts == 0
        && faults.corruptions == 0
        && faults.pressure_rejections == 0
        && faults.watchdog_timeouts == 0
        && (loss_on || faults.device_losses == 0)
        && (straggler_on || faults.stragglers == 0);
    let detection_ok = (0..group.len()).all(|i| group.device(i).integrity_stats().violations == 0);

    let (outcome, error_kind, finite_result) = match &result {
        Ok(v) => (
            "converged",
            None,
            v.iter().all(|x| x.is_finite()) && !v.is_empty(),
        ),
        Err(e) => ("typed-abort", Some(e.kind().to_string()), true),
    };

    // The sharding-transparency invariant only has a sharded reference
    // implementation for LR-CG; the other solvers exercise it indirectly
    // through the pattern kernels they share with it.
    let bit_identity = if sc.workload == Workload::LrCg {
        check_bit_identity(sc, data)
    } else {
        true
    };

    ScenarioResult {
        scenario: *sc,
        outcome,
        tier,
        error_kind,
        attempts,
        faults,
        integrity_checks: (0..group.len())
            .map(|i| group.device(i).integrity_stats().checks)
            .sum(),
        integrity_violations: (0..group.len())
            .map(|i| group.device(i).integrity_stats().violations)
            .sum(),
        invariants: InvariantChecks {
            no_panic: true,
            typed_outcome: true,
            finite_result,
            bounded_attempts: attempts <= MAX_DEVICE_ATTEMPTS + 1,
            accounting: capacity_ok && gating_ok && detection_ok,
            bit_identity,
            tenant_isolation: true, // single-session: no co-tenants
        },
    }
}

/// The serving tier: run the scenario's workload through a multi-tenant
/// [`serve`] grid with the fault profile pinned to one seed-derived
/// tenant, then re-run the identical grid fault-free and hold invariant
/// 6 — the faulted tenant recovers (every request completes; the ladder
/// may degrade it, never `Failed`) and each co-tenant's outcomes are
/// bit-identical between the two runs: same status, same timing bits,
/// same weight bits, zero faults drawn in their own attempts.
fn run_scenario_serving(sc: &Scenario) -> ScenarioResult {
    let class = sc.serve_class();
    let faulted = (mix64(sc.seed ^ 0x7E11) % sc.tenants as u64) as usize;
    let cfg = ServeConfig::default();
    // Roomy queues and an unbounded quota: admission pressure is the
    // bench suite's concern; this scenario isolates fault blast radius.
    let grid = |faults_on: bool| -> Vec<TenantSpec> {
        (0..sc.tenants)
            .map(|i| {
                let spec = TenantSpec::new(format!("tenant-{i}"), 8, u64::MAX);
                if faults_on && i == faulted {
                    spec.with_faults(sc.profile())
                } else {
                    spec
                }
            })
            .collect()
    };
    // Two staggered requests per tenant so the grid contends for the
    // shared slots; deadlines are generous enough that only a fault
    // blast radius could miss one.
    let requests: Vec<ServeRequest> = (0..sc.tenants * 2)
        .map(|r| {
            let arrival = r as f64 * 3.0;
            ServeRequest::new(r % sc.tenants, class, arrival).with_deadline(arrival + 20_000.0)
        })
        .collect();

    let pair = serve(&grid(true), &requests, &cfg)
        .and_then(|f| serve(&grid(false), &requests, &cfg).map(|c| (f, c)));
    let (faulted_run, reference_run) = match pair {
        Ok(pair) => pair,
        Err(e) => {
            // A config refusal means the grid never ran: the abort is
            // typed, but every serving invariant went unverified.
            return ScenarioResult {
                scenario: *sc,
                outcome: "typed-abort",
                tier: "serve",
                error_kind: Some(e.kind().to_string()),
                attempts: 0,
                faults: FaultCounts::default(),
                integrity_checks: 0,
                integrity_violations: 0,
                invariants: InvariantChecks::failed(),
            };
        }
    };

    let mut faults = FaultCounts::default();
    let mut attempts = 0usize;
    let mut finite_result = true;
    for o in &faulted_run.outcomes {
        faults.kernel_faults += o.faults.kernel_faults;
        faults.alloc_faults += o.faults.alloc_faults;
        faults.transfer_timeouts += o.faults.transfer_timeouts;
        faults.watchdog_timeouts += o.faults.watchdog_timeouts;
        faults.corruptions += o.faults.corruptions;
        faults.pressure_rejections += o.faults.pressure_rejections;
        faults.device_losses += o.faults.device_losses;
        faults.stragglers += o.faults.stragglers;
        if let RequestStatus::Completed { attempts: a, .. } = o.status {
            attempts = attempts.max(a);
            finite_result =
                finite_result && !o.weights.is_empty() && o.weights.iter().all(|x| x.is_finite());
        }
    }

    // Same class gating as the single-device ladder: only the scenario's
    // own knob may draw, and serving profiles never lose devices,
    // straggle, or trip the watchdog.
    let kernel_on = matches!(sc.class, FaultClass::KernelFaults | FaultClass::Mixed);
    let alloc_on = matches!(sc.class, FaultClass::AllocFaults | FaultClass::Mixed);
    let transfer_on = matches!(sc.class, FaultClass::TransferTimeouts | FaultClass::Mixed);
    let corruption_on = matches!(sc.class, FaultClass::Corruption | FaultClass::Mixed);
    let pressure_on = matches!(sc.class, FaultClass::MemoryPressure);
    let gating_ok = (kernel_on || faults.kernel_faults == 0)
        && (alloc_on || faults.alloc_faults == 0)
        && (transfer_on || faults.transfer_timeouts == 0)
        && (corruption_on || faults.corruptions == 0)
        && (pressure_on || faults.pressure_rejections == 0)
        && faults.watchdog_timeouts == 0
        && faults.device_losses == 0
        && faults.stragglers == 0;

    // Invariant 6: the faulted tenant recovers everything it submitted,
    // and each co-tenant observes bit-for-bit the run it would have had
    // without the noisy neighbour.
    let recovered = faulted_run.tenants[faulted].completed
        == faulted_run.tenants[faulted].submitted
        && faulted_run.tenants[faulted].failed == 0;
    let co_clean = faulted_run
        .tenants
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != faulted)
        .all(|(_, t)| t.faults_injected == 0 && t.failed == 0);
    let co_identical = faulted_run
        .outcomes
        .iter()
        .zip(&reference_run.outcomes)
        .filter(|(o, _)| o.tenant != faulted)
        .all(|(a, b)| {
            a.status == b.status
                && a.start_ms.to_bits() == b.start_ms.to_bits()
                && a.completion_ms.to_bits() == b.completion_ms.to_bits()
                && a.latency_ms.to_bits() == b.latency_ms.to_bits()
                && a.weights.len() == b.weights.len()
                && a.weights
                    .iter()
                    .zip(&b.weights)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        });
    let tenant_isolation = recovered && co_clean && co_identical;

    // Invariant 5, serving form: a completion that stayed on its admitted
    // tier is bit-identical to the fault-free single-session [`clean_run`]
    // of that tier. Cross-tier resumes splice two trajectories through a
    // checkpoint and are excluded by design.
    let mut references: HashMap<ServeTier, Option<Vec<u64>>> = HashMap::new();
    let mut bit_identity = true;
    for o in &faulted_run.outcomes {
        let RequestStatus::Completed {
            tier,
            admitted_tier,
            ..
        } = o.status
        else {
            continue;
        };
        if tier != admitted_tier {
            continue;
        }
        let reference = references.entry(tier).or_insert_with(|| {
            clean_run(class, tier, &cfg)
                .ok()
                .map(|r| r.weights.iter().map(|x| x.to_bits()).collect())
        });
        bit_identity = bit_identity
            && reference.as_ref().is_some_and(|bits| {
                o.weights.len() == bits.len()
                    && o.weights
                        .iter()
                        .zip(bits.iter())
                        .all(|(x, b)| x.to_bits() == *b)
            });
    }

    // With roomy queues, no quota and 20 s of deadline slack, nothing
    // may be refused: every submitted request must complete.
    let all_completed = faulted_run.completed() == requests.len();
    let attempt_bound = (cfg.policy.max_retries + 1) * 3; // 3 tiers

    ScenarioResult {
        scenario: *sc,
        outcome: if all_completed {
            "converged"
        } else {
            "typed-abort"
        },
        tier: "serve",
        error_kind: faulted_run.outcomes.iter().find_map(|o| match &o.status {
            RequestStatus::Rejected { error }
            | RequestStatus::Shed { error }
            | RequestStatus::Failed { error } => Some(error.kind().to_string()),
            RequestStatus::Completed { .. } => None,
        }),
        attempts,
        faults,
        // Integrity stats live inside the serving layer's per-attempt
        // devices; detected corruptions surface in `faults.corruptions`.
        integrity_checks: 0,
        integrity_violations: 0,
        invariants: InvariantChecks {
            no_panic: true,
            typed_outcome: true,
            finite_result,
            bounded_attempts: attempts <= attempt_bound,
            accounting: gating_ok && all_completed,
            bit_identity,
            tenant_isolation,
        },
    }
}

/// Invariant 5: on unfaulted groups, 1-device, N-device and
/// N-device-minus-one runs of the scenario's LR-CG workload must agree
/// bit for bit (the canonical shard reduction makes the result
/// shard-count-invariant).
fn check_bit_identity(sc: &Scenario, data: &ScenarioData) -> bool {
    let solve = |group: &DeviceGroup| -> Option<Vec<f64>> {
        let mut b = ShardedBackend::try_new_sparse(group, &data.x).ok()?;
        run_workload(&mut b, Workload::LrCg, data).ok()
    };
    let clean = FaultProfile::disabled();
    let spec = DeviceSpec::gtx_titan();
    let one = DeviceGroup::new(spec.clone(), 1, sc.interconnect_spec(), &clean);
    let full = DeviceGroup::new(
        spec.clone(),
        sc.device_count,
        sc.interconnect_spec(),
        &clean,
    );
    let degraded = DeviceGroup::new(spec, sc.device_count, sc.interconnect_spec(), &clean);
    // Lose a seed-derived device before solving; construction reshards
    // the rows across the survivors (device_count >= 2, so >= 1 remains).
    degraded.mark_lost((mix64(sc.seed ^ 0x1D) % sc.device_count as u64) as usize);
    match (solve(&one), solve(&full), solve(&degraded)) {
        (Some(a), Some(b), Some(c)) => {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            bits(&a) == bits(&b) && bits(&b) == bits(&c)
        }
        _ => false,
    }
}

/// Run one scenario under the panic guard.
pub fn run_scenario(sc: &Scenario) -> ScenarioResult {
    let data = ScenarioData::generate(sc);
    match catch_unwind(AssertUnwindSafe(|| run_scenario_inner(sc, &data))) {
        Ok(r) => r,
        Err(_) => ScenarioResult {
            scenario: *sc,
            outcome: "panic",
            tier: "none",
            error_kind: None,
            attempts: 0,
            faults: FaultCounts::default(),
            integrity_checks: 0,
            integrity_violations: 0,
            invariants: InvariantChecks::failed(),
        },
    }
}

/// Campaign shape: how many scenarios off which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosOptions {
    pub scenarios: usize,
    pub seed: u64,
    /// Restrict the campaign to one fault class (`--class`): derivation
    /// walks the same index sequence but only runs matching scenarios,
    /// so a filtered row replays bit-identically from its seed.
    pub only_class: Option<FaultClass>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            scenarios: 200,
            seed: 0xC4A0_55EED,
            only_class: None,
        }
    }
}

/// A finished campaign; serializes to the schema-versioned chaos report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    pub seed: u64,
    pub results: Vec<ScenarioResult>,
}

impl ChaosReport {
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.pass()).count()
    }

    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::u64(CHAOS_SCHEMA_VERSION)),
            ("campaign_seed", Json::str(format!("{:#018x}", self.seed))),
            ("scenarios", Json::u64(self.results.len() as u64)),
            ("failures", Json::u64(self.failures() as u64)),
            (
                "results",
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parse a report. Accepts every schema back to
    /// [`CHAOS_MIN_SCHEMA_VERSION`]: v1 rows load with one device, no
    /// interconnect, zero device-loss/straggler counts and a vacuously
    /// true `bit_identity` invariant.
    pub fn from_json(j: &Json) -> Result<ChaosReport, String> {
        let version = j.field_u64("schema_version")?;
        if !(CHAOS_MIN_SCHEMA_VERSION..=CHAOS_SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported chaos schema version {version} (supported: {CHAOS_MIN_SCHEMA_VERSION}..={CHAOS_SCHEMA_VERSION})"
            ));
        }
        let seed = parse_hex_u64(j.field_str("campaign_seed")?)?;
        let rows = j
            .field("results")?
            .as_arr()
            .ok_or("'results' is not an array")?;
        let mut results = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            results.push(ScenarioResult::from_json(row).map_err(|e| format!("results[{i}]: {e}"))?);
        }
        Ok(ChaosReport { seed, results })
    }

    /// Load a report file (see [`ChaosReport::from_json`]).
    pub fn load(path: &str) -> Result<ChaosReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Self::from_json(&json).map_err(|e| format!("{path}: {e}"))
    }
}

/// Run the whole campaign. `progress` sees each result as it lands
/// (pass `|_| {}` to silence).
pub fn run_campaign(opts: &ChaosOptions, mut progress: impl FnMut(&ScenarioResult)) -> ChaosReport {
    let mut results = Vec::with_capacity(opts.scenarios);
    // With a class filter, walk far enough down the index sequence to
    // collect the quota; the indices recorded in the report stay the
    // unfiltered campaign positions, so replay-by-seed is unaffected.
    let index_budget = opts.scenarios * if opts.only_class.is_some() { 64 } else { 1 };
    for i in 0..index_budget {
        if results.len() == opts.scenarios {
            break;
        }
        let sc = scenario(opts.seed, i);
        if opts.only_class.is_some_and(|c| sc.class != c) {
            continue;
        }
        let r = run_scenario(&sc);
        progress(&r);
        results.push(r);
    }
    ChaosReport {
        seed: opts.seed,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_derivation_is_pure_and_covers_the_matrix() {
        let opts = ChaosOptions::default();
        let scs: Vec<Scenario> = (0..120).map(|i| scenario(opts.seed, i)).collect();
        let again: Vec<Scenario> = (0..120).map(|i| scenario(opts.seed, i)).collect();
        assert_eq!(scs, again, "derivation must be a pure function");
        for w in Workload::ALL {
            assert!(
                scs.iter().any(|s| s.workload == w),
                "workload {} never drawn in 120 scenarios",
                w.name()
            );
        }
        for c in FaultClass::ALL {
            assert!(
                scs.iter().any(|s| s.class == c),
                "fault class {} never drawn in 120 scenarios",
                c.name()
            );
        }
        // Replay derivation: the scenario seed alone reproduces everything
        // but the campaign index.
        let replayed = Scenario::from_seed(scs[7].index, scs[7].seed);
        assert_eq!(replayed, scs[7]);
    }

    #[test]
    fn smoke_campaign_is_all_green() {
        let opts = ChaosOptions {
            scenarios: 30,
            ..Default::default()
        };
        let report = run_campaign(&opts, |_| {});
        for r in &report.results {
            assert!(
                r.pass(),
                "scenario {} (seed {:#x}, {}/{}) violated an invariant: {:?}",
                r.scenario.index,
                r.scenario.seed,
                r.scenario.workload.name(),
                r.scenario.class.name(),
                r
            );
        }
        assert!(report.passed());
        // The sweep must actually exercise faults, not just clean runs.
        assert!(
            report.results.iter().any(|r| r.attempts > 1),
            "no scenario needed a retry or fallback"
        );
    }

    #[test]
    fn campaign_replays_bit_identically() {
        let opts = ChaosOptions {
            scenarios: 12,
            ..Default::default()
        };
        let a = run_campaign(&opts, |_| {});
        let b = run_campaign(&opts, |_| {});
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render(), "rendered reports must match");
        // And a single scenario replayed from its recorded seed matches
        // its campaign entry.
        let sample = &a.results[5];
        let replay = run_scenario(&Scenario::from_seed(
            sample.scenario.index,
            sample.scenario.seed,
        ));
        assert_eq!(&replay, sample);
    }

    #[test]
    fn device_classes_draw_a_device_axis_and_the_rest_do_not() {
        let scs: Vec<Scenario> = (0..400).map(|i| scenario(0xDE7_1CE, i)).collect();
        let mut saw_multi = false;
        let mut saw_serving = false;
        for sc in &scs {
            if sc.class.multi_device() {
                saw_multi = true;
                assert!(
                    (2..=4).contains(&sc.device_count),
                    "device class drew {} devices",
                    sc.device_count
                );
                assert!(
                    InterconnectSpec::by_name(sc.interconnect).is_some(),
                    "unknown interconnect {}",
                    sc.interconnect
                );
                assert_eq!(sc.tenants, 0, "multi-device scenarios never serve");
            } else {
                assert_eq!(sc.device_count, 1);
                assert_eq!(sc.interconnect, "none");
                if sc.tenants > 0 {
                    saw_serving = true;
                    assert!(
                        (2..=4).contains(&sc.tenants),
                        "serving scenario drew {} tenants",
                        sc.tenants
                    );
                }
            }
        }
        assert!(saw_multi, "no multi-device class drawn in 400 scenarios");
        assert!(saw_serving, "no serving scenario drawn in 400 scenarios");
        assert!(
            scs.iter()
                .any(|s| !s.class.multi_device() && s.tenants == 0),
            "every single-device scenario went serving"
        );
    }

    #[test]
    fn serving_scenarios_hold_tenant_isolation_under_fire() {
        // Find a serving scenario whose faults actually fire, and hold
        // every invariant on it — including invariant 6, which re-runs
        // the grid fault-free and compares co-tenants bit for bit.
        let mut fired = false;
        for i in 0..2000usize {
            let sc = scenario(0x7E4A47, i);
            if sc.tenants < 2 || sc.rate < 0.2 {
                continue;
            }
            let r = run_scenario(&sc);
            assert_eq!(r.tier, "serve");
            assert!(r.pass(), "serving scenario {i} failed: {r:?}");
            assert!(r.invariants.tenant_isolation);
            if r.faults != FaultCounts::default() {
                fired = true;
                assert_eq!(r.outcome, "converged");
                break;
            }
        }
        assert!(fired, "no serving scenario drew a fault in 2000 draws");
    }

    #[test]
    fn sharded_lr_cg_scenarios_hold_the_bit_identity_invariant() {
        // Find one scenario per device class that runs LR-CG sharded, and
        // hold every invariant on it — including invariant 5, which
        // compares 1-device, N-device and N-device-minus-one runs.
        for class in [FaultClass::DeviceLoss, FaultClass::Straggler] {
            let sc = (0..2000usize)
                .map(|i| scenario(0x000B_171D, i))
                .find(|s| s.class == class && s.workload == Workload::LrCg)
                .unwrap_or_else(|| panic!("no {} x lr_cg scenario in 2000 draws", class.name()));
            let r = run_scenario(&sc);
            assert!(
                r.pass(),
                "{} scenario violated an invariant: {r:?}",
                class.name()
            );
            assert!(r.invariants.bit_identity);
            assert!(sc.device_count >= 2);
        }
    }

    #[test]
    fn straggler_scenarios_converge_on_the_sharded_tier() {
        // Stragglers only stretch modeled time; a straggler scenario must
        // converge without ever falling off the device tier.
        let sc = (0..2000usize)
            .map(|i| scenario(0x57A66, i))
            .find(|s| s.class == FaultClass::Straggler)
            .expect("no straggler scenario in 2000 draws");
        let r = run_scenario(&sc);
        assert!(r.pass(), "straggler scenario failed: {r:?}");
        assert_eq!(r.outcome, "converged");
        assert_eq!(r.tier, "sharded");
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn class_filter_restricts_the_campaign_deterministically() {
        let opts = ChaosOptions {
            scenarios: 3,
            only_class: Some(FaultClass::Straggler),
            ..Default::default()
        };
        let a = run_campaign(&opts, |_| {});
        assert_eq!(a.results.len(), 3);
        assert!(a
            .results
            .iter()
            .all(|r| r.scenario.class == FaultClass::Straggler));
        // Filtered rows keep their unfiltered campaign indices, so each
        // replays from its recorded seed like any other row.
        let sample = &a.results[1];
        assert_eq!(
            Scenario::from_seed(sample.scenario.index, sample.scenario.seed),
            sample.scenario
        );
        assert_eq!(a, run_campaign(&opts, |_| {}));
    }

    #[test]
    fn report_round_trips_through_the_loader() {
        let opts = ChaosOptions {
            scenarios: 8,
            ..Default::default()
        };
        let report = run_campaign(&opts, |_| {});
        let back = ChaosReport::from_json(&Json::parse(&report.render()).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v1_reports_still_load_with_single_device_defaults() {
        // A hand-written v1 row: no device_count / interconnect /
        // device-loss / straggler / bit_identity fields anywhere.
        let text = r#"{
            "schema_version": 1,
            "campaign_seed": "0x0000000c4a055eed",
            "scenarios": 1,
            "failures": 0,
            "results": [{
                "index": 0,
                "seed": "0x00000000deadbeef",
                "workload": "lr_cg",
                "fault_class": "kernel",
                "rate": 0.02,
                "pressure_after_allocs": null,
                "outcome": "converged",
                "tier": "fused",
                "error_kind": null,
                "attempts": 2,
                "faults": {
                    "kernel": 1,
                    "alloc": 0,
                    "transfer": 0,
                    "watchdog": 0,
                    "corruptions": 0,
                    "pressure_rejections": 0
                },
                "integrity": {"checks": 0, "violations": 0},
                "invariants": {
                    "no_panic": true,
                    "typed_outcome": true,
                    "finite_result": true,
                    "bounded_attempts": true,
                    "accounting": true
                }
            }]
        }"#;
        let report = ChaosReport::from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert_eq!(r.scenario.device_count, 1);
        assert_eq!(r.scenario.interconnect, "none");
        assert_eq!(r.scenario.tenants, 0);
        assert_eq!(r.faults.device_losses, 0);
        assert_eq!(r.faults.stragglers, 0);
        assert!(r.invariants.bit_identity);
        assert!(r.invariants.tenant_isolation);
        assert!(r.pass());
        // Unsupported future schemas are rejected, not misread.
        let future = text.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(ChaosReport::from_json(&Json::parse(&future).unwrap()).is_err());
    }

    #[test]
    fn v2_reports_still_load_with_zero_tenant_defaults() {
        // A hand-written v2 row: the multi-device axis is present but the
        // serving axis (tenants / tenant_isolation) does not exist yet.
        let text = r#"{
            "schema_version": 2,
            "campaign_seed": "0x0000000c4a055eed",
            "scenarios": 1,
            "failures": 0,
            "results": [{
                "index": 0,
                "seed": "0x00000000deadbeef",
                "workload": "lr_cg",
                "fault_class": "device-loss",
                "rate": 0.02,
                "pressure_after_allocs": null,
                "device_count": 3,
                "interconnect": "pcie-gen3-x16",
                "outcome": "converged",
                "tier": "sharded",
                "error_kind": null,
                "attempts": 2,
                "faults": {
                    "kernel": 0,
                    "alloc": 0,
                    "transfer": 0,
                    "watchdog": 0,
                    "corruptions": 0,
                    "pressure_rejections": 0,
                    "device_losses": 1,
                    "stragglers": 0
                },
                "integrity": {"checks": 0, "violations": 0},
                "invariants": {
                    "no_panic": true,
                    "typed_outcome": true,
                    "finite_result": true,
                    "bounded_attempts": true,
                    "accounting": true,
                    "bit_identity": true
                }
            }]
        }"#;
        let report = ChaosReport::from_json(&Json::parse(text).unwrap()).unwrap();
        let r = &report.results[0];
        assert_eq!(r.scenario.tenants, 0);
        assert_eq!(r.scenario.device_count, 3);
        assert!(r.invariants.tenant_isolation, "v2 default must be vacuous");
        assert!(r.pass());
    }

    #[test]
    fn corruption_scenarios_detect_every_injected_flip() {
        // Scan seeds for a corruption scenario whose draws actually fire,
        // then hold the detection invariant to an exact count.
        let mut fired = false;
        for i in 0..400usize {
            let sc = scenario(0xDEFEC7, i);
            // The exact-detection count is a single-session property; the
            // serving tier keeps its integrity stats device-internal.
            if sc.class != FaultClass::Corruption || sc.tenants > 0 {
                continue;
            }
            let r = run_scenario(&sc);
            assert!(r.pass(), "corruption scenario {i} failed: {r:?}");
            if r.faults.corruptions > 0 {
                fired = true;
                assert_eq!(r.integrity_violations, r.faults.corruptions);
                break;
            }
        }
        assert!(fired, "no corruption scenario fired in 400 draws");
    }
}
