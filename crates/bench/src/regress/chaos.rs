//! Deterministic chaos campaign: `fusedml-bench chaos`.
//!
//! Sweeps seeded fault scenarios — every fault class the simulated device
//! can inject (kernel faults, allocation failures, transfer timeouts,
//! silent bit-flip corruption under the integrity layer, mid-run memory
//! pressure, and a mixed profile) crossed with every solver workload —
//! and checks a small set of robustness invariants per scenario:
//!
//! 1. **never panics** — each scenario runs under `catch_unwind`; a panic
//!    is an invariant failure, not a campaign crash;
//! 2. **converges or aborts typed** — the run ends in a finite solution
//!    or a typed [`SolverError`], never a silently non-finite result;
//! 3. **retries are bounded** — at most [`MAX_DEVICE_ATTEMPTS`] device
//!    attempts before the CPU fallback, counted and checked;
//! 4. **accounting stays consistent** — device allocation never exceeds
//!    capacity, fault classes that were off drew nothing, and (with the
//!    integrity layer on) every injected bit flip was detected.
//!
//! Every scenario is a pure function of its 64-bit seed: the workload,
//! fault class, rates and dataset are all derived from it, and the report
//! contains no wall-clock times — so `chaos replay --seed <s>` reproduces
//! any scenario from a report bit-identically.

use super::json::Json;
use fusedml_gpu_sim::{DeviceSpec, FaultCounts, FaultProfile, Gpu};
use fusedml_matrix::gen::{random_labels, random_vector, uniform_sparse};
use fusedml_matrix::{reference, CsrMatrix};
use fusedml_ml::{
    try_glm, try_hits, try_logreg, try_lr_cg, try_svm, Backend, CpuBackend, FusedBackend,
    GlmOptions, HitsOptions, LogRegOptions, LrCgOptions, SolverError, SvmOptions,
};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Version of the chaos-report JSON layout.
pub const CHAOS_SCHEMA_VERSION: u64 = 1;

/// Device attempts (fresh backend each) before falling back to the CPU.
pub const MAX_DEVICE_ATTEMPTS: usize = 4;

/// Scenario-derivation salt, distinct from the injector's per-class salts.
const SCENARIO_SALT: u64 = 0x6368616f735f7363; // "chaos_sc"

/// SplitMix64 finalizer — same mixer the fault injector uses, so scenario
/// derivation inherits its avalanche properties.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Which solver a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    LrCg,
    Glm,
    LogReg,
    Svm,
    Hits,
}

impl Workload {
    pub const ALL: [Workload; 5] = [
        Workload::LrCg,
        Workload::Glm,
        Workload::LogReg,
        Workload::Svm,
        Workload::Hits,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Workload::LrCg => "lr_cg",
            Workload::Glm => "glm",
            Workload::LogReg => "logreg",
            Workload::Svm => "svm",
            Workload::Hits => "hits",
        }
    }
}

/// Which injector knob a scenario turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    KernelFaults,
    AllocFaults,
    TransferTimeouts,
    /// Bit flips with the integrity layer armed.
    Corruption,
    /// Mid-run reserve that rejects late allocations.
    MemoryPressure,
    /// Every class at once, at reduced rates (integrity armed).
    Mixed,
}

impl FaultClass {
    pub const ALL: [FaultClass; 6] = [
        FaultClass::KernelFaults,
        FaultClass::AllocFaults,
        FaultClass::TransferTimeouts,
        FaultClass::Corruption,
        FaultClass::MemoryPressure,
        FaultClass::Mixed,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultClass::KernelFaults => "kernel",
            FaultClass::AllocFaults => "alloc",
            FaultClass::TransferTimeouts => "transfer",
            FaultClass::Corruption => "corruption",
            FaultClass::MemoryPressure => "pressure",
            FaultClass::Mixed => "mixed",
        }
    }
}

/// One fully derived scenario. Everything below `seed` is a pure function
/// of it; the struct exists so reports can show the derivation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Position in the campaign (0 for standalone replays).
    pub index: usize,
    pub seed: u64,
    pub workload: Workload,
    pub class: FaultClass,
    /// Per-opportunity fault probability (reserve fraction for pressure).
    pub rate: f64,
    /// Allocation requests before the pressure reserve arms.
    pub pressure_after_allocs: Option<u64>,
    /// Seed for the scenario's dataset.
    pub data_seed: u64,
}

/// Fault-probability tiers: occasional, common, heavy, certain.
const RATES: [f64; 4] = [0.002, 0.02, 0.2, 1.0];

/// Derive scenario `index` of the campaign with the given seed.
pub fn scenario(campaign_seed: u64, index: usize) -> Scenario {
    let seed = mix64(campaign_seed.wrapping_add(mix64(SCENARIO_SALT ^ index as u64)));
    Scenario::from_seed(index, seed)
}

impl Scenario {
    /// Derive a scenario purely from its own seed (`chaos replay`).
    pub fn from_seed(index: usize, seed: u64) -> Scenario {
        let workload = Workload::ALL[(mix64(seed ^ 0xA1) % Workload::ALL.len() as u64) as usize];
        let class = FaultClass::ALL[(mix64(seed ^ 0xB2) % FaultClass::ALL.len() as u64) as usize];
        let (rate, pressure_after_allocs) = match class {
            // The reserve must cover the whole (huge) device to reject the
            // campaign's small buffers at all, so the knob is the arming
            // threshold, not the fraction.
            FaultClass::MemoryPressure => (1.0, Some(2 + mix64(seed ^ 0xD4) % 12)),
            _ => (
                RATES[(mix64(seed ^ 0xC3) % RATES.len() as u64) as usize],
                None,
            ),
        };
        Scenario {
            index,
            seed,
            workload,
            class,
            rate,
            pressure_after_allocs,
            data_seed: mix64(seed ^ 0xE5),
        }
    }

    fn profile(&self) -> FaultProfile {
        let p = FaultProfile::seeded(self.seed);
        match self.class {
            FaultClass::KernelFaults => p.with_kernel_fault_rate(self.rate),
            FaultClass::AllocFaults => p.with_alloc_fault_rate(self.rate),
            FaultClass::TransferTimeouts => p.with_transfer_timeout_rate(self.rate),
            FaultClass::Corruption => p.with_corruption_rate(self.rate),
            FaultClass::MemoryPressure => {
                p.with_memory_pressure(self.pressure_after_allocs.unwrap_or(2), self.rate)
            }
            FaultClass::Mixed => p
                .with_kernel_fault_rate(self.rate * 0.5)
                .with_alloc_fault_rate(self.rate * 0.25)
                .with_transfer_timeout_rate(self.rate * 0.25)
                .with_corruption_rate(self.rate * 0.25),
        }
    }

    /// Corruption-bearing scenarios arm the checksum layer; pure
    /// fail-stop classes leave it off, matching production defaults.
    fn integrity(&self) -> bool {
        matches!(self.class, FaultClass::Corruption | FaultClass::Mixed)
    }
}

/// Dataset shared by every attempt of one scenario.
struct ScenarioData {
    x: CsrMatrix,
    labels: Vec<f64>,
}

/// Small enough that a 200-scenario campaign stays in CI-smoke territory,
/// large enough that every solver does real device work.
const ROWS: usize = 160;
const COLS: usize = 24;

impl ScenarioData {
    fn generate(sc: &Scenario) -> ScenarioData {
        let x = uniform_sparse(ROWS, COLS, 0.08, sc.data_seed);
        let labels = match sc.workload {
            Workload::LrCg => reference::csr_mv(&x, &random_vector(COLS, sc.data_seed + 1)),
            Workload::Glm => reference::csr_mv(&x, &random_vector(COLS, sc.data_seed + 1))
                .iter()
                .map(|&e| e.clamp(-3.0, 3.0).exp())
                .collect(),
            Workload::LogReg | Workload::Svm => random_labels(ROWS, sc.data_seed + 1),
            Workload::Hits => Vec::new(),
        };
        ScenarioData { x, labels }
    }
}

/// Drive the scenario's solver; the returned vector is the iterate the
/// finiteness invariant inspects.
fn run_workload<B: Backend>(
    b: &mut B,
    workload: Workload,
    data: &ScenarioData,
) -> Result<Vec<f64>, SolverError> {
    match workload {
        Workload::LrCg => try_lr_cg(
            b,
            &data.labels,
            LrCgOptions {
                max_iterations: 6,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::Glm => try_glm(
            b,
            &data.labels,
            GlmOptions {
                max_outer: 3,
                max_inner_cg: 8,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::LogReg => try_logreg(
            b,
            &data.labels,
            LogRegOptions {
                max_outer: 3,
                max_inner_cg: 8,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::Svm => try_svm(
            b,
            &data.labels,
            SvmOptions {
                max_outer: 3,
                max_inner_cg: 8,
                ..Default::default()
            },
        )
        .map(|r| r.weights),
        Workload::Hits => try_hits(
            b,
            HitsOptions {
                max_iterations: 6,
                ..Default::default()
            },
        )
        .map(|r| r.authorities),
    }
}

/// Per-scenario invariant verdicts (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantChecks {
    pub no_panic: bool,
    pub typed_outcome: bool,
    pub finite_result: bool,
    pub bounded_attempts: bool,
    pub accounting: bool,
}

impl InvariantChecks {
    pub fn pass(&self) -> bool {
        self.no_panic
            && self.typed_outcome
            && self.finite_result
            && self.bounded_attempts
            && self.accounting
    }

    fn failed() -> InvariantChecks {
        InvariantChecks {
            no_panic: false,
            typed_outcome: false,
            finite_result: false,
            bounded_attempts: false,
            accounting: false,
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("no_panic", Json::Bool(self.no_panic)),
            ("typed_outcome", Json::Bool(self.typed_outcome)),
            ("finite_result", Json::Bool(self.finite_result)),
            ("bounded_attempts", Json::Bool(self.bounded_attempts)),
            ("accounting", Json::Bool(self.accounting)),
        ])
    }
}

/// Outcome of one scenario. Deterministic for a given scenario seed —
/// nothing in here depends on the host or the clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    pub scenario: Scenario,
    /// `"converged"`, `"typed-abort"` or `"panic"`.
    pub outcome: &'static str,
    /// Tier that produced the outcome: `"fused"`, `"cpu"`, or `"none"`.
    pub tier: &'static str,
    /// Error class of a typed abort (`None` when converged).
    pub error_kind: Option<String>,
    /// Total solver attempts, CPU fallback included.
    pub attempts: usize,
    pub faults: FaultCounts,
    pub integrity_checks: u64,
    pub integrity_violations: u64,
    pub invariants: InvariantChecks,
}

impl ScenarioResult {
    pub fn pass(&self) -> bool {
        self.invariants.pass()
    }

    pub fn to_json(&self) -> Json {
        let sc = &self.scenario;
        Json::obj(vec![
            ("index", Json::u64(sc.index as u64)),
            ("seed", Json::str(format!("{:#018x}", sc.seed))),
            ("workload", Json::str(sc.workload.name())),
            ("fault_class", Json::str(sc.class.name())),
            ("rate", Json::num(sc.rate)),
            (
                "pressure_after_allocs",
                sc.pressure_after_allocs.map_or(Json::Null, Json::u64),
            ),
            ("outcome", Json::str(self.outcome)),
            ("tier", Json::str(self.tier)),
            (
                "error_kind",
                self.error_kind.as_deref().map_or(Json::Null, Json::str),
            ),
            ("attempts", Json::u64(self.attempts as u64)),
            (
                "faults",
                Json::obj(vec![
                    ("kernel", Json::u64(self.faults.kernel_faults)),
                    ("alloc", Json::u64(self.faults.alloc_faults)),
                    ("transfer", Json::u64(self.faults.transfer_timeouts)),
                    ("watchdog", Json::u64(self.faults.watchdog_timeouts)),
                    ("corruptions", Json::u64(self.faults.corruptions)),
                    (
                        "pressure_rejections",
                        Json::u64(self.faults.pressure_rejections),
                    ),
                ]),
            ),
            (
                "integrity",
                Json::obj(vec![
                    ("checks", Json::u64(self.integrity_checks)),
                    ("violations", Json::u64(self.integrity_violations)),
                ]),
            ),
            ("invariants", self.invariants.to_json()),
            ("pass", Json::Bool(self.pass())),
        ])
    }
}

/// The fallback ladder of one scenario, minus the panic guard: fresh
/// fused backends up to the attempt budget, then the CPU.
fn run_scenario_inner(sc: &Scenario, data: &ScenarioData) -> ScenarioResult {
    let gpu = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
        .with_fault_profile(sc.profile())
        .with_integrity_checks(sc.integrity());

    let mut attempts = 0usize;
    let mut device_ok: Option<Vec<f64>> = None;
    while attempts < MAX_DEVICE_ATTEMPTS {
        attempts += 1;
        let outcome = FusedBackend::try_new_sparse(&gpu, &data.x)
            .map_err(SolverError::from)
            .and_then(|mut b| run_workload(&mut b, sc.workload, data));
        match outcome {
            Ok(v) => {
                device_ok = Some(v);
                break;
            }
            Err(e) if e.is_transient() => continue,
            Err(_) => break, // permanent on this device: straight to CPU
        }
    }
    let (tier, result) = match device_ok {
        Some(v) => ("fused", Ok(v)),
        None => {
            attempts += 1;
            let mut b = CpuBackend::new_sparse(data.x.clone());
            ("cpu", run_workload(&mut b, sc.workload, data))
        }
    };

    let faults = gpu.faults().counts();
    let integrity = gpu.integrity_stats();
    let capacity_ok = gpu.allocated_bytes() <= gpu.spec().global_mem_bytes as u64;

    // Classes that were off must not have drawn; with checksums armed,
    // every injected flip must have been caught (a pure-corruption run
    // checks each flip the moment the poisoned buffer lands, so the
    // counts match exactly; under the mixed profile another fault can
    // abort the transfer between the draw and the check).
    let kernel_on = matches!(sc.class, FaultClass::KernelFaults | FaultClass::Mixed);
    let alloc_on = matches!(sc.class, FaultClass::AllocFaults | FaultClass::Mixed);
    let transfer_on = matches!(sc.class, FaultClass::TransferTimeouts | FaultClass::Mixed);
    let corruption_on = matches!(sc.class, FaultClass::Corruption | FaultClass::Mixed);
    let pressure_on = matches!(sc.class, FaultClass::MemoryPressure);
    let gating_ok = (kernel_on || faults.kernel_faults == 0)
        && (alloc_on || faults.alloc_faults == 0)
        && (transfer_on || faults.transfer_timeouts == 0)
        && (corruption_on || faults.corruptions == 0)
        && (pressure_on || faults.pressure_rejections == 0)
        && faults.watchdog_timeouts == 0;
    let detection_ok = match sc.class {
        FaultClass::Corruption => integrity.violations == faults.corruptions,
        FaultClass::Mixed => integrity.violations <= faults.corruptions,
        _ => integrity.violations == 0,
    };

    let (outcome, error_kind, finite_result) = match &result {
        Ok(v) => (
            "converged",
            None,
            v.iter().all(|x| x.is_finite()) && !v.is_empty(),
        ),
        Err(e) => ("typed-abort", Some(e.kind().to_string()), true),
    };

    ScenarioResult {
        scenario: *sc,
        outcome,
        tier,
        error_kind,
        attempts,
        faults,
        integrity_checks: integrity.checks,
        integrity_violations: integrity.violations,
        invariants: InvariantChecks {
            no_panic: true,
            typed_outcome: true, // by construction: Ok or SolverError
            finite_result,
            bounded_attempts: attempts <= MAX_DEVICE_ATTEMPTS + 1,
            accounting: capacity_ok && gating_ok && detection_ok,
        },
    }
}

/// Run one scenario under the panic guard.
pub fn run_scenario(sc: &Scenario) -> ScenarioResult {
    let data = ScenarioData::generate(sc);
    match catch_unwind(AssertUnwindSafe(|| run_scenario_inner(sc, &data))) {
        Ok(r) => r,
        Err(_) => ScenarioResult {
            scenario: *sc,
            outcome: "panic",
            tier: "none",
            error_kind: None,
            attempts: 0,
            faults: FaultCounts::default(),
            integrity_checks: 0,
            integrity_violations: 0,
            invariants: InvariantChecks::failed(),
        },
    }
}

/// Campaign shape: how many scenarios off which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosOptions {
    pub scenarios: usize,
    pub seed: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            scenarios: 200,
            seed: 0xC4A0_55EED,
        }
    }
}

/// A finished campaign; serializes to the schema-versioned chaos report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    pub seed: u64,
    pub results: Vec<ScenarioResult>,
}

impl ChaosReport {
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.pass()).count()
    }

    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::u64(CHAOS_SCHEMA_VERSION)),
            ("campaign_seed", Json::str(format!("{:#018x}", self.seed))),
            ("scenarios", Json::u64(self.results.len() as u64)),
            ("failures", Json::u64(self.failures() as u64)),
            (
                "results",
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

/// Run the whole campaign. `progress` sees each result as it lands
/// (pass `|_| {}` to silence).
pub fn run_campaign(opts: &ChaosOptions, mut progress: impl FnMut(&ScenarioResult)) -> ChaosReport {
    let mut results = Vec::with_capacity(opts.scenarios);
    for i in 0..opts.scenarios {
        let sc = scenario(opts.seed, i);
        let r = run_scenario(&sc);
        progress(&r);
        results.push(r);
    }
    ChaosReport {
        seed: opts.seed,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_derivation_is_pure_and_covers_the_matrix() {
        let opts = ChaosOptions::default();
        let scs: Vec<Scenario> = (0..120).map(|i| scenario(opts.seed, i)).collect();
        let again: Vec<Scenario> = (0..120).map(|i| scenario(opts.seed, i)).collect();
        assert_eq!(scs, again, "derivation must be a pure function");
        for w in Workload::ALL {
            assert!(
                scs.iter().any(|s| s.workload == w),
                "workload {} never drawn in 120 scenarios",
                w.name()
            );
        }
        for c in FaultClass::ALL {
            assert!(
                scs.iter().any(|s| s.class == c),
                "fault class {} never drawn in 120 scenarios",
                c.name()
            );
        }
        // Replay derivation: the scenario seed alone reproduces everything
        // but the campaign index.
        let replayed = Scenario::from_seed(scs[7].index, scs[7].seed);
        assert_eq!(replayed, scs[7]);
    }

    #[test]
    fn smoke_campaign_is_all_green() {
        let opts = ChaosOptions {
            scenarios: 30,
            ..Default::default()
        };
        let report = run_campaign(&opts, |_| {});
        for r in &report.results {
            assert!(
                r.pass(),
                "scenario {} (seed {:#x}, {}/{}) violated an invariant: {:?}",
                r.scenario.index,
                r.scenario.seed,
                r.scenario.workload.name(),
                r.scenario.class.name(),
                r
            );
        }
        assert!(report.passed());
        // The sweep must actually exercise faults, not just clean runs.
        assert!(
            report.results.iter().any(|r| r.attempts > 1),
            "no scenario needed a retry or fallback"
        );
    }

    #[test]
    fn campaign_replays_bit_identically() {
        let opts = ChaosOptions {
            scenarios: 12,
            ..Default::default()
        };
        let a = run_campaign(&opts, |_| {});
        let b = run_campaign(&opts, |_| {});
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render(), "rendered reports must match");
        // And a single scenario replayed from its recorded seed matches
        // its campaign entry.
        let sample = &a.results[5];
        let replay = run_scenario(&Scenario::from_seed(
            sample.scenario.index,
            sample.scenario.seed,
        ));
        assert_eq!(&replay, sample);
    }

    #[test]
    fn corruption_scenarios_detect_every_injected_flip() {
        // Scan seeds for a corruption scenario whose draws actually fire,
        // then hold the detection invariant to an exact count.
        let mut fired = false;
        for i in 0..400usize {
            let sc = scenario(0xDEFEC7, i);
            if sc.class != FaultClass::Corruption {
                continue;
            }
            let r = run_scenario(&sc);
            assert!(r.pass(), "corruption scenario {i} failed: {r:?}");
            if r.faults.corruptions > 0 {
                fired = true;
                assert_eq!(r.integrity_violations, r.faults.corruptions);
                break;
            }
        }
        assert!(fired, "no corruption scenario fired in 400 draws");
    }
}
