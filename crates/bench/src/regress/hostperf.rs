//! The `fusedml-bench hostperf` view: the host-overhead story of one
//! suite run, extracted from a schema-v2 `BENCH_fusion.json`.
//!
//! The modeled (simulated) metrics answer "is the device work right and
//! fast"; this view answers "what did the *host* pay per iteration" —
//! tuner runs avoided by the plan cache, device allocations served from
//! the buffer pool, and wall milliseconds per solver step. These are the
//! metrics that prove the plan cache and buffer pool pay off, since the
//! modeled counters are bit-identical with them on or off.

use super::json::Json;
use super::report::{BenchReport, HostPerf};
use crate::table::{fmt_count, Table};

/// Aggregated host-overhead counters over every variant of a report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostPerfTotals {
    pub plans_computed: u64,
    pub plan_cache_hits: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_bytes_recycled: u64,
}

impl HostPerfTotals {
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plans_computed;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    fn absorb(&mut self, h: &HostPerf) {
        self.plans_computed += h.plans_computed;
        self.plan_cache_hits += h.plan_cache_hits;
        self.pool_hits += h.pool_hits;
        self.pool_misses += h.pool_misses;
        self.pool_bytes_recycled += h.pool_bytes_recycled;
    }
}

/// Sum the host-overhead counters over every (workload, variant) pair.
pub fn hostperf_totals(report: &BenchReport) -> HostPerfTotals {
    let mut t = HostPerfTotals::default();
    for w in &report.workloads {
        t.absorb(&w.fused.host);
        t.absorb(&w.baseline.host);
    }
    t
}

fn fmt_mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

fn fmt_pct(rate: f64) -> String {
    format!("{:.1}%", rate * 100.0)
}

/// Render the per-workload host-overhead table. One row per variant that
/// recorded any host activity (kernel-level workloads have none).
pub fn hostperf_table(report: &BenchReport) -> Table {
    let mut t = Table::new(
        "hostperf",
        "host overhead per workload (plan cache + buffer pool)",
        &[
            "workload",
            "variant",
            "plans",
            "plan_hits",
            "pool_hits",
            "pool_miss",
            "pool_hit%",
            "MiB_recycled",
            "host_ms/iter",
        ],
    );
    for w in &report.workloads {
        for (name, v) in [("fused", &w.fused), ("baseline", &w.baseline)] {
            let h = &v.host;
            if *h == HostPerf::default() {
                continue;
            }
            t.row(vec![
                w.id.clone(),
                name.to_string(),
                fmt_count(h.plans_computed),
                fmt_count(h.plan_cache_hits),
                fmt_count(h.pool_hits),
                fmt_count(h.pool_misses),
                fmt_pct(h.pool_hit_rate()),
                fmt_mib(h.pool_bytes_recycled),
                format!("{:.3}", h.host_ms_per_iter),
            ]);
        }
    }
    let totals = hostperf_totals(report);
    t.note(format!(
        "totals: {} tuner runs, {} plan-cache hits ({} hit rate); pool {}/{} hits ({} hit rate), {} MiB recycled",
        totals.plans_computed,
        totals.plan_cache_hits,
        fmt_pct(totals.plan_cache_hit_rate()),
        totals.pool_hits,
        totals.pool_hits + totals.pool_misses,
        fmt_pct(totals.pool_hit_rate()),
        fmt_mib(totals.pool_bytes_recycled),
    ));
    t.note("modeled metrics are bit-identical with the plan cache on or off; these host counters are where the win shows up");
    t
}

/// Machine-readable summary of the host-overhead view (`--out`).
pub fn hostperf_summary(report: &BenchReport) -> Json {
    let totals = hostperf_totals(report);
    let mut rows = Vec::new();
    for w in &report.workloads {
        for (name, v) in [("fused", &w.fused), ("baseline", &w.baseline)] {
            if v.host == HostPerf::default() {
                continue;
            }
            let h = &v.host;
            rows.push(Json::obj(vec![
                ("workload", Json::str(&w.id)),
                ("variant", Json::str(name)),
                ("plans_computed", Json::u64(h.plans_computed)),
                ("plan_cache_hits", Json::u64(h.plan_cache_hits)),
                ("pool_hits", Json::u64(h.pool_hits)),
                ("pool_misses", Json::u64(h.pool_misses)),
                ("pool_hit_rate", Json::num(h.pool_hit_rate())),
                ("pool_bytes_recycled", Json::u64(h.pool_bytes_recycled)),
                ("host_ms_per_iter", Json::num(h.host_ms_per_iter)),
            ]));
        }
    }
    Json::obj(vec![
        ("schema_version", Json::u64(report.schema_version)),
        ("git_sha", Json::str(&report.git_sha)),
        ("plans_computed", Json::u64(totals.plans_computed)),
        ("plan_cache_hits", Json::u64(totals.plan_cache_hits)),
        (
            "plan_cache_hit_rate",
            Json::num(totals.plan_cache_hit_rate()),
        ),
        ("pool_hits", Json::u64(totals.pool_hits)),
        ("pool_misses", Json::u64(totals.pool_misses)),
        ("pool_hit_rate", Json::num(totals.pool_hit_rate())),
        ("pool_bytes_recycled", Json::u64(totals.pool_bytes_recycled)),
        ("workloads", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::report::{ConfigFingerprint, VariantMetrics, WorkloadResult};
    use fusedml_gpu_sim::Counters;

    fn variant(host: HostPerf) -> VariantMetrics {
        VariantMetrics::new(1.0, 0.837, 2.0, 3, 0.5, &Counters::new()).with_host(host)
    }

    fn report() -> BenchReport {
        let fused = variant(HostPerf {
            plans_computed: 1,
            plan_cache_hits: 9,
            pool_hits: 90,
            pool_misses: 10,
            pool_bytes_recycled: 2 * 1024 * 1024,
            host_ms_per_iter: 0.4,
        });
        let baseline = variant(HostPerf::default());
        BenchReport {
            schema_version: crate::regress::report::SCHEMA_VERSION,
            git_sha: "test".into(),
            fingerprint: ConfigFingerprint {
                device: "dev".into(),
                clock_ghz: 0.837,
                scale: 1.0,
                seed: 1,
                mode: "quick".into(),
            },
            workloads: vec![WorkloadResult {
                id: "lr_cg/csr/100x10".into(),
                algorithm: "lr_cg".into(),
                format: "csr".into(),
                rows: 100,
                cols: 10,
                nnz: 50,
                iterations: 3,
                speedup: 2.0,
                fused,
                baseline,
            }],
        }
    }

    #[test]
    fn totals_sum_both_variants() {
        let t = hostperf_totals(&report());
        assert_eq!(t.plans_computed, 1);
        assert_eq!(t.plan_cache_hits, 9);
        assert!((t.pool_hit_rate() - 0.9).abs() < 1e-12);
        assert!((t.plan_cache_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn table_skips_variants_without_host_activity() {
        let t = hostperf_table(&report());
        // Only the fused variant recorded host traffic.
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0][1], "fused");
        let rendered = t.render();
        assert!(rendered.contains("90.0%"), "{rendered}");
    }

    #[test]
    fn summary_exposes_the_acceptance_metrics() {
        let j = hostperf_summary(&report());
        assert_eq!(j.field_u64("pool_hits").unwrap(), 90);
        assert!((j.field_f64("pool_hit_rate").unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(j.field("workloads").unwrap().as_arr().unwrap().len(), 1);
    }

    #[test]
    fn empty_report_renders_zero_rates() {
        let mut r = report();
        r.workloads.clear();
        let t = hostperf_totals(&r);
        assert_eq!(t.pool_hit_rate(), 0.0);
        assert_eq!(hostperf_table(&r).rows.len(), 0);
    }
}
