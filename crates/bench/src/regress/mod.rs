//! Continuous-benchmarking subsystem: a deterministic workload matrix,
//! a schema-versioned machine-readable report (`BENCH_fusion.json`), and
//! a regression gate that diffs two reports with noise-aware thresholds.
//!
//! Entry points:
//! * [`suite::run_suite`] — run the matrix, get a [`report::BenchReport`];
//! * [`compare::compare`] — diff candidate vs. baseline;
//! * [`trace_export::chrome_trace`] — Chrome trace-event export of a
//!   [`fusedml_trace`] event stream (`fusedml-bench trace`);
//! * [`chaos::run_campaign`] — the deterministic fault-injection sweep
//!   behind `fusedml-bench chaos` / `chaos replay`;
//! * [`cpu::run_cpu_bench`] — the *measured* (real wall-clock) CPU
//!   fused-vs-unfused benchmark behind `fusedml-bench cpu`;
//! * [`stream::stream_report`] — the copy-engine streaming ladder behind
//!   `fusedml-bench stream`, with its own invariants and baseline gate;
//! * [`serve::serve_bench_report`] — the multi-tenant serving load
//!   generator behind `fusedml-bench serve`, with its own invariants
//!   and baseline gate;
//! * the `fusedml-bench` binary — `run` / `compare` / `list` / `trace` /
//!   `chaos` / `cpu` / `stream` / `serve` CLI.
//!
//! The JSON layer is hand-rolled ([`json`]) so the subsystem has zero
//! dependencies beyond the workspace: reports must round-trip in every
//! build environment, including offline ones where third-party serializers
//! are stubbed out.

pub mod chaos;
pub mod compare;
pub mod cpu;
pub mod hostperf;
pub mod json;
pub mod plans;
pub mod report;
pub mod serve;
pub mod stream;
pub mod suite;
pub mod trace_export;

pub use chaos::{
    run_campaign, run_scenario, ChaosOptions, ChaosReport, FaultClass, Scenario, ScenarioResult,
    Workload, CHAOS_MIN_SCHEMA_VERSION, CHAOS_SCHEMA_VERSION,
};
pub use compare::{compare, CompareOptions, Comparison, Finding, Severity};
pub use cpu::{run_cpu_bench, CpuBenchOptions, CPU_SCHEMA_VERSION, SIMD_REL_L2_TOL};
pub use hostperf::{hostperf_summary, hostperf_table, hostperf_totals, HostPerfTotals};
pub use json::Json;
pub use plans::{plan_drift, plan_report, PLANS_SCHEMA_VERSION};
pub use report::{
    BenchReport, ConfigFingerprint, HostPerf, VariantMetrics, WorkloadResult, SCHEMA_VERSION,
};
pub use serve::{
    serve_bench_report, serve_invariants, serve_regressions, ServeBenchOptions, ServeGateOptions,
    SERVE_SCHEMA_VERSION,
};
pub use stream::{
    stream_invariants, stream_regressions, stream_report, StreamGateOptions, STREAM_DEFAULT_PASSES,
    STREAM_SCHEMA_VERSION,
};
pub use suite::{run_suite, workload_ids, Mode, SuiteOptions};
pub use trace_export::{chrome_trace, metrics_summary, DEVICE_PID, HOST_PID};
