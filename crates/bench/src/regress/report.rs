//! The `BENCH_fusion.json` schema: a schema-versioned, machine-readable
//! record of one benchmark-suite run, diffable by `fusedml-bench compare`.
//!
//! Two metric classes live side by side in every row:
//!
//! * **modeled** metrics (simulated milliseconds / cycles, DRAM traffic,
//!   transaction and atomic counts, the aggregation-tier breakdown) come
//!   from the deterministic simulator — bit-identical on every host, so
//!   the regression gate diffs them with tight thresholds;
//! * **wall-clock** milliseconds measure the host actually running the
//!   suite — machine-dependent, gated loosely or not at all.

use super::json::Json;
use fusedml_gpu_sim::Counters;

/// Version of the `BENCH_fusion.json` schema. Bump on breaking changes.
///
/// History:
/// * v1 — modeled + wall metrics per variant.
/// * v2 — adds the nested `host` object per variant (plan-cache and
///   buffer-pool traffic, host milliseconds per solver iteration). v1
///   documents still load: the host fields default to zero.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`BenchReport::from_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Everything that parameterizes a suite run. Two reports are only
/// comparable when their fingerprints match.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigFingerprint {
    /// Simulated device name (e.g. "GeForce GTX Titan (simulated)").
    pub device: String,
    /// Core clock used to convert modeled milliseconds to cycles.
    pub clock_ghz: f64,
    /// Workload scale factor in (0, 1].
    pub scale: f64,
    /// Seed for every synthetic dataset in the matrix.
    pub seed: u64,
    /// Suite mode: "quick" or "full".
    pub mode: String,
}

impl ConfigFingerprint {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("device", Json::str(&self.device)),
            ("clock_ghz", Json::num(self.clock_ghz)),
            ("scale", Json::num(self.scale)),
            ("seed", Json::u64(self.seed)),
            ("mode", Json::str(&self.mode)),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(ConfigFingerprint {
            device: j.field_str("device")?.to_string(),
            clock_ghz: j.field_f64("clock_ghz")?,
            scale: j.field_f64("scale")?,
            seed: j.field_u64("seed")?,
            mode: j.field_str("mode")?.to_string(),
        })
    }
}

/// Host-overhead metrics of one variant: what the launch-plan cache and
/// the device buffer pool did for the run. All counters are zero for
/// kernel-level workloads (no solver loop, nothing to amortize) and for
/// v1 documents.
///
/// These are *host* metrics: they vary with the plan cache on vs. off
/// while the modeled counters stay bit-identical, so `compare` reports
/// but never gates them.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostPerf {
    /// Times the analytical tuner actually ran (cache misses + uncached
    /// runs + planning errors).
    pub plans_computed: u64,
    /// Plans served from the cache without running the tuner.
    pub plan_cache_hits: u64,
    /// Device allocations served from the buffer pool's free lists.
    pub pool_hits: u64,
    /// Device allocations that went to the host allocator.
    pub pool_misses: u64,
    /// Requested bytes served from recycled blocks.
    pub pool_bytes_recycled: u64,
    /// Host wall-clock milliseconds per solver iteration (wall_ms /
    /// iterations; 0 for kernel-level workloads).
    pub host_ms_per_iter: f64,
}

impl HostPerf {
    /// Fraction of device allocations served from the pool, in `[0, 1]`.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("plans_computed", Json::u64(self.plans_computed)),
            ("plan_cache_hits", Json::u64(self.plan_cache_hits)),
            ("pool_hits", Json::u64(self.pool_hits)),
            ("pool_misses", Json::u64(self.pool_misses)),
            ("pool_bytes_recycled", Json::u64(self.pool_bytes_recycled)),
            ("host_ms_per_iter", Json::num(self.host_ms_per_iter)),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(HostPerf {
            plans_computed: j.field_u64("plans_computed")?,
            plan_cache_hits: j.field_u64("plan_cache_hits")?,
            pool_hits: j.field_u64("pool_hits")?,
            pool_misses: j.field_u64("pool_misses")?,
            pool_bytes_recycled: j.field_u64("pool_bytes_recycled")?,
            host_ms_per_iter: j.field_f64("host_ms_per_iter")?,
        })
    }
}

/// Metrics of one pipeline variant (fused or baseline) on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantMetrics {
    /// Simulated milliseconds (deterministic).
    pub modeled_ms: f64,
    /// Simulated core-clock cycles at the fingerprint's clock
    /// (deterministic; the primary regression-gate metric).
    pub modeled_cycles: u64,
    /// Host wall-clock milliseconds spent simulating this variant
    /// (machine-dependent; gated loosely).
    pub wall_ms: f64,
    /// Kernel launches.
    pub launches: u64,
    /// 32-byte global load sectors.
    pub gld_transactions: u64,
    /// 32-byte global store sectors.
    pub gst_transactions: u64,
    /// Bytes fetched from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written back to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes served from L2.
    pub l2_read_bytes: u64,
    /// Double-precision operations.
    pub flops: u64,
    /// Hierarchical-aggregation breakdown: register-tier shuffle ops.
    pub register_shuffle_ops: u64,
    /// Shared-memory-tier atomic reduction ops.
    pub shared_atomic_ops: u64,
    /// Shared-memory staging traffic.
    pub shared_access_ops: u64,
    /// Global-memory-tier atomics (f64 + int).
    pub global_atomic_ops: u64,
    /// Time-weighted mean achieved occupancy over the variant's launches,
    /// in [0, 1]; 0 when not recorded (CPU-modelled or unavailable).
    pub occupancy: f64,
    /// Host-overhead accounting (schema v2; zero for v1 documents).
    pub host: HostPerf,
}

impl VariantMetrics {
    /// Assemble from merged counters plus the scalar measurements.
    pub fn new(
        modeled_ms: f64,
        clock_ghz: f64,
        wall_ms: f64,
        launches: u64,
        occupancy: f64,
        c: &Counters,
    ) -> Self {
        let agg = c.aggregation_breakdown();
        VariantMetrics {
            modeled_ms,
            modeled_cycles: (modeled_ms * clock_ghz * 1e6).round() as u64,
            wall_ms,
            launches,
            gld_transactions: c.gld_transactions,
            gst_transactions: c.gst_transactions,
            dram_read_bytes: c.dram_read_bytes,
            dram_write_bytes: c.dram_write_bytes,
            l2_read_bytes: c.l2_read_bytes,
            flops: c.flops,
            register_shuffle_ops: agg.register_shuffle_ops,
            shared_atomic_ops: agg.shared_atomic_ops,
            shared_access_ops: agg.shared_access_ops,
            global_atomic_ops: agg.global_atomic_ops,
            occupancy,
            host: HostPerf::default(),
        }
    }

    /// Attach host-overhead accounting (builder-style, used by the suite
    /// for algorithm-level workloads).
    pub fn with_host(mut self, host: HostPerf) -> Self {
        self.host = host;
        self
    }

    /// Total DRAM traffic (read + write).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("modeled_ms", Json::num(self.modeled_ms)),
            ("modeled_cycles", Json::u64(self.modeled_cycles)),
            ("wall_ms", Json::num(self.wall_ms)),
            ("launches", Json::u64(self.launches)),
            ("gld_transactions", Json::u64(self.gld_transactions)),
            ("gst_transactions", Json::u64(self.gst_transactions)),
            ("dram_read_bytes", Json::u64(self.dram_read_bytes)),
            ("dram_write_bytes", Json::u64(self.dram_write_bytes)),
            ("l2_read_bytes", Json::u64(self.l2_read_bytes)),
            ("flops", Json::u64(self.flops)),
            ("register_shuffle_ops", Json::u64(self.register_shuffle_ops)),
            ("shared_atomic_ops", Json::u64(self.shared_atomic_ops)),
            ("shared_access_ops", Json::u64(self.shared_access_ops)),
            ("global_atomic_ops", Json::u64(self.global_atomic_ops)),
            ("occupancy", Json::num(self.occupancy)),
            ("host", self.host.to_json()),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(VariantMetrics {
            modeled_ms: j.field_f64("modeled_ms")?,
            modeled_cycles: j.field_u64("modeled_cycles")?,
            wall_ms: j.field_f64("wall_ms")?,
            launches: j.field_u64("launches")?,
            gld_transactions: j.field_u64("gld_transactions")?,
            gst_transactions: j.field_u64("gst_transactions")?,
            dram_read_bytes: j.field_u64("dram_read_bytes")?,
            dram_write_bytes: j.field_u64("dram_write_bytes")?,
            l2_read_bytes: j.field_u64("l2_read_bytes")?,
            flops: j.field_u64("flops")?,
            register_shuffle_ops: j.field_u64("register_shuffle_ops")?,
            shared_atomic_ops: j.field_u64("shared_atomic_ops")?,
            shared_access_ops: j.field_u64("shared_access_ops")?,
            global_atomic_ops: j.field_u64("global_atomic_ops")?,
            occupancy: j.field_f64("occupancy")?,
            // Absent in v1 documents: default to zero rather than failing,
            // so old baselines stay loadable.
            host: match j.field("host") {
                Ok(h) => HostPerf::from_json(h).map_err(|e| format!("host: {e}"))?,
                Err(_) => HostPerf::default(),
            },
        })
    }
}

/// One row of the workload matrix: a (workload, fused-vs-baseline) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Stable identifier, e.g. "lr_cg/csr/10000x512". `compare` matches
    /// rows across reports by this id.
    pub id: String,
    /// Algorithm or kernel family ("lr_cg", "glm", ..., "pattern", "xty").
    pub algorithm: String,
    /// Storage format: "csr", "ell", or "dense".
    pub format: String,
    pub rows: u64,
    pub cols: u64,
    /// Stored non-zeros (rows * cols for dense).
    pub nnz: u64,
    /// Solver iterations (0 for single-kernel workloads).
    pub iterations: u64,
    pub fused: VariantMetrics,
    pub baseline: VariantMetrics,
    /// `baseline.modeled_ms / fused.modeled_ms` — the paper's headline
    /// metric, per workload.
    pub speedup: f64,
}

impl WorkloadResult {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::str(&self.id)),
            ("algorithm", Json::str(&self.algorithm)),
            ("format", Json::str(&self.format)),
            ("rows", Json::u64(self.rows)),
            ("cols", Json::u64(self.cols)),
            ("nnz", Json::u64(self.nnz)),
            ("iterations", Json::u64(self.iterations)),
            ("fused", self.fused.to_json()),
            ("baseline", self.baseline.to_json()),
            ("speedup", Json::num(self.speedup)),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        Ok(WorkloadResult {
            id: j.field_str("id")?.to_string(),
            algorithm: j.field_str("algorithm")?.to_string(),
            format: j.field_str("format")?.to_string(),
            rows: j.field_u64("rows")?,
            cols: j.field_u64("cols")?,
            nnz: j.field_u64("nnz")?,
            iterations: j.field_u64("iterations")?,
            fused: VariantMetrics::from_json(j.field("fused")?)
                .map_err(|e| format!("workload fused: {e}"))?,
            baseline: VariantMetrics::from_json(j.field("baseline")?)
                .map_err(|e| format!("workload baseline: {e}"))?,
            speedup: j.field_f64("speedup")?,
        })
    }
}

/// A complete `BENCH_fusion.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    /// Commit the suite ran at ("unknown" outside a git checkout).
    pub git_sha: String,
    pub fingerprint: ConfigFingerprint,
    pub workloads: Vec<WorkloadResult>,
}

impl BenchReport {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::u64(self.schema_version)),
            ("git_sha", Json::str(&self.git_sha)),
            ("fingerprint", self.fingerprint.to_json()),
            (
                "workloads",
                Json::Arr(self.workloads.iter().map(|w| w.to_json()).collect()),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Result<Self, String> {
        let version = j.field_u64("schema_version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "schema version {version} unsupported (this build reads \
                 {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let mut workloads = Vec::new();
        for (i, wj) in j
            .field("workloads")?
            .as_arr()
            .ok_or("'workloads' is not an array")?
            .iter()
            .enumerate()
        {
            workloads
                .push(WorkloadResult::from_json(wj).map_err(|e| format!("workloads[{i}]: {e}"))?);
        }
        Ok(BenchReport {
            schema_version: version,
            git_sha: j.field_str("git_sha")?.to_string(),
            fingerprint: ConfigFingerprint::from_json(j.field("fingerprint")?)
                .map_err(|e| format!("fingerprint: {e}"))?,
            workloads,
        })
    }

    pub fn render(&self) -> String {
        self.to_json().render()
    }

    pub fn save(&self, path: &str) -> Result<(), String> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
            }
        }
        std::fs::write(path, self.render()).map_err(|e| format!("write {path}: {e}"))
    }

    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        Self::from_json(&json).map_err(|e| format!("{path}: {e}"))
    }

    pub fn find(&self, id: &str) -> Option<&WorkloadResult> {
        self.workloads.iter().find(|w| w.id == id)
    }
}

/// Current git commit, or "unknown".
pub fn current_git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_variant(ms: f64) -> VariantMetrics {
        let mut c = Counters::new();
        c.gld_transactions = 1000;
        c.dram_read_bytes = 64_000;
        c.shuffle_instructions = 42;
        c.global_atomics = 7;
        VariantMetrics::new(ms, 0.837, ms * 3.0, 2, 0.75, &c)
    }

    fn sample_report() -> BenchReport {
        let fused = sample_variant(1.0);
        let baseline = sample_variant(3.5);
        BenchReport {
            schema_version: SCHEMA_VERSION,
            git_sha: "deadbeef".into(),
            fingerprint: ConfigFingerprint {
                device: "GeForce GTX Titan (simulated)".into(),
                clock_ghz: 0.837,
                scale: 0.02,
                seed: 0x5EED,
                mode: "quick".into(),
            },
            workloads: vec![WorkloadResult {
                id: "lr_cg/csr/8000x512".into(),
                algorithm: "lr_cg".into(),
                format: "csr".into(),
                rows: 8000,
                cols: 512,
                nnz: 81_920,
                iterations: 3,
                speedup: baseline.modeled_ms / fused.modeled_ms,
                fused,
                baseline,
            }],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = sample_report();
        let back = BenchReport::from_json(&Json::parse(&r.render()).unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn modeled_cycles_derive_from_ms_and_clock() {
        let v = sample_variant(2.0);
        // 2 ms at 0.837 GHz = 1.674e6 cycles.
        assert_eq!(v.modeled_cycles, 1_674_000);
    }

    #[test]
    fn v1_document_loads_with_zero_host_fields() {
        // Fabricate a genuine v1 document: version 1, no `host` objects.
        let r = sample_report();
        let mut j = r.to_json();
        let Json::Obj(doc) = &mut j else {
            panic!("report is an object")
        };
        doc.insert("schema_version".into(), Json::u64(1));
        let Some(Json::Arr(ws)) = doc.get_mut("workloads") else {
            panic!("workloads is an array")
        };
        for w in ws {
            let Json::Obj(w) = w else { panic!() };
            for variant in ["fused", "baseline"] {
                let Some(Json::Obj(v)) = w.get_mut(variant) else {
                    panic!()
                };
                v.remove("host");
            }
        }
        let back = BenchReport::from_json(&j).unwrap();
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.workloads[0].fused.host, HostPerf::default());
        // Everything that existed in v1 survives untouched.
        assert_eq!(
            back.workloads[0].fused.modeled_ms,
            r.workloads[0].fused.modeled_ms
        );
    }

    #[test]
    fn host_perf_roundtrips_and_rates() {
        let h = HostPerf {
            plans_computed: 2,
            plan_cache_hits: 98,
            pool_hits: 90,
            pool_misses: 10,
            pool_bytes_recycled: 4096,
            host_ms_per_iter: 0.25,
        };
        let back = HostPerf::from_json(&h.to_json()).unwrap();
        assert_eq!(h, back);
        assert!((h.pool_hit_rate() - 0.9).abs() < 1e-12);
        assert_eq!(HostPerf::default().pool_hit_rate(), 0.0);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let mut r = sample_report();
        r.schema_version = 99;
        let text = r.render();
        let err = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn missing_field_error_names_the_field() {
        let err = VariantMetrics::from_json(&Json::obj(vec![("modeled_ms", Json::num(1.0))]))
            .unwrap_err();
        assert!(err.contains("modeled_cycles"), "{err}");
    }
}
