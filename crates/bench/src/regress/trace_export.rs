//! Chrome trace-event export for the cross-layer tracing subsystem.
//!
//! Converts the flat event stream of [`fusedml_trace`] into the Chrome
//! trace-event JSON format (loadable in Perfetto / `chrome://tracing`),
//! plus a flat metrics summary for scripts. Both documents are built on
//! the same zero-dependency [`Json`] layer as the benchmark reports, so
//! the export works in offline environments where `serde_json` is a stub.
//!
//! Layout: the two clock domains are not comparable, so they become two
//! Chrome *processes* — pid 1 hosts wall-clock tracks (solver loops,
//! session phases), pid 2 hosts simulated-time tracks (kernels on
//! `device`, transfers on `pcie`). Each distinct track name becomes a
//! thread within its process, named via `M` metadata events.

use super::json::Json;
use fusedml_trace::{ArgValue, ClockDomain, EventKind, TraceEvent};
use std::collections::BTreeMap;

/// Chrome process id for wall-clock (host) tracks.
pub const HOST_PID: u64 = 1;
/// Chrome process id for simulated-time (device) tracks.
pub const DEVICE_PID: u64 = 2;

fn pid_of(clock: ClockDomain) -> u64 {
    match clock {
        ClockDomain::Wall => HOST_PID,
        ClockDomain::Sim => DEVICE_PID,
    }
}

fn arg_json(v: &ArgValue) -> Json {
    match v {
        ArgValue::F64(x) => Json::num(*x),
        ArgValue::U64(x) => Json::u64(*x),
        ArgValue::Str(s) => Json::str(s.clone()),
        ArgValue::Bool(b) => Json::Bool(*b),
    }
}

fn args_json(args: &[(String, ArgValue)]) -> Json {
    Json::Obj(args.iter().map(|(k, v)| (k.clone(), arg_json(v))).collect())
}

/// Build the Chrome trace-event document for an event stream.
///
/// Spans become `"ph": "X"` complete events (`ts`/`dur` in microseconds),
/// instants become `"ph": "i"` with thread scope, and every process/track
/// in use gets `process_name`/`thread_name` metadata so the viewer shows
/// meaningful labels instead of raw ids.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    // Stable thread ids: order of first appearance within each process.
    let mut tids: BTreeMap<(u64, String), u64> = BTreeMap::new();
    let mut next_tid: BTreeMap<u64, u64> = BTreeMap::new();
    for ev in events {
        let pid = pid_of(ev.clock);
        if let std::collections::btree_map::Entry::Vacant(slot) =
            tids.entry((pid, ev.track.clone()))
        {
            let next = next_tid.entry(pid).or_insert(1);
            slot.insert(*next);
            *next += 1;
        }
    }

    let mut out = Vec::new();
    for (pid, name) in [
        (HOST_PID, "host (wall clock)"),
        (DEVICE_PID, "device (simulated time)"),
    ] {
        if next_tid.contains_key(&pid) {
            out.push(Json::obj(vec![
                ("ph", Json::str("M")),
                ("pid", Json::u64(pid)),
                ("name", Json::str("process_name")),
                ("args", Json::obj(vec![("name", Json::str(name))])),
            ]));
        }
    }
    for ((pid, track), tid) in &tids {
        out.push(Json::obj(vec![
            ("ph", Json::str("M")),
            ("pid", Json::u64(*pid)),
            ("tid", Json::u64(*tid)),
            ("name", Json::str("thread_name")),
            ("args", Json::obj(vec![("name", Json::str(track.clone()))])),
        ]));
    }

    for ev in events {
        let pid = pid_of(ev.clock);
        let tid = tids[&(pid, ev.track.clone())];
        let mut fields = vec![
            ("pid", Json::u64(pid)),
            ("tid", Json::u64(tid)),
            ("ts", Json::num(ev.ts_us)),
            ("name", Json::str(ev.name.clone())),
            ("cat", Json::str(ev.cat.clone())),
            ("args", args_json(&ev.args)),
        ];
        match ev.kind {
            EventKind::Span => {
                fields.push(("ph", Json::str("X")));
                fields.push(("dur", Json::num(ev.dur_us)));
            }
            EventKind::Instant => {
                fields.push(("ph", Json::str("i")));
                fields.push(("s", Json::str("t"))); // thread-scoped marker
            }
            EventKind::FlowStart => {
                fields.push(("ph", Json::str("s")));
                fields.push(("id", Json::u64(ev.flow_id)));
            }
            EventKind::FlowStep => {
                fields.push(("ph", Json::str("t")));
                fields.push(("id", Json::u64(ev.flow_id)));
            }
            EventKind::FlowEnd => {
                fields.push(("ph", Json::str("f")));
                fields.push(("id", Json::u64(ev.flow_id)));
                // Bind to the enclosing slice, not the next one.
                fields.push(("bp", Json::str("e")));
            }
        }
        out.push(Json::obj(fields));
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::str("ms")),
    ])
}

/// Flat metrics rollup of an event stream: counts per category, total
/// simulated milliseconds per device track, total wall-span milliseconds
/// per category, and the collector's drop counter.
pub fn metrics_summary(events: &[TraceEvent], dropped: u64) -> Json {
    let mut by_category: BTreeMap<String, u64> = BTreeMap::new();
    let mut sim_ms_by_track: BTreeMap<String, f64> = BTreeMap::new();
    let mut wall_span_ms_by_category: BTreeMap<String, f64> = BTreeMap::new();
    let mut spans = 0u64;
    let mut instants = 0u64;
    let mut flows = 0u64;
    for ev in events {
        *by_category.entry(ev.cat.clone()).or_insert(0) += 1;
        match ev.kind {
            EventKind::Span => spans += 1,
            EventKind::Instant => instants += 1,
            EventKind::FlowStart | EventKind::FlowStep | EventKind::FlowEnd => flows += 1,
        }
        if ev.kind == EventKind::Span {
            match ev.clock {
                ClockDomain::Sim => {
                    *sim_ms_by_track.entry(ev.track.clone()).or_insert(0.0) += ev.dur_us / 1e3;
                }
                ClockDomain::Wall => {
                    *wall_span_ms_by_category
                        .entry(ev.cat.clone())
                        .or_insert(0.0) += ev.dur_us / 1e3;
                }
            }
        }
    }
    Json::obj(vec![
        ("events", Json::u64(events.len() as u64)),
        ("spans", Json::u64(spans)),
        ("instants", Json::u64(instants)),
        ("flows", Json::u64(flows)),
        ("dropped", Json::u64(dropped)),
        (
            "by_category",
            Json::Obj(
                by_category
                    .into_iter()
                    .map(|(k, v)| (k, Json::u64(v)))
                    .collect(),
            ),
        ),
        (
            "sim_ms_by_track",
            Json::Obj(
                sim_ms_by_track
                    .into_iter()
                    .map(|(k, v)| (k, Json::num(v)))
                    .collect(),
            ),
        ),
        (
            "wall_span_ms_by_category",
            Json::Obj(
                wall_span_ms_by_category
                    .into_iter()
                    .map(|(k, v)| (k, Json::num(v)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built events; these tests never touch the global collector.
    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                cat: "kernel".to_string(),
                name: "spmv_fused".to_string(),
                track: "device".to_string(),
                clock: ClockDomain::Sim,
                kind: EventKind::Span,
                ts_us: 0.0,
                dur_us: 1500.0,
                flow_id: 0,
                args: vec![
                    ("grid".to_string(), ArgValue::U64(28)),
                    ("occupancy".to_string(), ArgValue::F64(0.75)),
                ],
            },
            TraceEvent {
                cat: "mem".to_string(),
                name: "h2d".to_string(),
                track: "pcie".to_string(),
                clock: ClockDomain::Sim,
                kind: EventKind::Span,
                ts_us: 0.0,
                dur_us: 250.0,
                flow_id: 0,
                args: vec![("block".to_string(), ArgValue::Str("X".to_string()))],
            },
            TraceEvent {
                cat: "solver".to_string(),
                name: "lr_cg.iter".to_string(),
                track: "host".to_string(),
                clock: ClockDomain::Wall,
                kind: EventKind::Span,
                ts_us: 10.0,
                dur_us: 90.0,
                flow_id: 0,
                args: vec![("iter".to_string(), ArgValue::U64(0))],
            },
            TraceEvent {
                cat: "fault".to_string(),
                name: "kernel.injected".to_string(),
                track: "host".to_string(),
                clock: ClockDomain::Wall,
                kind: EventKind::Instant,
                ts_us: 42.0,
                dur_us: 0.0,
                flow_id: 0,
                args: vec![("transient".to_string(), ArgValue::Bool(true))],
            },
        ]
    }

    #[test]
    fn export_separates_clock_domains_into_processes() {
        let doc = chrome_trace(&sample_events());
        let evs = doc.field("traceEvents").unwrap().as_arr().unwrap();
        // 2 process_name + 3 thread_name (device, pcie, host) + 4 events.
        assert_eq!(evs.len(), 9);

        let kernel = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("spmv_fused"))
            .unwrap();
        assert_eq!(kernel.field_str("ph").unwrap(), "X");
        assert_eq!(kernel.field_u64("pid").unwrap(), DEVICE_PID);
        assert_eq!(kernel.field_f64("dur").unwrap(), 1500.0);
        assert_eq!(
            kernel
                .field("args")
                .unwrap()
                .field_f64("occupancy")
                .unwrap(),
            0.75
        );

        let solver = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("lr_cg.iter"))
            .unwrap();
        assert_eq!(solver.field_u64("pid").unwrap(), HOST_PID);

        let fault = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("kernel.injected"))
            .unwrap();
        assert_eq!(fault.field_str("ph").unwrap(), "i");
        assert_eq!(fault.field_str("s").unwrap(), "t");
        // Instants carry no "dur".
        assert!(fault.get("dur").is_none());
    }

    #[test]
    fn export_names_every_track() {
        let doc = chrome_trace(&sample_events());
        let evs = doc.field("traceEvents").unwrap().as_arr().unwrap();
        let thread_names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .map(|e| e.field("args").unwrap().field_str("name").unwrap())
            .collect();
        assert!(thread_names.contains(&"device"));
        assert!(thread_names.contains(&"pcie"));
        assert!(thread_names.contains(&"host"));
    }

    #[test]
    fn flow_events_render_chrome_flow_phases() {
        let flow = |kind, clock, track: &str, ts| TraceEvent {
            cat: "stream".to_string(),
            name: "iter.flow".to_string(),
            track: track.to_string(),
            clock,
            kind,
            ts_us: ts,
            dur_us: 0.0,
            flow_id: 42,
            args: vec![],
        };
        let mut events = sample_events();
        events.push(flow(EventKind::FlowStart, ClockDomain::Wall, "host", 15.0));
        events.push(flow(EventKind::FlowStep, ClockDomain::Sim, "pcie", 0.0));
        events.push(flow(EventKind::FlowEnd, ClockDomain::Sim, "device", 0.0));
        let doc = chrome_trace(&events);
        let evs = doc.field("traceEvents").unwrap().as_arr().unwrap();
        let phase = |ph: &str| {
            evs.iter()
                .find(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .unwrap_or_else(|| panic!("no '{ph}' event"))
        };
        let s = phase("s");
        assert_eq!(s.field_u64("id").unwrap(), 42);
        assert_eq!(s.field_u64("pid").unwrap(), HOST_PID);
        let t = phase("t");
        assert_eq!(t.field_u64("id").unwrap(), 42);
        assert_eq!(t.field_u64("pid").unwrap(), DEVICE_PID);
        let f = phase("f");
        assert_eq!(f.field_u64("id").unwrap(), 42);
        assert_eq!(f.field_str("bp").unwrap(), "e");
        assert!(s.get("dur").is_none(), "flow events carry no duration");

        let summary = metrics_summary(&events, 0);
        assert_eq!(summary.field_u64("flows").unwrap(), 3);
        // Flows never contribute span time.
        assert!(summary
            .field("wall_span_ms_by_category")
            .unwrap()
            .get("stream")
            .is_none());
    }

    #[test]
    fn export_roundtrips_through_the_parser() {
        let doc = chrome_trace(&sample_events());
        let back = Json::parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn summary_rolls_up_categories_and_clocks() {
        let summary = metrics_summary(&sample_events(), 3);
        assert_eq!(summary.field_u64("events").unwrap(), 4);
        assert_eq!(summary.field_u64("spans").unwrap(), 3);
        assert_eq!(summary.field_u64("instants").unwrap(), 1);
        assert_eq!(summary.field_u64("dropped").unwrap(), 3);
        let by_cat = summary.field("by_category").unwrap();
        assert_eq!(by_cat.field_u64("kernel").unwrap(), 1);
        assert_eq!(by_cat.field_u64("fault").unwrap(), 1);
        let sim = summary.field("sim_ms_by_track").unwrap();
        assert_eq!(sim.field_f64("device").unwrap(), 1.5);
        assert_eq!(sim.field_f64("pcie").unwrap(), 0.25);
        let wall = summary.field("wall_span_ms_by_category").unwrap();
        assert_eq!(wall.field_f64("solver").unwrap(), 0.09);
        // Instants contribute to counts but never to span time.
        assert!(wall.get("fault").is_none());
    }

    #[test]
    fn empty_stream_exports_cleanly() {
        let doc = chrome_trace(&[]);
        assert_eq!(doc.field("traceEvents").unwrap().as_arr().unwrap().len(), 0);
        let summary = metrics_summary(&[], 0);
        assert_eq!(summary.field_u64("events").unwrap(), 0);
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }
}
