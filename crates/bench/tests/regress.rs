//! End-to-end tests of the continuous-benchmarking subsystem: suite
//! determinism, report round-tripping, and the regression gate's exit
//! semantics — plus the paper-level invariant that fused sparse kernels
//! move strictly less DRAM traffic than the operator composition.

use fusedml_bench::regress::{
    compare, run_suite, workload_ids, BenchReport, CompareOptions, Json, Severity, SuiteOptions,
    SCHEMA_VERSION,
};

/// A scaled-down quick suite that keeps this test in the seconds range.
fn tiny_opts() -> SuiteOptions {
    SuiteOptions {
        scale: 0.05,
        ..SuiteOptions::quick()
    }
}

/// Every deterministic field of the two reports must agree; only
/// `wall_ms` (host-dependent) may differ between identical runs.
fn assert_modeled_identical(a: &BenchReport, b: &BenchReport) {
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.workloads.len(), b.workloads.len());
    for (wa, wb) in a.workloads.iter().zip(&b.workloads) {
        assert_eq!(wa.id, wb.id);
        assert_eq!(wa.nnz, wb.nnz);
        assert_eq!(wa.speedup.to_bits(), wb.speedup.to_bits(), "{}", wa.id);
        for (va, vb) in [(&wa.fused, &wb.fused), (&wa.baseline, &wb.baseline)] {
            assert_eq!(
                va.modeled_ms.to_bits(),
                vb.modeled_ms.to_bits(),
                "{} modeled_ms",
                wa.id
            );
            assert_eq!(va.modeled_cycles, vb.modeled_cycles, "{}", wa.id);
            assert_eq!(va.launches, vb.launches, "{}", wa.id);
            assert_eq!(va.gld_transactions, vb.gld_transactions, "{}", wa.id);
            assert_eq!(va.gst_transactions, vb.gst_transactions, "{}", wa.id);
            assert_eq!(va.dram_read_bytes, vb.dram_read_bytes, "{}", wa.id);
            assert_eq!(va.dram_write_bytes, vb.dram_write_bytes, "{}", wa.id);
            assert_eq!(va.l2_read_bytes, vb.l2_read_bytes, "{}", wa.id);
            assert_eq!(va.flops, vb.flops, "{}", wa.id);
            assert_eq!(
                va.register_shuffle_ops, vb.register_shuffle_ops,
                "{}",
                wa.id
            );
            assert_eq!(va.shared_atomic_ops, vb.shared_atomic_ops, "{}", wa.id);
            assert_eq!(va.shared_access_ops, vb.shared_access_ops, "{}", wa.id);
            assert_eq!(va.global_atomic_ops, vb.global_atomic_ops, "{}", wa.id);
            assert_eq!(va.occupancy.to_bits(), vb.occupancy.to_bits(), "{}", wa.id);
        }
    }
}

#[test]
fn suite_is_deterministic_and_gate_passes_on_self() {
    let opts = tiny_opts();
    let a = run_suite(&opts, |_| {});
    let b = run_suite(&opts, |_| {});
    assert_modeled_identical(&a, &b);

    // Two identical runs must sail through the gate with the tight
    // default thresholds (wall-clock included: same machine, and the
    // loose wall tolerance absorbs scheduler noise).
    let outcome = compare(&a, &b, &CompareOptions::default()).unwrap();
    assert!(outcome.passed(), "{}", outcome.render());
    assert_eq!(outcome.workloads_compared, a.workloads.len());
}

#[test]
fn report_roundtrips_through_disk() {
    let opts = tiny_opts();
    let report = run_suite(&opts, |_| {});
    let dir = std::env::temp_dir().join("fusedml_bench_regress_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("BENCH_fusion.json").to_string_lossy().into_owned();
    report.save(&path).unwrap();
    let loaded = BenchReport::load(&path).unwrap();
    assert_eq!(report, loaded);
    // The file is real JSON: it must re-parse structurally too.
    let text = std::fs::read_to_string(&path).unwrap();
    let j = Json::parse(&text).unwrap();
    assert_eq!(j.field_u64("schema_version").unwrap(), SCHEMA_VERSION);
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_modeled_regression_trips_the_gate() {
    let opts = tiny_opts();
    let base = run_suite(&opts, |_| {});
    let mut cand = base.clone();
    // Synthetic 10% modeled-cycle regression on one workload — the
    // acceptance scenario for the CI gate.
    {
        let w = &mut cand.workloads[0];
        w.fused.modeled_ms *= 1.10;
        w.fused.modeled_cycles = (w.fused.modeled_cycles as f64 * 1.10) as u64;
        w.speedup = w.baseline.modeled_ms / w.fused.modeled_ms;
    }
    let outcome = compare(&base, &cand, &CompareOptions::default()).unwrap();
    assert!(!outcome.passed());
    assert!(outcome
        .findings
        .iter()
        .any(|f| f.metric == "fused.modeled_ms" && f.severity == Severity::Regression));
}

#[test]
fn fused_sparse_beats_baseline_on_traffic_and_time() {
    let report = run_suite(&tiny_opts(), |_| {});
    let mut sparse_seen = 0;
    for w in &report.workloads {
        if w.format == "dense" {
            continue;
        }
        sparse_seen += 1;
        // The paper's core claim, as a hard invariant of the simulator:
        // fusing eliminates the materialized intermediate, so the fused
        // pipeline performs strictly fewer global transactions than the
        // operator composition.
        assert!(
            w.fused.gld_transactions + w.fused.gst_transactions
                < w.baseline.gld_transactions + w.baseline.gst_transactions,
            "{}: fused transactions not below baseline",
            w.id
        );
        // DRAM bytes are strictly lower for the kernel-level workloads
        // (one pattern evaluation). End-to-end solver loops at this tiny
        // test scale can hide the win in L2 — their intermediates fit in
        // cache — so the byte-level claim is scoped to the kernels.
        if w.iterations == 0 {
            assert!(
                w.fused.dram_bytes() < w.baseline.dram_bytes(),
                "{}: fused DRAM bytes {} vs baseline {}",
                w.id,
                w.fused.dram_bytes(),
                w.baseline.dram_bytes()
            );
        }
        assert!(w.speedup > 1.0, "{}: speedup {}", w.id, w.speedup);
    }
    assert!(sparse_seen >= 6, "matrix lost its sparse workloads");
}

#[test]
fn workload_ids_are_stable_and_unique() {
    let ids = workload_ids(&SuiteOptions::quick());
    assert_eq!(ids.len(), 12);
    let mut dedup = ids.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "duplicate workload ids");
    // The gate matches rows by id: list and run must agree.
    let report = run_suite(&tiny_opts(), |_| {});
    let run_ids: Vec<String> = report.workloads.iter().map(|w| w.id.clone()).collect();
    assert_eq!(run_ids, workload_ids(&tiny_opts()));
    // Full mode covers at least the quick matrix's breadth.
    assert!(workload_ids(&SuiteOptions::full()).len() >= ids.len());
}

#[test]
fn aggregation_tiers_shift_between_fused_and_baseline() {
    let report = run_suite(&tiny_opts(), |_| {});
    // The per-workload breakdown is the §3.1 attribution axis: every CSR
    // workload's fused run must land its reduction work somewhere in the
    // hierarchy, and the full-pattern kernels specifically aggregate at
    // the register tier (warp shuffles).
    let mut register_tier_seen = false;
    for w in &report.workloads {
        if w.format != "csr" {
            continue;
        }
        let total = w.fused.register_shuffle_ops
            + w.fused.shared_atomic_ops
            + w.fused.shared_access_ops
            + w.fused.global_atomic_ops;
        assert!(
            total > 0,
            "{}: fused run recorded no aggregation-hierarchy work",
            w.id
        );
        register_tier_seen |= w.fused.register_shuffle_ops > 0;
    }
    assert!(
        register_tier_seen,
        "no sparse workload recorded register-tier reductions"
    );
}
