//! CLI contract tests for the `repro` binary: exit codes and the
//! `--trace` Chrome-trace export.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_experiment_name_exits_2() {
    let out = repro()
        .arg("fig99")
        .output()
        .expect("repro binary must run");
    assert_eq!(
        out.status.code(),
        Some(2),
        "typo in an experiment name must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment 'fig99'"),
        "stderr should name the bad experiment: {stderr}"
    );
    assert!(
        stderr.contains("available:"),
        "stderr should list valid names: {stderr}"
    );
}

#[test]
fn usage_and_flag_errors_exit_1() {
    // No experiments at all: usage error.
    let out = repro().output().expect("repro binary must run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Bad flag value: generic failure, not the unknown-experiment code.
    let out = repro()
        .args(["fig2", "--scale", "banana"])
        .output()
        .expect("repro binary must run");
    assert_eq!(out.status.code(), Some(1));

    // Unknown flags are generic failures too.
    let out = repro()
        .args(["fig2", "--frobnicate"])
        .output()
        .expect("repro binary must run");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn trace_flag_exports_a_chrome_trace() {
    let out_path = std::env::temp_dir().join(format!("repro_trace_{}.json", std::process::id()));
    let out = repro()
        .args(["fig2", "--scale", "0.02"])
        .args(["--trace-out", &out_path.display().to_string()])
        .output()
        .expect("repro binary must run");
    assert!(
        out.status.success(),
        "repro --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).expect("trace file must exist");
    let _ = std::fs::remove_file(&out_path);
    assert!(
        text.contains("\"traceEvents\""),
        "trace file is not a Chrome trace-event document"
    );
    // The same spans `fusedml-bench trace` exports: simulated kernels.
    assert!(
        text.contains("\"kernel\""),
        "trace should contain kernel-layer events"
    );
}
