//! End-to-end acceptance test for the tracing subsystem: a traced LR-CG
//! session must emit spans from at least three layers (kernel launches,
//! solver iterations, runtime session phases) and the Chrome trace-event
//! export must round-trip through the zero-dependency JSON parser.
//!
//! One test only: the trace collector is process-global, so concurrent
//! tests in this binary would interleave their event streams.

use fusedml_bench::regress::{chrome_trace, metrics_summary, Json, DEVICE_PID, HOST_PID};
use fusedml_gpu_sim::{DeviceSpec, Gpu};
use fusedml_matrix::gen::{random_vector, uniform_sparse};
use fusedml_matrix::reference;
use fusedml_runtime::{run_device, DataSet, EngineKind, SessionConfig};
use std::collections::BTreeSet;

#[test]
fn end_to_end_trace_covers_three_layers_and_roundtrips() {
    let x = uniform_sparse(600, 64, 0.05, 7);
    let w_true = random_vector(64, 17);
    let labels = reference::csr_mv(&x, &w_true);
    let data = DataSet::Sparse(x);

    fusedml_trace::enable();
    let gpu = Gpu::new(DeviceSpec::gtx_titan());
    run_device(
        &gpu,
        &data,
        &labels,
        &SessionConfig::native(EngineKind::Fused, 3),
    );
    fusedml_trace::disable();
    let events = fusedml_trace::take();
    let dropped = fusedml_trace::dropped_events();
    assert!(!events.is_empty(), "traced run recorded no events");

    // Layer coverage: simulator kernel launches, solver iterations, and
    // runtime session phases must all appear (the memory manager rides
    // along as a fourth).
    let categories: BTreeSet<&str> = events.iter().map(|e| e.cat.as_str()).collect();
    for layer in ["kernel", "solver", "session", "mem"] {
        assert!(categories.contains(layer), "missing layer '{layer}'");
    }

    // The export must survive a render/parse cycle bit-exactly.
    let doc = chrome_trace(&events);
    let text = doc.render();
    let back = Json::parse(&text).expect("export must parse");
    assert_eq!(back, doc, "render/parse round-trip changed the document");

    // Spot-check the Chrome layout on the parsed tree: kernel spans are
    // complete events on the device process, solver iteration spans are
    // on the host process, and every event references a named thread.
    let evs = back
        .field("traceEvents")
        .expect("traceEvents")
        .as_arr()
        .expect("array")
        .to_vec();
    let named_tids: BTreeSet<(u64, u64)> = evs
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| {
            (
                e.field_u64("pid").expect("pid"),
                e.field_u64("tid").expect("tid"),
            )
        })
        .collect();

    let mut kernel_spans = 0usize;
    let mut solver_spans = 0usize;
    let mut session_spans = 0usize;
    for e in &evs {
        let ph = e.field_str("ph").expect("ph");
        if ph == "M" {
            continue;
        }
        let pid = e.field_u64("pid").expect("pid");
        let tid = e.field_u64("tid").expect("tid");
        assert!(
            named_tids.contains(&(pid, tid)),
            "event on unnamed thread {pid}/{tid}"
        );
        let cat = e.field_str("cat").expect("cat");
        match (cat, ph) {
            ("kernel", "X") => {
                assert_eq!(pid, DEVICE_PID, "kernel spans belong on the device process");
                assert!(e.field_f64("dur").expect("dur") > 0.0);
                kernel_spans += 1;
            }
            ("solver", "X") => {
                assert_eq!(pid, HOST_PID, "solver spans belong on the host process");
                solver_spans += 1;
            }
            ("session", "X") => {
                assert_eq!(pid, HOST_PID);
                session_spans += 1;
            }
            _ => {}
        }
    }
    assert!(kernel_spans > 0, "no kernel launch spans");
    assert!(solver_spans >= 3, "expected one span per CG iteration");
    // run_device + phase.upload + phase.solve.
    assert!(session_spans >= 3, "expected session phase spans");

    // The metrics summary agrees with the raw stream.
    let summary = metrics_summary(&events, dropped);
    assert_eq!(summary.field_u64("events").unwrap(), events.len() as u64);
    assert!(
        summary
            .field("sim_ms_by_track")
            .unwrap()
            .field_f64("device")
            .unwrap()
            > 0.0,
        "device track accumulated no simulated time"
    );
}
