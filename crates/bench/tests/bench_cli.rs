//! CLI contract tests for `fusedml-bench`: the exit-code convention
//! shared with `repro` (0 = ok, 1 = regression or runtime failure,
//! 2 = unknown subcommand/flag) and the `plans` dump/check round-trip
//! behind the CI plan-regression gate.

use std::process::Command;

fn bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fusedml-bench"))
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("fusedml_bench_cli_{}_{name}", std::process::id()))
        .display()
        .to_string()
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = bench()
        .arg("frobnicate")
        .output()
        .expect("bench binary must run");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown subcommand must exit 2, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown subcommand 'frobnicate'"),
        "stderr should name the bad subcommand: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "stderr should show usage: {stderr}"
    );
}

#[test]
fn unknown_flag_exits_2() {
    for argv in [
        vec!["list", "--bogus"],
        vec!["plans", "--frobnicate"],
        vec!["compare", "--bogus", "a.json", "b.json"],
    ] {
        let out = bench().args(&argv).output().expect("bench binary must run");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{argv:?} must exit 2, got {:?}",
            out.status
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("unknown flag"),
            "{argv:?} stderr should name the bad flag"
        );
    }
}

#[test]
fn runtime_failures_exit_1_not_2() {
    // A missing report file is an I/O failure, not a usage error.
    let out = bench()
        .args(["compare", "/nonexistent/a.json", "/nonexistent/b.json"])
        .output()
        .expect("bench binary must run");
    assert_eq!(
        out.status.code(),
        Some(1),
        "missing input files must exit 1, got {:?}",
        out.status
    );

    // So is a missing golden for the plan gate.
    let out = bench()
        .args([
            "plans",
            "--quick",
            "--scale",
            "0.02",
            "--check",
            "/nonexistent/golden.json",
        ])
        .output()
        .expect("bench binary must run");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn plans_gate_passes_against_its_own_dump_and_fails_on_drift() {
    let golden = tmp("golden.json");
    let out = bench()
        .args(["plans", "--quick", "--scale", "0.02", "--out", &golden])
        .output()
        .expect("bench binary must run");
    assert!(out.status.success(), "dump failed: {:?}", out.status);

    // Same config re-checked against the dump: clean gate.
    let out = bench()
        .args(["plans", "--quick", "--scale", "0.02", "--check", &golden])
        .output()
        .expect("bench binary must run");
    assert_eq!(out.status.code(), Some(0), "self-check must pass");
    assert!(String::from_utf8_lossy(&out.stderr).contains("plans match"));

    // A different seed changes the dataset (nnz), so the shapes — and
    // therefore the plans dump — drift, and the gate must fail.
    let out = bench()
        .args([
            "plans", "--quick", "--scale", "0.02", "--seed", "99", "--check", &golden,
        ])
        .output()
        .expect("bench binary must run");
    assert_eq!(out.status.code(), Some(1), "drift must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("plan drift"),
        "stderr should list the drifting paths: {stderr}"
    );
    assert!(
        stderr.contains("regenerate the golden"),
        "stderr should say how to accept the change: {stderr}"
    );

    std::fs::remove_file(&golden).ok();
}

#[test]
fn cpu_bench_writes_schema_versioned_report() {
    let out_path = tmp("cpu.json");
    let out = bench()
        .args([
            "cpu",
            "--quick",
            "--scale",
            "0.02",
            "--repeats",
            "1",
            "--threads",
            "1,2",
            "--out",
            &out_path,
        ])
        .output()
        .expect("bench binary must run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "cpu bench must pass its equivalence gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("active executor"),
        "stderr should report the dispatched executor: {stderr}"
    );
    assert!(
        stderr.contains("unfused") && stderr.contains("fused"),
        "stderr should show the fused-vs-unfused table: {stderr}"
    );

    let text = std::fs::read_to_string(&out_path).expect("report must be written");
    let report = fusedml_bench::regress::Json::parse(&text).expect("report must parse");
    assert_eq!(
        report.field_u64("schema_version").unwrap(),
        fusedml_bench::regress::CPU_SCHEMA_VERSION
    );
    assert_eq!(report.field_str("kind").unwrap(), "cpu-bench");
    assert_eq!(
        report.field("workloads").unwrap().as_arr().unwrap().len(),
        2,
        "one sparse and one dense workload"
    );

    std::fs::remove_file(&out_path).ok();
}

#[test]
fn cpu_bench_forced_scalar_reports_scalar_only() {
    let out_path = tmp("cpu_scalar.json");
    let out = bench()
        .args([
            "cpu",
            "--quick",
            "--scale",
            "0.02",
            "--repeats",
            "1",
            "--threads",
            "1",
            "--out",
            &out_path,
        ])
        .env("FUSEDML_FORCE_SCALAR", "1")
        .output()
        .expect("bench binary must run");
    assert_eq!(
        out.status.code(),
        Some(0),
        "forced-scalar cpu bench must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&out_path).expect("report must be written");
    let report = fusedml_bench::regress::Json::parse(&text).expect("report must parse");
    let host = report.field("host").unwrap();
    assert_eq!(host.field_str("active_executor").unwrap(), "scalar");
    assert_eq!(
        host.field("forced_scalar").unwrap(),
        &fusedml_bench::regress::Json::Bool(true)
    );
    for wl in report.field("workloads").unwrap().as_arr().unwrap() {
        for leg in wl.field("fused").unwrap().as_arr().unwrap() {
            assert!(
                leg.field_str("executor").unwrap().starts_with("scalar"),
                "forced-scalar run must not time SIMD legs"
            );
        }
    }

    std::fs::remove_file(&out_path).ok();
}

#[test]
fn cpu_bench_zero_repeats_is_a_usage_error() {
    let out = bench()
        .args(["cpu", "--repeats", "0"])
        .output()
        .expect("bench binary must run");
    assert_eq!(
        out.status.code(),
        Some(2),
        "zero repeats is a usage error, got {:?}",
        out.status
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("--repeats"));
}

#[test]
fn plans_dump_is_byte_deterministic() {
    let run = || {
        let out = bench()
            .args(["plans", "--quick", "--scale", "0.02"])
            .output()
            .expect("bench binary must run");
        assert!(out.status.success());
        out.stdout
    };
    assert_eq!(
        run(),
        run(),
        "two dumps of one config must be byte-identical"
    );
}
