//! # fusedml-trace
//!
//! A zero-dependency structured tracing layer for the whole workspace:
//! every crate (simulator, fused kernels, solvers, runtime) records spans
//! and instant events into one process-wide collector, and the bench CLI
//! exports the result as a Chrome trace-event file plus a flat metrics
//! summary.
//!
//! Design constraints, in order:
//!
//! 1. **Off by default, near-zero overhead when off.** Every recording
//!    entry point starts with one relaxed atomic load; nothing is
//!    allocated, formatted or locked unless tracing was explicitly
//!    enabled. The perf-regression gate runs with tracing compiled in but
//!    disabled, so this is load-bearing.
//! 2. **Two clock domains.** The simulator models kernel and transfer
//!    time in *simulated* milliseconds with no global clock; the host
//!    (solver loops, session phases) runs in *wall* time. Simulated spans
//!    carry a per-track cursor (`sim_span`) so each device track renders
//!    as a contiguous timeline; wall spans measure real elapsed time
//!    against a process-wide origin.
//! 3. **Zero dependencies.** `std` only — the collector must work in the
//!    offline build environments where third-party crates are stubbed.
//!
//! ```
//! fusedml_trace::enable();
//! {
//!     let mut span = fusedml_trace::wall_span("solver", "iter", "host");
//!     span.arg("nr2", 0.25);
//! } // span recorded on drop
//! fusedml_trace::sim_span("kernel", "spmv", "device", 1.5, &[("grid", 28u64.into())]);
//! let events = fusedml_trace::take();
//! fusedml_trace::disable();
//! assert_eq!(events.len(), 2);
//! ```

// The collector must never take down the traced process; lock recovery
// and fallbacks are explicit, so bare unwrap/expect stays test-only.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Which clock a [`TraceEvent`]'s timestamps belong to. Wall and simulated
/// timelines are not comparable; the exporter places them on separate
/// process tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockDomain {
    /// Host wall time relative to the process trace origin.
    Wall,
    /// Simulated device time; per-track cursor, starts at 0.
    Sim,
}

/// Span (has a duration), instant (a point marker), or a flow edge
/// (Chrome `s`/`t`/`f` arrows linking causally-related spans across
/// tracks — a solver iteration to the chunk transfers and kernels it
/// triggered). Flow events carry the shared arrow id in
/// [`TraceEvent::flow_id`] and bind to the span enclosing their
/// timestamp on their track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Span,
    Instant,
    /// Start of a flow arrow (`"ph": "s"`).
    FlowStart,
    /// Intermediate hop of a flow arrow (`"ph": "t"`).
    FlowStep,
    /// End of a flow arrow (`"ph": "f"`).
    FlowEnd,
}

/// A typed event argument value (rendered into the Chrome `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    F64(f64),
    U64(u64),
    Str(String),
    Bool(bool),
}

impl From<f64> for ArgValue {
    fn from(x: f64) -> Self {
        ArgValue::F64(x)
    }
}
impl From<u64> for ArgValue {
    fn from(x: u64) -> Self {
        ArgValue::U64(x)
    }
}
impl From<u32> for ArgValue {
    fn from(x: u32) -> Self {
        ArgValue::U64(x as u64)
    }
}
impl From<usize> for ArgValue {
    fn from(x: usize) -> Self {
        ArgValue::U64(x as u64)
    }
}
impl From<bool> for ArgValue {
    fn from(x: bool) -> Self {
        ArgValue::Bool(x)
    }
}
impl From<&str> for ArgValue {
    fn from(x: &str) -> Self {
        ArgValue::Str(x.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(x: String) -> Self {
        ArgValue::Str(x)
    }
}

/// One recorded event. Timestamps and durations are microseconds within
/// the event's [`ClockDomain`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Category: the layer that recorded it (`"kernel"`, `"plan"`,
    /// `"solver"`, `"session"`, `"mem"`, `"stream"`, `"recovery"`,
    /// `"fault"`).
    pub cat: String,
    /// Event name within the category.
    pub name: String,
    /// Timeline the event renders on (Chrome thread). Events sharing a
    /// track are laid out sequentially.
    pub track: String,
    pub clock: ClockDomain,
    pub kind: EventKind,
    /// Start timestamp in microseconds (domain-relative).
    pub ts_us: f64,
    /// Duration in microseconds; 0 for instants.
    pub dur_us: f64,
    /// Arrow id shared by the flow events of one causal chain; 0 for
    /// spans and instants.
    pub flow_id: u64,
    pub args: Vec<(String, ArgValue)>,
}

/// Hard cap on buffered events; recording beyond it increments
/// [`dropped_events`] instead of growing without bound.
pub const MAX_EVENTS: usize = 1 << 20;

struct State {
    events: Vec<TraceEvent>,
    /// Next free timestamp (µs) per simulated track.
    sim_cursor_us: HashMap<String, f64>,
    dropped: u64,
}

impl State {
    fn new() -> Self {
        State {
            events: Vec::new(),
            sim_cursor_us: HashMap::new(),
            dropped: 0,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::new()))
}

/// Process-wide wall-clock origin; all wall timestamps are relative to the
/// first call of any trace entry point.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

fn wall_now_us() -> f64 {
    origin().elapsed().as_secs_f64() * 1e6
}

fn push(event: TraceEvent) {
    let mut s = state().lock().unwrap_or_else(|e| e.into_inner());
    if s.events.len() < MAX_EVENTS {
        s.events.push(event);
    } else {
        s.dropped += 1;
    }
}

/// Turn the collector on, clearing any previously buffered events and
/// resetting the simulated-time cursors.
pub fn enable() {
    {
        let mut s = state().lock().unwrap_or_else(|e| e.into_inner());
        *s = State::new();
    }
    origin(); // pin the wall origin before the first recorded event
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the collector off. Buffered events stay until [`take`] or the
/// next [`enable`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// The one check every instrumentation site performs first. A relaxed
/// load: when tracing is off this is the entire cost.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain and return all buffered events, oldest first.
pub fn take() -> Vec<TraceEvent> {
    let mut s = state().lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut s.events)
}

/// Events discarded because the buffer hit [`MAX_EVENTS`].
pub fn dropped_events() -> u64 {
    state().lock().unwrap_or_else(|e| e.into_inner()).dropped
}

/// Record a wall-clock instant (a point marker on `track`).
pub fn instant(cat: &str, name: &str, track: &str, args: &[(&str, ArgValue)]) {
    if !is_enabled() {
        return;
    }
    push(TraceEvent {
        cat: cat.to_string(),
        name: name.to_string(),
        track: track.to_string(),
        clock: ClockDomain::Wall,
        kind: EventKind::Instant,
        ts_us: wall_now_us(),
        dur_us: 0.0,
        flow_id: 0,
        args: args
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Record the start of a flow arrow on a wall-clock track at the current
/// wall time — call it from inside the span (e.g. a solver iteration)
/// the arrow should originate from; Chrome binds the `s` event to the
/// span enclosing its timestamp.
pub fn wall_flow_start(cat: &str, name: &str, track: &str, id: u64) {
    if !is_enabled() {
        return;
    }
    push(TraceEvent {
        cat: cat.to_string(),
        name: name.to_string(),
        track: track.to_string(),
        clock: ClockDomain::Wall,
        kind: EventKind::FlowStart,
        ts_us: wall_now_us(),
        dur_us: 0.0,
        flow_id: id,
        args: Vec::new(),
    });
}

/// Record a flow hop (`FlowStep`) or terminus (`FlowEnd`) on a
/// simulated-time track at the track's *current cursor* — i.e. at the
/// start of the next [`sim_span`] recorded on that track. Call it
/// immediately before the span the arrow should attach to.
fn sim_flow(cat: &str, name: &str, track: &str, id: u64, kind: EventKind) {
    if !is_enabled() {
        return;
    }
    let ts_us = {
        let mut s = state().lock().unwrap_or_else(|e| e.into_inner());
        *s.sim_cursor_us.entry(track.to_string()).or_insert(0.0)
    };
    push(TraceEvent {
        cat: cat.to_string(),
        name: name.to_string(),
        track: track.to_string(),
        clock: ClockDomain::Sim,
        kind,
        ts_us,
        dur_us: 0.0,
        flow_id: id,
        args: Vec::new(),
    });
}

/// Flow hop on a simulated track (binds to the next [`sim_span`] there).
pub fn sim_flow_step(cat: &str, name: &str, track: &str, id: u64) {
    sim_flow(cat, name, track, id, EventKind::FlowStep);
}

/// Flow terminus on a simulated track (binds to the next [`sim_span`]
/// there).
pub fn sim_flow_end(cat: &str, name: &str, track: &str, id: u64) {
    sim_flow(cat, name, track, id, EventKind::FlowEnd);
}

/// Record a simulated-time span of `dur_ms` on `track`. The span starts
/// at the track's cursor and advances it, so successive simulated events
/// on one track form a contiguous timeline (the simulator has no global
/// clock — only per-operation durations).
pub fn sim_span(cat: &str, name: &str, track: &str, dur_ms: f64, args: &[(&str, ArgValue)]) {
    if !is_enabled() {
        return;
    }
    let dur_us = (dur_ms * 1e3).max(0.0);
    let ts_us = {
        let mut s = state().lock().unwrap_or_else(|e| e.into_inner());
        let cursor = s.sim_cursor_us.entry(track.to_string()).or_insert(0.0);
        let ts = *cursor;
        *cursor += dur_us;
        ts
    };
    push(TraceEvent {
        cat: cat.to_string(),
        name: name.to_string(),
        track: track.to_string(),
        clock: ClockDomain::Sim,
        kind: EventKind::Span,
        ts_us,
        dur_us,
        flow_id: 0,
        args: args
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    });
}

/// Open a wall-clock span; it records itself when dropped. When tracing
/// is disabled the guard is inert (no allocation beyond the struct).
pub fn wall_span(cat: &str, name: &str, track: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            meta: None,
            start_us: 0.0,
            args: Vec::new(),
        };
    }
    SpanGuard {
        meta: Some((cat.to_string(), name.to_string(), track.to_string())),
        start_us: wall_now_us(),
        args: Vec::new(),
    }
}

/// RAII guard for a wall-clock span (see [`wall_span`]).
pub struct SpanGuard {
    /// `(cat, name, track)`; `None` when tracing was off at creation.
    meta: Option<(String, String, String)>,
    start_us: f64,
    args: Vec<(String, ArgValue)>,
}

impl SpanGuard {
    /// Attach an argument to the span (shown in the Chrome `args` pane).
    pub fn arg(&mut self, key: &str, value: impl Into<ArgValue>) {
        if self.meta.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((cat, name, track)) = self.meta.take() else {
            return;
        };
        let end_us = wall_now_us();
        push(TraceEvent {
            cat,
            name,
            track,
            clock: ClockDomain::Wall,
            kind: EventKind::Span,
            ts_us: self.start_us,
            dur_us: (end_us - self.start_us).max(0.0),
            flow_id: 0,
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests touching it must not
    /// interleave.
    fn lock_collector() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock_collector();
        enable();
        disable();
        instant("cat", "x", "host", &[]);
        sim_span("cat", "k", "device", 1.0, &[]);
        {
            let mut s = wall_span("cat", "s", "host");
            s.arg("a", 1u64);
        }
        assert!(take().is_empty());
    }

    #[test]
    fn sim_cursor_advances_per_track() {
        let _g = lock_collector();
        enable();
        sim_span("kernel", "a", "device", 2.0, &[]);
        sim_span("kernel", "b", "device", 3.0, &[]);
        sim_span("mem", "t", "pcie", 5.0, &[]);
        disable();
        let ev = take();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].ts_us, 0.0);
        assert_eq!(ev[0].dur_us, 2000.0);
        assert_eq!(ev[1].ts_us, 2000.0); // contiguous on "device"
        assert_eq!(ev[2].ts_us, 0.0); // fresh cursor on "pcie"
        assert_eq!(ev[2].clock, ClockDomain::Sim);
    }

    #[test]
    fn wall_span_measures_and_carries_args() {
        let _g = lock_collector();
        enable();
        {
            let mut s = wall_span("solver", "iter", "host");
            s.arg("iter", 3u64);
            s.arg("nr2", 0.5);
            s.arg("tag", "cg");
            s.arg("ok", true);
        }
        disable();
        let ev = take();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, EventKind::Span);
        assert_eq!(ev[0].clock, ClockDomain::Wall);
        assert!(ev[0].dur_us >= 0.0);
        assert_eq!(ev[0].args.len(), 4);
        assert_eq!(ev[0].args[0], ("iter".to_string(), ArgValue::U64(3)));
        assert_eq!(ev[0].args[1], ("nr2".to_string(), ArgValue::F64(0.5)));
    }

    #[test]
    fn enable_clears_previous_buffer_and_cursors() {
        let _g = lock_collector();
        enable();
        sim_span("kernel", "a", "device", 4.0, &[]);
        enable(); // re-enable clears
        sim_span("kernel", "b", "device", 1.0, &[]);
        disable();
        let ev = take();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].name, "b");
        assert_eq!(ev[0].ts_us, 0.0); // cursor was reset
    }

    #[test]
    fn flows_bind_to_span_starts_without_advancing_cursors() {
        let _g = lock_collector();
        enable();
        wall_flow_start("stream", "iter.flow", "host", 7);
        sim_flow_step("stream", "iter.flow", "pcie", 7);
        sim_span("stream", "chunk.h2d", "pcie", 2.0, &[]);
        sim_flow_end("stream", "iter.flow", "device", 7);
        sim_span("kernel", "fused_sparse_shard", "device", 1.0, &[]);
        disable();
        let ev = take();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0].kind, EventKind::FlowStart);
        assert_eq!(ev[0].clock, ClockDomain::Wall);
        assert_eq!(ev[0].flow_id, 7);
        // The pcie flow step sits exactly at the h2d span's start and did
        // not advance the cursor.
        assert_eq!(ev[1].kind, EventKind::FlowStep);
        assert_eq!(ev[1].ts_us, ev[2].ts_us);
        assert_eq!(ev[2].kind, EventKind::Span);
        assert_eq!(ev[2].ts_us, 0.0);
        // Same on the device track.
        assert_eq!(ev[3].kind, EventKind::FlowEnd);
        assert_eq!(ev[3].ts_us, ev[4].ts_us);
        assert_eq!(ev[4].flow_id, 0, "spans carry no flow id");
    }

    #[test]
    fn disabled_flows_record_nothing() {
        let _g = lock_collector();
        enable();
        disable();
        wall_flow_start("stream", "f", "host", 1);
        sim_flow_step("stream", "f", "pcie", 1);
        sim_flow_end("stream", "f", "device", 1);
        assert!(take().is_empty());
    }

    #[test]
    fn instants_have_zero_duration() {
        let _g = lock_collector();
        enable();
        instant("fault", "transient", "device", &[("draw", 7u64.into())]);
        disable();
        let ev = take();
        assert_eq!(ev[0].kind, EventKind::Instant);
        assert_eq!(ev[0].dur_us, 0.0);
    }
}
