//! Byte-stability of the simulator's performance model: two identical
//! launches must produce identical counters and identical modeled time,
//! no matter how often or on which host they run. The CI perf-regression
//! gate (`fusedml-bench compare`) leans on this — modeled cycles are
//! diffed with tight thresholds precisely because they are deterministic.

use fusedml_gpu_sim::{Counters, DeviceSpec, Gpu, LaunchConfig, LaunchStats};

/// A small but representative kernel: strided loads (partial coalescing),
/// a shuffle reduction, shared traffic, and a global atomic flush.
fn reference_launch(host_threads: usize) -> LaunchStats {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), host_threads);
    let n = 4096usize;
    let data: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.5).collect();
    let x = g.upload_f64("x", &data);
    let out = g.alloc_f64("out", 64);
    g.launch("reference", LaunchConfig::new(8, 128), |blk| {
        blk.each_warp(|w| {
            let base = (w.block_id() * 128 + w.warp_id() * 32) * 2;
            let mut v = w.load_f64(&x, |lane| {
                let idx = base + lane * 2; // stride-2: 16 sectors per warp
                (idx < n).then_some(idx)
            });
            w.shuffle_reduce_sum(&mut v, 32);
            let block = w.block_id();
            w.atomic_add_f64(&out, |lane| (lane == 0).then_some((block % 64, v[0])));
        });
    })
}

fn assert_stats_identical(a: &LaunchStats, b: &LaunchStats) {
    assert_eq!(a.counters, b.counters, "counters must be byte-stable");
    // Timing is pure f64 arithmetic over the counters: bitwise equal.
    assert_eq!(
        a.time.total_ms.to_bits(),
        b.time.total_ms.to_bits(),
        "modeled time must be bit-deterministic"
    );
    assert_eq!(a.time.dram_ms.to_bits(), b.time.dram_ms.to_bits());
    assert_eq!(
        a.time.atomic_serial_ms.to_bits(),
        b.time.atomic_serial_ms.to_bits()
    );
}

#[test]
fn identical_runs_produce_identical_counters_and_cycles() {
    let a = reference_launch(1);
    let b = reference_launch(1);
    assert_stats_identical(&a, &b);
    let clock = DeviceSpec::gtx_titan().clock_ghz;
    assert_eq!(
        a.time.modeled_cycles(clock),
        b.time.modeled_cycles(clock),
        "modeled cycle counts must be byte-stable"
    );
    assert!(a.time.modeled_cycles(clock) > 0);
}

#[test]
fn host_thread_count_does_not_perturb_the_model() {
    let a = reference_launch(1);
    let b = reference_launch(4);
    assert_stats_identical(&a, &b);
}

#[test]
fn aggregation_breakdown_classifies_all_reduction_tiers() {
    let s = reference_launch(1);
    let agg = s.counters.aggregation_breakdown();
    // The reference kernel reduces in registers then flushes globally.
    assert!(agg.register_shuffle_ops > 0, "shuffle tier used");
    assert!(agg.global_atomic_ops > 0, "global-atomic tier used");
    assert_eq!(agg.register_shuffle_ops, s.counters.shuffle_instructions);
    assert_eq!(
        agg.global_atomic_ops,
        s.counters.global_atomics + s.counters.global_atomics_int
    );
    assert_eq!(
        agg.total_ops(),
        agg.register_shuffle_ops
            + agg.shared_atomic_ops
            + agg.shared_access_ops
            + agg.global_atomic_ops
    );
}

#[test]
fn modeled_cycles_scale_with_clock() {
    let s = reference_launch(1);
    let lo = s.time.modeled_cycles(0.5);
    let hi = s.time.modeled_cycles(1.0);
    // Same modeled time at double the clock is double the cycles.
    assert!(hi >= 2 * lo - 1 && hi <= 2 * lo + 1, "{lo} vs {hi}");
}

#[test]
fn merged_counters_equal_sum_of_parts() {
    let a = reference_launch(1);
    let b = reference_launch(1);
    let mut merged = Counters::new();
    merged.merge(&a.counters);
    merged.merge(&b.counters);
    assert_eq!(
        merged.gld_transactions,
        a.counters.gld_transactions + b.counters.gld_transactions
    );
    assert_eq!(merged.flops, a.counters.flops + b.counters.flops);
    assert_eq!(merged.kernel_launches, 2);
}
