//! Property tests on the execution engine: coalescing arithmetic, cache
//! behaviour, reduction correctness and occupancy monotonicity under
//! random inputs.

// Needs the real `proptest` crate: gated off in offline builds, where
// `proptest` resolves to a macro-less stub (see the workspace Cargo.toml).
#![cfg(feature = "proptest-tests")]

use fusedml_gpu_sim::{occupancy, DeviceSpec, Gpu, LaunchConfig, WARP_LANES};
use proptest::prelude::*;

fn gpu() -> Gpu {
    Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn strided_load_transaction_count_is_exact(stride in 1usize..64) {
        let g = gpu();
        let buf = g.upload_f64("x", &vec![1.0; 32 * stride]);
        let stats = g.launch("strided", LaunchConfig::new(1, 32), |blk| {
            blk.each_warp(|w| {
                w.load_f64(&buf, |lane| Some(lane * stride));
            });
        });
        // Expected sectors: unique addr/32B among the 32 lanes.
        let mut sectors: Vec<u64> = (0..32u64)
            .map(|l| l * stride as u64 * 8 / 32)
            .collect();
        sectors.sort_unstable();
        sectors.dedup();
        prop_assert_eq!(stats.counters.gld_transactions, sectors.len() as u64);
    }

    #[test]
    fn shuffle_reduce_sums_random_values(
        vals in proptest::collection::vec(-100.0f64..100.0, 32),
        width_pow in 0u32..6,
    ) {
        let g = gpu();
        let width = 1usize << width_pow;
        let vals2 = vals.clone();
        g.launch("reduce", LaunchConfig::new(1, 32), move |blk| {
            blk.each_warp(|w| {
                let mut lanes = [0.0; WARP_LANES];
                lanes.copy_from_slice(&vals2);
                w.shuffle_reduce_sum(&mut lanes, width);
                for (lane, got) in lanes.iter().enumerate() {
                    let group = lane / width;
                    let expect: f64 =
                        vals2[group * width..(group + 1) * width].iter().sum();
                    assert!(
                        (got - expect).abs() < 1e-9,
                        "group {group} lane {lane}: {got} vs {expect}"
                    );
                }
            });
        });
    }

    #[test]
    fn atomic_adds_sum_exactly_over_grid(
        grid in 1usize..32,
        block in (1usize..33).prop_map(|b| b * 32),
    ) {
        let g = gpu();
        let out = g.alloc_f64("acc", 4);
        let stats = g.launch("atomics", LaunchConfig::new(grid, block), |blk| {
            blk.each_warp(|w| {
                w.atomic_add_f64(&out, |lane| Some((lane % 4, 1.0)));
            });
        });
        let total: f64 = out.to_vec_f64().iter().sum();
        let threads = (grid * block) as f64;
        prop_assert!((total - threads).abs() < 1e-9);
        prop_assert_eq!(stats.counters.global_atomics, grid as u64 * block as u64);
    }

    #[test]
    fn occupancy_never_exceeds_device_limits(
        block in (1usize..33).prop_map(|b| b * 32),
        regs in 8u32..256,
        shared_kb in 0usize..49,
    ) {
        let spec = DeviceSpec::gtx_titan();
        if let Some(o) = occupancy(&spec, block, regs, shared_kb * 1024) {
            prop_assert!(o.warps_per_sm <= spec.max_warps_per_sm());
            prop_assert!(o.blocks_per_sm <= spec.max_blocks_per_sm);
            // Register file capacity respected.
            let warp_regs = ((regs as usize * 32).div_ceil(256)) * 256;
            prop_assert!(o.warps_per_sm * warp_regs <= spec.registers_per_sm);
            // Shared capacity respected.
            let granule = shared_kb.saturating_mul(1024).div_ceil(256) * 256;
            prop_assert!(o.blocks_per_sm * granule <= spec.shared_mem_per_sm);
            prop_assert!(o.occupancy > 0.0 && o.occupancy <= 1.0);
        }
    }

    #[test]
    fn store_then_load_roundtrips(
        n in 1usize..2000,
        seed in 0u64..100,
    ) {
        let g = gpu();
        let vals: Vec<f64> = (0..n).map(|i| (i as f64) * 1.5 + seed as f64).collect();
        let src = g.upload_f64("src", &vals);
        let dst = g.alloc_f64("dst", n);
        g.launch("copy", LaunchConfig::new(4, 128), |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    let v = w.load_f64(&src, |l| (base + l < n).then_some(base + l));
                    w.store_f64(&dst, |l| (base + l < n).then(|| (base + l, v[l])));
                    base += grid_threads;
                }
            });
        });
        prop_assert_eq!(dst.to_vec_f64(), vals);
    }
}

#[test]
fn cache_warmup_reduces_dram_traffic_on_second_launch() {
    let g = gpu();
    let buf = g.upload_f64("x", &vec![1.0; 8192]);
    let run = || {
        g.launch("scan", LaunchConfig::new(1, 256), |blk| {
            blk.each_warp(|w| {
                let mut base = w.tid(0);
                while base < 8192 {
                    w.load_f64(&buf, |l| (base + l < 8192).then_some(base + l));
                    base += 256;
                }
            });
        })
    };
    g.flush_caches();
    let cold = run();
    let warm = run();
    assert!(warm.counters.dram_read_bytes < cold.counters.dram_read_bytes / 4);
    assert!(warm.counters.l2_read_bytes > cold.counters.l2_read_bytes);
}

#[test]
fn divergence_is_counted() {
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    let buf = g.upload_f64("x", &vec![1.0; 64]);
    // Half the lanes predicated off on every load.
    let stats = g.launch("divergent", LaunchConfig::new(1, 32), |blk| {
        blk.each_warp(|w| {
            w.load_f64(&buf, |lane| (lane % 2 == 0).then_some(lane));
        });
    });
    assert_eq!(stats.counters.divergent_instructions, 1);
    assert_eq!(stats.counters.inactive_lanes, 16);
    assert!((stats.counters.simd_efficiency() - 0.5).abs() < 1e-12);

    // Fully active loads do not count as divergent.
    let full = g.launch("full", LaunchConfig::new(1, 32), |blk| {
        blk.each_warp(|w| {
            w.load_f64(&buf, Some);
        });
    });
    assert_eq!(full.counters.divergent_instructions, 0);
    assert_eq!(full.counters.simd_efficiency(), 1.0);
}

#[test]
fn skewed_rows_diverge_more_than_uniform() {
    use fusedml_gpu_sim::GpuBuffer;
    let _: Option<GpuBuffer> = None; // type in scope for clarity
    let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
    // CSR-vector style marching emulation: warps loop to the longest row
    // in their group, masking finished lanes.
    let run = |lens: Vec<usize>| {
        let max = *lens.iter().max().unwrap();
        let data = g.upload_f64("d", &vec![1.0; 32 * max]);
        let stats = g.launch("march", LaunchConfig::new(1, 32), |blk| {
            blk.each_warp(|w| {
                for step in 0..max {
                    w.load_f64(&data, |lane| (step < lens[lane]).then(|| lane * max + step));
                }
            });
        });
        stats.counters.simd_efficiency()
    };
    let uniform = run(vec![8; 32]);
    let mut skewed = vec![2; 32];
    skewed[0] = 64;
    let skew_eff = run(skewed);
    assert!((uniform - 1.0).abs() < 1e-12);
    assert!(skew_eff < 0.2, "skewed efficiency {skew_eff}");
}
