//! Hardware event counters gathered during a simulated kernel launch.
//!
//! These mirror the NVIDIA Visual Profiler metrics the paper reports
//! (global load transactions in Fig. 2-bottom, atomic traffic in §3.1).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sampling shift for the global-atomic address histogram: one in
/// `2^ATOMIC_SAMPLE_SHIFT` atomic operations records its target address.
pub(crate) const ATOMIC_SAMPLE_SHIFT: u32 = 5;

/// Event counts accumulated over one kernel launch (or a sequence of
/// launches — counters add).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Warp-level global load instructions issued.
    pub gld_instructions: u64,
    /// 32-byte global load sectors touched (the "load transactions" of
    /// Fig. 2-bottom). A fully coalesced f64 warp load costs 8 sectors;
    /// a fully scattered one costs 32.
    pub gld_transactions: u64,
    /// Warp-level global store instructions issued.
    pub gst_instructions: u64,
    /// 32-byte global store sectors touched.
    pub gst_transactions: u64,
    /// Bytes actually fetched from DRAM (cache-line fills on L2 misses).
    pub dram_read_bytes: u64,
    /// Bytes written back to DRAM (stores + atomics; write-through model).
    pub dram_write_bytes: u64,
    /// Bytes served from the L2 cache (hits).
    pub l2_read_bytes: u64,
    /// Bytes served from the per-SM read-only (texture) cache.
    pub tex_read_bytes: u64,
    /// 32-byte sectors requested through the read-only (texture) path —
    /// counted separately from `gld_transactions`, as NVVP does.
    pub tex_transactions: u64,
    /// Global-memory f64 atomic operations performed (CAS-loop class).
    pub global_atomics: u64,
    /// Global-memory integer atomic operations (native fetch-add class:
    /// histogram counts, scatter cursors).
    pub global_atomics_int: u64,
    /// Extra serialization events from multiple lanes of one warp updating
    /// the same address in one atomic instruction.
    pub global_atomic_warp_conflicts: u64,
    /// Shared-memory load/store operations (per lane).
    pub shared_accesses: u64,
    /// Shared-memory atomic operations.
    pub shared_atomics: u64,
    /// Extra cycles lost to shared-memory bank conflicts.
    pub shared_bank_conflicts: u64,
    /// Warp shuffle instructions (register-level reductions).
    pub shuffle_instructions: u64,
    /// Memory instructions issued with a partially active mask (lanes
    /// predicated off) — the warp-divergence signal NVVP reports and §2
    /// lists among the factors governing performance.
    pub divergent_instructions: u64,
    /// Sum of inactive lanes over all divergent instructions (the wasted
    /// SIMD slots).
    pub inactive_lanes: u64,
    /// Double-precision floating point operations.
    pub flops: u64,
    /// `__syncthreads()` barriers executed (per block).
    pub barriers: u64,
    /// Kernel launches folded into these counters.
    pub kernel_launches: u64,
    /// Sampled histogram of global-atomic target addresses, used by the
    /// timing model to estimate same-address serialization. Keys are
    /// element addresses; values are sampled hit counts. Ordered so that
    /// debug/serialized representations are deterministic.
    #[serde(skip)]
    pub atomic_addr_samples: BTreeMap<u64, u32>,
}

/// Where the reduction work of a launch landed in the paper's §3.1
/// aggregation hierarchy: registers (warp shuffles), shared memory, or
/// global-memory atomics. The fused kernels' speedup story is precisely
/// that work migrates *up* this hierarchy, so the benchmark reports carry
/// this breakdown per workload to make speedup changes attributable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationBreakdown {
    /// Register-level reduction ops (warp shuffle instructions).
    pub register_shuffle_ops: u64,
    /// Shared-memory atomic reduction ops.
    pub shared_atomic_ops: u64,
    /// Plain shared-memory traffic (staging loads/stores around the
    /// shared-tier reductions).
    pub shared_access_ops: u64,
    /// Global-memory atomics (f64 CAS-loop class + native integer).
    pub global_atomic_ops: u64,
}

impl AggregationBreakdown {
    /// Total reduction-hierarchy operations.
    pub fn total_ops(&self) -> u64 {
        self.register_shuffle_ops
            + self.shared_atomic_ops
            + self.shared_access_ops
            + self.global_atomic_ops
    }
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Classify this launch's reduction traffic by aggregation tier
    /// (register/shuffle vs. shared vs. global-atomic).
    pub fn aggregation_breakdown(&self) -> AggregationBreakdown {
        AggregationBreakdown {
            register_shuffle_ops: self.shuffle_instructions,
            shared_atomic_ops: self.shared_atomics,
            shared_access_ops: self.shared_accesses,
            global_atomic_ops: self.global_atomics + self.global_atomics_int,
        }
    }

    /// Total global sectors (loads + stores).
    pub fn total_transactions(&self) -> u64 {
        self.gld_transactions + self.gst_transactions
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Average SIMD efficiency of memory instructions: active lanes over
    /// issued lane slots, in (0, 1]. Returns 1.0 when nothing was issued.
    pub fn simd_efficiency(&self) -> f64 {
        let instrs = self.gld_instructions + self.gst_instructions;
        if instrs == 0 {
            return 1.0;
        }
        let slots = instrs * 32;
        1.0 - self.inactive_lanes as f64 / slots as f64
    }

    /// Merge another counter set into this one (used when per-worker
    /// accumulators are combined at the end of a launch).
    pub fn merge(&mut self, other: &Counters) {
        self.gld_instructions += other.gld_instructions;
        self.gld_transactions += other.gld_transactions;
        self.gst_instructions += other.gst_instructions;
        self.gst_transactions += other.gst_transactions;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.l2_read_bytes += other.l2_read_bytes;
        self.tex_read_bytes += other.tex_read_bytes;
        self.tex_transactions += other.tex_transactions;
        self.global_atomics += other.global_atomics;
        self.global_atomics_int += other.global_atomics_int;
        self.global_atomic_warp_conflicts += other.global_atomic_warp_conflicts;
        self.shared_accesses += other.shared_accesses;
        self.shared_atomics += other.shared_atomics;
        self.shared_bank_conflicts += other.shared_bank_conflicts;
        self.shuffle_instructions += other.shuffle_instructions;
        self.divergent_instructions += other.divergent_instructions;
        self.inactive_lanes += other.inactive_lanes;
        self.flops += other.flops;
        self.barriers += other.barriers;
        self.kernel_launches += other.kernel_launches;
        for (addr, count) in &other.atomic_addr_samples {
            *self.atomic_addr_samples.entry(*addr).or_insert(0) += count;
        }
    }

    /// Record one global atomic targeting element address `addr`. `phase`
    /// is a per-SM running atomic counter, so sampling is deterministic no
    /// matter how simulated SMs are spread over host threads; it is hashed
    /// so the effective sampling stride cannot alias with periodic lane
    /// patterns (a fixed stride of 32 would always sample the same lane of
    /// every warp instruction).
    pub(crate) fn record_global_atomic(&mut self, addr: u64, phase: u64) {
        self.global_atomics += 1;
        self.sample_atomic_addr(addr, phase);
    }

    /// Record one integer global atomic (native fetch-add class).
    pub(crate) fn record_global_atomic_int(&mut self, addr: u64, phase: u64) {
        self.global_atomics_int += 1;
        self.sample_atomic_addr(addr, phase);
    }

    fn sample_atomic_addr(&mut self, addr: u64, phase: u64) {
        let h = phase.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        if h >> (64 - ATOMIC_SAMPLE_SHIFT) == 0 {
            *self.atomic_addr_samples.entry(addr).or_insert(0) += 1;
        }
    }

    /// Estimated number of atomics hitting the most contended address,
    /// scaled back up from the sample rate. Returns 0 when no atomics
    /// were sampled.
    pub fn hottest_atomic_address_count(&self) -> u64 {
        self.atomic_addr_samples
            .values()
            .copied()
            .max()
            .map(|m| (m as u64) << ATOMIC_SAMPLE_SHIFT)
            .unwrap_or(0)
    }

    /// Estimated number of distinct addresses receiving atomics (from the
    /// sampled histogram; a lower bound).
    pub fn distinct_atomic_addresses(&self) -> u64 {
        self.atomic_addr_samples.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters::new();
        a.gld_transactions = 10;
        a.flops = 5;
        a.atomic_addr_samples.insert(7, 2);
        let mut b = Counters::new();
        b.gld_transactions = 1;
        b.flops = 2;
        b.atomic_addr_samples.insert(7, 1);
        b.atomic_addr_samples.insert(9, 4);
        a.merge(&b);
        assert_eq!(a.gld_transactions, 11);
        assert_eq!(a.flops, 7);
        assert_eq!(a.atomic_addr_samples[&7], 3);
        assert_eq!(a.atomic_addr_samples[&9], 4);
    }

    #[test]
    fn atomic_sampling_estimates_hot_address() {
        let mut c = Counters::new();
        for i in 0..100_000 {
            c.record_global_atomic(42, i);
        }
        assert_eq!(c.global_atomics, 100_000);
        // Sampled at ~1/32: the estimate should land near the true count.
        let est = c.hottest_atomic_address_count();
        assert!((50_000..200_000).contains(&est), "estimate {est}");
        assert_eq!(c.distinct_atomic_addresses(), 1);
    }

    #[test]
    fn sampling_does_not_alias_with_warp_period() {
        // 32 addresses in round-robin (one warp's flush pattern repeated):
        // a strided sampler would pile every sample on one address.
        let mut c = Counters::new();
        for i in 0..100_000u64 {
            c.record_global_atomic((i % 32) * 8, i);
        }
        let hottest = c.hottest_atomic_address_count();
        let true_per_addr = 100_000 / 32;
        assert!(
            hottest < 4 * true_per_addr,
            "aliased sampler: hottest {hottest} vs true {true_per_addr}"
        );
        assert!(c.distinct_atomic_addresses() >= 16);
    }

    #[test]
    fn no_atomics_means_zero_estimates() {
        let c = Counters::new();
        assert_eq!(c.hottest_atomic_address_count(), 0);
        assert_eq!(c.distinct_atomic_addresses(), 0);
    }
}
