//! Multi-device groups with an interconnect model.
//!
//! A [`DeviceGroup`] owns N simulated GPUs that share a device spec but
//! have independent memory, caches, and fault streams (per-device seeds
//! derived from one base profile — see [`FaultProfile::for_device`]).
//! Device-to-device traffic goes through an [`InterconnectSpec`] and is
//! accounted event-style like DRAM: every transfer adds a latency +
//! bytes/bandwidth cost to the group's modelled interconnect time, so
//! multi-device runs are bit-deterministic on the same axes as single-device
//! runs.
//!
//! The group also tracks liveness: a device killed by the device-loss fault
//! class (or [`DeviceGroup::mark_lost`]) stays in the group for indexing
//! stability but is excluded from `alive_*` views, which is what the
//! runtime's reshard recovery enumerates when it rebuilds a sharded job on
//! the survivors.

use crate::device::DeviceSpec;
use crate::exec::Gpu;
use crate::fault::FaultProfile;
use crate::timing::InterconnectSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative interconnect traffic for a device group.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterconnectStats {
    /// Number of device-to-device transfers.
    pub transfers: u64,
    /// Total bytes moved across the fabric.
    pub bytes: u64,
    /// Modelled milliseconds spent on the fabric (latency + bandwidth
    /// terms, summed per transfer).
    pub sim_ms: f64,
}

/// A fixed-size group of simulated GPUs joined by an interconnect.
pub struct DeviceGroup {
    devices: Vec<Gpu>,
    interconnect: InterconnectSpec,
    transfers: AtomicU64,
    bytes: AtomicU64,
    /// Modelled interconnect time, accumulated in nanoseconds so the
    /// counter can stay an integer atomic (exact for the latency +
    /// bytes/bandwidth model at any realistic scale).
    sim_ns: AtomicU64,
}

impl DeviceGroup {
    /// Build a group of `n` devices sharing `spec`, each simulated by one
    /// host thread (fully deterministic), joined by `interconnect`.
    /// `profile` seeds per-device fault streams via
    /// [`FaultProfile::for_device`]; device 0 keeps the base seed, so a
    /// 1-device group faults bit-identically to a standalone device with
    /// the same profile.
    pub fn new(
        spec: impl Into<Arc<DeviceSpec>>,
        n: usize,
        interconnect: InterconnectSpec,
        profile: &FaultProfile,
    ) -> Self {
        assert!(n > 0, "a device group needs at least one device");
        let spec = spec.into();
        let devices = (0..n)
            .map(|i| {
                Gpu::with_host_threads(Arc::clone(&spec), 1)
                    .with_ordinal(i)
                    .with_fault_profile(profile.for_device(i))
            })
            .collect();
        DeviceGroup {
            devices,
            interconnect,
            transfers: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            sim_ns: AtomicU64::new(0),
        }
    }

    /// Number of devices in the group (alive or lost).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The group's interconnect profile.
    pub fn interconnect(&self) -> &InterconnectSpec {
        &self.interconnect
    }

    /// Device `i` (alive or lost — operations on a lost device fail with
    /// [`crate::DeviceError::DeviceLost`]).
    pub fn device(&self, i: usize) -> &Gpu {
        &self.devices[i]
    }

    /// Whether device `i` is still alive.
    pub fn alive(&self, i: usize) -> bool {
        !self.devices[i].is_lost()
    }

    /// Administratively kill device `i` (chaos tests; injected losses set
    /// the same flag from inside the device).
    pub fn mark_lost(&self, i: usize) {
        self.devices[i].mark_lost();
    }

    /// Ordinals of the devices still alive, in ordinal order.
    pub fn alive_ordinals(&self) -> Vec<usize> {
        (0..self.devices.len()).filter(|&i| self.alive(i)).collect()
    }

    /// Number of devices still alive.
    pub fn alive_count(&self) -> usize {
        self.devices.iter().filter(|d| !d.is_lost()).count()
    }

    /// Account one device-to-device transfer of `bytes` and return its
    /// modelled cost in milliseconds. Purely an accounting event: the
    /// simulator moves no data here (callers copy through host memory),
    /// but the modelled time and byte totals are exact and deterministic.
    pub fn charge_transfer(&self, bytes: u64) -> f64 {
        let ms = self.interconnect.transfer_ms(bytes);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.sim_ns
            .fetch_add((ms * 1e6).round() as u64, Ordering::Relaxed);
        ms
    }

    /// Cumulative interconnect traffic.
    pub fn interconnect_stats(&self) -> InterconnectStats {
        InterconnectStats {
            transfers: self.transfers.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            sim_ms: self.sim_ns.load(Ordering::Relaxed) as f64 * 1e-6,
        }
    }

    /// Sum of injected-fault totals across every device in the group.
    pub fn fault_counts(&self) -> crate::fault::FaultCounts {
        let mut total = crate::fault::FaultCounts::default();
        for d in &self.devices {
            let c = d.faults().counts();
            total.kernel_faults += c.kernel_faults;
            total.alloc_faults += c.alloc_faults;
            total.transfer_timeouts += c.transfer_timeouts;
            total.watchdog_timeouts += c.watchdog_timeouts;
            total.corruptions += c.corruptions;
            total.pressure_rejections += c.pressure_rejections;
            total.device_losses += c.device_losses;
            total.stragglers += c.stragglers;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::error::DeviceError;
    use crate::exec::LaunchConfig;

    fn group(n: usize, profile: FaultProfile) -> DeviceGroup {
        DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            n,
            InterconnectSpec::pcie_gen3_x16(),
            &profile,
        )
    }

    #[test]
    fn group_devices_have_independent_memory_and_tracks() {
        let g = group(3, FaultProfile::disabled());
        assert_eq!(g.len(), 3);
        assert_eq!(g.alive_count(), 3);
        let b0 = g.device(0).upload_f64("x", &[1.0, 2.0]);
        assert_eq!(g.device(0).allocated_bytes(), 16);
        assert_eq!(g.device(1).allocated_bytes(), 0);
        assert_eq!(g.device(0).track(), "device0");
        assert_eq!(g.device(2).track(), "device2");
        assert_eq!(g.device(2).ordinal(), 2);
        g.device(0).free(&b0);
    }

    #[test]
    fn interconnect_charges_are_counted_like_dram() {
        let g = group(2, FaultProfile::disabled());
        let ms = g.charge_transfer(12_000_000);
        assert!((ms - 1.01).abs() < 1e-9);
        g.charge_transfer(0);
        let s = g.interconnect_stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 12_000_000);
        // 1.01 ms + bare-latency 0.01 ms, exact at ns resolution.
        assert!((s.sim_ms - 1.02).abs() < 1e-6);
    }

    #[test]
    fn lost_devices_fail_sticky_and_leave_survivors_alone() {
        let g = group(3, FaultProfile::disabled());
        g.mark_lost(1);
        assert!(!g.alive(1));
        assert_eq!(g.alive_ordinals(), vec![0, 2]);
        assert_eq!(g.alive_count(), 2);
        let err = g.device(1).try_alloc_f64("x", 4).unwrap_err();
        assert!(matches!(err, DeviceError::DeviceLost { device: 1, .. }));
        let err = g
            .device(1)
            .try_launch("noop", LaunchConfig::new(1, 32), |_blk| {})
            .unwrap_err();
        assert_eq!(err.kind(), "device-lost");
        // Survivors are untouched.
        assert!(g
            .device(0)
            .try_launch("noop", LaunchConfig::new(1, 32), |_blk| {})
            .is_ok());
    }

    #[test]
    fn injected_device_loss_is_deterministic_and_per_device() {
        // Rate 1.0: the first launch on any device kills it — but each
        // device dies from its *own* stream, and replays identically.
        let run = || {
            let g = group(2, FaultProfile::seeded(0xBAD).with_device_loss_rate(1.0));
            let e0 = g
                .device(0)
                .try_launch("k", LaunchConfig::new(1, 32), |_b| {})
                .unwrap_err();
            let e1 = g
                .device(1)
                .try_launch("k", LaunchConfig::new(1, 32), |_b| {})
                .unwrap_err();
            (e0, e1, g.alive_count(), g.fault_counts().device_losses)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.2, 0);
        assert_eq!(a.3, 2);
        assert!(matches!(a.0, DeviceError::DeviceLost { device: 0, .. }));
        assert!(matches!(a.1, DeviceError::DeviceLost { device: 1, .. }));
    }

    #[test]
    fn straggler_scales_time_but_not_results() {
        let run = |profile: FaultProfile| {
            let gpu =
                Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(profile);
            let x = gpu.upload_f64("x", &(0..256).map(f64::from).collect::<Vec<_>>());
            let out = gpu.alloc_f64("out", 1);
            let stats = gpu
                .try_launch("sum", LaunchConfig::new(2, 128), |blk| {
                    blk.each_warp(|w| {
                        let mut v = w.load_f64(&x, |lane| Some(lane % 256));
                        w.shuffle_reduce_sum(&mut v, 32);
                        w.store_f64(&out, |lane| (lane == 0).then_some((0, v[0])));
                    });
                })
                .unwrap();
            (
                stats,
                out.host_read_f64(0),
                gpu.faults().counts().stragglers,
            )
        };
        let (base, base_val, base_stragglers) = run(FaultProfile::disabled());
        let (slow, slow_val, stragglers) = run(FaultProfile::seeded(1).with_straggler(1.0, 4.0));
        assert_eq!(base_stragglers, 0);
        assert_eq!(stragglers, 1);
        assert_eq!(slow_val.to_bits(), base_val.to_bits(), "numerics untouched");
        assert_eq!(slow.counters.flops, base.counters.flops);
        assert!((slow.sim_ms() - 4.0 * base.sim_ms()).abs() < 1e-12);
    }

    #[test]
    fn one_device_group_faults_like_a_standalone_device() {
        let profile = FaultProfile::seeded(0x5EED).with_kernel_fault_rate(0.3);
        let g = group(1, profile.clone());
        let solo = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_fault_profile(profile);
        let from_group: Vec<bool> = (0..50)
            .map(|_| {
                g.device(0)
                    .try_launch("k", LaunchConfig::new(1, 32), |_b| {})
                    .is_err()
            })
            .collect();
        let standalone: Vec<bool> = (0..50)
            .map(|_| {
                solo.try_launch("k", LaunchConfig::new(1, 32), |_b| {})
                    .is_err()
            })
            .collect();
        assert_eq!(from_group, standalone);
    }
}
