//! Set-associative LRU cache model used for the per-SM L2 slice and the
//! per-SM read-only (texture) cache.
//!
//! The model operates on 128-byte line addresses. It is what gives the fused
//! kernels their temporal-locality win (§3): the second scan of a CSR row
//! hits in cache when the row was recently loaded by the same vector of
//! threads, halving DRAM traffic exactly as the paper argues.

/// A set-associative cache with LRU replacement, tracked at line
/// granularity. Timestamps implement LRU without list manipulation.
#[derive(Debug, Clone)]
pub struct CacheModel {
    /// log2(line size in bytes).
    line_shift: u32,
    /// Number of sets (power of two).
    num_sets: usize,
    ways: usize,
    /// `num_sets * ways` line tags; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Last-use timestamp per way.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheModel {
    /// Build a cache of `capacity_bytes` with the given line size and
    /// associativity. Capacity is rounded down to a power-of-two set count;
    /// a degenerate capacity yields a 1-set cache.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let ways = ways.max(1);
        let lines = (capacity_bytes / line_bytes).max(ways);
        // Round the set count down to a power of two for cheap indexing.
        let num_sets = 1usize << (lines / ways).max(1).ilog2();
        CacheModel {
            line_shift: line_bytes.trailing_zeros(),
            num_sets,
            ways,
            tags: vec![u64::MAX; num_sets * ways],
            stamps: vec![0; num_sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1usize << self.line_shift
    }

    /// Probe the cache with a byte address. Returns `true` on hit. On miss
    /// the line is installed, evicting the LRU way of its set.
    pub fn access(&mut self, byte_addr: u64) -> bool {
        let line = byte_addr >> self.line_shift;
        let set = (line as usize) & (self.num_sets - 1);
        let base = set * self.ways;
        self.clock += 1;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        // Miss: replace LRU way.
        let lru = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or_else(|| unreachable!("cache has >= 1 way"));
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        self.misses += 1;
        false
    }

    /// Invalidate all lines (e.g. between launches if desired; the
    /// simulator keeps caches warm across launches by default, matching
    /// real hardware).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_sets * self.ways * self.line_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheModel::new(4096, 128, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // same 128B line
        assert!(!c.access(128)); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn capacity_eviction() {
        // 2 sets x 2 ways x 128B = 512B cache.
        let mut c = CacheModel::new(512, 128, 2);
        assert_eq!(c.capacity_bytes(), 512);
        // Fill set 0 (lines 0, 2 map to set 0 with 2 sets).
        assert!(!c.access(0));
        assert!(!c.access(2 * 128));
        // Both resident.
        assert!(c.access(0));
        assert!(c.access(2 * 128));
        // Third line in the same set evicts LRU (line 0).
        assert!(!c.access(4 * 128));
        assert!(!c.access(0));
    }

    #[test]
    fn lru_order_respected() {
        let mut c = CacheModel::new(512, 128, 2);
        c.access(0); // miss, install line 0
        c.access(256); // set 0 with 2 sets? line 2 -> set 0. install
        c.access(0); // touch line 0 so line 2 is LRU
        c.access(512); // line 4 -> set 0, evicts line 2
        assert!(c.access(0), "recently used line must survive");
        assert!(!c.access(256), "LRU line must have been evicted");
    }

    #[test]
    fn flush_clears() {
        let mut c = CacheModel::new(1024, 128, 2);
        c.access(0);
        assert!(c.access(0));
        c.flush();
        assert!(!c.access(0));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = CacheModel::new(1024, 128, 2);
        // Stream 100 distinct lines twice: second pass must still miss
        // mostly because the working set exceeds capacity.
        for pass in 0..2 {
            for i in 0..100u64 {
                let hit = c.access(i * 128);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.misses() > 150);
    }
}
