//! # fusedml-gpu-sim
//!
//! A functional + performance-modelling GPU simulator: the hardware
//! substrate for the PPoPP'15 *kernel fusion* reproduction.
//!
//! The simulator executes CUDA-style kernels written as Rust closures over a
//! block/warp/lane execution model, producing **real numeric results** while
//! counting the microarchitectural events the paper's argument rests on:
//!
//! * warp-level global memory coalescing (32-byte sector transactions — the
//!   metric of the paper's Fig. 2-bottom),
//! * per-SM L2 and read-only (texture) cache behaviour — the temporal
//!   locality exploited by the fused kernels (§3),
//! * shared-memory traffic and bank conflicts (§3.2),
//! * global/shared `atomicAdd` counts with same-address contention —
//!   the cost hierarchy motivating register → shared → global aggregation,
//! * warp shuffle instructions and floating-point operation counts,
//! * occupancy per the CUDA occupancy calculator (needed by §3.3's
//!   launch-parameter model).
//!
//! A roofline timing model ([`timing`]) converts counters into simulated
//! milliseconds so experiments can reproduce the *shape* of the paper's
//! results without NVIDIA hardware.
//!
//! ```
//! use fusedml_gpu_sim::{Gpu, DeviceSpec, LaunchConfig};
//!
//! let gpu = Gpu::new(DeviceSpec::gtx_titan());
//! let x = gpu.upload_f64("x", &[1.0, 2.0, 3.0, 4.0]);
//! let out = gpu.alloc_f64("out", 1);
//! let stats = gpu.launch("sum", LaunchConfig::new(1, 32), |blk| {
//!     blk.each_warp(|w| {
//!         let mut v = w.load_f64(&x, |lane| (lane < 4).then_some(lane));
//!         w.shuffle_reduce_sum(&mut v, 32);
//!         w.store_f64(&out, |lane| (lane == 0).then_some((0, v[0])));
//!     });
//! });
//! assert_eq!(out.host_read_f64(0), 10.0);
//! assert!(stats.sim_ms() > 0.0);
//! ```

// Lane-indexed loops over multiple parallel arrays are the natural idiom
// for warp-level kernel code; iterator zips would obscure the SIMT shape.
#![allow(clippy::needless_range_loop)]
// Simulator/kernels code surfaces failures as typed errors or explicit
// panics with context; bare unwrap/expect is reserved for tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod copyengine;
pub mod cost;
pub mod counters;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod group;
pub mod memory;
pub mod occupancy;
pub mod pool;
pub mod profile;
pub mod shared;
pub mod timing;

pub use copyengine::{
    pipeline_wall, ChunkCost, CopyEngine, CopyEngineSpec, CopyEngineStats, PipelineModel,
};
pub use cost::{estimate_fused_kernel, estimate_plan_ms, ChainOp, KernelEstimate};
pub use counters::{AggregationBreakdown, Counters};
pub use device::DeviceSpec;
pub use error::DeviceError;
pub use exec::{
    BlockCtx, Gpu, IntegrityStats, LaunchConfig, LaunchStats, Shared, WarpCtx, WARP_LANES,
};
pub use fault::{FaultCounts, FaultInjector, FaultProfile, MemoryPressure};
pub use group::{DeviceGroup, InterconnectStats};
pub use memory::{fnv1a_cells, Elem, GpuBuffer};
pub use occupancy::{occupancy, Limiter, Occupancy};
pub use pool::{DevicePool, PoolStats, DEFAULT_POOL_RETAIN_BYTES};
pub use profile::profile_report;
pub use timing::{CpuSpec, InterconnectSpec, PcieSpec, TimeBreakdown, LATENCY_HIDING_KNEE};
