//! Size-bucketed host-side buffer pool.
//!
//! Device buffers are backed by host `AtomicU64` cell blocks; allocating one
//! costs a heap allocation plus zero-initialization on every `alloc_f64` /
//! `upload_*` call. Iterative workloads (the baseline's per-call `csr2csc`
//! scratch, the streaming chunk pipeline) alloc and free identically-sized
//! buffers hundreds of times per solve, so the pool parks freed cell blocks
//! in power-of-two capacity buckets and hands them back to later
//! allocations of a fitting size.
//!
//! Two invariants keep the simulation's modeled counters bit-identical with
//! pooling enabled:
//!
//! 1. **Fresh simulated addresses.** The pool recycles only the *host*
//!    backing store. Every allocation — pool hit or miss — still draws a
//!    new base address from the bump allocator, so the address stream seen
//!    by the cache and coalescing models is exactly the one an unpooled
//!    allocator would produce.
//! 2. **Zero-on-reuse.** The logical prefix of a recycled block is zeroed
//!    before it is handed out, so a pooled buffer is indistinguishable from
//!    a freshly allocated one (the simulated `cudaMalloc` + `cudaMemset`
//!    contract). Cells beyond the logical length are never addressable.
//!
//! What pooling buys is purely host-side: allocator traffic and wall-clock,
//! reported through [`PoolStats`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Host bytes the pool retains in its free lists before it starts dropping
/// reclaimed blocks on the floor (cells are 8 bytes each). Bounds peak host
/// memory when a workload frees large one-off buffers.
pub const DEFAULT_POOL_RETAIN_BYTES: u64 = 256 * 1024 * 1024;

/// Pool traffic counters, cumulative over the owning [`crate::Gpu`]'s life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Allocations served from a free list.
    pub hits: u64,
    /// Allocations that had to go to the host allocator.
    pub misses: u64,
    /// Requested bytes served from recycled blocks (sum over hits).
    pub bytes_recycled: u64,
    /// Blocks returned to the pool by dropped/freed buffers.
    pub reclaimed: u64,
    /// Host bytes currently parked in the free lists.
    pub retained_bytes: u64,
    /// Devices attached via [`crate::Gpu::with_shared_pool`] over the
    /// pool's life (0 for a device-private pool) — how many sessions
    /// contended for this pool.
    #[serde(default)]
    pub attached_devices: u64,
    /// Block bytes currently checked out by live buffers (bucket
    /// capacities, not logical lengths).
    #[serde(default)]
    pub outstanding_bytes: u64,
    /// High-water mark of `outstanding_bytes`: peak allocation pressure
    /// across every session sharing the pool.
    #[serde(default)]
    pub peak_outstanding_bytes: u64,
}

impl PoolStats {
    /// Fraction of allocations served from the pool, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas relative to an earlier snapshot, attributing a
    /// window of pool traffic (e.g. one solver run) on a shared device.
    /// `retained_bytes`, `outstanding_bytes` and `peak_outstanding_bytes`
    /// are gauges, not counters, so the current values are kept as-is.
    pub fn delta_since(&self, base: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            bytes_recycled: self.bytes_recycled.saturating_sub(base.bytes_recycled),
            reclaimed: self.reclaimed.saturating_sub(base.reclaimed),
            retained_bytes: self.retained_bytes,
            attached_devices: self.attached_devices.saturating_sub(base.attached_devices),
            outstanding_bytes: self.outstanding_bytes,
            peak_outstanding_bytes: self.peak_outstanding_bytes,
        }
    }
}

/// A shareable handle to one buffer pool, attachable to any number of
/// [`crate::Gpu`] instances via [`crate::Gpu::with_shared_pool`].
///
/// This is the CUDA caching-allocator ownership model: the pool belongs to
/// the *physical device*, not to any one context created on it, so freed
/// blocks from a finished run warm up the next run's allocations. Sharing
/// cannot perturb modeled counters — simulated addresses come from each
/// `Gpu`'s own bump allocator and recycled cells are zeroed on reuse, so
/// only the host-side [`PoolStats`] observe the sharing.
#[derive(Debug, Clone)]
pub struct DevicePool(Arc<BufferPool>);

impl DevicePool {
    pub fn new() -> Self {
        DevicePool(Arc::new(BufferPool::new()))
    }

    /// Cumulative traffic across every `Gpu` attached to this pool.
    pub fn stats(&self) -> PoolStats {
        self.0.stats()
    }

    /// Cap the host bytes retained in the free lists (`0` disables reuse).
    pub fn set_retain_bytes(&self, bytes: u64) {
        self.0.set_retain_cap(bytes);
    }

    pub(crate) fn inner(&self) -> &Arc<BufferPool> {
        &self.0
    }
}

impl Default for DevicePool {
    fn default() -> Self {
        Self::new()
    }
}

/// Free lists of recycled cell blocks, bucketed by power-of-two capacity.
///
/// Cells are element-agnostic (`f64` and `u32` buffers both bit-pack into
/// `AtomicU64` cells), so one bucket space serves every element type.
#[derive(Debug)]
pub(crate) struct BufferPool {
    buckets: Mutex<BTreeMap<usize, Vec<Box<[AtomicU64]>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_recycled: AtomicU64,
    reclaimed: AtomicU64,
    retained_cells: AtomicU64,
    retain_cap_cells: AtomicU64,
    attached_devices: AtomicU64,
    outstanding_cells: AtomicU64,
    peak_outstanding_cells: AtomicU64,
}

/// Bucket (block capacity in cells) that serves requests for `len` cells.
pub(crate) fn bucket_for(len: usize) -> usize {
    len.next_power_of_two().max(1)
}

impl BufferPool {
    pub(crate) fn new() -> Self {
        BufferPool {
            buckets: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_recycled: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            retained_cells: AtomicU64::new(0),
            retain_cap_cells: AtomicU64::new(DEFAULT_POOL_RETAIN_BYTES / 8),
            attached_devices: AtomicU64::new(0),
            outstanding_cells: AtomicU64::new(0),
            peak_outstanding_cells: AtomicU64::new(0),
        }
    }

    /// Record one more device/session sharing this pool (contention
    /// accounting for the serving layer).
    pub(crate) fn note_attach(&self) {
        self.attached_devices.fetch_add(1, Ordering::Relaxed);
    }

    /// Track blocks checked out by live buffers. `capacity` is the bucket
    /// capacity in cells — symmetric with [`BufferPool::reclaim`], which
    /// sees the same capacity when the buffer comes back.
    pub(crate) fn note_checkout(&self, capacity: usize) {
        let now = self
            .outstanding_cells
            .fetch_add(capacity as u64, Ordering::Relaxed)
            + capacity as u64;
        self.peak_outstanding_cells
            .fetch_max(now, Ordering::Relaxed);
    }

    /// Pull a block with capacity >= `len` cells out of `len`'s bucket, or
    /// record a miss. The caller zeroes the logical prefix (zero-on-reuse).
    pub(crate) fn acquire(&self, len: usize) -> Option<Box<[AtomicU64]>> {
        let bucket = bucket_for(len);
        // Hit or miss, a `bucket`-capacity block is about to be checked
        // out by a live buffer (misses allocate exactly `bucket` cells).
        self.note_checkout(bucket);
        let block = {
            let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
            buckets.get_mut(&bucket).and_then(Vec::pop)
        };
        match block {
            Some(cells) => {
                self.retained_cells
                    .fetch_sub(cells.len() as u64, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_recycled
                    .fetch_add(len as u64 * 8, Ordering::Relaxed);
                Some(cells)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Park a reclaimed block in its bucket, unless doing so would push the
    /// pool past its retention cap (then the block simply drops).
    pub(crate) fn reclaim(&self, cells: Box<[AtomicU64]>) {
        let cap = cells.len();
        if cap == 0 {
            return;
        }
        // The block is no longer checked out, whether it parks in a
        // bucket or drops past the retention cap.
        let _ = self
            .outstanding_cells
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(cap as u64))
            });
        // Blocks we allocate always have power-of-two capacity; round a
        // foreign capacity down so the bucket never over-promises.
        let bucket = if cap.is_power_of_two() {
            cap
        } else {
            bucket_for(cap) / 2
        };
        let retained = self.retained_cells.load(Ordering::Relaxed);
        if retained + cap as u64 > self.retain_cap_cells.load(Ordering::Relaxed) {
            return; // over the cap: let the host allocator have it back
        }
        self.retained_cells.fetch_add(cap as u64, Ordering::Relaxed);
        self.reclaimed.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        buckets.entry(bucket).or_default().push(cells);
    }

    pub(crate) fn set_retain_cap(&self, bytes: u64) {
        self.retain_cap_cells.store(bytes / 8, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_recycled: self.bytes_recycled.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            retained_bytes: self.retained_cells.load(Ordering::Relaxed) * 8,
            attached_devices: self.attached_devices.load(Ordering::Relaxed),
            outstanding_bytes: self.outstanding_cells.load(Ordering::Relaxed) * 8,
            peak_outstanding_bytes: self.peak_outstanding_cells.load(Ordering::Relaxed) * 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(cap: usize) -> Box<[AtomicU64]> {
        (0..cap).map(|_| AtomicU64::new(0xDEAD)).collect()
    }

    #[test]
    fn acquire_miss_then_hit_after_reclaim() {
        let pool = BufferPool::new();
        assert!(pool.acquire(100).is_none());
        pool.reclaim(block(128));
        let got = pool.acquire(100).expect("bucket 128 serves len 100");
        assert_eq!(got.len(), 128);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.reclaimed), (1, 1, 1));
        assert_eq!(s.bytes_recycled, 100 * 8);
        assert_eq!(s.retained_bytes, 0);
    }

    #[test]
    fn buckets_separate_sizes() {
        let pool = BufferPool::new();
        pool.reclaim(block(64));
        // len 65 needs bucket 128; the 64-block must not serve it.
        assert!(pool.acquire(65).is_none());
        assert!(pool.acquire(64).is_some());
    }

    #[test]
    fn retention_cap_drops_excess_blocks() {
        let pool = BufferPool::new();
        pool.set_retain_cap(128 * 8);
        pool.reclaim(block(128));
        pool.reclaim(block(128)); // over the cap: dropped
        let s = pool.stats();
        assert_eq!(s.reclaimed, 1);
        assert_eq!(s.retained_bytes, 128 * 8);
        assert!(pool.acquire(128).is_some());
        assert!(pool.acquire(128).is_none());
    }

    #[test]
    fn contention_gauges_track_checkouts_and_peak() {
        let pool = BufferPool::new();
        // Two concurrent checkouts (both misses), then both come back.
        pool.acquire(100); // bucket 128
        pool.acquire(60); // bucket 64
        let s = pool.stats();
        assert_eq!(s.outstanding_bytes, (128 + 64) * 8);
        assert_eq!(s.peak_outstanding_bytes, (128 + 64) * 8);
        pool.reclaim(block(128));
        pool.reclaim(block(64));
        let s = pool.stats();
        assert_eq!(s.outstanding_bytes, 0, "reclaim drains the gauge");
        assert_eq!(
            s.peak_outstanding_bytes,
            (128 + 64) * 8,
            "peak is a high-water mark"
        );
        // A later hit counts as a fresh checkout.
        pool.acquire(128);
        assert_eq!(pool.stats().outstanding_bytes, 128 * 8);
        pool.note_attach();
        pool.note_attach();
        assert_eq!(pool.stats().attached_devices, 2);
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let pool = BufferPool::new();
        assert_eq!(pool.stats().hit_rate(), 0.0);
        pool.acquire(8);
        pool.reclaim(block(8));
        pool.acquire(8);
        assert_eq!(pool.stats().hit_rate(), 0.5);
    }
}
