//! Typed device errors.
//!
//! Every failure the simulated device can produce — launch-configuration
//! rejection, injected transient faults, watchdog timeouts, allocation
//! failure, transfer timeouts — is a [`DeviceError`] variant. The runtime's
//! recovery policy keys off [`DeviceError::is_transient`]: transient faults
//! are worth retrying on the same engine, permanent ones trigger engine
//! degradation (fused → baseline → CPU).

/// A failure reported by the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The launch configuration cannot run on this device (empty grid,
    /// block too large, register/shared-memory footprint over the limits).
    InvalidLaunch { kernel: String, detail: String },
    /// An injected transient kernel fault (models an ECC event or a
    /// preempted/killed kernel). `fault_index` is the deterministic draw
    /// index that produced the fault, for reproducible diagnostics.
    TransientFault { kernel: String, fault_index: u64 },
    /// The kernel exceeded the simulated watchdog limit.
    WatchdogTimeout {
        kernel: String,
        sim_ms: f64,
        limit_ms: f64,
    },
    /// Device memory allocation failed (capacity exhausted, or injected).
    AllocFailed {
        name: String,
        requested_bytes: u64,
        allocated_bytes: u64,
        capacity_bytes: u64,
        injected: bool,
    },
    /// An injected host/device transfer timeout.
    TransferTimeout {
        buffer: String,
        bytes: u64,
        fault_index: u64,
    },
    /// The integrity layer caught corrupted device data (a seeded bit flip
    /// from the corruption fault class). `stage` names the verification
    /// point (`"h2d"` or `"pool-reuse"`); `fault_index` is the corruption
    /// draw that produced the flip, for reproducible diagnostics.
    DataCorruption {
        buffer: String,
        stage: &'static str,
        fault_index: u64,
    },
    /// The device dropped off the bus (injected device-loss fault, or an
    /// operation issued against a device already marked lost). Sticky:
    /// once lost, every later operation fails with this. `fault_index` is
    /// the device-loss draw that killed the device.
    DeviceLost { device: usize, fault_index: u64 },
}

impl DeviceError {
    /// Whether retrying the same operation (at session granularity) can
    /// succeed: injected transient faults, transfer timeouts and detected
    /// corruption clear on retry (the next transfer draws fresh); launch
    /// rejection, watchdog overruns and capacity exhaustion repeat
    /// deterministically and call for degradation instead.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DeviceError::TransientFault { .. }
                | DeviceError::TransferTimeout { .. }
                | DeviceError::DataCorruption { .. }
        ) || matches!(self, DeviceError::AllocFailed { injected: true, .. })
    }

    /// Short stable identifier for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            DeviceError::InvalidLaunch { .. } => "invalid-launch",
            DeviceError::TransientFault { .. } => "transient-fault",
            DeviceError::WatchdogTimeout { .. } => "watchdog-timeout",
            DeviceError::AllocFailed { .. } => "alloc-failed",
            DeviceError::TransferTimeout { .. } => "transfer-timeout",
            DeviceError::DataCorruption { .. } => "data-corruption",
            DeviceError::DeviceLost { .. } => "device-lost",
        }
    }
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidLaunch { kernel, detail } => {
                write!(f, "kernel {kernel}: {detail}")
            }
            DeviceError::TransientFault {
                kernel,
                fault_index,
            } => {
                write!(
                    f,
                    "kernel {kernel}: injected transient fault (draw #{fault_index})"
                )
            }
            DeviceError::WatchdogTimeout {
                kernel,
                sim_ms,
                limit_ms,
            } => {
                write!(
                    f,
                    "kernel {kernel}: watchdog timeout after {sim_ms:.3}ms (limit {limit_ms:.3}ms)"
                )
            }
            DeviceError::AllocFailed {
                name,
                requested_bytes,
                allocated_bytes,
                capacity_bytes,
                injected,
            } => {
                let cause = if *injected {
                    "injected fault"
                } else {
                    "capacity"
                };
                write!(
                    f,
                    "alloc {name}: {requested_bytes}B failed ({cause}; \
                     {allocated_bytes}B of {capacity_bytes}B in use)"
                )
            }
            DeviceError::TransferTimeout {
                buffer,
                bytes,
                fault_index,
            } => {
                write!(
                    f,
                    "transfer {buffer}: timeout moving {bytes}B (injected draw #{fault_index})"
                )
            }
            DeviceError::DataCorruption {
                buffer,
                stage,
                fault_index,
            } => {
                write!(
                    f,
                    "buffer {buffer}: integrity check failed at {stage} \
                     (injected bit flip, draw #{fault_index})"
                )
            }
            DeviceError::DeviceLost {
                device,
                fault_index,
            } => {
                write!(
                    f,
                    "device {device}: lost (injected draw #{fault_index}); \
                     all further operations on it fail"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_classification() {
        let t = DeviceError::TransientFault {
            kernel: "k".into(),
            fault_index: 3,
        };
        assert!(t.is_transient());
        let w = DeviceError::WatchdogTimeout {
            kernel: "k".into(),
            sim_ms: 9.0,
            limit_ms: 1.0,
        };
        assert!(!w.is_transient());
        let cap = DeviceError::AllocFailed {
            name: "x".into(),
            requested_bytes: 10,
            allocated_bytes: 0,
            capacity_bytes: 5,
            injected: false,
        };
        assert!(!cap.is_transient());
        let inj = DeviceError::AllocFailed {
            name: "x".into(),
            requested_bytes: 10,
            allocated_bytes: 0,
            capacity_bytes: 5,
            injected: true,
        };
        assert!(inj.is_transient());
        let c = DeviceError::DataCorruption {
            buffer: "x".into(),
            stage: "h2d",
            fault_index: 0,
        };
        assert!(c.is_transient(), "a re-upload draws fresh: retryable");
        assert_eq!(c.kind(), "data-corruption");
        assert!(c.to_string().contains("integrity check failed at h2d"));
        let l = DeviceError::DeviceLost {
            device: 2,
            fault_index: 7,
        };
        assert!(
            !l.is_transient(),
            "retrying on a lost device cannot succeed; reshard instead"
        );
        assert_eq!(l.kind(), "device-lost");
        assert!(l.to_string().contains("device 2: lost"));
    }

    #[test]
    fn display_mentions_device_limits_detail() {
        let e = DeviceError::InvalidLaunch {
            kernel: "spmv".into(),
            detail: "launch config exceeds device limits of Test".into(),
        };
        assert!(e.to_string().contains("exceeds device limits"));
        assert_eq!(e.kind(), "invalid-launch");
    }
}
