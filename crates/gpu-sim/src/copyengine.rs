//! Multi-queue host→device copy-engine model.
//!
//! Real GPUs expose dedicated copy engines (CUDA streams bound to DMA
//! queues) that move data concurrently with compute; `cudaMemcpyAsync` on
//! N streams shares the PCIe link between in-flight transfers. This
//! module models that resource the same way [`crate::group::DeviceGroup`]
//! models the interconnect: every transfer adds a latency + bandwidth
//! cost to atomic event counters (transfer count, bytes, busy time per
//! queue), so streamed runs are bit-deterministic on the same axes as
//! kernel launches and DRAM traffic.
//!
//! Two pieces:
//!
//! * [`CopyEngine`] — the accounting object. N independent H2D queues
//!   with a *static* per-queue bandwidth share (`link / queues`): a lone
//!   transfer only gets its queue's share, but all queues together
//!   saturate the link and per-transfer latency is amortized across
//!   queues. With `queues == 1` a transfer costs exactly
//!   [`PcieSpec::transfer_ms`], so the single-queue engine reproduces the
//!   flat transfer model bit-for-bit.
//! * [`pipeline_wall`] — a pure, deterministic event-driven schedule for
//!   a depth-`d` streaming pipeline: transfer of chunk `i` may not start
//!   before the kernel using staging buffer `i mod d` has drained
//!   (`d = 1` degenerates to fully serial transfer→compute→transfer…),
//!   queues serialize their own transfers (round-robin assignment), and
//!   kernels serialize on the compute engine. The schedule reports the
//!   modeled wall time and the compute-engine idle ("pipeline bubble")
//!   time. Being a pure function of the per-chunk costs, the same
//!   routine prices candidate (chunk size, depth) configurations inside
//!   the streaming cost search without touching engine counters.

use crate::timing::PcieSpec;
use std::sync::atomic::{AtomicU64, Ordering};

/// Static description of a copy engine: how many DMA queues and what link
/// they share.
#[derive(Debug, Clone, PartialEq)]
pub struct CopyEngineSpec {
    /// Independent H2D queues (≥ 1). Each gets a static
    /// `bandwidth / queues` share of the link.
    pub queues: usize,
    /// The shared link.
    pub pcie: PcieSpec,
}

impl CopyEngineSpec {
    /// An engine with `queues` DMA queues over `pcie`.
    pub fn new(queues: usize, pcie: PcieSpec) -> Self {
        assert!(queues >= 1, "a copy engine needs at least one queue");
        CopyEngineSpec { queues, pcie }
    }

    /// The classic single-queue engine: one transfer at a time at full
    /// link bandwidth (bit-identical to [`PcieSpec::transfer_ms`]).
    pub fn single(pcie: PcieSpec) -> Self {
        CopyEngineSpec::new(1, pcie)
    }

    /// Milliseconds for one transfer of `bytes` on one queue at its
    /// static bandwidth share.
    pub fn h2d_ms(&self, bytes: u64) -> f64 {
        self.pcie.latency_us * 1e-3
            + bytes as f64 / (self.pcie.bandwidth_gbps / self.queues as f64) * 1e-6
    }
}

/// Cumulative copy-engine traffic (all queues).
#[derive(Debug, Clone, PartialEq)]
pub struct CopyEngineStats {
    /// Number of H2D transfers issued.
    pub transfers: u64,
    /// Total bytes moved host → device.
    pub bytes: u64,
    /// Modeled milliseconds of queue busy time, summed over queues.
    pub sim_ms: f64,
    /// Per-queue busy milliseconds (occupancy accounting).
    pub queue_busy_ms: Vec<f64>,
}

/// The copy-engine accounting object. Counters follow the
/// [`crate::group::DeviceGroup`] idiom: integer-nanosecond atomics, so the
/// latency + bytes/bandwidth model stays exact under concurrent charging.
#[derive(Debug)]
pub struct CopyEngine {
    spec: CopyEngineSpec,
    transfers: AtomicU64,
    bytes: AtomicU64,
    /// Busy time summed over queues, in nanoseconds.
    sim_ns: AtomicU64,
    /// Per-queue busy nanoseconds.
    queue_busy_ns: Vec<AtomicU64>,
}

impl CopyEngine {
    pub fn new(spec: CopyEngineSpec) -> Self {
        let queue_busy_ns = (0..spec.queues).map(|_| AtomicU64::new(0)).collect();
        CopyEngine {
            spec,
            transfers: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            sim_ns: AtomicU64::new(0),
            queue_busy_ns,
        }
    }

    /// The engine's static description.
    pub fn spec(&self) -> &CopyEngineSpec {
        &self.spec
    }

    /// Charge one H2D transfer of `bytes` to `queue` (callers assign
    /// queues round-robin in issue order so the accounting is
    /// deterministic). Returns the modeled transfer milliseconds.
    pub fn charge_h2d(&self, queue: usize, bytes: u64) -> f64 {
        let ms = self.spec.h2d_ms(bytes);
        let ns = (ms * 1e6).round() as u64;
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.sim_ns.fetch_add(ns, Ordering::Relaxed);
        self.queue_busy_ns[queue % self.spec.queues].fetch_add(ns, Ordering::Relaxed);
        ms
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> CopyEngineStats {
        CopyEngineStats {
            transfers: self.transfers.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            sim_ms: self.sim_ns.load(Ordering::Relaxed) as f64 * 1e-6,
            queue_busy_ms: self
                .queue_busy_ns
                .iter()
                .map(|q| q.load(Ordering::Relaxed) as f64 * 1e-6)
                .collect(),
        }
    }
}

/// Per-chunk costs feeding the pipeline schedule. A residency hit is a
/// chunk with `transfer_ms == 0.0`: it occupies neither a queue slot nor
/// a staging buffer (it is already device-resident) and its kernel is
/// ready to run as soon as the compute engine frees up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkCost {
    /// H2D time for the chunk's payload at its queue's bandwidth share;
    /// `0.0` marks a device-resident chunk (no transfer).
    pub transfer_ms: f64,
    /// Fused-kernel time for the chunk.
    pub kernel_ms: f64,
}

/// Result of a pipeline schedule: modeled wall time and compute-engine
/// idle time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// End of the last chunk kernel (callers add epilogue work on top).
    pub wall_ms: f64,
    /// Compute-engine idle before and between kernels — the pipeline
    /// fill plus every stall where a kernel waited on its transfer.
    pub bubble_ms: f64,
}

/// Deterministic event-driven schedule for a depth-`depth` streaming
/// pipeline over `queues` copy queues.
///
/// Constraints modeled:
/// * **staging buffers** — at most `depth` streamed chunks may be in
///   flight; transfer `i` waits for the kernel that last used its buffer
///   (the `depth`-th most recent streamed chunk) to finish. `depth == 1`
///   is today's serial model: transfer and compute never overlap.
/// * **queues** — streamed transfers are assigned round-robin in issue
///   order; each queue serializes its own transfers. `lead_in_ms`
///   (the y/z vector upload) occupies queue 0 from time zero.
/// * **compute** — kernels serialize in chunk order; kernel `i` starts at
///   `max(transfer_end(i), kernel_end(i-1))`.
///
/// Relaxing the buffer constraint can only move starts earlier, so the
/// modeled wall is non-increasing in `depth` for fixed costs and queue
/// count — the monotonicity the property tests pin down.
pub fn pipeline_wall(
    depth: usize,
    queues: usize,
    lead_in_ms: f64,
    chunks: &[ChunkCost],
) -> PipelineModel {
    assert!(depth >= 1, "pipeline depth must be positive");
    assert!(queues >= 1, "pipeline needs at least one copy queue");
    let mut queue_free = vec![0.0f64; queues];
    queue_free[0] = lead_in_ms;
    // Kernel-end times of streamed (non-resident) chunks, oldest first;
    // capped at `depth` entries — the staging-buffer ring.
    let mut staged_ends: std::collections::VecDeque<f64> =
        std::collections::VecDeque::with_capacity(depth);
    let mut prev_kernel_end = 0.0f64;
    let mut bubble = 0.0f64;
    let mut next_queue = 0usize;

    for c in chunks {
        let ready = if c.transfer_ms > 0.0 {
            let q = next_queue % queues;
            next_queue += 1;
            let buffer_free = if staged_ends.len() == depth {
                staged_ends.pop_front().unwrap_or(0.0)
            } else {
                0.0
            };
            let start = queue_free[q].max(buffer_free);
            let end = start + c.transfer_ms;
            queue_free[q] = end;
            end
        } else {
            // Residency hit: the chunk never leaves the device.
            0.0
        };
        let k_start = ready.max(prev_kernel_end);
        bubble += k_start - prev_kernel_end;
        prev_kernel_end = k_start + c.kernel_ms;
        if c.transfer_ms > 0.0 {
            staged_ends.push_back(prev_kernel_end);
        }
    }
    PipelineModel {
        wall_ms: prev_kernel_end,
        bubble_ms: bubble,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcie() -> PcieSpec {
        PcieSpec::gen3_x16()
    }

    #[test]
    fn single_queue_matches_flat_transfer_model() {
        let spec = CopyEngineSpec::single(pcie());
        for bytes in [8u64, 4096, 1 << 20, 123_456_789] {
            assert_eq!(
                spec.h2d_ms(bytes).to_bits(),
                pcie().transfer_ms(bytes).to_bits()
            );
        }
    }

    #[test]
    fn per_queue_share_splits_bandwidth_but_keeps_latency() {
        let one = CopyEngineSpec::single(pcie());
        let four = CopyEngineSpec::new(4, pcie());
        let bytes = 1 << 24;
        let lat = pcie().latency_us * 1e-3;
        let t1 = one.h2d_ms(bytes) - lat;
        let t4 = four.h2d_ms(bytes) - lat;
        assert!((t4 / t1 - 4.0).abs() < 1e-9, "quarter bandwidth per queue");
    }

    #[test]
    fn engine_counts_transfers_bytes_and_queue_busy_time() {
        let eng = CopyEngine::new(CopyEngineSpec::new(2, pcie()));
        let a = eng.charge_h2d(0, 1000);
        let b = eng.charge_h2d(1, 3000);
        let c = eng.charge_h2d(2, 500); // wraps to queue 0
        let s = eng.stats();
        assert_eq!(s.transfers, 3);
        assert_eq!(s.bytes, 4500);
        assert!((s.sim_ms - (a + b + c)).abs() < 1e-6);
        assert_eq!(s.queue_busy_ms.len(), 2);
        assert!((s.queue_busy_ms[0] - (a + c)).abs() < 1e-6);
        assert!((s.queue_busy_ms[1] - b).abs() < 1e-6);
    }

    fn costs() -> Vec<ChunkCost> {
        // Heterogeneous chunks: transfer-bound, compute-bound, balanced.
        vec![
            ChunkCost {
                transfer_ms: 2.0,
                kernel_ms: 1.0,
            },
            ChunkCost {
                transfer_ms: 1.0,
                kernel_ms: 3.0,
            },
            ChunkCost {
                transfer_ms: 2.5,
                kernel_ms: 2.5,
            },
            ChunkCost {
                transfer_ms: 0.5,
                kernel_ms: 1.5,
            },
            ChunkCost {
                transfer_ms: 3.0,
                kernel_ms: 0.5,
            },
        ]
    }

    #[test]
    fn depth_one_is_the_serial_model() {
        let lead = 0.75;
        let chunks = costs();
        let m = pipeline_wall(1, 1, lead, &chunks);
        let serial: f64 = lead
            + chunks
                .iter()
                .map(|c| c.transfer_ms + c.kernel_ms)
                .sum::<f64>();
        assert!(
            (m.wall_ms - serial).abs() < 1e-12,
            "{} vs {serial}",
            m.wall_ms
        );
        // Every transfer is a bubble in the serial schedule.
        let stalls: f64 = lead + chunks.iter().map(|c| c.transfer_ms).sum::<f64>();
        assert!((m.bubble_ms - stalls).abs() < 1e-12);
    }

    #[test]
    fn wall_is_non_increasing_in_depth() {
        let chunks = costs();
        for queues in [1, 2, 3] {
            let mut prev = f64::INFINITY;
            for depth in 1..=6 {
                let m = pipeline_wall(depth, queues, 0.4, &chunks);
                assert!(
                    m.wall_ms <= prev + 1e-12,
                    "queues={queues} depth={depth}: {} > {prev}",
                    m.wall_ms
                );
                assert!(m.bubble_ms >= 0.0);
                prev = m.wall_ms;
            }
        }
    }

    #[test]
    fn double_buffering_overlaps_transfer_and_compute() {
        let chunks = costs();
        let serial = pipeline_wall(1, 1, 0.0, &chunks).wall_ms;
        let overlapped = pipeline_wall(2, 1, 0.0, &chunks).wall_ms;
        assert!(overlapped < serial, "{overlapped} vs {serial}");
        // Bounded below by the busier engine.
        let t: f64 = chunks.iter().map(|c| c.transfer_ms).sum();
        let k: f64 = chunks.iter().map(|c| c.kernel_ms).sum();
        assert!(overlapped >= t.max(k) - 1e-12);
    }

    #[test]
    fn resident_chunks_skip_queue_and_buffer_constraints() {
        let resident: Vec<ChunkCost> = costs()
            .into_iter()
            .map(|c| ChunkCost {
                transfer_ms: 0.0,
                ..c
            })
            .collect();
        let m = pipeline_wall(2, 1, 0.0, &resident);
        let k: f64 = resident.iter().map(|c| c.kernel_ms).sum();
        assert!((m.wall_ms - k).abs() < 1e-12);
        assert_eq!(m.bubble_ms, 0.0, "no transfers, no stalls");
    }

    #[test]
    fn deeper_pipeline_rides_out_a_slow_transfer() {
        // One pathologically slow transfer in the middle: depth 2 stalls
        // on it, depth 4 prefetches past it while earlier kernels run.
        let chunks = vec![
            ChunkCost {
                transfer_ms: 1.0,
                kernel_ms: 4.0,
            },
            ChunkCost {
                transfer_ms: 1.0,
                kernel_ms: 4.0,
            },
            ChunkCost {
                transfer_ms: 9.0,
                kernel_ms: 1.0,
            },
            ChunkCost {
                transfer_ms: 1.0,
                kernel_ms: 4.0,
            },
            ChunkCost {
                transfer_ms: 1.0,
                kernel_ms: 4.0,
            },
        ];
        let d2 = pipeline_wall(2, 1, 0.0, &chunks);
        let d4 = pipeline_wall(4, 1, 0.0, &chunks);
        assert!(
            d4.wall_ms < d2.wall_ms - 1e-9,
            "depth 4 {} must beat depth 2 {}",
            d4.wall_ms,
            d2.wall_ms
        );
        assert!(d4.bubble_ms < d2.bubble_ms);
    }
}
