//! Human-readable per-launch profiler reports — the simulator's answer to
//! `nvprof`/NVVP, which the paper leans on throughout (register counts in
//! §3.3, load transactions in Fig. 2).

use crate::exec::LaunchStats;
use std::fmt::Write as _;

/// Render an nvprof-style report for one launch: geometry, occupancy,
/// counters, the time breakdown, and rule-based advice highlighting the
/// bottleneck the paper's techniques target.
pub fn profile_report(stats: &LaunchStats) -> String {
    let c = &stats.counters;
    let t = &stats.time;
    let cfg = &stats.config;
    let mut s = String::new();

    let _ = writeln!(s, "=== kernel '{}' ===", stats.name);
    let _ = writeln!(
        s,
        "grid {} x block {} ({} threads), {} regs/thread, {} B shared, ILP {:.0}",
        cfg.grid_blocks,
        cfg.block_threads,
        cfg.grid_threads(),
        cfg.regs_per_thread,
        cfg.shared_bytes,
        cfg.ilp,
    );
    let _ = writeln!(
        s,
        "occupancy {:.0}% ({} warps/SM, limited by {:?})",
        stats.occupancy.occupancy * 100.0,
        stats.occupancy.warps_per_sm,
        stats.occupancy.limiter,
    );
    let _ = writeln!(s, "--- memory ---");
    let _ = writeln!(
        s,
        "gld: {} instructions, {} sectors ({:.2} sectors/instr); tex: {} sectors",
        c.gld_instructions,
        c.gld_transactions,
        c.gld_transactions as f64 / c.gld_instructions.max(1) as f64,
        c.tex_transactions,
    );
    let _ = writeln!(
        s,
        "gst: {} instructions, {} sectors; DRAM {:.2} MB read / {:.2} MB written; L2 {:.2} MB",
        c.gst_instructions,
        c.gst_transactions,
        c.dram_read_bytes as f64 / 1e6,
        c.dram_write_bytes as f64 / 1e6,
        c.l2_read_bytes as f64 / 1e6,
    );
    let _ = writeln!(
        s,
        "atomics: {} f64 + {} int (hottest address ~{}, warp conflicts {})",
        c.global_atomics,
        c.global_atomics_int,
        c.hottest_atomic_address_count(),
        c.global_atomic_warp_conflicts,
    );
    let _ = writeln!(
        s,
        "shared: {} accesses + {} atomics, {} bank-conflict replays",
        c.shared_accesses, c.shared_atomics, c.shared_bank_conflicts,
    );
    let _ = writeln!(
        s,
        "simd efficiency {:.0}%; {} shuffles; {} barriers; {:.2} MFLOP",
        c.simd_efficiency() * 100.0,
        c.shuffle_instructions,
        c.barriers,
        c.flops as f64 / 1e6,
    );
    let _ = writeln!(s, "--- time ({:.4} ms simulated) ---", t.total_ms);
    for (name, ms) in [
        ("launch", t.launch_ms),
        ("dram", t.dram_ms),
        ("l2", t.l2_ms),
        ("compute", t.compute_ms),
        ("shared", t.shared_ms),
        ("atomic throughput", t.atomic_throughput_ms),
        ("atomic serialization", t.atomic_serial_ms),
    ] {
        if ms > 0.0 {
            let _ = writeln!(s, "  {name:<21} {ms:>10.4} ms");
        }
    }
    let _ = writeln!(s, "bottleneck: {}", t.bottleneck());
    for advice in advise(stats) {
        let _ = writeln!(s, "advice: {advice}");
    }
    s
}

/// Rule-based advice keyed to the paper's optimizations.
fn advise(stats: &LaunchStats) -> Vec<String> {
    let c = &stats.counters;
    let t = &stats.time;
    let mut advice = Vec::new();

    if t.bottleneck() == "atomic_serialization" {
        advice.push(
            "same-address atomic contention dominates — pre-aggregate in shared \
             memory (the paper's inter-vector stage) or spread the output"
                .to_string(),
        );
    }
    if t.bottleneck() == "atomic_throughput" && c.global_atomics > 4 * c.gld_instructions {
        advice.push(
            "one atomic per element — hierarchical aggregation (registers -> \
             shared -> global) would collapse these"
                .to_string(),
        );
    }
    let per_instr = c.gld_transactions as f64 / c.gld_instructions.max(1) as f64;
    if per_instr > 16.0 {
        advice.push(format!(
            "loads average {per_instr:.1} sectors/instruction — accesses are \
             uncoalesced; restructure toward contiguous lane addressing"
        ));
    }
    if c.simd_efficiency() < 0.5 {
        advice.push(format!(
            "SIMD efficiency {:.0}% — heavy divergence; consider sorting work by \
             size or a format with uniform per-lane work (ELL)",
            c.simd_efficiency() * 100.0
        ));
    }
    if stats.occupancy.occupancy < 0.25 && stats.config.ilp < 2.0 {
        advice.push(
            "occupancy under 25% with no ILP — reduce the register/shared \
             footprint or unroll for instruction-level parallelism (thread load)"
                .to_string(),
        );
    }
    if c.shared_bank_conflicts > c.shared_accesses / 4 {
        advice.push(
            "shared-memory bank conflicts exceed 25% of accesses — pad the tile \
             stride or switch the traversal order"
                .to_string(),
        );
    }
    advice
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::exec::{Gpu, LaunchConfig};

    #[test]
    fn report_contains_all_sections() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = g.upload_f64("x", &vec![1.0; 4096]);
        let out = g.alloc_f64("out", 8);
        let stats = g.launch("probe", LaunchConfig::new(8, 128), |blk| {
            let n = 4096;
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    let v = w.load_f64(&x, |l| (base + l < n).then_some(base + l));
                    w.atomic_add_f64(&out, |l| (base + l < n).then(|| ((base + l) % 8, v[l])));
                    base += grid_threads;
                }
            });
        });
        let report = profile_report(&stats);
        for needle in [
            "kernel 'probe'",
            "occupancy",
            "gld:",
            "atomics:",
            "bottleneck:",
            "ms simulated",
        ] {
            assert!(report.contains(needle), "missing '{needle}' in:\n{report}");
        }
    }

    #[test]
    fn contended_atomics_trigger_advice() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let out = g.alloc_f64("hot", 1);
        let stats = g.launch("contended", LaunchConfig::new(64, 256), |blk| {
            blk.each_warp(|w| {
                for _ in 0..16 {
                    w.atomic_add_f64(&out, |_l| Some((0, 1.0)));
                }
            });
        });
        let report = profile_report(&stats);
        assert!(
            report.contains("advice:") && report.contains("contention"),
            "expected contention advice in:\n{report}"
        );
    }

    #[test]
    fn divergence_triggers_advice() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = g.upload_f64("x", &vec![1.0; 1024]);
        let stats = g.launch("divergent", LaunchConfig::new(1, 32), |blk| {
            blk.each_warp(|w| {
                for i in 0..32 {
                    w.load_f64(&x, |l| (l == 0).then_some(i));
                }
            });
        });
        let report = profile_report(&stats);
        assert!(report.contains("divergence"), "report:\n{report}");
    }

    #[test]
    fn clean_kernel_gets_no_advice() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = g.upload_f64("x", &vec![1.0; 32 * 256]);
        let y = g.alloc_f64("y", 32 * 256);
        let stats = g.launch("clean", LaunchConfig::new(8, 256), |blk| {
            let n = 32 * 256;
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    let v = w.load_f64(&x, |l| (base + l < n).then_some(base + l));
                    w.store_f64(&y, |l| (base + l < n).then(|| (base + l, v[l])));
                    base += grid_threads;
                }
            });
        });
        let report = profile_report(&stats);
        assert!(!report.contains("advice:"), "unexpected advice:\n{report}");
    }
}
