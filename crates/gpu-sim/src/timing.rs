//! Roofline-style timing model: converts counted hardware events into
//! simulated execution time.
//!
//! The kernels the paper studies are memory-bound (§3: ~1 FLOP per load for
//! matrix-vector products), so simulated time is dominated by DRAM traffic
//! divided by achievable bandwidth, where achievable bandwidth degrades when
//! occupancy is too low to hide latency. Global-atomic serialization — the
//! cost the hierarchical aggregation strategy exists to avoid — is modelled
//! from the sampled per-address histogram: the hottest address serializes.
//!
//! A matching analytical CPU model (`CpuSpec`) stands in for BIDMat-CPU /
//! Intel MKL in the comparative figures.

use crate::counters::Counters;
use crate::device::DeviceSpec;
use crate::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// Occupancy below this fraction can no longer hide memory latency;
/// achievable bandwidth scales down proportionally (empirically ~50% on
/// Kepler for memory-bound kernels, cf. Volkov's occupancy studies).
/// Public because the launch-parameter tuner treats occupancy beyond the
/// knee as "maximum possible" when trading it against atomic traffic.
pub const LATENCY_HIDING_KNEE: f64 = 0.5;

/// Breakdown of one kernel's simulated time, all in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    pub launch_ms: f64,
    pub dram_ms: f64,
    pub l2_ms: f64,
    pub compute_ms: f64,
    pub shared_ms: f64,
    pub atomic_throughput_ms: f64,
    pub atomic_serial_ms: f64,
    /// Final simulated kernel time: launch overhead plus the max of the
    /// overlapping pipelines.
    pub total_ms: f64,
}

impl TimeBreakdown {
    /// Modeled core-clock cycles behind `total_ms` at `clock_ghz`. The
    /// timing model is pure f64 arithmetic over integer counters, so this
    /// value is bit-deterministic across hosts — the benchmark regression
    /// gate diffs it with tight thresholds, unlike wall-clock.
    pub fn modeled_cycles(&self, clock_ghz: f64) -> u64 {
        (self.total_ms * clock_ghz * 1e6).round() as u64
    }

    /// Scale every component by `factor` — used by the straggler fault
    /// class, which slows a launch down uniformly without touching its
    /// counters or numerics.
    pub fn scale(&mut self, factor: f64) {
        self.launch_ms *= factor;
        self.dram_ms *= factor;
        self.l2_ms *= factor;
        self.compute_ms *= factor;
        self.shared_ms *= factor;
        self.atomic_throughput_ms *= factor;
        self.atomic_serial_ms *= factor;
        self.total_ms *= factor;
    }

    /// Name of the dominating component (useful for diagnosing shapes).
    pub fn bottleneck(&self) -> &'static str {
        let items = [
            (self.dram_ms, "dram"),
            (self.l2_ms, "l2"),
            (self.compute_ms, "compute"),
            (self.shared_ms, "shared"),
            (self.atomic_throughput_ms, "atomic_throughput"),
            (self.atomic_serial_ms, "atomic_serialization"),
        ];
        items
            .into_iter()
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, n)| n)
            .unwrap_or("launch")
    }
}

/// Estimate the simulated time of one kernel launch from its counters.
///
/// * `ilp` — per-thread memory-level parallelism (1.0 when each thread has
///   one load in flight; TL for the paper's unrolled dense kernel);
///   latency hiding is the product of warp parallelism and ILP.
/// * `device_fill` — fraction of the device's resident-block capacity the
///   grid actually occupies (a 7-block grid on a 14-SM device leaves half
///   the SMs idle no matter how high per-SM occupancy is).
pub fn kernel_time(
    spec: &DeviceSpec,
    occ: &Occupancy,
    ilp: f64,
    device_fill: f64,
    c: &Counters,
) -> TimeBreakdown {
    let occ_eff = (occ.occupancy * device_fill.clamp(0.0, 1.0) * ilp.max(1.0)
        / LATENCY_HIDING_KNEE)
        .min(device_fill.clamp(0.02, 1.0))
        .max(0.02);

    let dram_ms = c.dram_bytes() as f64 / (spec.dram_bandwidth_gbps * occ_eff) * 1e-6;
    let l2_ms = c.l2_read_bytes as f64 / (spec.l2_bandwidth_gbps * occ_eff) * 1e-6;
    let compute_ms = c.flops as f64 / (spec.peak_dp_gflops * occ_eff) * 1e-6;

    // Shared memory: all SMs together retire `shared_ops_per_ns_per_sm`
    // accesses per ns; bank conflicts serialize whole warp accesses.
    let shared_ops = c.shared_accesses + c.shared_atomics + 32 * c.shared_bank_conflicts;
    let shared_ms =
        shared_ops as f64 / (spec.shared_ops_per_ns_per_sm * spec.num_sms as f64) * 1e-6;

    // Atomics: a throughput term over all atomics plus a serialization term
    // on the most contended address (atomic units process one update to a
    // given address at a time).
    let atomic_throughput_ms = (c.global_atomics as f64 / spec.atomic_ops_per_ns
        + c.global_atomics_int as f64 / spec.atomic_int_ops_per_ns)
        * 1e-6;
    let serialized = c.hottest_atomic_address_count() + c.global_atomic_warp_conflicts;
    let atomic_serial_ms = serialized as f64 * spec.atomic_serial_ns * 1e-6;

    let launch_ms = c.kernel_launches.max(1) as f64 * spec.launch_overhead_us * 1e-3;

    let body = [
        dram_ms,
        l2_ms,
        compute_ms,
        shared_ms,
        atomic_throughput_ms,
        atomic_serial_ms,
    ]
    .into_iter()
    .fold(0.0f64, f64::max);

    TimeBreakdown {
        launch_ms,
        dram_ms,
        l2_ms,
        compute_ms,
        shared_ms,
        atomic_throughput_ms,
        atomic_serial_ms,
        total_ms: launch_ms + body,
    }
}

/// Analytical CPU cost model standing in for BIDMat-CPU (Intel MKL, 8
/// hyper-threads on a core-i7 3.4 GHz) in the comparative experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    pub name: String,
    /// Hardware threads used.
    pub threads: usize,
    /// Sustained memory bandwidth in GB/s across all threads.
    pub bandwidth_gbps: f64,
    /// Peak double-precision GFLOP/s across all threads.
    pub peak_dp_gflops: f64,
    /// Per-operator dispatch overhead in microseconds (library call, loop
    /// setup, thread fork/join).
    pub op_overhead_us: f64,
    /// Fraction of peak bandwidth achievable on irregular (sparse gather)
    /// access patterns. MKL's sparse kernels are comparatively good, which
    /// is why the paper sees MKL beat the GPU baselines on sparse inputs.
    pub irregular_efficiency: f64,
}

impl CpuSpec {
    /// The evaluation host of §4: Intel core-i7 3.4 GHz, 4 cores / 8
    /// hyper-threads, dual-channel DDR3.
    pub fn core_i7_8threads() -> Self {
        CpuSpec {
            name: "core-i7 3.4GHz, 8 hyper-threads (modelled MKL)".to_string(),
            threads: 8,
            bandwidth_gbps: 25.6,
            peak_dp_gflops: 108.8,
            op_overhead_us: 8.0,
            irregular_efficiency: 0.55,
        }
    }

    /// Single-threaded variant (used for the Table 2 CPU breakdown).
    pub fn single_thread() -> Self {
        CpuSpec {
            name: "core-i7 3.4GHz, 1 thread".to_string(),
            threads: 1,
            bandwidth_gbps: 12.0,
            peak_dp_gflops: 13.6,
            op_overhead_us: 1.0,
            irregular_efficiency: 0.6,
        }
    }

    /// Time for an operator that moves `bytes` of memory and performs
    /// `flops` double-precision operations. `irregular` marks gather /
    /// scatter-dominated access (sparse).
    pub fn op_time_ms(&self, bytes: u64, flops: u64, irregular: bool) -> f64 {
        let bw = if irregular {
            self.bandwidth_gbps * self.irregular_efficiency
        } else {
            self.bandwidth_gbps
        };
        let mem_ms = bytes as f64 / bw * 1e-6;
        let compute_ms = flops as f64 / self.peak_dp_gflops * 1e-6;
        self.op_overhead_us * 1e-3 + mem_ms.max(compute_ms)
    }
}

/// PCIe transfer model (host <-> device), used by the end-to-end
/// experiments (Tables 5 and 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcieSpec {
    /// Effective bandwidth in GB/s (paper: PCIe Gen3 x16, 32 GB/s quoted,
    /// ~12 GB/s achievable per direction in practice).
    pub bandwidth_gbps: f64,
    /// Per-transfer latency in microseconds.
    pub latency_us: f64,
}

impl PcieSpec {
    pub fn gen3_x16() -> Self {
        PcieSpec {
            bandwidth_gbps: 12.0,
            latency_us: 10.0,
        }
    }

    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-3 + bytes as f64 / self.bandwidth_gbps * 1e-6
    }
}

/// Device-to-device interconnect model for multi-GPU groups. Transfers are
/// counted event-style, exactly like DRAM traffic: each transfer costs a
/// fixed latency plus bytes over bandwidth, and the group accumulates
/// per-link byte/time totals that feed the modeled (bit-deterministic)
/// metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Stable profile name recorded in reports ("pcie-gen3-x16", "nvlink2").
    pub name: String,
    /// Effective per-direction bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-transfer latency in microseconds.
    pub latency_us: f64,
}

impl InterconnectSpec {
    /// Peer-to-peer over the PCIe Gen3 x16 fabric: same achievable
    /// bandwidth as the host link ([`PcieSpec::gen3_x16`]).
    pub fn pcie_gen3_x16() -> Self {
        InterconnectSpec {
            name: "pcie-gen3-x16".to_string(),
            bandwidth_gbps: 12.0,
            latency_us: 10.0,
        }
    }

    /// NVLink 2.0-class link: ~48 GB/s per direction, sub-2 µs latency.
    pub fn nvlink2() -> Self {
        InterconnectSpec {
            name: "nvlink2".to_string(),
            bandwidth_gbps: 48.0,
            latency_us: 1.3,
        }
    }

    /// Look a profile up by its stable name (the inverse of `name`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "pcie-gen3-x16" => Some(Self::pcie_gen3_x16()),
            "nvlink2" => Some(Self::nvlink2()),
            _ => None,
        }
    }

    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-3 + bytes as f64 / self.bandwidth_gbps * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{occupancy, Occupancy};

    fn full_occ() -> Occupancy {
        occupancy(&DeviceSpec::gtx_titan(), 256, 32, 0).unwrap()
    }

    #[test]
    fn memory_bound_kernel_hits_bandwidth() {
        let spec = DeviceSpec::gtx_titan();
        let mut c = Counters::new();
        c.dram_read_bytes = 288_000_000; // 1 GB/s-second worth => ~1 ms
        c.flops = 1000;
        let t = kernel_time(&spec, &full_occ(), 1.0, 1.0, &c);
        assert!((t.dram_ms - 1.0).abs() < 1e-9);
        assert_eq!(t.bottleneck(), "dram");
        assert!(t.total_ms > 1.0);
    }

    #[test]
    fn low_occupancy_degrades_bandwidth() {
        let spec = DeviceSpec::gtx_titan();
        let mut c = Counters::new();
        c.dram_read_bytes = 288_000_000;
        let lo = occupancy(&spec, 256, 255, 0).unwrap(); // register-starved
        assert!(lo.occupancy < 0.25);
        let t_lo = kernel_time(&spec, &lo, 1.0, 1.0, &c);
        let t_hi = kernel_time(&spec, &full_occ(), 1.0, 1.0, &c);
        assert!(t_lo.dram_ms > 1.5 * t_hi.dram_ms);
    }

    #[test]
    fn hot_atomic_address_serializes() {
        let spec = DeviceSpec::gtx_titan();
        let mut c = Counters::new();
        for i in 0..100_000 {
            c.record_global_atomic(0, i);
        }
        let t = kernel_time(&spec, &full_occ(), 1.0, 1.0, &c);
        assert_eq!(t.bottleneck(), "atomic_serialization");
        // 100k serialized atomics at 30ns each = 3 ms.
        assert!(t.atomic_serial_ms > 2.0);
    }

    #[test]
    fn spread_atomics_do_not_serialize() {
        let spec = DeviceSpec::gtx_titan();
        let mut c = Counters::new();
        for i in 0..100_000u64 {
            c.record_global_atomic(i * 8, i);
        }
        let t = kernel_time(&spec, &full_occ(), 1.0, 1.0, &c);
        assert!(t.atomic_serial_ms < t.atomic_throughput_ms * 10.0);
        assert_ne!(t.bottleneck(), "atomic_serialization");
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let spec = DeviceSpec::gtx_titan();
        let t = kernel_time(&spec, &full_occ(), 1.0, 1.0, &Counters::new());
        assert!((t.total_ms - 0.005).abs() < 1e-9);
    }

    #[test]
    fn cpu_model_bandwidth_bound() {
        let cpu = CpuSpec::core_i7_8threads();
        // 25.6 MB at 25.6 GB/s = 1 ms (plus overhead).
        let t = cpu.op_time_ms(25_600_000, 1000, false);
        assert!((t - 1.008).abs() < 1e-3);
        // Irregular access is slower.
        assert!(cpu.op_time_ms(25_600_000, 1000, true) > t);
    }

    #[test]
    fn pcie_transfer_scales_with_bytes() {
        let p = PcieSpec::gen3_x16();
        let t1 = p.transfer_ms(12_000_000);
        assert!((t1 - 1.01).abs() < 1e-2);
        assert!(p.transfer_ms(24_000_000) > 1.9 * t1 - p.latency_us * 1e-3);
    }

    #[test]
    fn interconnect_profiles_roundtrip_and_order() {
        let pcie = InterconnectSpec::pcie_gen3_x16();
        let nv = InterconnectSpec::nvlink2();
        assert_eq!(InterconnectSpec::by_name(&pcie.name), Some(pcie.clone()));
        assert_eq!(InterconnectSpec::by_name(&nv.name), Some(nv.clone()));
        assert_eq!(InterconnectSpec::by_name("token-ring"), None);
        // NVLink beats PCIe on both axes for any transfer size.
        for bytes in [0u64, 1 << 10, 1 << 20, 1 << 28] {
            assert!(nv.transfer_ms(bytes) < pcie.transfer_ms(bytes));
        }
        // 12 MB over 12 GB/s = 1 ms + latency.
        assert!((pcie.transfer_ms(12_000_000) - 1.01).abs() < 1e-9);
    }

    #[test]
    fn time_breakdown_scales_uniformly() {
        let spec = DeviceSpec::gtx_titan();
        let mut c = Counters::new();
        c.dram_read_bytes = 288_000_000;
        let mut t = kernel_time(&spec, &full_occ(), 1.0, 1.0, &c);
        let base = t;
        t.scale(4.0);
        assert!((t.total_ms - 4.0 * base.total_ms).abs() < 1e-12);
        assert!((t.dram_ms - 4.0 * base.dram_ms).abs() < 1e-12);
        assert_eq!(t.bottleneck(), base.bottleneck());
    }
}
