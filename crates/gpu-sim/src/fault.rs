//! Deterministic, seeded fault injection.
//!
//! The injector is a counter-based PRNG (SplitMix64 finalizer over
//! `seed ⊕ class-salt ⊕ draw-index`): every fault class keeps its own draw
//! counter, so the decision for the *n*-th kernel launch (or allocation, or
//! transfer) depends only on the profile seed and *n* — never on wall-clock
//! time, host scheduling, or interleaving with other fault classes. Two runs
//! with the same profile and the same operation sequence inject byte-identical
//! fault patterns, which is what makes fault-recovery tests reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mid-run memory pressure: once the device has seen `after_allocs`
/// allocation requests, `reserve_fraction` of its capacity becomes
/// reserved — as if a co-tenant process grabbed it — shrinking the
/// effective free bytes for every later allocation. Deterministic by
/// construction (keyed on the allocation count, not wall time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPressure {
    /// Allocation requests observed before the pressure sets in.
    pub after_allocs: u64,
    /// Fraction of device capacity reserved once pressure is active,
    /// in `[0, 1]`.
    pub reserve_fraction: f64,
}

/// What to inject and how often. `Default` disables everything, so an
/// injector is free when unused.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Seed for all fault draws.
    pub seed: u64,
    /// Probability that a kernel launch fails with a transient fault
    /// (decided *before* the kernel runs — a faulted launch has no side
    /// effects on device memory).
    pub kernel_fault_rate: f64,
    /// Probability that a device allocation fails.
    pub alloc_fault_rate: f64,
    /// Probability that a host/device transfer times out.
    pub transfer_timeout_rate: f64,
    /// Probability that a device buffer is silently corrupted (one bit
    /// flipped at a seeded site) on an H2D transfer or a pooled-buffer
    /// reuse. Undetected unless the device's integrity checks are on.
    pub corruption_rate: f64,
    /// Simulated-kernel watchdog: launches whose modelled time exceeds this
    /// limit fail with [`crate::DeviceError::WatchdogTimeout`].
    pub watchdog_limit_ms: Option<f64>,
    /// Mid-run memory-pressure mode (None = off).
    pub memory_pressure: Option<MemoryPressure>,
    /// Probability that a kernel launch kills the whole device: the launch
    /// fails with [`crate::DeviceError::DeviceLost`] and every later
    /// operation on that device fails immediately without consuming fault
    /// draws. Non-transient — recovery means moving the work elsewhere.
    pub device_loss_rate: f64,
    /// Probability that a kernel launch runs slow (a straggler): its
    /// modelled time is multiplied by `straggler_slowdown`. Numerics are
    /// untouched — stragglers only distort the simulated clock.
    pub straggler_rate: f64,
    /// Modelled-time multiplier applied to straggling launches.
    pub straggler_slowdown: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            seed: 0,
            kernel_fault_rate: 0.0,
            alloc_fault_rate: 0.0,
            transfer_timeout_rate: 0.0,
            corruption_rate: 0.0,
            watchdog_limit_ms: None,
            memory_pressure: None,
            device_loss_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 1.0,
        }
    }
}

impl FaultProfile {
    /// No injection at all (the default).
    pub fn disabled() -> Self {
        FaultProfile::default()
    }

    /// Start a profile with the given seed and everything disabled.
    pub fn seeded(seed: u64) -> Self {
        FaultProfile {
            seed,
            ..FaultProfile::default()
        }
    }

    pub fn with_kernel_fault_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.kernel_fault_rate = rate;
        self
    }

    pub fn with_alloc_fault_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.alloc_fault_rate = rate;
        self
    }

    pub fn with_transfer_timeout_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transfer_timeout_rate = rate;
        self
    }

    pub fn with_corruption_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.corruption_rate = rate;
        self
    }

    pub fn with_watchdog_limit_ms(mut self, limit_ms: f64) -> Self {
        assert!(limit_ms > 0.0, "watchdog limit must be positive");
        self.watchdog_limit_ms = Some(limit_ms);
        self
    }

    pub fn with_memory_pressure(mut self, after_allocs: u64, reserve_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&reserve_fraction),
            "reserve fraction must be in [0, 1]"
        );
        self.memory_pressure = Some(MemoryPressure {
            after_allocs,
            reserve_fraction,
        });
        self
    }

    pub fn with_device_loss_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.device_loss_rate = rate;
        self
    }

    pub fn with_straggler(mut self, rate: f64, slowdown: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        assert!(slowdown >= 1.0, "straggler slowdown must be >= 1");
        self.straggler_rate = rate;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Derive the profile for device `ordinal` of a multi-device group:
    /// same rates, but an independent per-device seed, so each group member
    /// has its own deterministic fault stream. Ordinal 0 keeps the base
    /// seed, so a 1-device group is bit-identical to a plain device with
    /// this profile.
    pub fn for_device(&self, ordinal: usize) -> Self {
        let mut p = self.clone();
        if ordinal > 0 {
            p.seed = mix64(self.seed ^ DEVICE_SALT ^ ordinal as u64);
        }
        p
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.kernel_fault_rate > 0.0
            || self.alloc_fault_rate > 0.0
            || self.transfer_timeout_rate > 0.0
            || self.corruption_rate > 0.0
            || self.watchdog_limit_ms.is_some()
            || self.memory_pressure.is_some()
            || self.device_loss_rate > 0.0
            || self.straggler_rate > 0.0
    }
}

/// Running totals of injected faults, for session reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    pub kernel_faults: u64,
    pub alloc_faults: u64,
    pub transfer_timeouts: u64,
    pub watchdog_timeouts: u64,
    /// Bit flips injected into device buffers (whether or not the
    /// integrity layer was on to catch them).
    pub corruptions: u64,
    /// Allocations rejected only because of the memory-pressure reserve
    /// (they would have fit in the unpressured device).
    pub pressure_rejections: u64,
    /// Launches that killed their device outright.
    pub device_losses: u64,
    /// Launches that ran slow (modelled time scaled by the straggler
    /// slowdown).
    pub stragglers: u64,
}

const KERNEL_SALT: u64 = 0x6b65726e656c5f66; // "kernel_f"
const ALLOC_SALT: u64 = 0x616c6c6f635f666c; // "alloc_fl"
const TRANSFER_SALT: u64 = 0x7472616e73666572; // "transfer"
const CORRUPT_SALT: u64 = 0x636f72727570746e; // "corruptn"
const DEVICE_LOSS_SALT: u64 = 0x6465766c6f737421; // "devlost!"
const STRAGGLER_SALT: u64 = 0x7374726167676c72; // "stragglr"
const DEVICE_SALT: u64 = 0x6465766963655f6e; // "device_n" (per-device seeds)

/// SplitMix64 finalizer: a high-quality bijective mix of the input.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Map a draw to the unit interval with 53 bits of precision.
fn unit(seed: u64, salt: u64, index: u64) -> f64 {
    (mix64(seed ^ salt ^ mix64(index)) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic fault source shared by the device and the runtime.
///
/// Draw counters are atomics so the injector can sit behind `&Gpu`, but the
/// *decision* for draw `n` is a pure function of `(seed, class, n)` — see the
/// module docs.
#[derive(Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    kernel_draws: AtomicU64,
    alloc_draws: AtomicU64,
    transfer_draws: AtomicU64,
    corruption_draws: AtomicU64,
    device_loss_draws: AtomicU64,
    straggler_draws: AtomicU64,
    alloc_requests: AtomicU64,
    kernel_faults: AtomicU64,
    alloc_faults: AtomicU64,
    transfer_timeouts: AtomicU64,
    watchdog_timeouts: AtomicU64,
    corruptions: AtomicU64,
    pressure_rejections: AtomicU64,
    device_losses: AtomicU64,
    stragglers: AtomicU64,
}

impl FaultInjector {
    pub fn new(profile: FaultProfile) -> Self {
        FaultInjector {
            profile,
            kernel_draws: AtomicU64::new(0),
            alloc_draws: AtomicU64::new(0),
            transfer_draws: AtomicU64::new(0),
            corruption_draws: AtomicU64::new(0),
            device_loss_draws: AtomicU64::new(0),
            straggler_draws: AtomicU64::new(0),
            alloc_requests: AtomicU64::new(0),
            kernel_faults: AtomicU64::new(0),
            alloc_faults: AtomicU64::new(0),
            transfer_timeouts: AtomicU64::new(0),
            watchdog_timeouts: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            pressure_rejections: AtomicU64::new(0),
            device_losses: AtomicU64::new(0),
            stragglers: AtomicU64::new(0),
        }
    }

    pub fn disabled() -> Self {
        FaultInjector::new(FaultProfile::disabled())
    }

    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide whether the next kernel launch faults. Returns the draw index
    /// when it does.
    pub fn draw_kernel_fault(&self) -> Option<u64> {
        if self.profile.kernel_fault_rate <= 0.0 {
            return None;
        }
        let idx = self.kernel_draws.fetch_add(1, Ordering::Relaxed);
        if unit(self.profile.seed, KERNEL_SALT, idx) < self.profile.kernel_fault_rate {
            self.kernel_faults.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// Decide whether the next device allocation faults.
    pub fn draw_alloc_fault(&self) -> Option<u64> {
        if self.profile.alloc_fault_rate <= 0.0 {
            return None;
        }
        let idx = self.alloc_draws.fetch_add(1, Ordering::Relaxed);
        if unit(self.profile.seed, ALLOC_SALT, idx) < self.profile.alloc_fault_rate {
            self.alloc_faults.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// Decide whether the next host/device transfer times out.
    pub fn draw_transfer_timeout(&self) -> Option<u64> {
        if self.profile.transfer_timeout_rate <= 0.0 {
            return None;
        }
        let idx = self.transfer_draws.fetch_add(1, Ordering::Relaxed);
        if unit(self.profile.seed, TRANSFER_SALT, idx) < self.profile.transfer_timeout_rate {
            self.transfer_timeouts.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// Decide whether the next corruption opportunity (an H2D transfer or
    /// a pooled-buffer reuse) flips a bit. Returns the draw index when it
    /// does; the site comes from [`FaultInjector::corruption_site`].
    pub fn draw_corruption(&self) -> Option<u64> {
        if self.profile.corruption_rate <= 0.0 {
            return None;
        }
        let idx = self.corruption_draws.fetch_add(1, Ordering::Relaxed);
        if unit(self.profile.seed, CORRUPT_SALT, idx) < self.profile.corruption_rate {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// The (element, bit) a corruption draw flips in a buffer of `len`
    /// elements — a pure function of `(seed, fault_index)`, independent of
    /// the accept/reject stream so the site is uncorrelated with *whether*
    /// the draw fired.
    pub fn corruption_site(&self, fault_index: u64, len: usize) -> (usize, u32) {
        let h = mix64(mix64(self.profile.seed ^ CORRUPT_SALT) ^ fault_index);
        let elem = if len == 0 { 0 } else { (h >> 6) as usize % len };
        let bit = (h & 63) as u32;
        (elem, bit)
    }

    /// Decide whether the next kernel launch kills the device. Returns the
    /// draw index when it does.
    pub fn draw_device_loss(&self) -> Option<u64> {
        if self.profile.device_loss_rate <= 0.0 {
            return None;
        }
        let idx = self.device_loss_draws.fetch_add(1, Ordering::Relaxed);
        if unit(self.profile.seed, DEVICE_LOSS_SALT, idx) < self.profile.device_loss_rate {
            self.device_losses.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// Decide whether the next kernel launch straggles (modelled time is
    /// scaled by the profile's slowdown). Returns the draw index when it
    /// does.
    pub fn draw_straggler(&self) -> Option<u64> {
        if self.profile.straggler_rate <= 0.0 {
            return None;
        }
        let idx = self.straggler_draws.fetch_add(1, Ordering::Relaxed);
        if unit(self.profile.seed, STRAGGLER_SALT, idx) < self.profile.straggler_rate {
            self.stragglers.fetch_add(1, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// Record one allocation request for the memory-pressure model. A no-op
    /// (counter untouched) when pressure is off, so a pressure-free device
    /// behaves bit-identically to one built before this class existed.
    pub fn note_alloc_request(&self) {
        if self.profile.memory_pressure.is_some() {
            self.alloc_requests.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Device bytes currently reserved by the memory-pressure model, for a
    /// device of `capacity_bytes`. Zero until the configured allocation
    /// count is reached (or when pressure is off).
    pub fn reserved_bytes(&self, capacity_bytes: u64) -> u64 {
        match self.profile.memory_pressure {
            // Strictly greater: the first `after_allocs` requests see the
            // full device; pressure sets in on every request after them.
            Some(mp) if self.alloc_requests.load(Ordering::Relaxed) > mp.after_allocs => {
                (capacity_bytes as f64 * mp.reserve_fraction) as u64
            }
            _ => 0,
        }
    }

    /// Record an allocation rejected only because of the pressure reserve.
    pub fn note_pressure_rejection(&self) {
        self.pressure_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Watchdog limit, if configured.
    pub fn watchdog_limit_ms(&self) -> Option<f64> {
        self.profile.watchdog_limit_ms
    }

    /// Record a watchdog trip (the device decides; the injector only counts).
    pub fn note_watchdog_timeout(&self) {
        self.watchdog_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Totals injected so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            kernel_faults: self.kernel_faults.load(Ordering::Relaxed),
            alloc_faults: self.alloc_faults.load(Ordering::Relaxed),
            transfer_timeouts: self.transfer_timeouts.load(Ordering::Relaxed),
            watchdog_timeouts: self.watchdog_timeouts.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            pressure_rejections: self.pressure_rejections.load(Ordering::Relaxed),
            device_losses: self.device_losses.load(Ordering::Relaxed),
            stragglers: self.stragglers.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_never_draws() {
        let inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert_eq!(inj.draw_kernel_fault(), None);
            assert_eq!(inj.draw_alloc_fault(), None);
            assert_eq!(inj.draw_transfer_timeout(), None);
            assert_eq!(inj.draw_corruption(), None);
            assert_eq!(inj.draw_device_loss(), None);
            assert_eq!(inj.draw_straggler(), None);
            inj.note_alloc_request();
        }
        assert_eq!(inj.counts(), FaultCounts::default());
        // Disabled classes consume no draw indices at all.
        assert_eq!(inj.kernel_draws.load(Ordering::Relaxed), 0);
        assert_eq!(inj.corruption_draws.load(Ordering::Relaxed), 0);
        assert_eq!(inj.device_loss_draws.load(Ordering::Relaxed), 0);
        assert_eq!(inj.straggler_draws.load(Ordering::Relaxed), 0);
        assert_eq!(inj.alloc_requests.load(Ordering::Relaxed), 0);
        assert_eq!(inj.reserved_bytes(1 << 30), 0);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let mk = || FaultInjector::new(FaultProfile::seeded(42).with_kernel_fault_rate(0.2));
        let a: Vec<Option<u64>> = {
            let i = mk();
            (0..200).map(|_| i.draw_kernel_fault()).collect()
        };
        let b: Vec<Option<u64>> = {
            let i = mk();
            (0..200).map(|_| i.draw_kernel_fault()).collect()
        };
        assert_eq!(a, b);
        assert!(
            a.iter().any(|d| d.is_some()),
            "rate 0.2 over 200 draws must fire"
        );
        assert!(a.iter().any(|d| d.is_none()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultInjector::new(FaultProfile::seeded(1).with_kernel_fault_rate(0.5));
        let b = FaultInjector::new(FaultProfile::seeded(2).with_kernel_fault_rate(0.5));
        let va: Vec<bool> = (0..64).map(|_| a.draw_kernel_fault().is_some()).collect();
        let vb: Vec<bool> = (0..64).map(|_| b.draw_kernel_fault().is_some()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn classes_are_independent_streams() {
        // Interleaving alloc draws between kernel draws must not shift the
        // kernel stream.
        let p = FaultProfile::seeded(7)
            .with_kernel_fault_rate(0.3)
            .with_alloc_fault_rate(0.3);
        let pure = FaultInjector::new(p.clone());
        let kernel_only: Vec<bool> = (0..50)
            .map(|_| pure.draw_kernel_fault().is_some())
            .collect();
        let mixed = FaultInjector::new(p);
        let interleaved: Vec<bool> = (0..50)
            .map(|_| {
                mixed.draw_alloc_fault();
                mixed.draw_kernel_fault().is_some()
            })
            .collect();
        assert_eq!(kernel_only, interleaved);
    }

    #[test]
    fn empirical_rate_tracks_profile() {
        let inj = FaultInjector::new(FaultProfile::seeded(9).with_alloc_fault_rate(0.25));
        let n = 4000;
        let hits = (0..n).filter(|_| inj.draw_alloc_fault().is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
        assert_eq!(inj.counts().alloc_faults, hits as u64);
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn rejects_bad_rate() {
        FaultProfile::seeded(0).with_kernel_fault_rate(1.5);
    }

    #[test]
    fn same_seed_same_schedule_across_all_classes() {
        // Satellite: one combined determinism check covering the original
        // classes *and* the new corruption/pressure draws. Two injectors
        // with the same profile must produce an identical fault schedule
        // (indices, sites, counts) over an identical operation sequence.
        let mk = || {
            FaultInjector::new(
                FaultProfile::seeded(0xC0FFEE)
                    .with_kernel_fault_rate(0.1)
                    .with_alloc_fault_rate(0.1)
                    .with_transfer_timeout_rate(0.1)
                    .with_corruption_rate(0.15)
                    .with_memory_pressure(10, 0.5),
            )
        };
        let schedule = |inj: &FaultInjector| {
            let mut trail = Vec::new();
            for step in 0..200u64 {
                trail.push((inj.draw_kernel_fault(), inj.draw_alloc_fault()));
                if let Some(fi) = inj.draw_corruption() {
                    trail.push((Some(fi), None));
                    let (elem, bit) = inj.corruption_site(fi, 97);
                    trail.push((Some(elem as u64), Some(bit as u64)));
                }
                inj.note_alloc_request();
                trail.push((Some(inj.reserved_bytes(1000)), Some(step)));
            }
            (trail, inj.counts())
        };
        let a = mk();
        let b = mk();
        assert_eq!(schedule(&a), schedule(&b));
        let counts = a.counts();
        assert!(counts.corruptions > 0, "rate 0.15 over 200 draws must fire");
        assert_eq!(a.reserved_bytes(1000), 500);
    }

    #[test]
    fn corruption_sites_are_in_range_and_seed_dependent() {
        let a = FaultInjector::new(FaultProfile::seeded(1).with_corruption_rate(1.0));
        let b = FaultInjector::new(FaultProfile::seeded(2).with_corruption_rate(1.0));
        let sa: Vec<(usize, u32)> = (0..64).map(|i| a.corruption_site(i, 33)).collect();
        let sb: Vec<(usize, u32)> = (0..64).map(|i| b.corruption_site(i, 33)).collect();
        assert_ne!(sa, sb);
        for (elem, bit) in sa {
            assert!(elem < 33);
            assert!(bit < 64);
        }
        // Degenerate length never indexes out of bounds.
        assert_eq!(a.corruption_site(5, 0).0, 0);
    }

    #[test]
    fn pressure_reserve_kicks_in_at_the_threshold() {
        let inj = FaultInjector::new(FaultProfile::seeded(0).with_memory_pressure(3, 0.25));
        assert_eq!(inj.reserved_bytes(4000), 0);
        inj.note_alloc_request();
        inj.note_alloc_request();
        inj.note_alloc_request();
        assert_eq!(inj.reserved_bytes(4000), 0, "first N requests unpressured");
        inj.note_alloc_request();
        assert_eq!(inj.reserved_bytes(4000), 1000, "past the threshold");
        assert_eq!(inj.counts().pressure_rejections, 0);
        inj.note_pressure_rejection();
        assert_eq!(inj.counts().pressure_rejections, 1);
    }

    #[test]
    #[should_panic(expected = "reserve fraction must be in [0, 1]")]
    fn rejects_bad_reserve_fraction() {
        FaultProfile::seeded(0).with_memory_pressure(1, 1.5);
    }

    #[test]
    fn device_loss_and_straggler_are_independent_deterministic_streams() {
        let mk = || {
            FaultInjector::new(
                FaultProfile::seeded(0xD06)
                    .with_device_loss_rate(0.2)
                    .with_straggler(0.3, 4.0),
            )
        };
        let a = mk();
        let b = mk();
        let sa: Vec<(Option<u64>, Option<u64>)> = (0..100)
            .map(|_| (a.draw_device_loss(), a.draw_straggler()))
            .collect();
        // Interleaving straggler draws must not shift the device-loss
        // stream (and vice versa): replay device-loss draws alone.
        let loss_only: Vec<Option<u64>> = (0..100).map(|_| b.draw_device_loss()).collect();
        assert_eq!(
            sa.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            loss_only,
            "device-loss stream shifted by straggler draws"
        );
        assert!(sa.iter().any(|(l, _)| l.is_some()));
        assert!(sa.iter().any(|(_, s)| s.is_some()));
        let counts = a.counts();
        assert_eq!(
            counts.device_losses,
            sa.iter().filter(|(l, _)| l.is_some()).count() as u64
        );
        assert_eq!(
            counts.stragglers,
            sa.iter().filter(|(_, s)| s.is_some()).count() as u64
        );
    }

    #[test]
    fn per_device_profiles_are_distinct_but_deterministic() {
        let base = FaultProfile::seeded(0xFEED).with_device_loss_rate(0.5);
        assert_eq!(base.for_device(0), base, "ordinal 0 keeps the base seed");
        let d1 = base.for_device(1);
        let d2 = base.for_device(2);
        assert_ne!(d1.seed, base.seed);
        assert_ne!(d1.seed, d2.seed);
        assert_eq!(d1, base.for_device(1), "derivation is pure");
        assert_eq!(d1.device_loss_rate, base.device_loss_rate);
        let a = FaultInjector::new(d1.clone());
        let b = FaultInjector::new(d2);
        let va: Vec<bool> = (0..64).map(|_| a.draw_device_loss().is_some()).collect();
        let vb: Vec<bool> = (0..64).map(|_| b.draw_device_loss().is_some()).collect();
        assert_ne!(va, vb, "sibling devices draw from independent streams");
    }

    #[test]
    #[should_panic(expected = "straggler slowdown must be >= 1")]
    fn rejects_speedup_stragglers() {
        FaultProfile::seeded(0).with_straggler(0.1, 0.5);
    }
}
