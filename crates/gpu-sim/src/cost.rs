//! Analytical cost evaluation for fused operator chains.
//!
//! The fusion compiler in `fusedml-core` enumerates candidate plans that
//! collapse chains of linear-algebra operators into single kernels. Each
//! candidate must be priced *before* anything executes, so this module
//! synthesizes the hardware counters one (possibly fused) kernel would
//! produce — DRAM traffic, atomics, launches — and feeds them through the
//! exact same [`kernel_time`] roofline model the simulator uses for real
//! launches. The estimate is an analytical stand-in, not a cycle-accurate
//! replay: it exists to *rank* candidates, and the ranking inputs are the
//! very quantities fusion changes (intermediate materialization bytes and
//! per-kernel launch overhead, cf. the paper's §3 fusion argument).
//!
//! A chain `[a, b, c]` means: one kernel evaluates `c(b(a(input)))` with
//! the intermediate results of `a` and `b` held in registers or shared
//! memory. Side operands (the matrix, element-wise partners) still stream
//! from DRAM; only the producer→consumer edge inside the chain is free.
//! A single-op chain `[a]` prices the unfused execution of `a`.

use crate::counters::Counters;
use crate::device::DeviceSpec;
use crate::occupancy::{occupancy, Occupancy};
use crate::timing::{kernel_time, TimeBreakdown};

/// Register footprint charged for chains containing a matrix operator
/// (the §4.3 sparse fused kernel uses 43 registers per thread).
const MATRIX_CHAIN_REGS: u32 = 43;
/// Register footprint for pure element-wise chains (level-1 class).
const EW_CHAIN_REGS: u32 = 20;
/// Block size every estimate assumes; matches the level-1 kernels. The
/// real launch may tune a different shape — the estimate only ranks.
const EST_BLOCK: usize = 256;

/// One operator inside a (possibly fused) kernel chain, described by the
/// shape quantities that determine its memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainOp {
    /// `p = X y` on CSR storage: streams the matrix, gathers `y`.
    SpMv { rows: usize, cols: usize, nnz: u64 },
    /// `p = X y` on row-major dense storage.
    DenseMv { rows: usize, cols: usize },
    /// `w = X^T u` on CSR storage: row-parallel scatter with atomic
    /// aggregation into `w` (the §3.1 hierarchy's global tier).
    SpTmv { rows: usize, cols: usize, nnz: u64 },
    /// `w = X^T u` on dense storage.
    DenseTmv { rows: usize, cols: usize },
    /// Element-wise map over `len` elements reading `side_inputs` extra
    /// vectors and spending `flops_per_elem` FLOPs per element (covers
    /// scale / axpy / element-wise multiply and fused chains thereof).
    Map {
        len: usize,
        side_inputs: u32,
        flops_per_elem: u32,
    },
    /// Dot product: reads one side vector, reduces hierarchically, one
    /// global atomic per block.
    Dot { len: usize },
}

impl ChainOp {
    /// Elements of the operator's primary (chain) input.
    pub fn primary_in_len(&self) -> usize {
        match *self {
            ChainOp::SpMv { cols, .. } | ChainOp::DenseMv { cols, .. } => cols,
            ChainOp::SpTmv { rows, .. } | ChainOp::DenseTmv { rows, .. } => rows,
            ChainOp::Map { len, .. } | ChainOp::Dot { len } => len,
        }
    }

    /// Elements of the operator's output.
    pub fn out_len(&self) -> usize {
        match *self {
            ChainOp::SpMv { rows, .. } | ChainOp::DenseMv { rows, .. } => rows,
            ChainOp::SpTmv { cols, .. } | ChainOp::DenseTmv { cols, .. } => cols,
            ChainOp::Map { len, .. } => len,
            ChainOp::Dot { .. } => 1,
        }
    }

    /// Bytes streamed from DRAM regardless of fusion: matrix storage and
    /// side vectors (everything but the chain edge).
    fn side_read_bytes(&self) -> u64 {
        match *self {
            // CSR: 8B value + 4B column index per nnz, plus rows+1 offsets.
            ChainOp::SpMv { rows, nnz, .. } | ChainOp::SpTmv { rows, nnz, .. } => {
                nnz * 12 + (rows as u64 + 1) * 4
            }
            ChainOp::DenseMv { rows, cols } | ChainOp::DenseTmv { rows, cols } => {
                rows as u64 * cols as u64 * 8
            }
            ChainOp::Map {
                len, side_inputs, ..
            } => len as u64 * 8 * side_inputs as u64,
            ChainOp::Dot { len } => len as u64 * 8,
        }
    }

    /// Double-precision FLOPs the operator performs.
    fn flops(&self) -> u64 {
        match *self {
            ChainOp::SpMv { nnz, .. } | ChainOp::SpTmv { nnz, .. } => 2 * nnz,
            ChainOp::DenseMv { rows, cols } | ChainOp::DenseTmv { rows, cols } => {
                2 * rows as u64 * cols as u64
            }
            ChainOp::Map {
                len,
                flops_per_elem,
                ..
            } => len as u64 * flops_per_elem as u64,
            ChainOp::Dot { len } => 2 * len as u64,
        }
    }

    /// Parallel work items the operator offers the grid.
    fn work(&self) -> usize {
        match *self {
            ChainOp::SpMv { rows, .. }
            | ChainOp::DenseMv { rows, .. }
            | ChainOp::SpTmv { rows, .. }
            | ChainOp::DenseTmv { rows, .. } => rows,
            ChainOp::Map { len, .. } | ChainOp::Dot { len } => len,
        }
    }

    fn is_matrix(&self) -> bool {
        !matches!(self, ChainOp::Map { .. } | ChainOp::Dot { .. })
    }
}

/// Priced estimate for one (possibly fused) kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEstimate {
    /// Roofline timing from [`kernel_time`] over the synthetic counters.
    pub time: TimeBreakdown,
    /// The synthetic counters themselves (DRAM bytes, atomics, launches).
    pub counters: Counters,
    /// Occupancy of the assumed launch shape.
    pub occupancy: Occupancy,
    /// Fraction of resident-block capacity the grid fills.
    pub device_fill: f64,
    /// Intermediate bytes fusion kept out of DRAM (the chain edges).
    pub saved_intermediate_bytes: u64,
}

impl KernelEstimate {
    /// Modeled milliseconds for this kernel (including launch overhead).
    pub fn modeled_ms(&self) -> f64 {
        self.time.total_ms
    }
}

/// Price one kernel that evaluates `ops` as a fused chain (`ops.len() == 1`
/// prices the unfused operator). Returns `None` when the assumed launch
/// footprint cannot run on `spec` (register-starved devices), mirroring
/// the tuner's no-feasible-config outcome.
///
/// Counter synthesis:
/// * the first op reads its primary input from DRAM; every op streams its
///   side operands (matrix, element-wise partners) from DRAM;
/// * chain edges between fused ops cost nothing — that is fusion's win;
/// * the last op writes its output to DRAM;
/// * transpose-MV ops add the zero-fill launch and the atomic aggregation
///   traffic of the scatter strategy; dot adds one atomic per block.
pub fn estimate_fused_kernel(spec: &DeviceSpec, ops: &[ChainOp]) -> Option<KernelEstimate> {
    if ops.is_empty() {
        return None;
    }
    let regs = if ops.iter().any(ChainOp::is_matrix) {
        MATRIX_CHAIN_REGS
    } else {
        EW_CHAIN_REGS
    };
    let occ = occupancy(spec, EST_BLOCK, regs, 0)?;

    let work = ops.iter().map(ChainOp::work).max().unwrap_or(1).max(1);
    let capacity = occ.blocks_per_sm * spec.num_sms;
    let grid = work.div_ceil(EST_BLOCK).clamp(1, capacity.max(1) * 4);
    let device_fill = (grid as f64 / capacity.max(1) as f64).min(1.0);

    let mut c = Counters::new();
    c.kernel_launches = 1;
    let mut saved = 0u64;
    // A fused chain containing both product stages (`X y` then `X^T u`)
    // streams the matrix once and reuses each row for both products —
    // the §3 temporal-locality win. Charge the matrix bytes a single
    // time in that case and credit the difference as saved traffic.
    let matrix_bytes: Vec<u64> = ops
        .iter()
        .filter(|op| op.is_matrix())
        .map(ChainOp::side_read_bytes)
        .collect();
    let dup_matrix_bytes =
        if matrix_bytes.len() >= 2 && matrix_bytes.windows(2).all(|w| w[0] == w[1]) {
            matrix_bytes[0] * (matrix_bytes.len() as u64 - 1)
        } else {
            0
        };
    for (i, op) in ops.iter().enumerate() {
        c.dram_read_bytes += op.side_read_bytes();
        if i == 0 {
            c.dram_read_bytes += op.primary_in_len() as u64 * 8;
        } else {
            // The chain edge: unfused execution would write then re-read
            // this intermediate. Credit both directions as saved traffic.
            saved += op.primary_in_len() as u64 * 16;
        }
        c.flops += op.flops();
        match *op {
            ChainOp::SpTmv { cols, nnz, .. } => {
                // Scatter aggregation: each resident block flushes its
                // partial output columns through global f64 atomics, and
                // the destination must be zero-filled first (one extra
                // launch writing the full output).
                c.global_atomics += (grid as u64 * cols as u64).min(nnz.max(cols as u64));
                c.kernel_launches += 1;
                c.dram_write_bytes += cols as u64 * 8;
            }
            ChainOp::DenseTmv { cols, .. } => {
                c.global_atomics += grid as u64 * cols as u64;
                c.kernel_launches += 1;
                c.dram_write_bytes += cols as u64 * 8;
            }
            ChainOp::Dot { .. } => {
                // Hierarchical reduction: shuffles in registers, one
                // shared slot per block, one global atomic per block.
                c.shuffle_instructions += grid as u64 * (EST_BLOCK / 32) as u64;
                c.shared_atomics += grid as u64 * (EST_BLOCK / 32) as u64;
                c.global_atomics += grid as u64;
            }
            _ => {}
        }
    }
    c.dram_read_bytes -= dup_matrix_bytes;
    saved += dup_matrix_bytes;
    let last = ops[ops.len() - 1];
    c.dram_write_bytes += last.out_len() as u64 * 8;

    let time = kernel_time(spec, &occ, 1.0, device_fill, &c);
    Some(KernelEstimate {
        time,
        counters: c,
        occupancy: occ,
        device_fill,
        saved_intermediate_bytes: saved,
    })
}

/// Sum of per-group modeled milliseconds for a whole plan, where each
/// element of `groups` is one fused kernel chain. `None` if any group
/// cannot launch.
pub fn estimate_plan_ms(spec: &DeviceSpec, groups: &[Vec<ChainOp>]) -> Option<f64> {
    let mut total = 0.0;
    for g in groups {
        total += estimate_fused_kernel(spec, g)?.modeled_ms();
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> DeviceSpec {
        DeviceSpec::gtx_titan()
    }

    fn map(len: usize, sides: u32) -> ChainOp {
        ChainOp::Map {
            len,
            side_inputs: sides,
            flops_per_elem: 1,
        }
    }

    #[test]
    fn fused_map_chain_beats_unfused_singles() {
        let spec = titan();
        let n = 1_000_000;
        let chain = [map(n, 1), map(n, 0), map(n, 1)];
        let fused = estimate_fused_kernel(&spec, &chain).unwrap();
        let unfused: f64 = chain
            .iter()
            .map(|op| estimate_fused_kernel(&spec, &[*op]).unwrap().modeled_ms())
            .sum();
        assert!(
            fused.modeled_ms() < unfused,
            "fused {} must beat unfused {}",
            fused.modeled_ms(),
            unfused
        );
        // The win is exactly launches + intermediate round-trips.
        assert_eq!(fused.counters.kernel_launches, 1);
        assert_eq!(fused.saved_intermediate_bytes, 2 * n as u64 * 16);
    }

    #[test]
    fn sparse_tmv_charges_fill_and_atomics() {
        let spec = titan();
        let est = estimate_fused_kernel(
            &spec,
            &[ChainOp::SpTmv {
                rows: 10_000,
                cols: 512,
                nnz: 200_000,
            }],
        )
        .unwrap();
        assert_eq!(est.counters.kernel_launches, 2, "tmv + zero-fill");
        assert!(est.counters.global_atomics > 0);
        // Fill write + final write.
        assert_eq!(est.counters.dram_write_bytes, 2 * 512 * 8);
    }

    #[test]
    fn eq1_style_chain_saves_row_vector_roundtrips() {
        let spec = titan();
        let (rows, cols, nnz) = (20_000, 1024, 400_000u64);
        let chain = [
            ChainOp::SpMv { rows, cols, nnz },
            map(rows, 1), // v ⊙ ·
            ChainOp::SpTmv { rows, cols, nnz },
            map(cols, 1), // + beta z
        ];
        let fused = estimate_fused_kernel(&spec, &chain).unwrap();
        let unfused: f64 = chain
            .iter()
            .map(|op| estimate_fused_kernel(&spec, &[*op]).unwrap().modeled_ms())
            .sum();
        assert!(fused.modeled_ms() < unfused);
        // Saved: two row-dim edges + one col-dim edge (16B per element),
        // plus one of the two matrix streams (fused kernels reuse each
        // CSR row for both product stages).
        let matrix_bytes = nnz * 12 + (rows as u64 + 1) * 4;
        assert_eq!(
            fused.saved_intermediate_bytes,
            (2 * rows as u64 + cols as u64) * 16 + matrix_bytes
        );
    }

    #[test]
    fn estimates_are_deterministic() {
        let spec = titan();
        let chain = [
            ChainOp::SpMv {
                rows: 5_000,
                cols: 300,
                nnz: 60_000,
            },
            map(5_000, 0),
        ];
        let a = estimate_fused_kernel(&spec, &chain).unwrap();
        let b = estimate_fused_kernel(&spec, &chain).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.modeled_ms().to_bits(), b.modeled_ms().to_bits());
    }

    #[test]
    fn empty_chain_and_starved_device_yield_none() {
        assert!(estimate_fused_kernel(&titan(), &[]).is_none());
        let starved = DeviceSpec {
            registers_per_sm: 64,
            ..titan()
        };
        assert!(estimate_fused_kernel(&starved, &[map(100, 0)]).is_none());
    }

    #[test]
    fn plan_sum_matches_group_estimates() {
        let spec = titan();
        let groups = vec![
            vec![map(1000, 1), map(1000, 0)],
            vec![ChainOp::Dot { len: 1000 }],
        ];
        let total = estimate_plan_ms(&spec, &groups).unwrap();
        let by_hand: f64 = groups
            .iter()
            .map(|g| estimate_fused_kernel(&spec, g).unwrap().modeled_ms())
            .sum();
        assert_eq!(total.to_bits(), by_hand.to_bits());
    }
}
