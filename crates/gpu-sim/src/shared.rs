//! Shared-memory bank-conflict accounting.
//!
//! Kepler SMs expose 32 banks; in 8-byte mode consecutive 64-bit words map
//! to consecutive banks. A warp instruction whose lanes touch `k` *distinct*
//! words in the same bank replays `k - 1` times. Multiple lanes reading the
//! *same* word broadcast without conflict.

/// Number of extra replays for one warp-wide shared-memory access touching
/// the given 8-byte word indices (`None` = inactive lane).
pub fn bank_conflict_replays(word_indices: &[Option<usize>], banks: usize) -> u64 {
    debug_assert!(banks > 0 && banks <= 64);
    // distinct words per bank
    let mut per_bank_words: Vec<Vec<usize>> = vec![Vec::new(); banks];
    for idx in word_indices.iter().flatten() {
        let bank = idx % banks;
        if !per_bank_words[bank].contains(idx) {
            per_bank_words[bank].push(*idx);
        }
    }
    let max_degree = per_bank_words.iter().map(Vec::len).max().unwrap_or(0);
    max_degree.saturating_sub(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_sequential_access() {
        let idx: Vec<Option<usize>> = (0..32).map(Some).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 0);
    }

    #[test]
    fn broadcast_is_free() {
        let idx: Vec<Option<usize>> = (0..32).map(|_| Some(7)).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 0);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        let idx: Vec<Option<usize>> = (0..32).map(|l| Some(l * 2)).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 1);
    }

    #[test]
    fn stride_32_fully_serializes() {
        let idx: Vec<Option<usize>> = (0..32).map(|l| Some(l * 32)).collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 31);
    }

    #[test]
    fn inactive_lanes_ignored() {
        let idx: Vec<Option<usize>> = (0..32)
            .map(|l| if l < 4 { Some(l * 32) } else { None })
            .collect();
        assert_eq!(bank_conflict_replays(&idx, 32), 3);
    }

    #[test]
    fn empty_warp_no_conflicts() {
        let idx = [None; 32];
        assert_eq!(bank_conflict_replays(&idx, 32), 0);
    }
}
