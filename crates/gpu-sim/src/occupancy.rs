//! CUDA occupancy calculator for the simulated device.
//!
//! Mirrors the NVIDIA occupancy calculator the paper's parameter-tuning
//! model (§3.3) relies on: given a block size, register usage per thread and
//! shared memory per block, compute how many blocks/warps can be resident on
//! one SM under the device's limits and allocation granularities.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Max resident warps per SM.
    Warps,
    /// Max resident blocks per SM.
    Blocks,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMem,
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub blocks_per_sm: usize,
    /// Warps resident per SM.
    pub warps_per_sm: usize,
    /// `warps_per_sm / max_warps_per_sm`, in (0, 1].
    pub occupancy: f64,
    /// The binding resource.
    pub limiter: Limiter,
}

impl Occupancy {
    /// Total concurrently resident threads across the whole device.
    pub fn concurrent_threads(&self, spec: &DeviceSpec) -> usize {
        self.warps_per_sm * spec.warp_size * spec.num_sms
    }
}

fn round_up(x: usize, granularity: usize) -> usize {
    if granularity == 0 {
        x
    } else {
        x.div_ceil(granularity) * granularity
    }
}

/// Compute occupancy for a kernel with the given launch footprint.
///
/// Returns `None` when the kernel cannot launch at all (block too large,
/// too many registers per thread, or shared memory over the per-block limit)
/// — the same conditions under which a real CUDA launch fails.
pub fn occupancy(
    spec: &DeviceSpec,
    block_threads: usize,
    regs_per_thread: u32,
    shared_bytes_per_block: usize,
) -> Option<Occupancy> {
    if block_threads == 0
        || block_threads > spec.max_threads_per_block
        || regs_per_thread > spec.max_regs_per_thread
        || shared_bytes_per_block > spec.shared_mem_per_block
    {
        return None;
    }

    let warps_per_block = spec.warps_per_block(block_threads);
    let max_warps = spec.max_warps_per_sm();

    // Registers are allocated per warp, rounded to the allocation granule.
    let regs_per_warp = round_up(
        regs_per_thread as usize * spec.warp_size,
        spec.reg_alloc_granularity as usize,
    );
    let blocks_by_regs = spec
        .registers_per_sm
        .checked_div(regs_per_warp)
        .map_or(usize::MAX, |warps| warps / warps_per_block);

    let shared_alloc = round_up(shared_bytes_per_block, spec.shared_alloc_granularity);
    let blocks_by_shared = spec
        .shared_mem_per_sm
        .checked_div(shared_alloc)
        .unwrap_or(usize::MAX);

    let blocks_by_warps = max_warps / warps_per_block;
    let blocks_by_limit = spec.max_blocks_per_sm;

    let (blocks, limiter) = [
        (blocks_by_warps, Limiter::Warps),
        (blocks_by_limit, Limiter::Blocks),
        (blocks_by_regs, Limiter::Registers),
        (blocks_by_shared, Limiter::SharedMem),
    ]
    .into_iter()
    .min_by_key(|&(b, _)| b)
    .unwrap_or_else(|| unreachable!("limiter candidates are non-empty"));

    if blocks == 0 {
        // Fits in no SM concurrently => cannot launch (e.g. shared memory
        // request below the per-block limit but above per-SM capacity can't
        // happen since per-block <= per-SM; registers can still zero out).
        return None;
    }

    let warps_per_sm = (blocks * warps_per_block).min(max_warps);
    Some(Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm,
        occupancy: warps_per_sm as f64 / max_warps as f64,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn titan() -> DeviceSpec {
        DeviceSpec::gtx_titan()
    }

    #[test]
    fn full_occupancy_small_footprint() {
        // 256 threads, 32 regs/thread, no shared memory:
        // regs/warp = 1024, 64 warps * 1024 = 64K regs exactly => 64 warps.
        let o = occupancy(&titan(), 256, 32, 0).unwrap();
        assert_eq!(o.warps_per_sm, 64);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_limited() {
        // 128 regs/thread: regs/warp = 4096; 64K/4096 = 16 warps.
        let o = occupancy(&titan(), 256, 128, 0).unwrap();
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.warps_per_sm, 16);
        assert!((o.occupancy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limited() {
        // 24 KB/block => 2 blocks/SM regardless of other resources.
        let o = occupancy(&titan(), 128, 16, 24 * 1024).unwrap();
        assert_eq!(o.limiter, Limiter::SharedMem);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 8);
    }

    #[test]
    fn block_count_limited() {
        // Tiny blocks: 32 threads, minimal regs => capped at 16 blocks/SM.
        let o = occupancy(&titan(), 32, 8, 0).unwrap();
        assert_eq!(o.limiter, Limiter::Blocks);
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.warps_per_sm, 16);
    }

    #[test]
    fn paper_sparse_kernel_configuration() {
        // §4.3: the sparse kernel uses 43 registers/thread, BS=640 and
        // (640/8 + 1000) * 8 = 8640B shared memory (rounded to 8832 in the
        // paper's granularity discussion). Occupancy must be register-bound
        // around 2 blocks (40 warps) per SM.
        let shared = (640 / 8 + 1000) * 8;
        let o = occupancy(&titan(), 640, 43, shared).unwrap();
        assert!(o.blocks_per_sm >= 2);
        assert!(o.occupancy >= 0.5, "occupancy {} too low", o.occupancy);
    }

    #[test]
    fn launch_failures() {
        assert!(occupancy(&titan(), 0, 32, 0).is_none());
        assert!(occupancy(&titan(), 2048, 32, 0).is_none());
        assert!(occupancy(&titan(), 256, 300, 0).is_none());
        assert!(occupancy(&titan(), 256, 32, 64 * 1024).is_none());
    }

    #[test]
    fn occupancy_monotone_in_registers() {
        let mut last = usize::MAX;
        for regs in [16u32, 32, 64, 96, 128, 255] {
            let o = occupancy(&titan(), 256, regs, 0).unwrap();
            assert!(o.warps_per_sm <= last);
            last = o.warps_per_sm;
        }
    }
}
