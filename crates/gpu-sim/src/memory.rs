//! Simulated global (device) memory.
//!
//! Buffers are arrays of `AtomicU64` cells so that thread blocks executing in
//! parallel on host threads can perform device `atomicAdd` correctly (f64
//! values are bit-cast into the cells, CAS-updated — the same technique CUDA
//! uses to implement double-precision atomics on cc < 6.0 hardware).
//!
//! Every buffer carries a disjoint base address from a bump allocator so that
//! the cache and coalescing models can reason about real-looking addresses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use crate::pool::BufferPool;

/// Element type stored in a buffer. Integer index arrays (CSR `col_idx`,
/// `row_off`) are 4-byte elements for traffic accounting even though each
/// occupies one 8-byte host cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Elem {
    F64,
    U32,
}

impl Elem {
    /// Size in bytes charged to the memory system per element.
    pub fn bytes(self) -> u64 {
        match self {
            Elem::F64 => 8,
            Elem::U32 => 4,
        }
    }
}

#[derive(Debug)]
struct BufferInner {
    name: String,
    base_addr: u64,
    elem: Elem,
    /// Logical element count; the addressable extent of the buffer.
    len: usize,
    /// Backing store, `cells.len() >= len` (capacity is bucketed to a power
    /// of two so the pool can match freed blocks to later requests).
    cells: Box<[AtomicU64]>,
    /// Pool the backing store returns to when the last handle drops.
    pool: Weak<BufferPool>,
}

impl Drop for BufferInner {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.reclaim(std::mem::take(&mut self.cells));
        }
    }
}

/// A handle to a device-memory buffer. Cloning shares the allocation.
#[derive(Debug, Clone)]
pub struct GpuBuffer {
    inner: Arc<BufferInner>,
}

impl GpuBuffer {
    /// Unpooled constructor for unit tests; production allocations go
    /// through [`GpuBuffer::with_pool`] via `Gpu::alloc`.
    #[cfg(test)]
    pub(crate) fn new(name: &str, base_addr: u64, elem: Elem, len: usize) -> Self {
        GpuBuffer::with_pool(name, base_addr, elem, len, Weak::new(), None)
    }

    /// Construct a buffer whose backing store recycles through `pool`,
    /// reusing `recycled` cells when the pool had a fitting block.
    ///
    /// Zero-on-reuse: the logical prefix of a recycled block is cleared so
    /// the buffer is indistinguishable from a fresh allocation.
    pub(crate) fn with_pool(
        name: &str,
        base_addr: u64,
        elem: Elem,
        len: usize,
        pool: Weak<BufferPool>,
        recycled: Option<Box<[AtomicU64]>>,
    ) -> Self {
        let cells = match recycled {
            Some(cells) => {
                debug_assert!(cells.len() >= len, "recycled block too small for {name}");
                for c in cells.iter().take(len) {
                    c.store(0, Ordering::Relaxed);
                }
                cells
            }
            None => (0..crate::pool::bucket_for(len))
                .map(|_| AtomicU64::new(0))
                .collect(),
        };
        GpuBuffer {
            inner: Arc::new(BufferInner {
                name: name.to_string(),
                base_addr,
                elem,
                len,
                cells,
                pool,
            }),
        }
    }

    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub fn len(&self) -> usize {
        self.inner.len
    }

    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    pub fn elem(&self) -> Elem {
        self.inner.elem
    }

    /// Device byte footprint of this buffer.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * self.inner.elem.bytes()
    }

    /// Simulated device byte address of element `idx` (for the cache and
    /// coalescing models).
    #[inline]
    pub(crate) fn addr_of(&self, idx: usize) -> u64 {
        debug_assert!(idx < self.len(), "address out of bounds in {}", self.name());
        self.inner.base_addr + idx as u64 * self.inner.elem.bytes()
    }

    // ----- raw cell access (used by the execution engine and host API) -----

    #[inline]
    pub(crate) fn raw_load(&self, idx: usize) -> u64 {
        self.inner.cells[idx].load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn raw_store(&self, idx: usize, bits: u64) {
        self.inner.cells[idx].store(bits, Ordering::Relaxed);
    }

    /// Atomic u32 fetch-add; returns the old value.
    #[inline]
    pub(crate) fn raw_atomic_add_u32(&self, idx: usize, val: u32) -> u32 {
        self.inner.cells[idx].fetch_add(val as u64, Ordering::Relaxed) as u32
    }

    /// Atomic f64 add via CAS on the raw bits; returns the old value.
    #[inline]
    pub(crate) fn raw_atomic_add_f64(&self, idx: usize, val: f64) -> f64 {
        let cell = &self.inner.cells[idx];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = f64::to_bits(f64::from_bits(cur) + val);
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }

    // ----- host-side (cudaMemcpy-like) access; not event counted -----

    pub fn host_read_f64(&self, idx: usize) -> f64 {
        debug_assert_eq!(self.inner.elem, Elem::F64);
        f64::from_bits(self.raw_load(idx))
    }

    pub fn host_write_f64(&self, idx: usize, v: f64) {
        debug_assert_eq!(self.inner.elem, Elem::F64);
        self.raw_store(idx, v.to_bits());
    }

    pub fn host_read_u32(&self, idx: usize) -> u32 {
        debug_assert_eq!(self.inner.elem, Elem::U32);
        self.raw_load(idx) as u32
    }

    pub fn host_write_u32(&self, idx: usize, v: u32) {
        debug_assert_eq!(self.inner.elem, Elem::U32);
        self.raw_store(idx, v as u64);
    }

    /// Copy a host slice into the buffer (the simulated `cudaMemcpy` H2D;
    /// transfer *cost* is modelled separately by `fusedml-runtime`).
    pub fn copy_from_f64(&self, src: &[f64]) {
        assert_eq!(
            src.len(),
            self.len(),
            "H2D size mismatch for {}",
            self.name()
        );
        for (i, &v) in src.iter().enumerate() {
            self.raw_store(i, v.to_bits());
        }
    }

    pub fn copy_from_u32(&self, src: &[u32]) {
        assert_eq!(
            src.len(),
            self.len(),
            "H2D size mismatch for {}",
            self.name()
        );
        for (i, &v) in src.iter().enumerate() {
            self.raw_store(i, v as u64);
        }
    }

    /// Read the whole buffer back to the host (`cudaMemcpy` D2H).
    pub fn to_vec_f64(&self) -> Vec<f64> {
        debug_assert_eq!(self.inner.elem, Elem::F64);
        (0..self.len()).map(|i| self.host_read_f64(i)).collect()
    }

    pub fn to_vec_u32(&self) -> Vec<u32> {
        debug_assert_eq!(self.inner.elem, Elem::U32);
        (0..self.len()).map(|i| self.host_read_u32(i)).collect()
    }

    /// Zero every element (the simulated `cudaMemset`).
    pub fn zero(&self) {
        for i in 0..self.len() {
            self.raw_store(i, 0);
        }
    }

    /// Flip one bit of one element's raw cell — the corruption fault
    /// class's mutation primitive. Not event-counted: silent corruption by
    /// definition leaves no trace in the performance model.
    pub(crate) fn corrupt_bit(&self, idx: usize, bit: u32) {
        let cur = self.raw_load(idx);
        self.raw_store(idx, cur ^ (1u64 << (bit % 64)));
    }

    /// FNV-1a digest over the logical cells — the integrity layer's
    /// device-side checksum, comparable against [`fnv1a_cells`] of the host
    /// data that produced the buffer. Host-side work, not event-counted.
    pub fn fnv_checksum(&self) -> u64 {
        fnv1a_cells((0..self.len()).map(|i| self.raw_load(i)))
    }
}

/// FNV-1a over a stream of 64-bit cell values (little-endian bytes). Host
/// slices digest through the same cell encoding the device stores use:
/// `f64::to_bits` for f64 elements, zero-extension for u32 elements.
pub fn fnv1a_cells(cells: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for mut v in cells {
        for _ in 0..8 {
            h ^= v & 0xff;
            h = h.wrapping_mul(0x100000001b3);
            v >>= 8;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let b = GpuBuffer::new("x", 0x1000, Elem::F64, 4);
        b.copy_from_f64(&[1.0, -2.5, 3.25, 0.0]);
        assert_eq!(b.to_vec_f64(), vec![1.0, -2.5, 3.25, 0.0]);
        assert_eq!(b.size_bytes(), 32);
    }

    #[test]
    fn roundtrip_u32() {
        let b = GpuBuffer::new("idx", 0x2000, Elem::U32, 3);
        b.copy_from_u32(&[7, 0, u32::MAX]);
        assert_eq!(b.to_vec_u32(), vec![7, 0, u32::MAX]);
        assert_eq!(b.size_bytes(), 12);
    }

    #[test]
    fn atomic_add_accumulates() {
        let b = GpuBuffer::new("w", 0, Elem::F64, 1);
        let old = b.raw_atomic_add_f64(0, 1.5);
        assert_eq!(old, 0.0);
        b.raw_atomic_add_f64(0, 2.5);
        assert_eq!(b.host_read_f64(0), 4.0);
    }

    #[test]
    fn atomic_add_is_thread_safe() {
        let b = GpuBuffer::new("w", 0, Elem::F64, 1);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        b.raw_atomic_add_f64(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(b.host_read_f64(0), 4000.0);
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let b = GpuBuffer::new("x", 0x1000, Elem::F64, 8);
        b.copy_from_f64(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let clean = b.fnv_checksum();
        let host = fnv1a_cells(
            [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
                .into_iter()
                .map(f64::to_bits),
        );
        assert_eq!(clean, host);
        b.corrupt_bit(3, 52);
        assert_ne!(b.fnv_checksum(), clean, "one flipped bit must change it");
        b.corrupt_bit(3, 52); // flip back
        assert_eq!(b.fnv_checksum(), clean);
    }

    #[test]
    fn u32_checksum_matches_zero_extended_host_cells() {
        let b = GpuBuffer::new("idx", 0x2000, Elem::U32, 3);
        b.copy_from_u32(&[7, 0, u32::MAX]);
        let host = fnv1a_cells([7u32, 0, u32::MAX].into_iter().map(u64::from));
        assert_eq!(b.fnv_checksum(), host);
    }

    #[test]
    fn addresses_respect_element_size() {
        let f = GpuBuffer::new("f", 0x100, Elem::F64, 8);
        let u = GpuBuffer::new("u", 0x200, Elem::U32, 8);
        assert_eq!(f.addr_of(2) - f.addr_of(0), 16);
        assert_eq!(u.addr_of(2) - u.addr_of(0), 8);
    }
}
