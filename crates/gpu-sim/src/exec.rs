//! The SIMT execution engine.
//!
//! Kernels are ordinary Rust functions written at *block scope*: uniform
//! control flow (loops over the coarsening factor, phases between barriers)
//! is plain Rust; per-lane work runs inside warp-granular operations issued
//! through [`WarpCtx`]. This matches how the paper's kernels are structured —
//! every `synchronize()` site in Algorithms 1–3 is block-uniform — and makes
//! memory coalescing exact: each warp instruction supplies per-lane
//! addresses, from which 32-byte sector counts and cache behaviour follow.
//!
//! Blocks are assigned round-robin to simulated SMs; host worker threads own
//! disjoint sets of SMs, so per-SM cache state evolves deterministically
//! regardless of host scheduling. Global `atomicAdd` remains correct under
//! host parallelism because device buffers are atomic cells.

use crate::cache::CacheModel;
use crate::counters::Counters;
use crate::device::DeviceSpec;
use crate::error::DeviceError;
use crate::fault::{FaultInjector, FaultProfile};
use crate::memory::{Elem, GpuBuffer};
use crate::occupancy::{occupancy, Occupancy};
use crate::pool::{BufferPool, DevicePool, PoolStats};
use crate::shared::bank_conflict_replays;
use crate::timing::{kernel_time, TimeBreakdown};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of lanes in a warp. Fixed at 32 like every NVIDIA architecture.
pub const WARP_LANES: usize = 32;

/// Launch geometry and static footprint of a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub block_threads: usize,
    /// Registers per thread (drives occupancy; the paper reads these off
    /// the NVIDIA profiler — our kernels declare the same numbers).
    pub regs_per_thread: u32,
    /// Static shared memory per block in bytes.
    pub shared_bytes: usize,
    /// Independent memory operations in flight per thread — the
    /// instruction-level parallelism the paper's TL-way unrolling creates.
    /// Together with occupancy this determines how much memory latency the
    /// kernel can hide (Volkov: high ILP compensates low occupancy).
    pub ilp: f64,
}

impl LaunchConfig {
    pub fn new(grid_blocks: usize, block_threads: usize) -> Self {
        LaunchConfig {
            grid_blocks,
            block_threads,
            regs_per_thread: 32,
            shared_bytes: 0,
            ilp: 1.0,
        }
    }

    pub fn with_ilp(mut self, ilp: f64) -> Self {
        assert!(ilp >= 1.0);
        self.ilp = ilp;
        self
    }

    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    pub fn with_shared_bytes(mut self, bytes: usize) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Total threads in the grid.
    pub fn grid_threads(&self) -> usize {
        self.grid_blocks * self.block_threads
    }
}

/// Outcome of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Kernel name. Kernels are a fixed set known at compile time, so the
    /// name is a static borrow — recording a launch allocates nothing.
    pub name: &'static str,
    pub config: LaunchConfig,
    pub occupancy: Occupancy,
    pub counters: Counters,
    pub time: TimeBreakdown,
}

impl LaunchStats {
    /// Simulated execution time in milliseconds.
    pub fn sim_ms(&self) -> f64 {
        self.time.total_ms
    }
}

/// Per-SM microarchitectural state that persists across launches
/// (an L2 slice and the read-only/texture cache).
struct SmState {
    l2: CacheModel,
    tex: CacheModel,
    /// Running atomic count on this SM (drives deterministic histogram
    /// sampling independent of host-thread partitioning).
    atomic_phase: u64,
}

/// Cumulative integrity-layer traffic: how many buffers were verified, how
/// many bytes were digested, and how many verifications caught a flip. The
/// checks/bytes counters are the checksum-overhead accounting — what the
/// defense costs even on clean runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    pub checks: u64,
    pub bytes_checked: u64,
    pub violations: u64,
}

/// The simulated GPU: owns device memory allocation and per-SM state.
pub struct Gpu {
    /// Shared, not cloned: several simulated devices (and their buffers)
    /// can borrow one spec, so constructing a `Gpu` per bench variant does
    /// not deep-copy the device description each time.
    spec: Arc<DeviceSpec>,
    next_addr: AtomicU64,
    allocated_bytes: AtomicU64,
    pool: Arc<BufferPool>,
    sms: Mutex<Vec<SmState>>,
    host_threads: usize,
    faults: FaultInjector,
    integrity: AtomicBool,
    integrity_checks: AtomicU64,
    integrity_bytes: AtomicU64,
    integrity_violations: AtomicU64,
    /// Position of this device within a [`crate::DeviceGroup`] (0 for a
    /// standalone device).
    ordinal: usize,
    /// Trace track name ("device" standalone, "deviceN" in a group).
    track: String,
    /// Sticky device-loss flag: once set, every operation fails with
    /// [`DeviceError::DeviceLost`] without consuming fault draws.
    lost: AtomicBool,
    /// The draw index that killed the device (meaningful once `lost`).
    lost_at_draw: AtomicU64,
}

impl Gpu {
    /// Accepts either an owned [`DeviceSpec`] or an `Arc<DeviceSpec>`; the
    /// latter shares the spec without cloning it per construction.
    pub fn new(spec: impl Into<Arc<DeviceSpec>>) -> Self {
        let spec = spec.into();
        let host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(spec.num_sms);
        Self::with_host_threads(spec, host_threads)
    }

    /// Create a GPU whose blocks are simulated by exactly `host_threads`
    /// worker threads (1 = fully sequential, maximally reproducible).
    pub fn with_host_threads(spec: impl Into<Arc<DeviceSpec>>, host_threads: usize) -> Self {
        let spec = spec.into();
        // Each SM gets a full-capacity private view of the L2: the real
        // L2 is a shared, address-interleaved cache, so capacity available
        // to shared hot structures (the y/v/w vectors) is the full 1.5MB,
        // not 1/num_sms of it. Private streams (a vector's CSR rows) have
        // reuse distances far below either size, and the multi-megabyte
        // matrices the experiments stream exceed both. Keeping the state
        // per-SM preserves deterministic simulation under host-thread
        // parallelism (see the module docs).
        let sms = (0..spec.num_sms)
            .map(|_| SmState {
                l2: CacheModel::new(spec.l2_bytes, spec.cache_line_bytes, spec.l2_ways),
                tex: CacheModel::new(spec.tex_cache_per_sm, spec.cache_line_bytes, 4),
                atomic_phase: 0,
            })
            .collect();
        Gpu {
            spec,
            // Non-zero base so address 0 is never valid.
            next_addr: AtomicU64::new(0x1000),
            allocated_bytes: AtomicU64::new(0),
            pool: Arc::new(BufferPool::new()),
            sms: Mutex::new(sms),
            host_threads: host_threads.max(1),
            faults: FaultInjector::disabled(),
            integrity: AtomicBool::new(false),
            integrity_checks: AtomicU64::new(0),
            integrity_bytes: AtomicU64::new(0),
            integrity_violations: AtomicU64::new(0),
            ordinal: 0,
            track: "device".to_string(),
            lost: AtomicBool::new(false),
            lost_at_draw: AtomicU64::new(0),
        }
    }

    /// Place this device at position `ordinal` of a multi-device group
    /// (builder style): its trace events land on a per-device track
    /// (`device0`, `device1`, …) instead of the shared `device` track.
    pub fn with_ordinal(mut self, ordinal: usize) -> Self {
        self.ordinal = ordinal;
        self.track = format!("device{ordinal}");
        self
    }

    /// Position of this device within its group (0 standalone).
    pub fn ordinal(&self) -> usize {
        self.ordinal
    }

    /// Trace track this device's events land on.
    pub fn track(&self) -> &str {
        &self.track
    }

    /// Whether this device has been lost (injected device-loss fault or
    /// [`Gpu::mark_lost`]). Sticky for the life of the device.
    pub fn is_lost(&self) -> bool {
        self.lost.load(Ordering::Relaxed)
    }

    /// Administratively kill the device: every later operation fails with
    /// [`DeviceError::DeviceLost`]. Used by chaos tests and the device
    /// group; injected losses set the same flag.
    pub fn mark_lost(&self) {
        self.lost.store(true, Ordering::Relaxed);
    }

    /// Fail fast when the device is lost, without consuming fault draws
    /// (a dead device makes no draws — keeps sibling streams unshifted).
    fn check_lost(&self) -> Result<(), DeviceError> {
        if self.lost.load(Ordering::Relaxed) {
            Err(DeviceError::DeviceLost {
                device: self.ordinal,
                fault_index: self.lost_at_draw.load(Ordering::Relaxed),
            })
        } else {
            Ok(())
        }
    }

    /// Attach a fault-injection profile (builder style; the default device
    /// injects nothing).
    pub fn with_fault_profile(mut self, profile: FaultProfile) -> Self {
        self.faults = FaultInjector::new(profile);
        self
    }

    /// Share a [`DevicePool`] with this device (builder style), replacing
    /// its private pool. Several `Gpu` instances simulating the same
    /// physical device can then recycle each other's freed buffers — the
    /// caching-allocator model, where the pool outlives any one context.
    /// Modeled counters are unaffected: addresses still come from this
    /// device's own bump allocator.
    pub fn with_shared_pool(mut self, pool: &DevicePool) -> Self {
        self.pool = Arc::clone(pool.inner());
        self.pool.note_attach();
        self
    }

    /// Enable or disable the integrity layer (builder style). Off by
    /// default: with checks off, uploads and pooled reuse skip checksum and
    /// guard verification entirely, so the device is bit-identical to one
    /// built before the integrity layer existed.
    pub fn with_integrity_checks(self, enabled: bool) -> Self {
        self.integrity.store(enabled, Ordering::Relaxed);
        self
    }

    /// Toggle the integrity layer at run time.
    pub fn set_integrity_checks(&self, enabled: bool) {
        self.integrity.store(enabled, Ordering::Relaxed);
    }

    /// Whether H2D and pool-reuse verification is currently on.
    pub fn integrity_checks_enabled(&self) -> bool {
        self.integrity.load(Ordering::Relaxed)
    }

    /// Cumulative integrity-layer traffic for this device.
    pub fn integrity_stats(&self) -> IntegrityStats {
        IntegrityStats {
            checks: self.integrity_checks.load(Ordering::Relaxed),
            bytes_checked: self.integrity_bytes.load(Ordering::Relaxed),
            violations: self.integrity_violations.load(Ordering::Relaxed),
        }
    }

    /// The device's fault injector (disabled unless a profile was attached).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Bytes of device memory currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes.load(Ordering::Relaxed)
    }

    fn alloc(&self, name: &str, elem: Elem, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.check_lost()?;
        let bytes = len as u64 * elem.bytes();
        let in_use = self.allocated_bytes.load(Ordering::Relaxed);
        let capacity = self.spec.global_mem_bytes as u64;
        if self.faults.draw_alloc_fault().is_some() {
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    "alloc.injected",
                    &self.track,
                    &[("buffer", name.into()), ("requested_bytes", bytes.into())],
                );
            }
            return Err(DeviceError::AllocFailed {
                name: name.to_string(),
                requested_bytes: bytes,
                allocated_bytes: in_use,
                capacity_bytes: capacity,
                injected: true,
            });
        }
        // Memory pressure shrinks the effective capacity once the model's
        // allocation threshold is crossed. With pressure off the reserve is
        // zero and this is exactly the old capacity check.
        self.faults.note_alloc_request();
        let reserved = self.faults.reserved_bytes(capacity);
        let effective = capacity.saturating_sub(reserved);
        if in_use + bytes > effective {
            let pressure = reserved > 0 && in_use + bytes <= capacity;
            if pressure {
                self.faults.note_pressure_rejection();
            }
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    if pressure {
                        "alloc.pressure"
                    } else {
                        "alloc.capacity"
                    },
                    &self.track,
                    &[
                        ("buffer", name.into()),
                        ("requested_bytes", bytes.into()),
                        ("allocated_bytes", in_use.into()),
                        ("reserved_bytes", reserved.into()),
                    ],
                );
            }
            return Err(DeviceError::AllocFailed {
                name: name.to_string(),
                requested_bytes: bytes,
                allocated_bytes: in_use,
                capacity_bytes: effective,
                injected: false,
            });
        }
        // Pad allocations to cache-line multiples like cudaMalloc does.
        // The base address is drawn from the bump allocator on *every*
        // allocation — pool hit or miss — so the address stream feeding the
        // cache models is identical to an unpooled allocator's and modeled
        // counters stay bit-identical with pooling enabled.
        let padded =
            bytes.div_ceil(self.spec.cache_line_bytes as u64) * self.spec.cache_line_bytes as u64;
        let base = self.next_addr.fetch_add(padded.max(128), Ordering::Relaxed);
        self.allocated_bytes.fetch_add(bytes, Ordering::Relaxed);
        let recycled = self.pool.acquire(len);
        if fusedml_trace::is_enabled() {
            let outcome = if recycled.is_some() {
                "pool.hit"
            } else {
                "pool.miss"
            };
            fusedml_trace::instant(
                "mem",
                outcome,
                &self.track,
                &[("buffer", name.into()), ("bytes", bytes.into())],
            );
        }
        let from_pool = recycled.is_some();
        let buf = GpuBuffer::with_pool(name, base, elem, len, Arc::downgrade(&self.pool), recycled);
        // Pooled reuse is a corruption opportunity: the recycled block was
        // zeroed, but a bit may flip between the clear and first use. The
        // integrity layer's guard check is that the prefix reads back
        // all-zero — exhaustive for this class, since flips only target the
        // logical prefix.
        if from_pool {
            let injected = self.faults.draw_corruption().inspect(|&fault_index| {
                if len > 0 {
                    let (elem_idx, bit) = self.faults.corruption_site(fault_index, len);
                    buf.corrupt_bit(elem_idx, bit);
                }
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "fault",
                        "mem.corruption",
                        &self.track,
                        &[
                            ("buffer", name.into()),
                            ("stage", "pool-reuse".into()),
                            ("fault_index", fault_index.into()),
                        ],
                    );
                }
            });
            if self.integrity.load(Ordering::Relaxed) {
                self.integrity_checks.fetch_add(1, Ordering::Relaxed);
                self.integrity_bytes.fetch_add(bytes, Ordering::Relaxed);
                let guard_violated = (0..len).any(|i| buf.raw_load(i) != 0);
                if guard_violated {
                    self.integrity_violations.fetch_add(1, Ordering::Relaxed);
                    // Roll back the accounting: the failed allocation must
                    // leave the device book-keeping where it started.
                    self.allocated_bytes.fetch_sub(bytes, Ordering::Relaxed);
                    if fusedml_trace::is_enabled() {
                        fusedml_trace::instant(
                            "fault",
                            "integrity.violation",
                            &self.track,
                            &[("buffer", name.into()), ("stage", "pool-reuse".into())],
                        );
                    }
                    return Err(DeviceError::DataCorruption {
                        buffer: name.to_string(),
                        stage: "pool-reuse",
                        fault_index: injected.unwrap_or_default(),
                    });
                }
            }
        }
        Ok(buf)
    }

    /// Inject (maybe) a transfer corruption into a just-uploaded buffer and
    /// run the H2D integrity verification: FNV-1a of the device cells
    /// against the digest of the host cells that were copied in. On a
    /// caught flip, the allocation's accounting is rolled back and the
    /// caller gets [`DeviceError::DataCorruption`].
    fn corrupt_and_verify_h2d(
        &self,
        buf: &GpuBuffer,
        host_digest: impl FnOnce() -> u64,
    ) -> Result<(), DeviceError> {
        let injected = self.faults.draw_corruption().inspect(|&fault_index| {
            if !buf.is_empty() {
                let (elem_idx, bit) = self.faults.corruption_site(fault_index, buf.len());
                buf.corrupt_bit(elem_idx, bit);
            }
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    "mem.corruption",
                    &self.track,
                    &[
                        ("buffer", buf.name().into()),
                        ("stage", "h2d".into()),
                        ("fault_index", fault_index.into()),
                    ],
                );
            }
        });
        if !self.integrity.load(Ordering::Relaxed) {
            return Ok(());
        }
        self.integrity_checks.fetch_add(1, Ordering::Relaxed);
        self.integrity_bytes
            .fetch_add(buf.size_bytes(), Ordering::Relaxed);
        if buf.fnv_checksum() != host_digest() {
            self.integrity_violations.fetch_add(1, Ordering::Relaxed);
            self.free(buf);
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    "integrity.violation",
                    &self.track,
                    &[("buffer", buf.name().into()), ("stage", "h2d".into())],
                );
            }
            return Err(DeviceError::DataCorruption {
                buffer: buf.name().to_string(),
                stage: "h2d",
                fault_index: injected.unwrap_or_default(),
            });
        }
        Ok(())
    }

    /// Cumulative buffer-pool traffic for this device.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Cap the host bytes the buffer pool retains in its free lists
    /// (default [`crate::pool::DEFAULT_POOL_RETAIN_BYTES`]). `0` disables
    /// recycling entirely: every freed block returns to the host allocator.
    pub fn set_pool_retain_bytes(&self, bytes: u64) {
        self.pool.set_retain_cap(bytes);
    }

    /// Allocate an uninitialized (zeroed) f64 buffer, reporting injected or
    /// capacity allocation failures instead of panicking.
    pub fn try_alloc_f64(&self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.alloc(name, Elem::F64, len)
    }

    /// Allocate an uninitialized (zeroed) u32 buffer, reporting injected or
    /// capacity allocation failures instead of panicking.
    pub fn try_alloc_u32(&self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.alloc(name, Elem::U32, len)
    }

    /// Allocate and fill from a host slice (simulated H2D copy), reporting
    /// failures instead of panicking. Subject to the corruption fault class
    /// and, when enabled, the H2D integrity verification.
    pub fn try_upload_f64(&self, name: &str, data: &[f64]) -> Result<GpuBuffer, DeviceError> {
        let b = self.try_alloc_f64(name, data.len())?;
        b.copy_from_f64(data);
        self.corrupt_and_verify_h2d(&b, || {
            crate::memory::fnv1a_cells(data.iter().map(|v| v.to_bits()))
        })?;
        Ok(b)
    }

    /// See [`Gpu::try_upload_f64`].
    pub fn try_upload_u32(&self, name: &str, data: &[u32]) -> Result<GpuBuffer, DeviceError> {
        let b = self.try_alloc_u32(name, data.len())?;
        b.copy_from_u32(data);
        self.corrupt_and_verify_h2d(&b, || {
            crate::memory::fnv1a_cells(data.iter().map(|&v| u64::from(v)))
        })?;
        Ok(b)
    }

    /// Allocate an uninitialized (zeroed) f64 buffer on the device.
    ///
    /// # Panics
    /// Panics on allocation failure; use [`Gpu::try_alloc_f64`] on paths
    /// that must survive injected faults or capacity exhaustion.
    pub fn alloc_f64(&self, name: &str, len: usize) -> GpuBuffer {
        self.try_alloc_f64(name, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocate an uninitialized (zeroed) u32 buffer on the device.
    ///
    /// # Panics
    /// Panics on allocation failure; see [`Gpu::try_alloc_u32`].
    pub fn alloc_u32(&self, name: &str, len: usize) -> GpuBuffer {
        self.try_alloc_u32(name, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocate and fill from a host slice (simulated H2D copy).
    ///
    /// # Panics
    /// Panics on allocation failure; see [`Gpu::try_upload_f64`].
    pub fn upload_f64(&self, name: &str, data: &[f64]) -> GpuBuffer {
        self.try_upload_f64(name, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// # Panics
    /// Panics on allocation failure; see [`Gpu::try_upload_u32`].
    pub fn upload_u32(&self, name: &str, data: &[u32]) -> GpuBuffer {
        self.try_upload_u32(name, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Release accounting for a buffer (the backing store frees when the
    /// last handle drops; this updates the device-memory book-keeping used
    /// by the runtime memory manager).
    pub fn free(&self, buf: &GpuBuffer) {
        self.allocated_bytes
            .fetch_sub(buf.size_bytes(), Ordering::Relaxed);
    }

    /// Drop all cache state (useful for experiment isolation).
    pub fn flush_caches(&self) {
        let mut sms = self.sms.lock().unwrap_or_else(|e| e.into_inner());
        for sm in sms.iter_mut() {
            sm.l2.flush();
            sm.tex.flush();
        }
    }

    /// Launch a kernel. The kernel closure runs once per block, in
    /// round-robin SM order, possibly in parallel across host threads.
    ///
    /// # Panics
    /// Panics if the configuration cannot launch on this device (block too
    /// large, register or shared-memory footprint over the limits) —
    /// mirroring a CUDA launch failure — or if fault injection fires. Use
    /// [`Gpu::try_launch`] on paths that must survive faults.
    pub fn launch<K>(&self, name: &'static str, config: LaunchConfig, kernel: K) -> LaunchStats
    where
        K: Fn(&mut BlockCtx) + Sync,
    {
        self.try_launch(name, config, kernel)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Launch a kernel, reporting launch-configuration rejection, injected
    /// transient faults, and watchdog timeouts as [`DeviceError`]s.
    ///
    /// Injected transient faults are decided *before* the kernel closure
    /// runs: a faulted launch leaves device memory untouched (the real
    /// analogue is an ECC error or killed kernel whose outputs are
    /// discarded), so callers may retry or rebuild without fear of partial
    /// `atomicAdd` side effects. A watchdog timeout, by contrast, is
    /// detected on the modelled execution time after simulation; its buffer
    /// contents are as-if-completed and callers must treat them as
    /// undefined, exactly like a kernel killed mid-flight.
    pub fn try_launch<K>(
        &self,
        name: &'static str,
        config: LaunchConfig,
        kernel: K,
    ) -> Result<LaunchStats, DeviceError>
    where
        K: Fn(&mut BlockCtx) + Sync,
    {
        self.check_lost()?;
        if config.grid_blocks == 0 {
            return Err(DeviceError::InvalidLaunch {
                kernel: name.to_string(),
                detail: "empty grid".to_string(),
            });
        }
        let occ = occupancy(
            &self.spec,
            config.block_threads,
            config.regs_per_thread,
            config.shared_bytes,
        )
        .ok_or_else(|| DeviceError::InvalidLaunch {
            kernel: name.to_string(),
            detail: format!(
                "launch config {config:?} exceeds device limits of {}",
                self.spec.name
            ),
        })?;

        if let Some(fault_index) = self.faults.draw_kernel_fault() {
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    "kernel.transient",
                    &self.track,
                    &[("kernel", name.into()), ("fault_index", fault_index.into())],
                );
            }
            return Err(DeviceError::TransientFault {
                kernel: name.to_string(),
                fault_index,
            });
        }

        // Device loss is decided before the kernel runs, like transient
        // faults: a killed device leaves memory untouched from the caller's
        // point of view (its contents are unreachable anyway). The flag is
        // sticky — every later operation short-circuits in `check_lost`.
        if let Some(fault_index) = self.faults.draw_device_loss() {
            self.lost_at_draw.store(fault_index, Ordering::Relaxed);
            self.lost.store(true, Ordering::Relaxed);
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    "device.lost",
                    &self.track,
                    &[
                        ("kernel", name.into()),
                        ("device", self.ordinal.into()),
                        ("fault_index", fault_index.into()),
                    ],
                );
            }
            return Err(DeviceError::DeviceLost {
                device: self.ordinal,
                fault_index,
            });
        }

        let mut sms = self.sms.lock().unwrap_or_else(|e| e.into_inner());
        let num_sms = sms.len();
        let workers = self.host_threads.min(num_sms);

        // Partition SMs among workers; each worker simulates its SMs' blocks
        // in grid order, so per-SM state is deterministic.
        let mut results: Vec<(Counters, Vec<SmState>)> = Vec::with_capacity(workers);
        let sm_chunks: Vec<(usize, Vec<SmState>)> = {
            let mut chunks: Vec<(usize, Vec<SmState>)> =
                (0..workers).map(|w| (w, Vec::new())).collect();
            for (i, sm) in sms.drain(..).enumerate() {
                chunks[i % workers].1.push(sm);
            }
            chunks
        };

        let kernel = &kernel;
        let spec = &self.spec;
        let outcome: Vec<(usize, Counters, Vec<SmState>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = sm_chunks
                .into_iter()
                .map(|(worker, mut my_sms)| {
                    scope.spawn(move || {
                        let mut counters = Counters::new();
                        for (local_idx, sm) in my_sms.iter_mut().enumerate() {
                            let sm_id = local_idx * workers + worker;
                            let mut block = sm_id;
                            while block < config.grid_blocks {
                                let mut ctx = BlockCtx {
                                    block_id: block,
                                    grid_dim: config.grid_blocks,
                                    block_dim: config.block_threads,
                                    spec,
                                    shared: Vec::new(),
                                    shared_bytes_used: 0,
                                    counters: &mut counters,
                                    sm,
                                };
                                kernel(&mut ctx);
                                assert!(
                                    ctx.shared_bytes_used <= config.shared_bytes,
                                    "kernel allocated {}B shared but declared {}B",
                                    ctx.shared_bytes_used,
                                    config.shared_bytes
                                );
                                block += num_sms;
                            }
                        }
                        (worker, counters, my_sms)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Re-raise the worker's panic payload on the host
                    // thread instead of wrapping it.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Restore SM state in original order and merge counters
        // deterministically (worker order).
        let mut merged = Counters::new();
        merged.kernel_launches = 1;
        let mut sorted = outcome;
        sorted.sort_by_key(|(w, _, _)| *w);
        let mut per_worker_sms: Vec<Vec<SmState>> = Vec::with_capacity(workers);
        for (_, counters, worker_sms) in sorted {
            merged.merge(&counters);
            per_worker_sms.push(worker_sms);
        }
        // Interleave back: SM i lives at per_worker_sms[i % workers][i / workers].
        let mut iters: Vec<_> = per_worker_sms.into_iter().map(|v| v.into_iter()).collect();
        for i in 0..num_sms {
            sms.push(
                iters[i % workers]
                    .next()
                    .unwrap_or_else(|| unreachable!("worker {} returned too few SMs", i % workers)),
            );
        }
        results.clear();

        let resident_blocks = (occ.blocks_per_sm * num_sms).max(1);
        let device_fill = (config.grid_blocks as f64 / resident_blocks as f64).min(1.0);
        let mut time = kernel_time(&self.spec, &occ, config.ilp, device_fill, &merged);
        // A straggling launch runs slow: the modelled clock is scaled but
        // the numerics above are untouched. Scaled *before* the watchdog
        // check — a straggler can trip the watchdog, like a real slow
        // kernel would.
        if let Some(fault_index) = self.faults.draw_straggler() {
            let slowdown = self.faults.profile().straggler_slowdown;
            time.scale(slowdown);
            if fusedml_trace::is_enabled() {
                fusedml_trace::instant(
                    "fault",
                    "kernel.straggler",
                    &self.track,
                    &[
                        ("kernel", name.into()),
                        ("slowdown", slowdown.into()),
                        ("fault_index", fault_index.into()),
                    ],
                );
            }
        }
        if let Some(limit_ms) = self.faults.watchdog_limit_ms() {
            if time.total_ms > limit_ms {
                self.faults.note_watchdog_timeout();
                if fusedml_trace::is_enabled() {
                    fusedml_trace::instant(
                        "fault",
                        "kernel.watchdog",
                        &self.track,
                        &[
                            ("kernel", name.into()),
                            ("sim_ms", time.total_ms.into()),
                            ("limit_ms", limit_ms.into()),
                        ],
                    );
                }
                return Err(DeviceError::WatchdogTimeout {
                    kernel: name.to_string(),
                    sim_ms: time.total_ms,
                    limit_ms,
                });
            }
        }
        if fusedml_trace::is_enabled() {
            fusedml_trace::sim_span(
                "kernel",
                name,
                &self.track,
                time.total_ms,
                &[
                    ("grid", config.grid_blocks.into()),
                    ("block", config.block_threads.into()),
                    ("regs", config.regs_per_thread.into()),
                    ("shared_bytes", config.shared_bytes.into()),
                    ("occupancy", occ.occupancy.into()),
                    ("dram_read_bytes", merged.dram_read_bytes.into()),
                    ("dram_write_bytes", merged.dram_write_bytes.into()),
                    ("global_atomics", merged.global_atomics.into()),
                    ("flops", merged.flops.into()),
                ],
            );
        }
        Ok(LaunchStats {
            name,
            config,
            occupancy: occ,
            counters: merged,
            time,
        })
    }
}

/// Handle to a block's shared-memory array, returned by
/// [`BlockCtx::shared_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shared(usize);

/// Per-block execution context handed to the kernel closure.
pub struct BlockCtx<'a> {
    block_id: usize,
    grid_dim: usize,
    block_dim: usize,
    spec: &'a DeviceSpec,
    shared: Vec<RefCell<Vec<f64>>>,
    shared_bytes_used: usize,
    counters: &'a mut Counters,
    sm: &'a mut SmState,
}

impl<'a> BlockCtx<'a> {
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    pub fn warps(&self) -> usize {
        self.block_dim.div_ceil(WARP_LANES)
    }

    pub fn spec(&self) -> &DeviceSpec {
        self.spec
    }

    /// Allocate a zero-initialized shared-memory f64 array. Total shared
    /// allocations per block must stay within the declared
    /// [`LaunchConfig::shared_bytes`] (checked at block exit) and the
    /// device's per-block limit (checked here).
    pub fn shared_f64(&mut self, len: usize) -> Shared {
        self.shared_bytes_used += len * 8;
        assert!(
            self.shared_bytes_used <= self.spec.shared_mem_per_block,
            "shared memory request of {}B exceeds the {}B per-block limit",
            self.shared_bytes_used,
            self.spec.shared_mem_per_block
        );
        self.shared.push(RefCell::new(vec![0.0; len]));
        Shared(self.shared.len() - 1)
    }

    /// `__syncthreads()`. Functionally a no-op (warps of a block execute
    /// sequentially in the simulator), counted for the cost model.
    pub fn sync(&mut self) {
        self.counters.barriers += 1;
    }

    /// Read a shared-memory cell from block scope (host-side convenience
    /// for result extraction in tests; not event-counted).
    pub fn shared_peek(&self, sh: Shared, idx: usize) -> f64 {
        self.shared[sh.0].borrow()[idx]
    }

    /// Execute `f` once per warp of this block, in warp-id order.
    pub fn each_warp<F: FnMut(&mut WarpCtx)>(&mut self, mut f: F) {
        let warps = self.warps();
        for w in 0..warps {
            let active = (self.block_dim - w * WARP_LANES).min(WARP_LANES);
            let mut ctx = WarpCtx {
                warp_id: w,
                active_lanes: active,
                block_id: self.block_id,
                block_dim: self.block_dim,
                grid_dim: self.grid_dim,
                spec: self.spec,
                shared: &self.shared,
                counters: self.counters,
                sm: self.sm,
            };
            f(&mut ctx);
        }
    }
}

/// Warp-granular instruction issue: every memory operation supplies
/// per-lane element indices, from which coalescing (32-byte sectors),
/// cache behaviour and bank conflicts are computed exactly.
pub struct WarpCtx<'a> {
    warp_id: usize,
    active_lanes: usize,
    block_id: usize,
    block_dim: usize,
    grid_dim: usize,
    spec: &'a DeviceSpec,
    shared: &'a [RefCell<Vec<f64>>],
    counters: &'a mut Counters,
    sm: &'a mut SmState,
}

impl<'a> WarpCtx<'a> {
    pub fn warp_id(&self) -> usize {
        self.warp_id
    }

    /// Lanes active in this warp (32 except a trailing partial warp).
    pub fn active_lanes(&self) -> usize {
        self.active_lanes
    }

    pub fn block_id(&self) -> usize {
        self.block_id
    }

    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Thread id (within the block) of lane `lane`.
    pub fn tid(&self, lane: usize) -> usize {
        self.warp_id * WARP_LANES + lane
    }

    /// Global thread id of lane `lane`.
    pub fn gtid(&self, lane: usize) -> usize {
        self.block_id * self.block_dim + self.tid(lane)
    }

    /// Record `n` double-precision floating-point operations.
    pub fn flops(&mut self, n: u64) {
        self.counters.flops += n;
    }

    // ---------------- global memory ----------------

    /// Count one warp load instruction over the given element addresses,
    /// returning unique sectors and driving the cache model.
    fn account_load(&mut self, addrs: &[Option<u64>; WARP_LANES], tex: bool) {
        self.counters.gld_instructions += 1;
        let active = addrs.iter().flatten().count();
        if active < WARP_LANES {
            self.counters.divergent_instructions += 1;
            self.counters.inactive_lanes += (WARP_LANES - active) as u64;
        }
        let line_bytes = self.spec.cache_line_bytes as u64;
        let sector_bytes = self.spec.sector_bytes as u64;

        let mut sectors = [u64::MAX; WARP_LANES];
        let mut ns = 0;
        for addr in addrs.iter().flatten() {
            let s = addr / sector_bytes;
            if !sectors[..ns].contains(&s) {
                sectors[ns] = s;
                ns += 1;
            }
        }
        if tex {
            self.counters.tex_transactions += ns as u64;
        } else {
            self.counters.gld_transactions += ns as u64;
        }

        // Unique lines for cache probing.
        let mut lines = [u64::MAX; WARP_LANES];
        let mut nl = 0;
        for &s in &sectors[..ns] {
            let l = s * sector_bytes / line_bytes;
            if !lines[..nl].contains(&l) {
                lines[nl] = l;
                nl += 1;
            }
        }
        for &l in &lines[..nl] {
            let byte_addr = l * line_bytes;
            let sectors_in_line = sectors[..ns]
                .iter()
                .filter(|&&s| s * sector_bytes / line_bytes == l)
                .count() as u64;
            let touched = sectors_in_line * sector_bytes;
            if tex && self.sm.tex.access(byte_addr) {
                self.counters.tex_read_bytes += touched;
            } else if self.sm.l2.access(byte_addr) {
                if tex {
                    // Fill the texture cache from L2.
                    self.sm.tex.access(byte_addr);
                }
                self.counters.l2_read_bytes += touched;
            } else {
                self.counters.dram_read_bytes += line_bytes;
            }
        }
    }

    fn gather_f64<F>(&mut self, buf: &GpuBuffer, tex: bool, mut idx: F) -> [f64; WARP_LANES]
    where
        F: FnMut(usize) -> Option<usize>,
    {
        debug_assert_eq!(buf.elem(), Elem::F64, "f64 load from non-f64 buffer");
        let mut addrs = [None; WARP_LANES];
        let mut vals = [0.0; WARP_LANES];
        for lane in 0..self.active_lanes {
            if let Some(i) = idx(lane) {
                addrs[lane] = Some(buf.addr_of(i));
                vals[lane] = f64::from_bits(buf.raw_load(i));
            }
        }
        self.account_load(&addrs, tex);
        vals
    }

    /// Warp-wide global load of f64 elements. `idx(lane)` yields the element
    /// index for each active lane (`None` = lane predicated off).
    pub fn load_f64<F>(&mut self, buf: &GpuBuffer, idx: F) -> [f64; WARP_LANES]
    where
        F: FnMut(usize) -> Option<usize>,
    {
        self.gather_f64(buf, false, idx)
    }

    /// Warp-wide load through the read-only (texture) cache — the paper
    /// binds the input vector `y` to texture memory (§4.1).
    pub fn load_f64_tex<F>(&mut self, buf: &GpuBuffer, idx: F) -> [f64; WARP_LANES]
    where
        F: FnMut(usize) -> Option<usize>,
    {
        self.gather_f64(buf, true, idx)
    }

    /// Warp-wide global load of u32 elements (CSR index structures).
    pub fn load_u32<F>(&mut self, buf: &GpuBuffer, mut idx: F) -> [u32; WARP_LANES]
    where
        F: FnMut(usize) -> Option<usize>,
    {
        debug_assert_eq!(buf.elem(), Elem::U32, "u32 load from non-u32 buffer");
        let mut addrs = [None; WARP_LANES];
        let mut vals = [0u32; WARP_LANES];
        for lane in 0..self.active_lanes {
            if let Some(i) = idx(lane) {
                addrs[lane] = Some(buf.addr_of(i));
                vals[lane] = buf.raw_load(i) as u32;
            }
        }
        self.account_load(&addrs, false);
        vals
    }

    /// Warp-wide global store. `src(lane)` yields `(element index, value)`.
    pub fn store_f64<F>(&mut self, buf: &GpuBuffer, mut src: F)
    where
        F: FnMut(usize) -> Option<(usize, f64)>,
    {
        debug_assert_eq!(buf.elem(), Elem::F64);
        self.counters.gst_instructions += 1;
        let sector_bytes = self.spec.sector_bytes as u64;
        let mut sectors = [u64::MAX; WARP_LANES];
        let mut ns = 0;
        for lane in 0..self.active_lanes {
            if let Some((i, v)) = src(lane) {
                buf.raw_store(i, v.to_bits());
                let s = buf.addr_of(i) / sector_bytes;
                if !sectors[..ns].contains(&s) {
                    sectors[ns] = s;
                    ns += 1;
                }
            }
        }
        self.counters.gst_transactions += ns as u64;
        self.counters.dram_write_bytes += ns as u64 * sector_bytes;
        // Write-allocate into L2.
        for &s in &sectors[..ns] {
            self.sm.l2.access(s * sector_bytes);
        }
    }

    /// Warp-wide global store of u32 elements (index structures built on
    /// device, e.g. `csr2csc` outputs).
    pub fn store_u32<F>(&mut self, buf: &GpuBuffer, mut src: F)
    where
        F: FnMut(usize) -> Option<(usize, u32)>,
    {
        debug_assert_eq!(buf.elem(), Elem::U32);
        self.counters.gst_instructions += 1;
        let sector_bytes = self.spec.sector_bytes as u64;
        let mut sectors = [u64::MAX; WARP_LANES];
        let mut ns = 0;
        for lane in 0..self.active_lanes {
            if let Some((i, v)) = src(lane) {
                buf.raw_store(i, v as u64);
                let s = buf.addr_of(i) / sector_bytes;
                if !sectors[..ns].contains(&s) {
                    sectors[ns] = s;
                    ns += 1;
                }
            }
        }
        self.counters.gst_transactions += ns as u64;
        self.counters.dram_write_bytes += ns as u64 * sector_bytes;
        for &s in &sectors[..ns] {
            self.sm.l2.access(s * sector_bytes);
        }
    }

    /// Warp-wide global `atomicAdd` on u32 returning per-lane old values
    /// (CUDA's `atomicAdd(unsigned*, v)` fetch-add, used for scatter
    /// cursors in device transposition).
    pub fn atomic_fetch_add_u32<F>(&mut self, buf: &GpuBuffer, mut src: F) -> [u32; WARP_LANES]
    where
        F: FnMut(usize) -> Option<(usize, u32)>,
    {
        debug_assert_eq!(buf.elem(), Elem::U32);
        let mut old = [0u32; WARP_LANES];
        let mut addrs = [u64::MAX; WARP_LANES];
        let mut n = 0;
        for lane in 0..self.active_lanes {
            if let Some((i, v)) = src(lane) {
                old[lane] = buf.raw_atomic_add_u32(i, v);
                let a = buf.addr_of(i);
                self.sm.atomic_phase += 1;
                self.counters
                    .record_global_atomic_int(a, self.sm.atomic_phase);
                addrs[n] = a;
                n += 1;
            }
        }
        let mut unique = 0;
        for i in 0..n {
            if !addrs[..i].contains(&addrs[i]) {
                unique += 1;
            }
        }
        self.counters.global_atomic_warp_conflicts += (n - unique) as u64;
        let line = self.spec.cache_line_bytes as u64;
        for i in 0..n {
            if !self.sm.l2.access((addrs[i] / line) * line) {
                self.counters.dram_read_bytes += self.spec.sector_bytes as u64;
            }
        }
        self.counters.dram_write_bytes += unique as u64 * self.spec.sector_bytes as u64;
        old
    }

    /// Warp-wide global `atomicAdd` on f64. Lanes hitting the same address
    /// within the warp serialize (counted), and the per-address sampled
    /// histogram feeds the cross-warp serialization estimate.
    pub fn atomic_add_f64<F>(&mut self, buf: &GpuBuffer, mut src: F)
    where
        F: FnMut(usize) -> Option<(usize, f64)>,
    {
        debug_assert_eq!(buf.elem(), Elem::F64);
        let mut addrs = [u64::MAX; WARP_LANES];
        let mut n = 0;
        for lane in 0..self.active_lanes {
            if let Some((i, v)) = src(lane) {
                buf.raw_atomic_add_f64(i, v);
                let a = buf.addr_of(i);
                self.sm.atomic_phase += 1;
                self.counters.record_global_atomic(a, self.sm.atomic_phase);
                addrs[n] = a;
                n += 1;
            }
        }
        // Same-address lanes within the warp replay.
        let mut unique = 0;
        for i in 0..n {
            if !addrs[..i].contains(&addrs[i]) {
                unique += 1;
            }
        }
        self.counters.global_atomic_warp_conflicts += (n - unique) as u64;
        // Atomics resolve in L2 at sector granularity: a missing target
        // costs one sector fetch (read-modify-write), not a full line.
        let line = self.spec.cache_line_bytes as u64;
        for i in 0..n {
            if !self.sm.l2.access((addrs[i] / line) * line) {
                self.counters.dram_read_bytes += self.spec.sector_bytes as u64;
            }
        }
        self.counters.dram_write_bytes += unique as u64 * self.spec.sector_bytes as u64;
    }

    // ---------------- shared memory ----------------

    /// Warp-wide shared-memory load with bank-conflict accounting.
    pub fn shared_load<F>(&mut self, sh: Shared, mut idx: F) -> [f64; WARP_LANES]
    where
        F: FnMut(usize) -> Option<usize>,
    {
        let arr = self.shared[sh.0].borrow();
        let mut vals = [0.0; WARP_LANES];
        let mut words = [None; WARP_LANES];
        for lane in 0..self.active_lanes {
            if let Some(i) = idx(lane) {
                vals[lane] = arr[i];
                words[lane] = Some(i);
                self.counters.shared_accesses += 1;
            }
        }
        self.counters.shared_bank_conflicts +=
            bank_conflict_replays(&words, self.spec.shared_banks);
        vals
    }

    /// Warp-wide shared-memory store with bank-conflict accounting.
    pub fn shared_store<F>(&mut self, sh: Shared, mut src: F)
    where
        F: FnMut(usize) -> Option<(usize, f64)>,
    {
        let mut arr = self.shared[sh.0].borrow_mut();
        let mut words = [None; WARP_LANES];
        for lane in 0..self.active_lanes {
            if let Some((i, v)) = src(lane) {
                arr[i] = v;
                words[lane] = Some(i);
                self.counters.shared_accesses += 1;
            }
        }
        self.counters.shared_bank_conflicts +=
            bank_conflict_replays(&words, self.spec.shared_banks);
    }

    /// Warp-wide shared-memory `atomicAdd` (the paper's inter-vector,
    /// intra-block aggregation).
    pub fn shared_atomic_add<F>(&mut self, sh: Shared, mut src: F)
    where
        F: FnMut(usize) -> Option<(usize, f64)>,
    {
        let mut arr = self.shared[sh.0].borrow_mut();
        let mut words = [None; WARP_LANES];
        for lane in 0..self.active_lanes {
            if let Some((i, v)) = src(lane) {
                arr[i] += v;
                words[lane] = Some(i);
                self.counters.shared_atomics += 1;
            }
        }
        // Same-word atomic lanes serialize like bank conflicts.
        self.counters.shared_bank_conflicts += {
            let mut extra = 0u64;
            let mut seen: Vec<usize> = Vec::new();
            for w in words.iter().flatten() {
                if seen.contains(w) {
                    extra += 1;
                } else {
                    seen.push(*w);
                }
            }
            extra + bank_conflict_replays(&words, self.spec.shared_banks)
        };
    }

    // ---------------- register-level reductions ----------------

    /// Butterfly (`__shfl_xor`) segmented sum across groups of `width`
    /// consecutive lanes. After the call, every lane holds the sum of its
    /// group. `width` must be a power of two between 1 and 32.
    pub fn shuffle_reduce_sum(&mut self, vals: &mut [f64; WARP_LANES], width: usize) {
        assert!(
            width.is_power_of_two() && (1..=WARP_LANES).contains(&width),
            "shuffle width must be a power of two in [1, 32], got {width}"
        );
        let mut offset = width / 2;
        while offset > 0 {
            self.counters.shuffle_instructions += 1;
            self.counters.flops += self.active_lanes as u64;
            let snapshot = *vals;
            for lane in 0..WARP_LANES {
                vals[lane] = snapshot[lane] + snapshot[lane ^ offset];
            }
            offset /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn grid_stride_copy_kernel() {
        let g = gpu();
        let n = 1000;
        let src_host: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let src = g.upload_f64("src", &src_host);
        let dst = g.alloc_f64("dst", n);
        let cfg = LaunchConfig::new(4, 128);
        let stats = g.launch("copy", cfg, |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    let vals = w.load_f64(&src, |lane| {
                        let i = base + lane;
                        (i < n).then_some(i)
                    });
                    w.store_f64(&dst, |lane| {
                        let i = base + lane;
                        (i < n).then_some((i, vals[lane]))
                    });
                    base += grid_threads;
                }
            });
        });
        assert_eq!(dst.to_vec_f64(), src_host);
        assert!(stats.counters.gld_transactions > 0);
        assert_eq!(stats.counters.kernel_launches, 1);
    }

    #[test]
    fn coalesced_vs_strided_transactions() {
        let g = gpu();
        let n = 32 * 64;
        let buf = g.upload_f64("x", &vec![1.0; n]);
        let cfg = LaunchConfig::new(1, 32);

        let coalesced = g.launch("coalesced", cfg, |blk| {
            blk.each_warp(|w| {
                w.load_f64(&buf, Some);
            });
        });
        // 32 consecutive f64 = 256B = 8 sectors.
        assert_eq!(coalesced.counters.gld_transactions, 8);

        g.flush_caches();
        let strided = g.launch("strided", cfg, |blk| {
            blk.each_warp(|w| {
                w.load_f64(&buf, |lane| Some(lane * 64));
            });
        });
        // Each lane in its own sector.
        assert_eq!(strided.counters.gld_transactions, 32);
    }

    #[test]
    fn temporal_locality_hits_l2() {
        let g = gpu();
        let n = 1024;
        let buf = g.upload_f64("x", &vec![1.0; n]);
        let cfg = LaunchConfig::new(1, 32);
        let stats = g.launch("reload", cfg, |blk| {
            blk.each_warp(|w| {
                w.load_f64(&buf, Some);
                w.load_f64(&buf, Some); // second load: L2 hit
            });
        });
        assert!(stats.counters.l2_read_bytes >= 256);
        assert_eq!(stats.counters.dram_read_bytes, 256);
    }

    #[test]
    fn atomics_accumulate_across_blocks() {
        let g = gpu();
        let out = g.alloc_f64("acc", 1);
        let cfg = LaunchConfig::new(8, 64);
        let stats = g.launch("atomic_sum", cfg, |blk| {
            blk.each_warp(|w| {
                w.atomic_add_f64(&out, |_lane| Some((0, 1.0)));
            });
        });
        // 8 blocks * 2 warps * 32 lanes = 512 adds of 1.0.
        assert_eq!(out.host_read_f64(0), 512.0);
        assert_eq!(stats.counters.global_atomics, 512);
        // All lanes of each warp hit the same address: 31 conflicts/warp.
        assert_eq!(stats.counters.global_atomic_warp_conflicts, 16 * 31);
    }

    #[test]
    fn shared_memory_reduction() {
        let g = gpu();
        let out = g.alloc_f64("out", 1);
        let cfg = LaunchConfig::new(1, 64).with_shared_bytes(8);
        g.launch("shared_sum", cfg, |blk| {
            let acc = blk.shared_f64(1);
            blk.each_warp(|w| {
                let mut vals = [0.0; WARP_LANES];
                for lane in 0..w.active_lanes() {
                    vals[lane] = 1.0;
                }
                w.shuffle_reduce_sum(&mut vals, 32);
                w.shared_atomic_add(acc, |lane| (lane == 0).then_some((0, vals[0])));
            });
            blk.sync();
            blk.each_warp(|w| {
                if w.warp_id() == 0 {
                    let v = w.shared_load(acc, |lane| (lane == 0).then_some(0));
                    w.store_f64(&out, |lane| (lane == 0).then_some((0, v[0])));
                }
            });
        });
        assert_eq!(out.host_read_f64(0), 64.0);
    }

    #[test]
    fn shuffle_reduce_widths() {
        let g = gpu();
        let cfg = LaunchConfig::new(1, 32);
        for width in [1usize, 2, 4, 8, 16, 32] {
            g.launch("shfl", cfg, move |blk| {
                blk.each_warp(|w| {
                    let mut vals = [1.0; WARP_LANES];
                    w.shuffle_reduce_sum(&mut vals, width);
                    for lane in 0..WARP_LANES {
                        assert_eq!(vals[lane], width as f64, "width {width} lane {lane}");
                    }
                });
            });
        }
    }

    #[test]
    fn parallel_execution_matches_sequential_results() {
        let spec = DeviceSpec::gtx_titan();
        let run = |threads: usize| {
            let g = Gpu::with_host_threads(spec.clone(), threads);
            let n = 4096;
            let x = g.upload_f64("x", &(0..n).map(|i| (i % 7) as f64).collect::<Vec<_>>());
            let out = g.alloc_f64("out", 16);
            let cfg = LaunchConfig::new(14, 128);
            let stats = g.launch("scatter", cfg, |blk| {
                let grid_threads = blk.grid_dim() * blk.block_dim();
                blk.each_warp(|w| {
                    let mut base = w.gtid(0);
                    while base < n {
                        let vals = w.load_f64(&x, |lane| (base + lane < n).then_some(base + lane));
                        w.atomic_add_f64(&out, |lane| {
                            (base + lane < n).then_some(((base + lane) % 16, vals[lane]))
                        });
                        base += grid_threads;
                    }
                });
            });
            (out.to_vec_f64(), stats.counters.global_atomics)
        };
        let (seq, seq_atomics) = run(1);
        let (par, par_atomics) = run(2);
        assert_eq!(seq_atomics, par_atomics);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds device limits")]
    fn oversized_block_panics() {
        let g = gpu();
        g.launch("bad", LaunchConfig::new(1, 4096), |_blk| {});
    }

    #[test]
    fn injected_transient_fault_leaves_memory_untouched() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(3).with_kernel_fault_rate(1.0));
        let out = g.upload_f64("out", &[7.0]);
        let err = g
            .try_launch("always_faults", LaunchConfig::new(1, 32), |blk| {
                blk.each_warp(|w| {
                    w.store_f64(&out, |lane| (lane == 0).then_some((0, 99.0)));
                });
            })
            .unwrap_err();
        assert!(matches!(err, DeviceError::TransientFault { .. }));
        assert!(err.is_transient());
        // The kernel closure never ran: the buffer still holds its old value.
        assert_eq!(out.host_read_f64(0), 7.0);
        assert_eq!(g.faults().counts().kernel_faults, 1);
    }

    #[test]
    fn watchdog_limit_rejects_long_kernels() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(0).with_watchdog_limit_ms(1e-12));
        let x = g.upload_f64("x", &vec![1.0; 4096]);
        let err = g
            .try_launch("long", LaunchConfig::new(4, 128), |blk| {
                blk.each_warp(|w| {
                    w.load_f64(&x, Some);
                });
            })
            .unwrap_err();
        assert!(matches!(err, DeviceError::WatchdogTimeout { .. }));
        assert_eq!(g.faults().counts().watchdog_timeouts, 1);
    }

    #[test]
    fn injected_alloc_fault_surfaces_as_error() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(5).with_alloc_fault_rate(1.0));
        let err = g.try_alloc_f64("x", 128).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::AllocFailed { injected: true, .. }
        ));
        assert!(err.is_transient());
        // Accounting unchanged by the failed allocation.
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn capacity_exhaustion_is_a_permanent_alloc_error() {
        let g = gpu();
        let cap = g.spec().global_mem_bytes;
        let err = g.try_alloc_f64("huge", cap).unwrap_err(); // 8x capacity in bytes
        assert!(matches!(
            err,
            DeviceError::AllocFailed {
                injected: false,
                ..
            }
        ));
        assert!(!err.is_transient());
    }

    #[test]
    fn silent_corruption_flips_exactly_one_bit_when_unchecked() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(21).with_corruption_rate(1.0));
        let data = vec![1.0; 64];
        let b = g
            .try_upload_f64("x", &data)
            .expect("silent: upload succeeds");
        let read_back = b.to_vec_f64();
        let diffs = read_back
            .iter()
            .zip(&data)
            .filter(|(a, b)| a.to_bits() != b.to_bits())
            .count();
        assert_eq!(diffs, 1, "exactly one element corrupted");
        assert_eq!(g.faults().counts().corruptions, 1);
        assert_eq!(g.integrity_stats(), IntegrityStats::default());
    }

    #[test]
    fn integrity_layer_catches_h2d_corruption() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(21).with_corruption_rate(1.0))
            .with_integrity_checks(true);
        let err = g.try_upload_f64("x", &[1.0; 64]).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::DataCorruption { stage: "h2d", .. }
        ));
        assert!(err.is_transient());
        let s = g.integrity_stats();
        assert_eq!((s.checks, s.violations), (1, 1));
        assert_eq!(s.bytes_checked, 64 * 8);
        // Accounting rolled back: the rejected upload left nothing behind.
        assert_eq!(g.allocated_bytes(), 0);
    }

    #[test]
    fn integrity_layer_catches_pool_reuse_corruption() {
        // Corrupt only the *second* corruption opportunity: the first is
        // the warm-up upload (clean), the second is the pooled reuse.
        // Rate 1.0 with checks off for the warm-up would abort it instead.
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(21).with_corruption_rate(1.0));
        drop(g.try_upload_f64("warm", &[3.0; 500]).expect("silent"));
        assert_eq!(g.pool_stats().reclaimed, 1);
        g.set_integrity_checks(true);
        let before = g.allocated_bytes();
        let err = g.try_alloc_f64("reused", 500).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::DataCorruption {
                stage: "pool-reuse",
                ..
            }
        ));
        assert_eq!(g.integrity_stats().violations, 1);
        assert_eq!(g.allocated_bytes(), before);
    }

    #[test]
    fn clean_uploads_pass_integrity_checks() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1).with_integrity_checks(true);
        let b = g.try_upload_f64("x", &[1.5; 32]).expect("clean");
        assert_eq!(b.to_vec_f64(), vec![1.5; 32]);
        let u = g.try_upload_u32("idx", &[7, 8, 9]).expect("clean");
        assert_eq!(u.to_vec_u32(), vec![7, 8, 9]);
        let s = g.integrity_stats();
        assert_eq!((s.checks, s.violations), (2, 0));
        assert_eq!(s.bytes_checked, 32 * 8 + 3 * 4);
    }

    #[test]
    fn memory_pressure_shrinks_effective_capacity_mid_run() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
            .with_fault_profile(FaultProfile::seeded(0).with_memory_pressure(2, 1.0));
        // First two requests see the full device.
        let a = g.try_alloc_f64("a", 64).expect("pre-pressure");
        let _b = g.try_alloc_f64("b", 64).expect("pre-pressure");
        // From the third request on, the whole capacity is reserved.
        let err = g.try_alloc_f64("c", 64).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::AllocFailed {
                injected: false,
                capacity_bytes: 0,
                ..
            }
        ));
        assert!(!err.is_transient(), "pressure is permanent: degrade");
        assert_eq!(g.faults().counts().pressure_rejections, 1);
        // Accounting untouched by the rejection.
        assert_eq!(g.allocated_bytes(), 2 * a.size_bytes());
    }

    #[test]
    fn disabled_faults_do_not_change_launch_results() {
        let run = |faulty: bool| {
            let mut g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
            if faulty {
                // Profile attached but all rates zero: must be a no-op.
                g = g.with_fault_profile(FaultProfile::seeded(11));
            }
            let x = g.upload_f64("x", &vec![2.0; 1024]);
            let s = g.launch("scan", LaunchConfig::new(2, 64), |blk| {
                blk.each_warp(|w| {
                    w.load_f64(&x, Some);
                });
            });
            (s.counters.gld_transactions, s.sim_ms())
        };
        let (t0, ms0) = run(false);
        let (t1, ms1) = run(true);
        assert_eq!(t0, t1);
        assert!((ms0 - ms1).abs() < 1e-12);
    }

    #[test]
    fn texture_loads_hit_tex_cache() {
        let g = gpu();
        let y = g.upload_f64("y", &vec![2.0; 64]);
        let cfg = LaunchConfig::new(1, 32);
        let stats = g.launch("tex", cfg, |blk| {
            blk.each_warp(|w| {
                w.load_f64_tex(&y, Some);
                w.load_f64_tex(&y, Some);
            });
        });
        assert!(stats.counters.tex_read_bytes > 0);
    }

    #[test]
    fn free_updates_accounting() {
        let g = gpu();
        let before = g.allocated_bytes();
        let b = g.alloc_f64("tmp", 1024);
        assert_eq!(g.allocated_bytes() - before, 8192);
        g.free(&b);
        assert_eq!(g.allocated_bytes(), before);
    }

    #[test]
    fn pool_recycles_dropped_buffers_with_fresh_addresses() {
        let g = gpu();
        let first = g.alloc_f64("scratch", 500);
        let first_addr = first.addr_of(0);
        first.host_write_f64(3, 42.0);
        drop(first);
        assert_eq!(g.pool_stats().reclaimed, 1);

        // Same-bucket reallocation: served from the pool, but with a fresh
        // bump address (counter bit-identity) and zeroed contents
        // (zero-on-reuse).
        let second = g.alloc_f64("scratch2", 500);
        assert_eq!(g.pool_stats().hits, 1);
        assert_ne!(second.addr_of(0), first_addr);
        assert_eq!(second.host_read_f64(3), 0.0);
    }

    #[test]
    fn pool_ignores_buffers_with_live_handles() {
        let g = gpu();
        let a = g.alloc_f64("a", 64);
        let alias = a.clone();
        g.free(&a); // accounting only: `alias` still references the store
        drop(a);
        assert_eq!(g.pool_stats().reclaimed, 0);
        alias.host_write_f64(0, 1.0); // still safe to touch
        drop(alias);
        assert_eq!(g.pool_stats().reclaimed, 1);
    }

    #[test]
    fn pool_disabled_by_zero_retention_cap() {
        let g = gpu();
        g.set_pool_retain_bytes(0);
        drop(g.alloc_f64("a", 64));
        let s = g.pool_stats();
        assert_eq!(s.reclaimed, 0);
        assert_eq!(s.retained_bytes, 0);
    }

    #[test]
    fn shared_pool_recycles_across_devices() {
        let spec = std::sync::Arc::new(DeviceSpec::tiny_test_device());
        let pool = DevicePool::new();
        let g1 = Gpu::with_host_threads(spec.clone(), 1).with_shared_pool(&pool);
        {
            let warm = g1.alloc_f64("warm", 500);
            warm.host_write_f64(0, 7.0);
        } // dropped: reclaimed into the shared pool
        drop(g1);
        assert_eq!(pool.stats().reclaimed, 1);

        // A *different* device on the same pool gets the recycled block —
        // with its own fresh bump address and zeroed contents.
        let g2 = Gpu::with_host_threads(spec, 1).with_shared_pool(&pool);
        let reused = g2.alloc_f64("reused", 500);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(reused.host_read_f64(0), 0.0);
        // The second device's own-stats view is the shared pool's view.
        assert_eq!(g2.pool_stats(), pool.stats());
    }

    #[test]
    fn shared_spec_constructs_without_cloning() {
        let spec = std::sync::Arc::new(DeviceSpec::tiny_test_device());
        let g1 = Gpu::with_host_threads(spec.clone(), 1);
        let g2 = Gpu::with_host_threads(spec.clone(), 1);
        assert_eq!(g1.spec().name, g2.spec().name);
        // Three owners: the local Arc plus one per device.
        assert_eq!(std::sync::Arc::strong_count(&spec), 3);
    }
}
