//! Device specifications for the simulated GPU.
//!
//! The default device mirrors the NVIDIA GeForce GTX Titan (GK110, compute
//! capability 3.5) used throughout the paper's evaluation (§2, §4): 14 SMs,
//! 48 KB shared memory per SM, 64 K 32-bit registers per SM, 288 GB/s global
//! memory bandwidth and ~1.3 TFLOP/s double-precision peak.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU: resource limits that drive the
/// occupancy calculator plus throughput figures that drive the timing model.
///
/// All limits are per the CUDA occupancy model for compute capability 3.5
/// unless stated otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA cores per SM (used for documentation; timing uses peak GFLOP/s).
    pub cores_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Global (DRAM) memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Global memory bandwidth in GB/s (the paper quotes 288 GB/s, ECC off).
    pub dram_bandwidth_gbps: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub peak_dp_gflops: f64,
    /// Shared memory per SM in bytes (48 KB on GK110).
    pub shared_mem_per_sm: usize,
    /// Shared memory limit per thread block in bytes.
    pub shared_mem_per_block: usize,
    /// 32-bit registers per SM (64 K on GK110).
    pub registers_per_sm: usize,
    /// Maximum registers addressable by one thread (255 on cc 3.5).
    pub max_regs_per_thread: u32,
    /// Warp size (32 on every NVIDIA architecture to date).
    pub warp_size: usize,
    /// Maximum threads per block (1024).
    pub max_threads_per_block: usize,
    /// Maximum resident threads per SM (2048 on cc 3.5 = 64 warps).
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM (16 on cc 3.5).
    pub max_blocks_per_sm: usize,
    /// Register allocation granularity in registers (256 on cc 3.5,
    /// allocated per warp).
    pub reg_alloc_granularity: u32,
    /// Shared-memory allocation granularity in bytes (256 on cc 3.5).
    pub shared_alloc_granularity: usize,
    /// Number of shared memory banks (32).
    pub shared_banks: usize,
    /// L2 cache size in bytes (1.5 MB on GK110).
    pub l2_bytes: usize,
    /// L2 cache associativity used by the simulator's cache model.
    pub l2_ways: usize,
    /// Read-only/texture cache per SM in bytes (48 KB on GK110).
    pub tex_cache_per_sm: usize,
    /// Cache line size in bytes (128 B lines, 32 B sectors).
    pub cache_line_bytes: usize,
    /// Memory transaction sector size in bytes (32 B on GK110).
    pub sector_bytes: usize,
    /// Fixed kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Sustained global atomic throughput in operations per nanosecond
    /// when there is no address contention. Double-precision atomicAdd on
    /// Kepler is a CAS loop, well below native-int atomic rates.
    pub atomic_ops_per_ns: f64,
    /// Sustained global *integer* atomic throughput in ops/ns (native
    /// fetch-add units, considerably faster than the f64 CAS loop).
    pub atomic_int_ops_per_ns: f64,
    /// Cost of one serialized (same-address) global atomic in nanoseconds.
    pub atomic_serial_ns: f64,
    /// Shared-memory throughput in accesses per nanosecond per SM
    /// (one access per bank per cycle).
    pub shared_ops_per_ns_per_sm: f64,
    /// L2 bandwidth in GB/s (roughly 2x DRAM on GK110).
    pub l2_bandwidth_gbps: f64,
}

impl DeviceSpec {
    /// The NVIDIA GeForce GTX Titan used in the paper's evaluation (§4).
    pub fn gtx_titan() -> Self {
        DeviceSpec {
            name: "GeForce GTX Titan (simulated)".to_string(),
            num_sms: 14,
            cores_per_sm: 192,
            clock_ghz: 0.837,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
            dram_bandwidth_gbps: 288.0,
            peak_dp_gflops: 1300.0,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 64 * 1024,
            max_regs_per_thread: 255,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            reg_alloc_granularity: 256,
            shared_alloc_granularity: 256,
            shared_banks: 32,
            l2_bytes: 1536 * 1024,
            l2_ways: 16,
            tex_cache_per_sm: 48 * 1024,
            cache_line_bytes: 128,
            sector_bytes: 32,
            launch_overhead_us: 5.0,
            atomic_ops_per_ns: 1.5,
            atomic_int_ops_per_ns: 3.0,
            atomic_serial_ns: 40.0,
            shared_ops_per_ns_per_sm: 32.0,
            l2_bandwidth_gbps: 600.0,
        }
    }

    /// A smaller Kepler-class device (Tesla K20-like) useful for testing the
    /// occupancy model against a second resource envelope.
    pub fn tesla_k20() -> Self {
        DeviceSpec {
            name: "Tesla K20 (simulated)".to_string(),
            num_sms: 13,
            global_mem_bytes: 5 * 1024 * 1024 * 1024,
            dram_bandwidth_gbps: 208.0,
            peak_dp_gflops: 1170.0,
            ..Self::gtx_titan()
        }
    }

    /// A deliberately tiny device for unit tests: 2 SMs and small caches so
    /// capacity effects are observable with small inputs.
    pub fn tiny_test_device() -> Self {
        DeviceSpec {
            name: "tiny test device".to_string(),
            num_sms: 2,
            cores_per_sm: 32,
            global_mem_bytes: 64 * 1024 * 1024,
            shared_mem_per_sm: 16 * 1024,
            shared_mem_per_block: 16 * 1024,
            registers_per_sm: 16 * 1024,
            l2_bytes: 64 * 1024,
            tex_cache_per_sm: 4 * 1024,
            ..Self::gtx_titan()
        }
    }

    /// A stable 64-bit fingerprint of every field, used as the device part
    /// of plan-cache keys: two specs with any differing resource limit or
    /// throughput figure produce different fingerprints, so a plan tuned
    /// for one device is never served for another.
    ///
    /// FNV-1a over the field bytes; floats are hashed by their exact bit
    /// patterns (`to_bits`), so this is deterministic across processes and
    /// platforms (unlike `std`'s `DefaultHasher`, whose seed is stable but
    /// whose identity is not guaranteed across releases).
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.name.as_bytes());
        for v in [
            self.num_sms as u64,
            self.cores_per_sm as u64,
            self.clock_ghz.to_bits(),
            self.global_mem_bytes as u64,
            self.dram_bandwidth_gbps.to_bits(),
            self.peak_dp_gflops.to_bits(),
            self.shared_mem_per_sm as u64,
            self.shared_mem_per_block as u64,
            self.registers_per_sm as u64,
            self.max_regs_per_thread as u64,
            self.warp_size as u64,
            self.max_threads_per_block as u64,
            self.max_threads_per_sm as u64,
            self.max_blocks_per_sm as u64,
            self.reg_alloc_granularity as u64,
            self.shared_alloc_granularity as u64,
            self.shared_banks as u64,
            self.l2_bytes as u64,
            self.l2_ways as u64,
            self.tex_cache_per_sm as u64,
            self.cache_line_bytes as u64,
            self.sector_bytes as u64,
            self.launch_overhead_us.to_bits(),
            self.atomic_ops_per_ns.to_bits(),
            self.atomic_int_ops_per_ns.to_bits(),
            self.atomic_serial_ns.to_bits(),
            self.shared_ops_per_ns_per_sm.to_bits(),
            self.l2_bandwidth_gbps.to_bits(),
        ] {
            eat(&v.to_le_bytes());
        }
        h
    }

    /// Number of warps a block of `block_threads` occupies.
    pub fn warps_per_block(&self, block_threads: usize) -> usize {
        block_threads.div_ceil(self.warp_size)
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> usize {
        self.max_threads_per_sm / self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_matches_paper_quotes() {
        let d = DeviceSpec::gtx_titan();
        assert_eq!(d.num_sms, 14);
        assert_eq!(d.cores_per_sm, 192);
        assert_eq!(d.shared_mem_per_sm, 48 * 1024);
        assert_eq!(d.registers_per_sm, 64 * 1024);
        assert_eq!(d.max_warps_per_sm(), 64);
        assert!((d.dram_bandwidth_gbps - 288.0).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_distinguishes_devices() {
        let titan = DeviceSpec::gtx_titan();
        assert_eq!(titan.fingerprint(), DeviceSpec::gtx_titan().fingerprint());
        assert_ne!(titan.fingerprint(), DeviceSpec::tesla_k20().fingerprint());
        assert_ne!(
            titan.fingerprint(),
            DeviceSpec::tiny_test_device().fingerprint()
        );
        // Any single field change must change the fingerprint.
        let starved = DeviceSpec {
            registers_per_sm: 1024,
            ..DeviceSpec::gtx_titan()
        };
        assert_ne!(titan.fingerprint(), starved.fingerprint());
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let d = DeviceSpec::gtx_titan();
        assert_eq!(d.warps_per_block(1), 1);
        assert_eq!(d.warps_per_block(32), 1);
        assert_eq!(d.warps_per_block(33), 2);
        assert_eq!(d.warps_per_block(1024), 32);
    }
}
