//! L2-SVM trained in the primal by Newton's method (Chapelle \[9\], the
//! paper's SVM reference).
//!
//! The squared hinge loss `max(0, 1 - y_i x_i.w)^2` has a piecewise
//! Hessian `H = lambda I + 2 X^T diag(I_sv) X` where `I_sv` marks the
//! violating ("support") rows. The Hessian-vector product inside CG is
//! `X^T (I_sv ⊙ (X s)) + beta s` — again the generic pattern with `v` an
//! indicator vector (Table 1's SVM row).

use crate::ops::Backend;
use fusedml_core::PatternSpec;

#[derive(Debug, Clone, PartialEq)]
pub struct SvmResult {
    pub weights: Vec<f64>,
    pub iterations: usize,
    pub cg_iterations: usize,
    pub objective: f64,
    /// Number of margin-violating rows at the solution.
    pub support_vectors: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmOptions {
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner_cg: usize,
    pub grad_tol: f64,
}

impl Default for SvmOptions {
    fn default() -> Self {
        SvmOptions {
            lambda: 1e-2,
            max_outer: 25,
            max_inner_cg: 25,
            grad_tol: 1e-10,
        }
    }
}

/// Train a binary L2-SVM with labels in `{-1, +1}`.
pub fn svm_primal<B: Backend>(backend: &mut B, labels: &[f64], opts: SvmOptions) -> SvmResult {
    let m = backend.rows();
    let n = backend.cols();
    assert_eq!(labels.len(), m);

    let y = backend.from_host("labels", labels);
    let mut w = backend.zeros("w", n);
    let mut margins = backend.zeros("margins", m);
    let mut viol = backend.zeros("viol", m); // y_i margin_i - 1 clipped
    let mut ind = backend.zeros("ind", m); // support indicator
    let mut grad = backend.zeros("grad", n);
    let mut outer = 0;
    let mut cg_total = 0;
    let mut objective = f64::INFINITY;
    let mut support = 0usize;

    while outer < opts.max_outer {
        let mut span = fusedml_trace::wall_span("solver", "svm.outer", "host");
        span.arg("outer", outer);
        backend.mv(&w, &mut margins);
        // viol_i = y_i * margin_i - 1 where negative (violators), else 0.
        backend.map2(&margins, &y, &mut viol, &|t, yi| (yi * t - 1.0).min(0.0));
        // ind_i = 1 when violating.
        backend.map2(&viol, &viol, &mut ind, &|v, _| {
            if v < 0.0 {
                1.0
            } else {
                0.0
            }
        });

        let viol_host = backend.to_host(&viol);
        support = viol_host.iter().filter(|&&v| v < 0.0).count();
        let loss: f64 = viol_host.iter().map(|v| v * v).sum();
        let wn2 = backend.nrm2_sq(&w);
        objective = 0.5 * opts.lambda * wn2 + loss;
        span.arg("objective", objective);
        span.arg("support", support);

        // grad = lambda w + 2 X^T (ind ⊙ viol ⊙ y)
        // d_i = 2 * viol_i * y_i (viol already zero on non-violators)
        let mut dvec = backend.zeros("d", m);
        backend.map2(&viol, &y, &mut dvec, &|v, yi| 2.0 * v * yi);
        backend.tmv(1.0, &dvec, &mut grad);
        backend.axpy(opts.lambda, &w, &mut grad);
        let gn2 = backend.nrm2_sq(&grad);
        if gn2 <= opts.grad_tol {
            break;
        }

        // CG on (lambda I + 2 X^T diag(ind) X) s = -grad.
        let mut s = backend.zeros("cg.s", n);
        let mut r = backend.zeros("cg.r", n);
        backend.copy(&grad, &mut r);
        backend.scal(-1.0, &mut r);
        let mut p = backend.zeros("cg.p", n);
        backend.copy(&r, &mut p);
        let mut rs = backend.nrm2_sq(&r);
        let rs0 = rs;
        let mut hp = backend.zeros("cg.hp", n);
        let mut two_ind = backend.zeros("2ind", m);
        backend.map2(&ind, &ind, &mut two_ind, &|i, _| 2.0 * i);
        for _ in 0..opts.max_inner_cg {
            if rs <= 1e-6 * rs0 {
                break;
            }
            // hp = X^T ((2 ind) ⊙ (X p)) + lambda p — the generic pattern.
            backend.pattern(
                PatternSpec::full(1.0, opts.lambda),
                Some(&two_ind),
                &p,
                Some(&p),
                &mut hp,
            );
            let php = backend.dot(&p, &hp);
            if php <= 0.0 {
                break;
            }
            let alpha = rs / php;
            backend.axpy(alpha, &p, &mut s);
            backend.axpy(-alpha, &hp, &mut r);
            let rs_new = backend.nrm2_sq(&r);
            let beta = rs_new / rs;
            rs = rs_new;
            backend.scal(beta, &mut p);
            backend.axpy(1.0, &r, &mut p);
            cg_total += 1;
        }

        // Backtracking line search on the primal objective.
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..10 {
            let mut w_try = backend.zeros("w.try", n);
            backend.copy(&w, &mut w_try);
            backend.axpy(step, &s, &mut w_try);
            backend.mv(&w_try, &mut margins);
            backend.map2(&margins, &y, &mut viol, &|t, yi| (yi * t - 1.0).min(0.0));
            let loss: f64 = backend.to_host(&viol).iter().map(|v| v * v).sum();
            let wn2 = backend.nrm2_sq(&w_try);
            let obj_try = 0.5 * opts.lambda * wn2 + loss;
            if obj_try < objective - 1e-12 {
                backend.copy(&w_try, &mut w);
                objective = obj_try;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        outer += 1;
        if !accepted {
            break;
        }
    }

    SvmResult {
        weights: backend.to_host(&w),
        iterations: outer,
        cg_iterations: cg_total,
        objective,
        support_vectors: support,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn problem(m: usize, n: usize, seed: u64) -> (fusedml_matrix::CsrMatrix, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.3, seed);
        let w_true = random_vector(n, seed + 5);
        let labels: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        (x, labels)
    }

    #[test]
    fn separates_separable_data() {
        let (x, labels) = problem(300, 25, 121);
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let res = svm_primal(&mut cpu, &labels, SvmOptions::default());
        let scores = reference::csr_mv(&x, &res.weights);
        let acc = scores
            .iter()
            .zip(&labels)
            .filter(|(s, l)| (s.signum() - **l).abs() < 0.5)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(res.support_vectors < labels.len());
        assert!(res.objective.is_finite());
    }

    #[test]
    fn fused_matches_cpu() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (x, labels) = problem(150, 15, 122);
        let opts = SvmOptions {
            max_outer: 4,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = svm_primal(&mut cpu, &labels, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = svm_primal(&mut fused, &labels, opts);
        assert!(reference::rel_l2_error(&r_fused.weights, &r_cpu.weights) < 1e-6);
    }

    #[test]
    fn objective_improves_with_more_iterations() {
        let (x, labels) = problem(200, 20, 123);
        let mut a = CpuBackend::new_sparse(x.clone());
        let short = svm_primal(
            &mut a,
            &labels,
            SvmOptions {
                max_outer: 1,
                ..Default::default()
            },
        );
        let mut b = CpuBackend::new_sparse(x);
        let long = svm_primal(
            &mut b,
            &labels,
            SvmOptions {
                max_outer: 8,
                ..Default::default()
            },
        );
        assert!(long.objective <= short.objective + 1e-9);
    }
}
