//! L2-SVM trained in the primal by Newton's method (Chapelle \[9\], the
//! paper's SVM reference).
//!
//! The squared hinge loss `max(0, 1 - y_i x_i.w)^2` has a piecewise
//! Hessian `H = lambda I + 2 X^T diag(I_sv) X` where `I_sv` marks the
//! violating ("support") rows. The Hessian-vector product inside CG is
//! `X^T (I_sv ⊙ (X s)) + beta s` — again the generic pattern with `v` an
//! indicator vector (Table 1's SVM row).

use crate::checkpoint::{CheckpointHandle, SolverCheckpoint};
use crate::error::SolverError;
use crate::ops::Backend;
use fusedml_core::PatternSpec;

#[derive(Debug, Clone, PartialEq)]
pub struct SvmResult {
    pub weights: Vec<f64>,
    pub iterations: usize,
    pub cg_iterations: usize,
    pub objective: f64,
    /// Number of margin-violating rows at the solution.
    pub support_vectors: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmOptions {
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner_cg: usize,
    pub grad_tol: f64,
}

impl Default for SvmOptions {
    fn default() -> Self {
        SvmOptions {
            lambda: 1e-2,
            max_outer: 25,
            max_inner_cg: 25,
            grad_tol: 1e-10,
        }
    }
}

/// Train a binary L2-SVM with labels in `{-1, +1}`.
pub fn svm_primal<B: Backend>(backend: &mut B, labels: &[f64], opts: SvmOptions) -> SvmResult {
    try_svm(backend, labels, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`svm_primal`]: device faults propagate as
/// [`SolverError::Device`]; a non-finite objective, gradient norm, or CG
/// curvature (e.g. after silent corruption of the iterate) aborts with
/// [`SolverError::NumericalBreakdown`].
pub fn try_svm<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: SvmOptions,
) -> Result<SvmResult, SolverError> {
    try_svm_ckpt(backend, labels, opts, None)
}

/// [`try_svm`] with checkpoint/resume: each outer Newton pass recomputes
/// margins, violators and the objective from the iterate, so the snapshot
/// is the weights plus outer-loop counters. With `ckpt` `None` the device
/// work is identical to [`try_svm`].
pub fn try_svm_ckpt<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: SvmOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<SvmResult, SolverError> {
    const SOLVER: &str = "svm";

    let m = backend.rows();
    let n = backend.cols();
    assert_eq!(labels.len(), m);

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::Svm {
            outer,
            cg_iterations,
            weights,
        } if weights.len() == n => Some((outer, cg_iterations, weights)),
        _ => None,
    });

    let y = backend.try_from_host("labels", labels)?;
    let (mut w, mut outer, mut cg_total) = match resume {
        Some((outer, cg_iterations, weights)) => {
            let w = backend.try_from_host("w", &weights)?;
            if let Some(h) = ckpt {
                h.note_resume(outer);
            }
            (w, outer, cg_iterations)
        }
        None => (backend.try_zeros("w", n)?, 0, 0),
    };
    let mut margins = backend.try_zeros("margins", m)?;
    let mut viol = backend.try_zeros("viol", m)?; // y_i margin_i - 1 clipped
    let mut ind = backend.try_zeros("ind", m)?; // support indicator
    let mut grad = backend.try_zeros("grad", n)?;
    let mut objective = f64::INFINITY;
    let mut support = 0usize;

    while outer < opts.max_outer {
        let mut span = fusedml_trace::wall_span("solver", "svm.outer", "host");
        span.arg("outer", outer);
        backend.try_mv(&w, &mut margins)?;
        // viol_i = y_i * margin_i - 1 where negative (violators), else 0.
        backend.try_map2(&margins, &y, &mut viol, &|t, yi| (yi * t - 1.0).min(0.0))?;
        // ind_i = 1 when violating.
        backend.try_map2(&viol, &viol, &mut ind, &|v, _| {
            if v < 0.0 {
                1.0
            } else {
                0.0
            }
        })?;

        let viol_host = backend.to_host(&viol);
        support = viol_host.iter().filter(|&&v| v < 0.0).count();
        let loss: f64 = viol_host.iter().map(|v| v * v).sum();
        let wn2 = backend.try_nrm2_sq(&w)?;
        objective = 0.5 * opts.lambda * wn2 + loss;
        if !objective.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("objective is {objective}"),
            ));
        }
        span.arg("objective", objective);
        span.arg("support", support);

        // grad = lambda w + 2 X^T (ind ⊙ viol ⊙ y)
        // d_i = 2 * viol_i * y_i (viol already zero on non-violators)
        let mut dvec = backend.try_zeros("d", m)?;
        backend.try_map2(&viol, &y, &mut dvec, &|v, yi| 2.0 * v * yi)?;
        backend.try_tmv(1.0, &dvec, &mut grad)?;
        backend.try_axpy(opts.lambda, &w, &mut grad)?;
        let gn2 = backend.try_nrm2_sq(&grad)?;
        if !gn2.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("gradient norm^2 is {gn2}"),
            ));
        }
        if gn2 <= opts.grad_tol {
            break;
        }

        // CG on (lambda I + 2 X^T diag(ind) X) s = -grad.
        let mut s = backend.try_zeros("cg.s", n)?;
        let mut r = backend.try_zeros("cg.r", n)?;
        backend.try_copy(&grad, &mut r)?;
        backend.try_scal(-1.0, &mut r)?;
        let mut p = backend.try_zeros("cg.p", n)?;
        backend.try_copy(&r, &mut p)?;
        let mut rs = backend.try_nrm2_sq(&r)?;
        let rs0 = rs;
        let mut hp = backend.try_zeros("cg.hp", n)?;
        let mut two_ind = backend.try_zeros("2ind", m)?;
        backend.try_map2(&ind, &ind, &mut two_ind, &|i, _| 2.0 * i)?;
        for _ in 0..opts.max_inner_cg {
            if rs <= 1e-6 * rs0 {
                break;
            }
            // hp = X^T ((2 ind) ⊙ (X p)) + lambda p — the generic pattern.
            backend.try_pattern(
                PatternSpec::full(1.0, opts.lambda),
                Some(&two_ind),
                &p,
                Some(&p),
                &mut hp,
            )?;
            let php = backend.try_dot(&p, &hp)?;
            if !php.is_finite() {
                return Err(SolverError::breakdown(
                    SOLVER,
                    outer,
                    format!("CG curvature p.Hp is {php}"),
                ));
            }
            if php <= 0.0 {
                break;
            }
            let alpha = rs / php;
            backend.try_axpy(alpha, &p, &mut s)?;
            backend.try_axpy(-alpha, &hp, &mut r)?;
            let rs_new = backend.try_nrm2_sq(&r)?;
            let beta = rs_new / rs;
            rs = rs_new;
            backend.try_scal(beta, &mut p)?;
            backend.try_axpy(1.0, &r, &mut p)?;
            cg_total += 1;
        }

        // Backtracking line search on the primal objective.
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..10 {
            let mut w_try = backend.try_zeros("w.try", n)?;
            backend.try_copy(&w, &mut w_try)?;
            backend.try_axpy(step, &s, &mut w_try)?;
            backend.try_mv(&w_try, &mut margins)?;
            backend.try_map2(&margins, &y, &mut viol, &|t, yi| (yi * t - 1.0).min(0.0))?;
            let loss: f64 = backend.to_host(&viol).iter().map(|v| v * v).sum();
            let wn2 = backend.try_nrm2_sq(&w_try)?;
            let obj_try = 0.5 * opts.lambda * wn2 + loss;
            if obj_try < objective - 1e-12 {
                backend.try_copy(&w_try, &mut w)?;
                objective = obj_try;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        outer += 1;
        if let Some(h) = ckpt {
            if h.due(outer) {
                h.save(SolverCheckpoint::Svm {
                    outer,
                    cg_iterations: cg_total,
                    weights: backend.to_host(&w),
                });
            }
        }
        if !accepted {
            break;
        }
    }

    Ok(SvmResult {
        weights: backend.to_host(&w),
        iterations: outer,
        cg_iterations: cg_total,
        objective,
        support_vectors: support,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn problem(m: usize, n: usize, seed: u64) -> (fusedml_matrix::CsrMatrix, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.3, seed);
        let w_true = random_vector(n, seed + 5);
        let labels: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        (x, labels)
    }

    #[test]
    fn separates_separable_data() {
        let (x, labels) = problem(300, 25, 121);
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let res = svm_primal(&mut cpu, &labels, SvmOptions::default());
        let scores = reference::csr_mv(&x, &res.weights);
        let acc = scores
            .iter()
            .zip(&labels)
            .filter(|(s, l)| (s.signum() - **l).abs() < 0.5)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(res.support_vectors < labels.len());
        assert!(res.objective.is_finite());
    }

    #[test]
    fn fused_matches_cpu() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (x, labels) = problem(150, 15, 122);
        let opts = SvmOptions {
            max_outer: 4,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = svm_primal(&mut cpu, &labels, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = svm_primal(&mut fused, &labels, opts);
        assert!(reference::rel_l2_error(&r_fused.weights, &r_cpu.weights) < 1e-6);
    }

    #[test]
    fn nan_labels_are_a_typed_breakdown_not_a_nan_result() {
        let (x, mut labels) = problem(120, 10, 124);
        for i in [3, 7, 11, 42] {
            labels[i] = f64::NAN;
        }
        let mut cpu = CpuBackend::new_sparse(x);
        let err = try_svm(&mut cpu, &labels, SvmOptions::default())
            .expect_err("NaN label must not converge silently");
        assert_eq!(err.kind(), "numerical-breakdown");
        assert!(!err.is_transient());
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        use crate::checkpoint::CheckpointHandle;
        let (x, labels) = problem(200, 18, 125);
        let opts = SvmOptions {
            max_outer: 6,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let full = svm_primal(&mut cpu, &labels, opts);

        let h = CheckpointHandle::new(2);
        let mut first = CpuBackend::new_sparse(x.clone());
        let partial = try_svm_ckpt(
            &mut first,
            &labels,
            SvmOptions {
                max_outer: 2,
                ..opts
            },
            Some(&h),
        )
        .expect("partial");
        assert!(partial.iterations >= 1);
        let mut second = CpuBackend::new_sparse(x);
        let resumed = try_svm_ckpt(&mut second, &labels, opts, Some(&h)).expect("resumed");
        assert!(h.last_resume().is_some());
        assert_eq!(resumed.iterations, full.iterations);
        assert_eq!(resumed.weights, full.weights);
        assert_eq!(resumed.objective, full.objective);
    }

    #[test]
    fn objective_improves_with_more_iterations() {
        let (x, labels) = problem(200, 20, 123);
        let mut a = CpuBackend::new_sparse(x.clone());
        let short = svm_primal(
            &mut a,
            &labels,
            SvmOptions {
                max_outer: 1,
                ..Default::default()
            },
        );
        let mut b = CpuBackend::new_sparse(x);
        let long = svm_primal(
            &mut b,
            &labels,
            SvmOptions {
                max_outer: 8,
                ..Default::default()
            },
        );
        assert!(long.objective <= short.objective + 1e-9);
    }
}
