//! Kleinberg's HITS (Hubs and Authorities \[23\]).
//!
//! The authority update is `a <- A^T (A a)` followed by normalization —
//! precisely Table 1's `X^T (X y)` instantiation, evaluated once per power
//! iteration; hub scores follow as `h = A a`.

use crate::checkpoint::{CheckpointHandle, SolverCheckpoint};
use crate::error::SolverError;
use crate::ops::Backend;
use fusedml_core::PatternSpec;

#[derive(Debug, Clone, PartialEq)]
pub struct HitsResult {
    /// Authority scores (length n, unit 2-norm).
    pub authorities: Vec<f64>,
    /// Hub scores (length m, unit 2-norm).
    pub hubs: Vec<f64>,
    pub iterations: usize,
    /// Final change in authority vector between iterations (L2).
    pub delta: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitsOptions {
    pub max_iterations: usize,
    pub tolerance: f64,
}

impl Default for HitsOptions {
    fn default() -> Self {
        HitsOptions {
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }
}

/// Run HITS on the adjacency matrix held by the backend (`A[i, j] = 1`
/// when page `i` links to page `j`).
pub fn hits<B: Backend>(backend: &mut B, opts: HitsOptions) -> HitsResult {
    try_hits(backend, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`hits`]: device faults propagate as [`SolverError::Device`];
/// a non-finite authority norm or delta (e.g. after silent corruption of
/// the iterate) aborts with [`SolverError::NumericalBreakdown`] instead of
/// normalizing NaNs into the scores.
pub fn try_hits<B: Backend>(backend: &mut B, opts: HitsOptions) -> Result<HitsResult, SolverError> {
    try_hits_ckpt(backend, opts, None)
}

/// [`try_hits`] with checkpoint/resume: snapshots the normalized
/// authority vector, iteration count and last delta; a resumed run
/// continues the power iteration from that vector. With `ckpt` `None`
/// the device work is identical to [`try_hits`].
pub fn try_hits_ckpt<B: Backend>(
    backend: &mut B,
    opts: HitsOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<HitsResult, SolverError> {
    const SOLVER: &str = "hits";

    let m = backend.rows();
    let n = backend.cols();

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::Hits {
            iteration,
            delta,
            authorities,
        } if authorities.len() == n && delta.is_finite() => Some((iteration, delta, authorities)),
        _ => None,
    });

    let (mut a, mut iters, mut delta) = match resume {
        Some((iteration, delta, authorities)) => {
            let a = backend.try_from_host("authority", &authorities)?;
            if let Some(h) = ckpt {
                h.note_resume(iteration);
            }
            (a, iteration, delta)
        }
        None => {
            // a_0 = uniform unit vector.
            let init = vec![1.0 / (n as f64).sqrt(); n];
            (backend.try_from_host("authority", &init)?, 0, f64::INFINITY)
        }
    };
    let mut a_next = backend.try_zeros("authority.next", n)?;
    let mut delta_buf = backend.try_zeros("delta", n)?;

    while iters < opts.max_iterations && delta > opts.tolerance {
        let mut span = fusedml_trace::wall_span("solver", "hits.iter", "host");
        span.arg("iter", iters);
        // a' = A^T (A a) — the X^T(Xy) pattern.
        backend.try_pattern(PatternSpec::xtxy(), None, &a, None, &mut a_next)?;
        let norm2 = backend.try_nrm2_sq(&a_next)?;
        if !norm2.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                iters,
                format!("authority norm^2 is {norm2}"),
            ));
        }
        if norm2 <= 0.0 {
            break; // graph has no edges
        }
        backend.try_scal(1.0 / norm2.sqrt(), &mut a_next)?;

        // delta = ||a' - a||
        backend.try_copy(&a_next, &mut delta_buf)?;
        backend.try_axpy(-1.0, &a, &mut delta_buf)?;
        delta = backend.try_nrm2_sq(&delta_buf)?.sqrt();
        if !delta.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                iters,
                format!("iterate delta is {delta}"),
            ));
        }
        span.arg("delta", delta);

        backend.try_copy(&a_next, &mut a)?;
        iters += 1;

        if let Some(h) = ckpt {
            if h.due(iters) {
                h.save(SolverCheckpoint::Hits {
                    iteration: iters,
                    delta,
                    authorities: backend.to_host(&a),
                });
            }
        }
    }

    // Hubs: h = A a, normalized.
    let mut h = backend.try_zeros("hubs", m)?;
    backend.try_mv(&a, &mut h)?;
    let hn2 = backend.try_nrm2_sq(&h)?;
    if !hn2.is_finite() {
        return Err(SolverError::breakdown(
            SOLVER,
            iters,
            format!("hub norm^2 is {hn2}"),
        ));
    }
    if hn2 > 0.0 {
        backend.try_scal(1.0 / hn2.sqrt(), &mut h)?;
    }

    Ok(HitsResult {
        authorities: backend.to_host(&a),
        hubs: backend.to_host(&h),
        iterations: iters,
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::powerlaw_sparse;
    use fusedml_matrix::reference;
    use fusedml_matrix::{Coo, CsrMatrix};

    /// Star graph: every page links to page 0 — page 0 must dominate
    /// authority, and the pointing pages share hub mass.
    fn star_graph(pages: usize) -> CsrMatrix {
        let mut coo = Coo::new(pages, pages);
        for i in 1..pages {
            coo.push(i, 0, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn star_graph_authority_concentrates() {
        let a = star_graph(20);
        let mut cpu = CpuBackend::new_sparse(a);
        let res = hits(&mut cpu, HitsOptions::default());
        assert!(
            res.authorities[0] > 0.99,
            "hub page score {}",
            res.authorities[0]
        );
        // Converged quickly.
        assert!(res.delta < 1e-9);
        // All 19 pointing pages are equal hubs.
        let h = &res.hubs;
        for i in 2..20 {
            assert!((h[i] - h[1]).abs() < 1e-9);
        }
        assert!(h[0].abs() < 1e-12);
    }

    #[test]
    fn scores_are_normalized_and_nonnegative() {
        let a = powerlaw_sparse(200, 200, 5.0, 0.8, 141)
            .to_dense() // binarize links
            .clone();
        let mut bin = fusedml_matrix::DenseMatrix::zeros(200, 200);
        for r in 0..200 {
            for c in 0..200 {
                if a.get(r, c) != 0.0 {
                    bin.set(r, c, 1.0);
                }
            }
        }
        let x = CsrMatrix::from_dense(&bin);
        let mut cpu = CpuBackend::new_sparse(x);
        let res = hits(&mut cpu, HitsOptions::default());
        let an: f64 = res.authorities.iter().map(|v| v * v).sum();
        assert!((an - 1.0).abs() < 1e-9);
        assert!(res.authorities.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn nan_adjacency_is_a_typed_breakdown_not_a_nan_result() {
        let mut coo = Coo::new(6, 6);
        coo.push(1, 0, 1.0);
        coo.push(2, 0, f64::NAN);
        let x = CsrMatrix::from_coo(&coo);
        let mut cpu = CpuBackend::new_sparse(x);
        let err = crate::hits::try_hits(&mut cpu, HitsOptions::default())
            .expect_err("NaN edge weight must not converge silently");
        assert_eq!(err.kind(), "numerical-breakdown");
        assert!(!err.is_transient());
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_run() {
        use crate::checkpoint::CheckpointHandle;
        // A dense-ish random graph: the power iteration converges slowly
        // enough that the run is still live at the snapshot boundary.
        let x = fusedml_matrix::gen::uniform_sparse(40, 40, 0.15, 145);
        let opts = HitsOptions {
            max_iterations: 6,
            tolerance: 0.0,
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let full = hits(&mut cpu, opts);

        let h = CheckpointHandle::new(3);
        let mut first = CpuBackend::new_sparse(x.clone());
        let partial = crate::hits::try_hits_ckpt(
            &mut first,
            HitsOptions {
                max_iterations: 3,
                ..opts
            },
            Some(&h),
        )
        .expect("partial");
        assert_eq!(partial.iterations, 3);
        let mut second = CpuBackend::new_sparse(x);
        let resumed = crate::hits::try_hits_ckpt(&mut second, opts, Some(&h)).expect("resumed");
        assert_eq!(h.last_resume(), Some(3));
        assert_eq!(resumed.iterations, full.iterations);
        assert_eq!(resumed.authorities, full.authorities);
        assert_eq!(resumed.hubs, full.hubs);
    }

    #[test]
    fn fused_matches_cpu_and_uses_xtxy() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = star_graph(50);
        let opts = HitsOptions {
            max_iterations: 10,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = hits(&mut cpu, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = hits(&mut fused, opts);
        assert!(reference::rel_l2_error(&r_fused.authorities, &r_cpu.authorities) < 1e-9);
        assert!(fused.stats().pattern_counts["X^T x (X x y)"] >= 1);
    }
}
