//! Kleinberg's HITS (Hubs and Authorities \[23\]).
//!
//! The authority update is `a <- A^T (A a)` followed by normalization —
//! precisely Table 1's `X^T (X y)` instantiation, evaluated once per power
//! iteration; hub scores follow as `h = A a`.

use crate::ops::Backend;
use fusedml_core::PatternSpec;

#[derive(Debug, Clone, PartialEq)]
pub struct HitsResult {
    /// Authority scores (length n, unit 2-norm).
    pub authorities: Vec<f64>,
    /// Hub scores (length m, unit 2-norm).
    pub hubs: Vec<f64>,
    pub iterations: usize,
    /// Final change in authority vector between iterations (L2).
    pub delta: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitsOptions {
    pub max_iterations: usize,
    pub tolerance: f64,
}

impl Default for HitsOptions {
    fn default() -> Self {
        HitsOptions {
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }
}

/// Run HITS on the adjacency matrix held by the backend (`A[i, j] = 1`
/// when page `i` links to page `j`).
pub fn hits<B: Backend>(backend: &mut B, opts: HitsOptions) -> HitsResult {
    let m = backend.rows();
    let n = backend.cols();

    // a_0 = uniform unit vector.
    let init = vec![1.0 / (n as f64).sqrt(); n];
    let mut a = backend.from_host("authority", &init);
    let mut a_next = backend.zeros("authority.next", n);
    let mut delta_buf = backend.zeros("delta", n);
    let mut iters = 0;
    let mut delta = f64::INFINITY;

    while iters < opts.max_iterations && delta > opts.tolerance {
        let mut span = fusedml_trace::wall_span("solver", "hits.iter", "host");
        span.arg("iter", iters);
        // a' = A^T (A a) — the X^T(Xy) pattern.
        backend.pattern(PatternSpec::xtxy(), None, &a, None, &mut a_next);
        let norm2 = backend.nrm2_sq(&a_next);
        if norm2 <= 0.0 {
            break; // graph has no edges
        }
        backend.scal(1.0 / norm2.sqrt(), &mut a_next);

        // delta = ||a' - a||
        backend.copy(&a_next, &mut delta_buf);
        backend.axpy(-1.0, &a, &mut delta_buf);
        delta = backend.nrm2_sq(&delta_buf).sqrt();
        span.arg("delta", delta);

        backend.copy(&a_next, &mut a);
        iters += 1;
    }

    // Hubs: h = A a, normalized.
    let mut h = backend.zeros("hubs", m);
    backend.mv(&a, &mut h);
    let hn2 = backend.nrm2_sq(&h);
    if hn2 > 0.0 {
        backend.scal(1.0 / hn2.sqrt(), &mut h);
    }

    HitsResult {
        authorities: backend.to_host(&a),
        hubs: backend.to_host(&h),
        iterations: iters,
        delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::powerlaw_sparse;
    use fusedml_matrix::reference;
    use fusedml_matrix::{Coo, CsrMatrix};

    /// Star graph: every page links to page 0 — page 0 must dominate
    /// authority, and the pointing pages share hub mass.
    fn star_graph(pages: usize) -> CsrMatrix {
        let mut coo = Coo::new(pages, pages);
        for i in 1..pages {
            coo.push(i, 0, 1.0);
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn star_graph_authority_concentrates() {
        let a = star_graph(20);
        let mut cpu = CpuBackend::new_sparse(a);
        let res = hits(&mut cpu, HitsOptions::default());
        assert!(
            res.authorities[0] > 0.99,
            "hub page score {}",
            res.authorities[0]
        );
        // Converged quickly.
        assert!(res.delta < 1e-9);
        // All 19 pointing pages are equal hubs.
        let h = &res.hubs;
        for i in 2..20 {
            assert!((h[i] - h[1]).abs() < 1e-9);
        }
        assert!(h[0].abs() < 1e-12);
    }

    #[test]
    fn scores_are_normalized_and_nonnegative() {
        let a = powerlaw_sparse(200, 200, 5.0, 0.8, 141)
            .to_dense() // binarize links
            .clone();
        let mut bin = fusedml_matrix::DenseMatrix::zeros(200, 200);
        for r in 0..200 {
            for c in 0..200 {
                if a.get(r, c) != 0.0 {
                    bin.set(r, c, 1.0);
                }
            }
        }
        let x = CsrMatrix::from_dense(&bin);
        let mut cpu = CpuBackend::new_sparse(x);
        let res = hits(&mut cpu, HitsOptions::default());
        let an: f64 = res.authorities.iter().map(|v| v * v).sum();
        assert!((an - 1.0).abs() < 1e-9);
        assert!(res.authorities.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn fused_matches_cpu_and_uses_xtxy() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let x = star_graph(50);
        let opts = HitsOptions {
            max_iterations: 10,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = hits(&mut cpu, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = hits(&mut fused, opts);
        assert!(reference::rel_l2_error(&r_fused.authorities, &r_cpu.authorities) < 1e-9);
        assert!(fused.stats().pattern_counts["X^T x (X x y)"] >= 1);
    }
}
