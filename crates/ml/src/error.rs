//! Typed solver errors: device faults surfaced through the backend plus
//! numeric breakdowns (NaN/Inf residuals, exhausted search directions)
//! detected by the solver guards themselves.
//!
//! The split matters for recovery policy: a [`DeviceError`] classified as
//! transient is worth retrying on the same backend, while a
//! [`SolverError::NumericalBreakdown`] will recur deterministically and
//! should abort (or degrade to a more conservative evaluation path).

use fusedml_gpu_sim::DeviceError;
use std::fmt;

/// Error from a fallible solver (`try_lr_cg`, `try_glm`, `try_logreg`).
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// A device fault propagated out of a backend operation.
    Device(DeviceError),
    /// The iteration produced non-finite values that bounded restarts
    /// could not repair.
    NumericalBreakdown {
        /// Which solver broke down (`"lr_cg"`, `"glm"`, `"logreg"`).
        solver: &'static str,
        /// Outer iteration at which the breakdown was detected.
        iteration: usize,
        /// Human-readable description of the offending quantity.
        detail: String,
    },
}

impl SolverError {
    /// Breakdown constructor used by the solver guards, public so
    /// runtime layers wrapping solvers (e.g. the serving scheduler's
    /// streamed degrade tier) can surface their own deterministic
    /// failures on the same typed surface instead of panicking.
    pub fn breakdown(solver: &'static str, iteration: usize, detail: impl Into<String>) -> Self {
        SolverError::NumericalBreakdown {
            solver,
            iteration,
            detail: detail.into(),
        }
    }

    /// True when retrying the same computation may succeed (delegates to
    /// [`DeviceError::is_transient`]; numeric breakdowns are deterministic).
    pub fn is_transient(&self) -> bool {
        match self {
            SolverError::Device(e) => e.is_transient(),
            SolverError::NumericalBreakdown { .. } => false,
        }
    }

    /// Stable machine-readable class tag (mirrors [`DeviceError::kind`]).
    pub fn kind(&self) -> &'static str {
        match self {
            SolverError::Device(e) => e.kind(),
            SolverError::NumericalBreakdown { .. } => "numerical-breakdown",
        }
    }

    /// The underlying device fault, when there is one.
    pub fn device_error(&self) -> Option<&DeviceError> {
        match self {
            SolverError::Device(e) => Some(e),
            SolverError::NumericalBreakdown { .. } => None,
        }
    }
}

impl From<DeviceError> for SolverError {
    fn from(e: DeviceError) -> Self {
        SolverError::Device(e)
    }
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Device(e) => write!(f, "{e}"),
            SolverError::NumericalBreakdown {
                solver,
                iteration,
                detail,
            } => write!(
                f,
                "solver {solver} broke down at iteration {iteration}: {detail}"
            ),
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Device(e) => Some(e),
            SolverError::NumericalBreakdown { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_delegates_to_device_error() {
        let dev = DeviceError::TransientFault {
            kernel: "csrmv".into(),
            fault_index: 3,
        };
        assert!(SolverError::from(dev.clone()).is_transient());
        assert_eq!(SolverError::from(dev).kind(), "transient-fault");
        let brk = SolverError::breakdown("lr_cg", 4, "nr2 is NaN");
        assert!(!brk.is_transient());
        assert_eq!(brk.kind(), "numerical-breakdown");
        assert_eq!(
            brk.to_string(),
            "solver lr_cg broke down at iteration 4: nr2 is NaN"
        );
    }
}
