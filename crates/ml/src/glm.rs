//! Generalized linear models (McCullagh \[28\]) fit by iteratively
//! reweighted least squares (IRLS), with Poisson (log link) and binomial
//! (logit link) families.
//!
//! Each IRLS step solves the weighted normal equations
//! `(X^T W X + lambda I) d = X^T r` by CG; the Hessian-vector product is
//! `X^T (W ⊙ (X s)) + lambda s` — the `X^T (v ⊙ (X y))` instantiation the
//! paper's Table 1 attributes to GLM.

use crate::checkpoint::{CheckpointHandle, SolverCheckpoint};
use crate::error::SolverError;
use crate::ops::Backend;
use fusedml_core::PatternSpec;

/// Exponential-family link for the GLM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Poisson regression with log link: `mu = exp(eta)`.
    Poisson,
    /// Binomial regression with logit link: `mu = sigma(eta)`.
    Binomial,
    /// Gamma regression with log link (positive continuous targets; the
    /// log link keeps the mean positive and gives `W = mu' ^2 / V(mu) = 1`
    /// up to dispersion — we use the Fisher weight `1`).
    Gamma,
}

impl Family {
    /// `(mean, weight)` at linear predictor `eta`: the IRLS working
    /// response uses `W = (d mu / d eta)^2 / Var(mu)`.
    fn mean_and_weight(self, eta: f64) -> (f64, f64) {
        match self {
            Family::Poisson => {
                let mu = eta.clamp(-30.0, 30.0).exp();
                (mu, mu)
            }
            Family::Binomial => {
                let mu = 1.0 / (1.0 + (-eta).exp());
                (mu, (mu * (1.0 - mu)).max(1e-12))
            }
            Family::Gamma => {
                // log link: mu = exp(eta); Var = mu^2 => W = 1.
                let mu = eta.clamp(-30.0, 30.0).exp();
                (mu, 1.0)
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct GlmResult {
    pub weights: Vec<f64>,
    pub iterations: usize,
    pub cg_iterations: usize,
    /// Final squared gradient norm.
    pub grad_norm_sq: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlmOptions {
    pub family: Family,
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner_cg: usize,
    pub grad_tol: f64,
}

impl Default for GlmOptions {
    fn default() -> Self {
        GlmOptions {
            family: Family::Poisson,
            lambda: 1e-3,
            max_outer: 25,
            max_inner_cg: 30,
            grad_tol: 1e-10,
        }
    }
}

/// Fit a GLM: `targets` are counts (Poisson) or probabilities/labels in
/// `[0, 1]` (Binomial).
pub fn glm<B: Backend>(backend: &mut B, targets: &[f64], opts: GlmOptions) -> GlmResult {
    try_glm(backend, targets, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`glm`]: device faults propagate as [`SolverError::Device`];
/// a non-finite gradient norm or CG curvature aborts with
/// [`SolverError::NumericalBreakdown`]. The `max_outer`/`max_inner_cg`
/// caps bound the work done before either outcome.
pub fn try_glm<B: Backend>(
    backend: &mut B,
    targets: &[f64],
    opts: GlmOptions,
) -> Result<GlmResult, SolverError> {
    try_glm_ckpt(backend, targets, opts, None)
}

/// [`try_glm`] with checkpoint/resume: the IRLS outer loop recomputes
/// mean/weight/residual vectors from the iterate each pass, so a snapshot
/// of the weights plus outer-loop counters is all the state a resume
/// needs. With `ckpt` `None` the device work is identical to
/// [`try_glm`].
pub fn try_glm_ckpt<B: Backend>(
    backend: &mut B,
    targets: &[f64],
    opts: GlmOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<GlmResult, SolverError> {
    const SOLVER: &str = "glm";

    let m = backend.rows();
    let n = backend.cols();
    assert_eq!(targets.len(), m);

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::Glm {
            outer,
            cg_iterations,
            weights,
        } if weights.len() == n => Some((outer, cg_iterations, weights)),
        _ => None,
    });

    let t = backend.try_from_host("targets", targets)?;
    let (mut w, mut outer, mut cg_total) = match resume {
        Some((outer, cg_iterations, weights)) => {
            let w = backend.try_from_host("w", &weights)?;
            if let Some(h) = ckpt {
                h.note_resume(outer);
            }
            (w, outer, cg_iterations)
        }
        None => (backend.try_zeros("w", n)?, 0, 0),
    };
    let mut eta = backend.try_zeros("eta", m)?;
    let mut mu = backend.try_zeros("mu", m)?;
    let mut wgt = backend.try_zeros("wgt", m)?;
    let mut resid = backend.try_zeros("resid", m)?;
    let mut grad = backend.try_zeros("grad", n)?;
    let mut gn2 = f64::INFINITY;
    let family = opts.family;

    while outer < opts.max_outer {
        let mut span = fusedml_trace::wall_span("solver", "glm.outer", "host");
        span.arg("outer", outer);
        backend.try_mv(&w, &mut eta)?;
        backend.try_map2(&eta, &t, &mut mu, &|e, _| family.mean_and_weight(e).0)?;
        backend.try_map2(&eta, &t, &mut wgt, &|e, _| family.mean_and_weight(e).1)?;
        // Score residual: (t - mu) for canonical links; (t - mu)/mu for
        // Gamma with the log link.
        match family {
            Family::Gamma => {
                backend.try_map2(&t, &mu, &mut resid, &|ti, mi| (ti - mi) / mi.max(1e-12))?
            }
            _ => backend.try_map2(&t, &mu, &mut resid, &|ti, mi| ti - mi)?,
        }

        // grad = X^T resid - lambda w (ascent direction of log-likelihood).
        backend.try_tmv(1.0, &resid, &mut grad)?;
        backend.try_axpy(-opts.lambda, &w, &mut grad)?;
        gn2 = backend.try_nrm2_sq(&grad)?;
        if !gn2.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("gradient norm^2 is {gn2}"),
            ));
        }
        span.arg("gn2", gn2);
        if gn2 <= opts.grad_tol {
            break;
        }

        // CG solve (X^T W X + lambda I) d = grad.
        let mut d = backend.try_zeros("cg.d", n)?;
        let mut r = backend.try_zeros("cg.r", n)?;
        backend.try_copy(&grad, &mut r)?;
        let mut p = backend.try_zeros("cg.p", n)?;
        backend.try_copy(&r, &mut p)?;
        let mut rs = backend.try_nrm2_sq(&r)?;
        let rs0 = rs;
        let mut hp = backend.try_zeros("cg.hp", n)?;
        for _ in 0..opts.max_inner_cg {
            if rs <= 1e-8 * rs0 {
                break;
            }
            // hp = X^T (W ⊙ (X p)) + lambda p — Table 1's GLM pattern.
            backend.try_pattern(
                PatternSpec::full(1.0, opts.lambda),
                Some(&wgt),
                &p,
                Some(&p),
                &mut hp,
            )?;
            let php = backend.try_dot(&p, &hp)?;
            if !php.is_finite() {
                return Err(SolverError::breakdown(
                    SOLVER,
                    outer,
                    format!("CG curvature p.Hp is {php}"),
                ));
            }
            if php <= 0.0 {
                break;
            }
            let alpha = rs / php;
            backend.try_axpy(alpha, &p, &mut d)?;
            backend.try_axpy(-alpha, &hp, &mut r)?;
            let rs_new = backend.try_nrm2_sq(&r)?;
            let beta = rs_new / rs;
            rs = rs_new;
            backend.try_scal(beta, &mut p)?;
            backend.try_axpy(1.0, &r, &mut p)?;
            cg_total += 1;
        }

        // Damped update: eta changes can explode for Poisson, halve until
        // the gradient norm improves.
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..8 {
            let mut w_try = backend.try_zeros("w.try", n)?;
            backend.try_copy(&w, &mut w_try)?;
            backend.try_axpy(step, &d, &mut w_try)?;
            backend.try_mv(&w_try, &mut eta)?;
            backend.try_map2(&eta, &t, &mut mu, &|e, _| family.mean_and_weight(e).0)?;
            match family {
                Family::Gamma => {
                    backend.try_map2(&t, &mu, &mut resid, &|ti, mi| (ti - mi) / mi.max(1e-12))?
                }
                _ => backend.try_map2(&t, &mu, &mut resid, &|ti, mi| ti - mi)?,
            }
            let mut g_try = backend.try_zeros("g.try", n)?;
            backend.try_tmv(1.0, &resid, &mut g_try)?;
            backend.try_axpy(-opts.lambda, &w_try, &mut g_try)?;
            let gn2_try = backend.try_nrm2_sq(&g_try)?;
            if gn2_try < gn2 {
                backend.try_copy(&w_try, &mut w)?;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        outer += 1;
        if let Some(h) = ckpt {
            if h.due(outer) {
                h.save(SolverCheckpoint::Glm {
                    outer,
                    cg_iterations: cg_total,
                    weights: backend.to_host(&w),
                });
            }
        }
        if !accepted {
            break;
        }
    }

    Ok(GlmResult {
        weights: backend.to_host(&w),
        iterations: outer,
        cg_iterations: cg_total,
        grad_norm_sq: gn2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn poisson_problem(
        m: usize,
        n: usize,
        seed: u64,
    ) -> (fusedml_matrix::CsrMatrix, Vec<f64>, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.25, seed);
        let mut w_true = random_vector(n, seed + 3);
        reference::scal(0.3, &mut w_true); // keep rates moderate
        let mut rng = StdRng::seed_from_u64(seed + 7);
        let targets: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&eta| {
                // Deterministic pseudo-Poisson around exp(eta).
                let lam = eta.clamp(-4.0, 4.0).exp();
                (lam + 0.3 * (rng.gen::<f64>() - 0.5) * lam.sqrt()).max(0.0)
            })
            .collect();
        (x, w_true, targets)
    }

    #[test]
    fn poisson_recovers_rates() {
        let (x, w_true, targets) = poisson_problem(500, 20, 131);
        let mut cpu = CpuBackend::new_sparse(x);
        let res = glm(&mut cpu, &targets, GlmOptions::default());
        assert!(res.iterations > 0);
        let err = reference::rel_l2_error(&res.weights, &w_true);
        assert!(err < 0.2, "relative error {err}");
        assert!(res.grad_norm_sq < 1.0);
    }

    #[test]
    fn binomial_family_runs() {
        let x = uniform_sparse(300, 15, 0.3, 132);
        let w_true = random_vector(15, 133);
        let targets: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&e| if e > 0.0 { 1.0 } else { 0.0 })
            .collect();
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let res = glm(
            &mut cpu,
            &targets,
            GlmOptions {
                family: Family::Binomial,
                ..Default::default()
            },
        );
        // Predicted direction should correlate with targets.
        let preds = reference::csr_mv(&x, &res.weights);
        let acc = preds
            .iter()
            .zip(&targets)
            .filter(|(p, t)| (p.signum().max(0.0) - **t).abs() < 0.5)
            .count() as f64
            / targets.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn gamma_family_recovers_log_linear_rates() {
        let x = uniform_sparse(600, 15, 0.3, 141);
        let mut w_true = random_vector(15, 142);
        reference::scal(0.25, &mut w_true);
        // Noiseless Gamma means: t = exp(eta).
        let targets: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&e| e.clamp(-3.0, 3.0).exp())
            .collect();
        let mut cpu = CpuBackend::new_sparse(x);
        let res = glm(
            &mut cpu,
            &targets,
            GlmOptions {
                family: Family::Gamma,
                lambda: 1e-6,
                ..Default::default()
            },
        );
        let err = reference::rel_l2_error(&res.weights, &w_true);
        assert!(err < 0.05, "gamma relative error {err}");
    }

    #[test]
    fn fused_matches_cpu() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (x, _, targets) = poisson_problem(200, 12, 134);
        let opts = GlmOptions {
            max_outer: 3,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = glm(&mut cpu, &targets, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = glm(&mut fused, &targets, opts);
        assert!(reference::rel_l2_error(&r_fused.weights, &r_cpu.weights) < 1e-6);
        // GLM exercises the v-carrying pattern (Table 1).
        assert!(fused.stats().pattern_counts["X^T x (v . (X x y)) + b * z"] >= 1);
    }
}
