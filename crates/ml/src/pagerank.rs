//! PageRank power iteration, defined as an operator DAG and executed
//! through the fusion compiler.
//!
//! One iteration over a square link matrix `L` (`L[i][j] != 0` when page
//! `i` links to page `j`) is
//!
//! ```text
//! r' = d * L^T (r ⊙ inv_deg) + teleport * ones,   teleport = (1 - d) / n
//! ```
//!
//! — exactly [`Dag::pagerank`]. The damping factor and teleport mass are
//! bound as scalar *parameters*, so the DAG's structural fingerprint (and
//! therefore the memoized fusion plan) is shared by every iteration. The
//! compiler folds the `d *` scale into the fused `alpha * L^T u` kernel
//! (the `tmv-fold` candidate), which is the whole point of running the
//! solver through the DAG layer rather than op by op.
//!
//! Dangling pages (zero out-degree) get `inv_deg = 0`: their rank mass
//! leaves the system instead of being redistributed, the simplest of the
//! standard variants and adequate for a kernel-fusion benchmark.

use crate::checkpoint::{CheckpointHandle, SolverCheckpoint};
use crate::error::SolverError;
use crate::ops::Backend;
use fusedml_blas::{level1, GpuCsr};
use fusedml_core::{unfused_plan, Dag, DagExecutor, DagInputs, DagMatrix, FusionPlan};
use fusedml_gpu_sim::{Counters, Gpu};
use fusedml_matrix::CsrMatrix;
use std::sync::Arc;

/// Which fusion plan the solver executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagerankPlan {
    /// The compiler's cost-selected plan (normally `tmv-fold+ew`).
    #[default]
    Selected,
    /// The unfused one-kernel-per-operator reference plan — the bench
    /// suite's operator-composition baseline for this workload.
    Unfused,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagerankOptions {
    /// Damping factor `d` (the classic 0.85).
    pub damping: f64,
    pub max_iterations: usize,
    /// Convergence threshold on the L2 change of the rank vector.
    pub tolerance: f64,
    pub plan: PagerankPlan,
}

impl Default for PagerankOptions {
    fn default() -> Self {
        PagerankOptions {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
            plan: PagerankPlan::Selected,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct PagerankResult {
    /// Final rank vector (length n).
    pub ranks: Vec<f64>,
    pub iterations: usize,
    /// Final L2 change between successive rank vectors.
    pub delta: f64,
    /// The fusion plan the compiler selected for the iteration DAG.
    pub plan: Arc<FusionPlan>,
    /// Simulated device milliseconds of the whole solve.
    pub sim_ms: f64,
    /// Kernel launches of the whole solve.
    pub launches: usize,
    /// Merged hardware counters of every launch in the solve.
    pub counters: Counters,
    /// Time-weighted mean occupancy across all launches.
    pub occupancy: f64,
    /// DAG-side plan-cache traffic of the solve (one miss, then hits).
    pub plan_stats: fusedml_core::PlanCacheStats,
}

/// Infallible [`try_pagerank`]; panics on device faults.
pub fn pagerank(gpu: &Gpu, links: &CsrMatrix, opts: PagerankOptions) -> PagerankResult {
    try_pagerank(gpu, links, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Run PageRank on `links` through the DAG fusion compiler. Device faults
/// propagate as [`SolverError::Device`]; a non-finite rank delta aborts
/// with [`SolverError::NumericalBreakdown`].
pub fn try_pagerank(
    gpu: &Gpu,
    links: &CsrMatrix,
    opts: PagerankOptions,
) -> Result<PagerankResult, SolverError> {
    const SOLVER: &str = "pagerank";
    assert_eq!(
        links.rows(),
        links.cols(),
        "PageRank needs a square link matrix"
    );
    let n = links.rows();
    let d = opts.damping;
    let teleport = (1.0 - d) / n.max(1) as f64;

    // Reciprocal out-degrees (0 for dangling pages), computed host-side
    // once: they are a property of the graph, not of the iteration.
    let inv_deg_host: Vec<f64> = (0..n)
        .map(|r| {
            let deg: f64 = links.row_entries(r).map(|(_, v)| v).sum();
            if deg > 0.0 {
                1.0 / deg
            } else {
                0.0
            }
        })
        .collect();

    let ld = GpuCsr::try_upload(gpu, "L", links)?;
    let r = gpu.try_upload_f64("pagerank.r", &vec![1.0 / n.max(1) as f64; n])?;
    let r_next = gpu.try_alloc_f64("pagerank.r_next", n)?;
    let delta_buf = gpu.try_alloc_f64("pagerank.delta", n)?;
    let scalar = gpu.try_alloc_f64("pagerank.scalar", 1)?;
    let inv_deg = gpu.try_upload_f64("pagerank.inv_deg", &inv_deg_host)?;
    let ones = gpu.try_upload_f64("pagerank.ones", &vec![1.0; n])?;

    let dag = Dag::pagerank();
    let mut dexec = DagExecutor::try_new(gpu)?;
    let matrix = DagMatrix::Sparse(&ld);
    // An explicitly unfused run bypasses selection (and the plan cache):
    // the reference plan is compiled once and pinned for every iteration.
    let forced: Option<Arc<FusionPlan>> = match opts.plan {
        PagerankPlan::Selected => None,
        PagerankPlan::Unfused => Some(Arc::new(unfused_plan(gpu.spec(), &dag, matrix.shape())?)),
    };

    // BLAS-1 convergence bookkeeping is charged alongside the DAG runs.
    let mut extra_ms = 0.0;
    let mut extra_launches = 0usize;
    let mut extra_counters = Counters::new();
    let mut extra_occ_ms = 0.0;
    let mut charge = |s: fusedml_gpu_sim::LaunchStats| {
        extra_ms += s.sim_ms();
        extra_launches += 1;
        extra_occ_ms += s.occupancy.occupancy * s.sim_ms();
        extra_counters.merge(&s.counters);
    };

    let mut plan: Option<Arc<FusionPlan>> = None;
    let mut iters = 0usize;
    let mut delta = f64::INFINITY;
    while iters < opts.max_iterations && delta > opts.tolerance {
        let mut span = fusedml_trace::wall_span("solver", "pagerank.iter", "host");
        span.arg("iter", iters);
        let inputs = DagInputs::new()
            .vector("r", &r)
            .vector("inv_deg", &inv_deg)
            .vector("ones", &ones)
            .scalar("d", d)
            .scalar("teleport", teleport);
        match &forced {
            Some(p) => {
                dexec.try_run_with_plan(p, &dag, &matrix, &inputs, &r_next)?;
                plan.get_or_insert_with(|| p.clone());
            }
            None => {
                let run = dexec.try_run(&dag, &matrix, &inputs, &r_next)?;
                plan.get_or_insert(run.plan);
            }
        }

        // delta = ||r' - r||
        charge(level1::try_copy(gpu, &r_next, &delta_buf)?);
        charge(level1::try_axpy(gpu, -1.0, &r, &delta_buf)?);
        let (d2, s) = level1::try_nrm2_sq(gpu, &delta_buf, &scalar)?;
        charge(s);
        delta = d2.sqrt();
        if !delta.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                iters,
                format!("rank delta is {delta}"),
            ));
        }
        span.arg("delta", delta);

        charge(level1::try_copy(gpu, &r_next, &r)?);
        iters += 1;
    }

    let plan = match plan {
        Some(p) => p,
        // Zero iterations requested: still compile the plan so callers
        // (the bench plan dump) always get one.
        None => dexec.try_plan(&dag, &matrix)?.0,
    };
    let mut counters = dexec.counters_total();
    counters.merge(&extra_counters);
    let mut occ_ms = extra_occ_ms;
    for l in dexec.launches() {
        occ_ms += l.occupancy.occupancy * l.sim_ms();
    }
    let sim_ms = dexec.total_sim_ms() + extra_ms;
    Ok(PagerankResult {
        ranks: r.to_vec_f64(),
        iterations: iters,
        delta,
        plan,
        sim_ms,
        launches: dexec.launch_count() + extra_launches,
        counters,
        occupancy: if sim_ms > 0.0 { occ_ms / sim_ms } else { 0.0 },
        plan_stats: dexec.dag_plan_stats(),
    })
}

/// Result of the backend-generic power iteration
/// ([`try_pagerank_backend`]): just the solver state, no plan/counter
/// introspection — cost accounting comes from the backend's own stats.
#[derive(Debug, Clone, PartialEq)]
pub struct PagerankPowerResult {
    /// Final rank vector (length n).
    pub ranks: Vec<f64>,
    pub iterations: usize,
    /// Final L2 change between successive rank vectors.
    pub delta: f64,
}

/// Reciprocal out-degrees of `links` (0 for dangling pages), the
/// host-side graph property [`try_pagerank_backend`] takes as input.
pub fn inv_out_degrees(links: &CsrMatrix) -> Vec<f64> {
    (0..links.rows())
        .map(|r| {
            let deg: f64 = links.row_entries(r).map(|(_, v)| v).sum();
            if deg > 0.0 {
                1.0 / deg
            } else {
                0.0
            }
        })
        .collect()
}

/// [`try_pagerank_backend_ckpt`] without checkpointing.
pub fn try_pagerank_backend<B: Backend>(
    backend: &mut B,
    inv_deg: &[f64],
    opts: PagerankOptions,
) -> Result<PagerankPowerResult, SolverError> {
    try_pagerank_backend_ckpt(backend, inv_deg, opts, None)
}

/// PageRank power iteration written against the [`Backend`] trait, so the
/// same solve runs on the fused, baseline, streamed and CPU engines — the
/// entry point the multi-tenant serving ladder degrades through. One
/// iteration is `r' = d * L^T (r ⊙ inv_deg) + teleport * ones`, the same
/// dangling-page variant as [`try_pagerank`] (`opts.plan` is ignored: plan
/// selection belongs to the DAG path).
///
/// With `ckpt` the normalized rank vector is snapshotted every
/// `ckpt.every()` iterations and a later run resumes the power iteration
/// from that vector bit-identically — the rank vector is the entire
/// iteration state.
pub fn try_pagerank_backend_ckpt<B: Backend>(
    backend: &mut B,
    inv_deg: &[f64],
    opts: PagerankOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<PagerankPowerResult, SolverError> {
    const SOLVER: &str = "pagerank";
    let n = backend.cols();
    if backend.rows() != n {
        return Err(SolverError::breakdown(
            SOLVER,
            0,
            format!("link matrix must be square, got {}x{n}", backend.rows()),
        ));
    }
    if inv_deg.len() != n {
        return Err(SolverError::breakdown(
            SOLVER,
            0,
            format!("inv_deg has {} entries for {n} pages", inv_deg.len()),
        ));
    }
    let d = opts.damping;
    let teleport = (1.0 - d) / n.max(1) as f64;

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::Pagerank {
            iteration,
            delta,
            ranks,
        } if ranks.len() == n && delta.is_finite() => Some((iteration, delta, ranks)),
        _ => None,
    });
    let (mut r, mut iters, mut delta) = match resume {
        Some((iteration, delta, ranks)) => {
            let r = backend.try_from_host("pagerank.r", &ranks)?;
            if let Some(h) = ckpt {
                h.note_resume(iteration);
            }
            (r, iteration, delta)
        }
        None => (
            backend.try_from_host("pagerank.r", &vec![1.0 / n.max(1) as f64; n])?,
            0,
            f64::INFINITY,
        ),
    };
    let inv = backend.try_from_host("pagerank.inv_deg", inv_deg)?;
    let ones = backend.try_from_host("pagerank.ones", &vec![1.0; n])?;
    let mut u = backend.try_zeros("pagerank.u", n)?;
    let mut r_next = backend.try_zeros("pagerank.r_next", n)?;
    let mut delta_buf = backend.try_zeros("pagerank.delta", n)?;

    while iters < opts.max_iterations && delta > opts.tolerance {
        let mut span = fusedml_trace::wall_span("solver", "pagerank.iter", "host");
        span.arg("iter", iters);
        // u = r ⊙ inv_deg; r' = d * L^T u + teleport * ones.
        backend.try_ewmul(&r, &inv, &mut u)?;
        backend.try_tmv(d, &u, &mut r_next)?;
        backend.try_axpy(teleport, &ones, &mut r_next)?;

        // delta = ||r' - r||
        backend.try_copy(&r_next, &mut delta_buf)?;
        backend.try_axpy(-1.0, &r, &mut delta_buf)?;
        delta = backend.try_nrm2_sq(&delta_buf)?.sqrt();
        if !delta.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                iters,
                format!("rank delta is {delta}"),
            ));
        }
        span.arg("delta", delta);

        backend.try_copy(&r_next, &mut r)?;
        iters += 1;

        if let Some(h) = ckpt {
            if h.due(iters) {
                h.save(SolverCheckpoint::Pagerank {
                    iteration: iters,
                    delta,
                    ranks: backend.to_host(&r),
                });
            }
        }
    }

    Ok(PagerankPowerResult {
        ranks: backend.to_host(&r),
        iterations: iters,
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::CpuBackend;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::{reference, Coo};

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    /// Host reference of the same iteration (same dangling-page variant).
    fn host_pagerank(links: &CsrMatrix, opts: PagerankOptions) -> (Vec<f64>, usize) {
        let n = links.rows();
        let teleport = (1.0 - opts.damping) / n as f64;
        let inv_deg: Vec<f64> = (0..n)
            .map(|r| {
                let deg: f64 = links.row_entries(r).map(|(_, v)| v).sum();
                if deg > 0.0 {
                    1.0 / deg
                } else {
                    0.0
                }
            })
            .collect();
        let mut r = vec![1.0 / n as f64; n];
        let mut iters = 0;
        let mut delta = f64::INFINITY;
        while iters < opts.max_iterations && delta > opts.tolerance {
            let scaled: Vec<f64> = r.iter().zip(&inv_deg).map(|(a, b)| a * b).collect();
            let mut next = reference::csr_tmv(links, &scaled);
            for v in &mut next {
                *v = opts.damping * *v + teleport;
            }
            delta = next
                .iter()
                .zip(&r)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            r = next;
            iters += 1;
        }
        (r, iters)
    }

    fn ring_with_hub(n: usize) -> CsrMatrix {
        // i -> i+1 ring, plus every page links to page 0.
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1.0);
            if i != 0 {
                coo.push(i, 0, 1.0);
            }
        }
        CsrMatrix::from_coo(&coo)
    }

    #[test]
    fn matches_the_host_reference_and_favors_the_hub() {
        let links = ring_with_hub(64);
        let opts = PagerankOptions {
            max_iterations: 60,
            tolerance: 1e-12,
            ..Default::default()
        };
        let g = gpu();
        let res = try_pagerank(&g, &links, opts).unwrap();
        let (expect, host_iters) = host_pagerank(&links, opts);
        assert_eq!(res.iterations, host_iters);
        assert!(
            reference::rel_l2_error(&res.ranks, &expect) < 1e-9,
            "device PageRank diverged from the host reference"
        );
        let hub = res.ranks[0];
        assert!(
            res.ranks[1..].iter().all(|&v| v < hub),
            "page 0 receives every page's link and must rank highest"
        );
        assert!(res.sim_ms > 0.0 && res.launches > 0);
    }

    #[test]
    fn compiler_folds_the_damping_scale_into_the_tmv_kernel() {
        let g = gpu();
        let res = try_pagerank(
            &g,
            &ring_with_hub(32),
            PagerankOptions {
                max_iterations: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            res.plan
                .groups
                .iter()
                .any(|kg| kg.desc.starts_with("tmv-fold")),
            "plan: {:?}",
            res.plan.desc
        );
        assert!(
            res.plan.rejected.iter().any(|r| r.desc == "unfused"),
            "the unfused candidate must have been priced"
        );
    }

    #[test]
    fn unfused_plan_reproduces_the_ranks_at_a_higher_modeled_cost() {
        let links = ring_with_hub(64);
        let opts = PagerankOptions {
            max_iterations: 8,
            tolerance: 0.0,
            ..Default::default()
        };
        let fused = try_pagerank(&gpu(), &links, opts).unwrap();
        let unfused = try_pagerank(
            &gpu(),
            &links,
            PagerankOptions {
                plan: PagerankPlan::Unfused,
                ..opts
            },
        )
        .unwrap();
        // Fusion here only folds the damping scale into the transposed
        // scan's final multiply — the accumulation order is untouched, so
        // the ranks agree to the bit.
        assert_eq!(fused.ranks, unfused.ranks);
        assert_eq!(unfused.plan.desc, "unfused");
        assert!(
            unfused.launches > fused.launches,
            "unfused {} vs fused {} launches",
            unfused.launches,
            fused.launches
        );
        assert!(
            unfused.sim_ms > fused.sim_ms,
            "unfused {} vs fused {} modeled ms",
            unfused.sim_ms,
            fused.sim_ms
        );
        // The pinned plan never touches the cache.
        assert_eq!(unfused.plan_stats.misses + unfused.plan_stats.hits, 0);
    }

    #[test]
    fn backend_power_iteration_matches_dag_solver_and_host_reference() {
        let links = ring_with_hub(64);
        let opts = PagerankOptions {
            max_iterations: 40,
            tolerance: 1e-12,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(links.clone());
        let res = try_pagerank_backend(&mut cpu, &inv_out_degrees(&links), opts).unwrap();
        let (expect, host_iters) = host_pagerank(&links, opts);
        assert_eq!(res.iterations, host_iters);
        assert!(reference::rel_l2_error(&res.ranks, &expect) < 1e-9);
        // The fused device backend agrees with the CPU backend.
        let g = gpu();
        let mut fused = crate::ops::FusedBackend::new_sparse(&g, &links);
        let dev = try_pagerank_backend(&mut fused, &inv_out_degrees(&links), opts).unwrap();
        assert_eq!(dev.iterations, res.iterations);
        assert!(reference::rel_l2_error(&dev.ranks, &res.ranks) < 1e-9);
    }

    #[test]
    fn backend_checkpoint_resume_is_bit_identical() {
        use crate::checkpoint::CheckpointHandle;
        let links = ring_with_hub(48);
        let opts = PagerankOptions {
            max_iterations: 8,
            tolerance: 0.0,
            ..Default::default()
        };
        let inv = inv_out_degrees(&links);
        let mut full_b = CpuBackend::new_sparse(links.clone());
        let full = try_pagerank_backend(&mut full_b, &inv, opts).unwrap();

        let h = CheckpointHandle::new(4);
        let mut first = CpuBackend::new_sparse(links.clone());
        let partial = try_pagerank_backend_ckpt(
            &mut first,
            &inv,
            PagerankOptions {
                max_iterations: 4,
                ..opts
            },
            Some(&h),
        )
        .unwrap();
        assert_eq!(partial.iterations, 4);
        let mut second = CpuBackend::new_sparse(links);
        let resumed = try_pagerank_backend_ckpt(&mut second, &inv, opts, Some(&h)).unwrap();
        assert_eq!(h.last_resume(), Some(4));
        assert_eq!(h.resumes(), vec![4]);
        assert_eq!(resumed.iterations, full.iterations);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&resumed.ranks), bits(&full.ranks));
    }

    #[test]
    fn backend_rejects_non_square_graphs_with_a_typed_error() {
        let mut cpu = CpuBackend::new_sparse(fusedml_matrix::gen::uniform_sparse(8, 4, 0.5, 1));
        let err = try_pagerank_backend(&mut cpu, &[0.0; 4], PagerankOptions::default())
            .expect_err("rectangular link matrix must be rejected");
        assert_eq!(err.kind(), "numerical-breakdown");
    }

    #[test]
    fn iterations_share_one_memoized_plan() {
        let g = gpu();
        let links = ring_with_hub(48);
        let res = try_pagerank(
            &g,
            &links,
            PagerankOptions {
                max_iterations: 5,
                tolerance: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(res.iterations, 5);
        // One compile, four cache hits — scalar parameters are bound per
        // run, so the fingerprint (and plan) is iteration-invariant.
        assert_eq!(res.plan_stats.misses, 1, "stats: {:?}", res.plan_stats);
        assert_eq!(res.plan_stats.hits, 4, "stats: {:?}", res.plan_stats);
    }
}
