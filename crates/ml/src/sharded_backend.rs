//! Multi-device backend: the pattern runs row-sharded across a
//! [`DeviceGroup`] through [`ShardedExecutor`]; BLAS-1 stays
//! operator-level on the group's root (first alive) device, like a real
//! data-parallel solver keeping its scalars and search directions on one
//! rank.
//!
//! Solver-visible numerics are **bit-identical for any shard count** (the
//! executor's canonical epilogue reduction — see `fusedml_core::sharded`),
//! which is what lets the runtime reshard across survivors after a device
//! loss and resume from a checkpoint without perturbing convergence.

use crate::ops::{try_device_map2, Backend, BackendStats};
use fusedml_blas::level1;
use fusedml_core::{PatternInstance, PatternSpec, ShardedExecutor};
use fusedml_gpu_sim::{DeviceError, DeviceGroup, Gpu, GpuBuffer, LaunchStats, PoolStats};
use fusedml_matrix::CsrMatrix;

/// [`Backend`] over a sharded multi-device group (sparse matrices only —
/// the paper's multi-device regime is the large sparse one).
pub struct ShardedBackend<'g> {
    group: &'g DeviceGroup,
    /// First alive device at construction: holds the solver's vectors and
    /// runs BLAS-1.
    root: &'g Gpu,
    exec: ShardedExecutor<'g>,
    scalar: GpuBuffer,
    stats: BackendStats,
    /// Root-device pool snapshot at construction / last reset.
    pool_base: PoolStats,
}

impl<'g> ShardedBackend<'g> {
    /// Shard `x` across the group's alive devices. Fails typed when no
    /// device is alive (the recovery ladder degrades instead of aborting).
    pub fn try_new_sparse(group: &'g DeviceGroup, x: &CsrMatrix) -> Result<Self, DeviceError> {
        let alive = group.alive_ordinals();
        Self::try_new_sparse_on(group, x, &alive)
    }

    /// Shard `x` across the given device ordinals only (lost ones are
    /// skipped) — how the runtime pins a job to one survivor while keeping
    /// the canonical sharded numerics.
    pub fn try_new_sparse_on(
        group: &'g DeviceGroup,
        x: &CsrMatrix,
        ordinals: &[usize],
    ) -> Result<Self, DeviceError> {
        let exec = ShardedExecutor::try_new_on(group, x, ordinals)?;
        let root_ordinal = match ordinals.iter().copied().find(|&o| group.alive(o)) {
            Some(o) => o,
            // `try_new` above already failed in this case; keep the error
            // typed rather than unreachable!-ing on a race with fault
            // injection.
            None => {
                return Err(DeviceError::DeviceLost {
                    device: group.len().saturating_sub(1),
                    fault_index: 0,
                })
            }
        };
        let root = group.device(root_ordinal);
        Ok(ShardedBackend {
            group,
            root,
            exec,
            scalar: root.try_alloc_f64("sharded.scalar", 1)?,
            stats: BackendStats::default(),
            pool_base: root.pool_stats(),
        })
    }

    pub fn new_sparse(group: &'g DeviceGroup, x: &CsrMatrix) -> Self {
        Self::try_new_sparse(group, x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Override the executor's straggler deadline policy.
    pub fn with_straggler_policy(mut self, factor: f64, speculation: bool) -> Self {
        self.exec = self.exec.with_straggler_policy(factor, speculation);
        self
    }

    /// The group this backend runs on.
    pub fn group(&self) -> &'g DeviceGroup {
        self.group
    }

    /// Devices actually holding a shard (empty shards are skipped).
    pub fn shard_count(&self) -> usize {
        self.exec.shard_count()
    }

    /// Shards whose first attempt missed the straggler deadline.
    pub fn stragglers_detected(&self) -> usize {
        self.exec.stragglers_detected()
    }

    /// Speculative re-executions launched for straggling shards.
    pub fn speculative_reexecs(&self) -> usize {
        self.exec.speculative_reexecs()
    }

    /// Fold the executor's accumulated wall time and launches into the
    /// backend stats. Called after every matrix op, error or not, so
    /// launches performed before a fault still cost simulated time.
    fn absorb_exec(&mut self) {
        self.stats.sim_ms += self.exec.wall_ms();
        self.stats.launches += self.exec.launch_count();
        self.stats.counters.merge(&self.exec.counters_total());
        for l in &self.exec.launches {
            self.stats.occupancy_ms += l.occupancy.occupancy * l.sim_ms();
        }
        self.exec.reset();
    }

    fn charge(&mut self, s: LaunchStats) {
        self.stats.sim_ms += s.sim_ms();
        self.stats.launches += 1;
        self.stats.counters.merge(&s.counters);
        self.stats.occupancy_ms += s.occupancy.occupancy * s.sim_ms();
    }
}

impl<'g> Backend for ShardedBackend<'g> {
    type Vector = GpuBuffer;

    fn rows(&self) -> usize {
        self.exec.rows()
    }

    fn cols(&self) -> usize {
        self.exec.cols()
    }

    fn try_from_host(&mut self, name: &str, data: &[f64]) -> Result<GpuBuffer, DeviceError> {
        self.root.try_upload_f64(name, data)
    }

    fn try_zeros(&mut self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.root.try_alloc_f64(name, len)
    }

    fn to_host(&self, v: &GpuBuffer) -> Vec<f64> {
        v.to_vec_f64()
    }

    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let vh = v.map(|v| v.to_vec_f64());
        let yh = y.to_vec_f64();
        let zh = z.map(|z| z.to_vec_f64());
        let mut wh = vec![0.0; self.exec.cols()];
        let res = self
            .exec
            .try_pattern_host(spec, vh.as_deref(), &yh, zh.as_deref(), &mut wh);
        self.absorb_exec();
        res?;
        w.copy_from_f64(&wh);
        self.stats.record_instance(spec.instance());
        Ok(())
    }

    fn try_mv(&mut self, y: &GpuBuffer, out: &mut GpuBuffer) -> Result<(), DeviceError> {
        let yh = y.to_vec_f64();
        let mut ph = vec![0.0; self.exec.rows()];
        let res = self.exec.try_mv_host(&yh, &mut ph);
        self.absorb_exec();
        res?;
        out.copy_from_f64(&ph);
        Ok(())
    }

    fn try_tmv(
        &mut self,
        alpha: f64,
        u: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let uh = u.to_vec_f64();
        let mut wh = vec![0.0; self.exec.cols()];
        let res = self.exec.try_tmv_host(alpha, &uh, &mut wh);
        self.absorb_exec();
        res?;
        out.copy_from_f64(&wh);
        self.stats.record_instance(PatternInstance::XtY);
        Ok(())
    }

    fn try_axpy(&mut self, a: f64, x: &GpuBuffer, y: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_axpy(self.root, a, x, y)?;
        self.charge(s);
        Ok(())
    }

    fn try_scal(&mut self, a: f64, x: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_scal(self.root, a, x)?;
        self.charge(s);
        Ok(())
    }

    fn try_copy(&mut self, src: &GpuBuffer, dst: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_copy(self.root, src, dst)?;
        self.charge(s);
        Ok(())
    }

    fn try_ewmul(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let s = level1::try_ewmul(self.root, x, y, out)?;
        self.charge(s);
        Ok(())
    }

    fn try_dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_dot(self.root, x, y, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_nrm2_sq(&mut self, x: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_nrm2_sq(self.root, x, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_map2(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError> {
        let s = try_device_map2(self.root, x, y, out, f)?;
        self.charge(s);
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats.clone();
        s.plan = self.exec.plan_stats();
        s.pool = self.root.pool_stats().delta_since(&self.pool_base);
        s
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
        self.exec.reset_plan_stats();
        self.pool_base = self.root.pool_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lr_cg::{try_lr_cg_ckpt, LrCgOptions};
    use crate::ops::CpuBackend;
    use fusedml_gpu_sim::{DeviceSpec, FaultProfile, InterconnectSpec};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn group(n: usize) -> DeviceGroup {
        DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            n,
            InterconnectSpec::nvlink2(),
            &FaultProfile::disabled(),
        )
    }

    #[test]
    fn sharded_backend_matches_reference_and_accounts() {
        let g = group(3);
        let x = uniform_sparse(150, 80, 0.1, 91);
        let y = random_vector(80, 1);
        let v = random_vector(150, 2);
        let spec = PatternSpec::xtvxy();

        let mut b = ShardedBackend::new_sparse(&g, &x);
        assert_eq!(b.shard_count(), 3);
        let yd = b.from_host("y", &y);
        let vd = b.from_host("v", &v);
        let mut wd = b.zeros("w", 80);
        b.pattern(spec, Some(&vd), &yd, None, &mut wd);
        let w = b.to_host(&wd);

        let expect = reference::pattern_csr(1.0, &x, Some(&v), &y, 0.0, None);
        assert!(reference::rel_l2_error(&w, &expect) < 1e-11);
        let s = b.stats();
        assert_eq!(s.pattern_counts[spec.instance().formula()], 1);
        assert!(s.sim_ms > 0.0);
        assert!(s.launches >= 2 * 3, "fill + kernel per shard");
        // The broadcast and the fused-epilogue reduction went over the
        // fabric.
        assert!(g.interconnect_stats().transfers >= 4);
    }

    #[test]
    fn lr_cg_weights_are_bit_identical_across_device_counts() {
        let x = uniform_sparse(120, 16, 0.2, 92);
        let labels = random_vector(120, 3);
        let opts = LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 8,
        };
        let solve = |n: usize| {
            let g = group(n);
            let mut b = ShardedBackend::new_sparse(&g, &x);
            let r = try_lr_cg_ckpt(&mut b, &labels, opts, None).unwrap_or_else(|e| panic!("{e}"));
            r.weights
        };
        let w1 = solve(1);
        let w2 = solve(2);
        let w4 = solve(4);
        let bits = |w: &[f64]| w.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&w1), bits(&w2));
        assert_eq!(bits(&w1), bits(&w4));

        // And the solution itself is right (CPU reference solve).
        let mut cpu = CpuBackend::new_sparse(x);
        let rc = try_lr_cg_ckpt(&mut cpu, &labels, opts, None).unwrap_or_else(|e| panic!("{e}"));
        assert!(reference::rel_l2_error(&w1, &rc.weights) < 1e-9);
    }

    #[test]
    fn device_loss_mid_solve_surfaces_typed() {
        let x = uniform_sparse(100, 16, 0.2, 93);
        let labels = random_vector(100, 4);
        let g = DeviceGroup::new(
            DeviceSpec::gtx_titan(),
            2,
            InterconnectSpec::pcie_gen3_x16(),
            &FaultProfile::seeded(0x10557).with_device_loss_rate(0.05),
        );
        let mut b = ShardedBackend::new_sparse(&g, &x);
        let opts = LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 50,
        };
        let err = match try_lr_cg_ckpt(&mut b, &labels, opts, None) {
            Err(e) => e,
            Ok(_) => panic!("loss rate 0.05 over 50 iterations must kill a device"),
        };
        assert_eq!(err.device_error().map(|e| e.kind()), Some("device-lost"));
        assert!(g.alive_count() < 2);
    }
}
