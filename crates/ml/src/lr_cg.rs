//! Linear regression via conjugate gradient — Listing 1 of the paper,
//! line for line.
//!
//! Per iteration the dominant work is `q = X^T (X p) + eps * p`, the
//! `X^T(Xy) + beta*z` instantiation of the generic pattern; the remainder
//! is BLAS-1 (`axpy`, `dot`, `nrm2`), matching the Table 2 breakdown.

use crate::checkpoint::{CheckpointHandle, SolverCheckpoint};
use crate::error::SolverError;
use crate::ops::Backend;
use fusedml_core::PatternSpec;

/// Convergence/iteration report of one LR-CG run.
#[derive(Debug, Clone, PartialEq)]
pub struct LrCgResult {
    /// Learned weight vector (length n).
    pub weights: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final squared residual norm.
    pub final_nr2: f64,
    /// Initial squared residual norm.
    pub initial_nr2: f64,
    /// CG restarts taken after a non-finite residual or curvature was
    /// detected (0 on clean runs).
    pub restarts: usize,
}

/// Options mirroring Listing 1's constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrCgOptions {
    /// Ridge term `eps` (Listing 1 line 2: 0.001).
    pub eps: f64,
    /// Relative tolerance (line 2: 1e-6; target is `nr2 * tol^2`).
    pub tolerance: f64,
    /// Iteration cap (line 8: 100).
    pub max_iterations: usize,
}

impl Default for LrCgOptions {
    fn default() -> Self {
        LrCgOptions {
            eps: 0.001,
            tolerance: 1e-6,
            max_iterations: 100,
        }
    }
}

/// Solve `argmin_w ||X w - y||^2 + eps ||w||^2` by conjugate gradient on
/// the normal equations, exactly as Listing 1 stitches it from kernels.
/// `labels` is the target vector of length m.
///
/// ```
/// use fusedml_ml::{lr_cg, CpuBackend, LrCgOptions};
/// use fusedml_matrix::gen::{random_vector, uniform_sparse};
/// use fusedml_matrix::reference;
///
/// let x = uniform_sparse(200, 30, 0.2, 1);
/// let w_true = random_vector(30, 2);
/// let labels = reference::csr_mv(&x, &w_true);
/// let mut backend = CpuBackend::new_sparse(x);
/// let result = lr_cg(&mut backend, &labels, LrCgOptions { eps: 0.0, ..Default::default() });
/// assert!(reference::rel_l2_error(&result.weights, &w_true) < 1e-4);
/// ```
pub fn lr_cg<B: Backend>(backend: &mut B, labels: &[f64], opts: LrCgOptions) -> LrCgResult {
    try_lr_cg(backend, labels, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`lr_cg`]: device faults propagate as
/// [`SolverError::Device`]; non-finite residuals or curvature trigger a
/// bounded CG restart (recompute `r` from `w`) before giving up with
/// [`SolverError::NumericalBreakdown`].
pub fn try_lr_cg<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: LrCgOptions,
) -> Result<LrCgResult, SolverError> {
    try_lr_cg_ckpt(backend, labels, opts, None)
}

/// [`try_lr_cg`] with checkpoint/resume: a snapshot of the full CG state
/// (iterate, residual, direction, norms, restart count) is saved to
/// `ckpt` every `ckpt.every()` iterations, and a valid existing snapshot
/// is restored instead of starting from iteration 0 — including onto a
/// different backend tier than the one that saved it, since snapshots
/// live on the host. With `ckpt` `None` the device work is identical to
/// [`try_lr_cg`].
pub fn try_lr_cg_ckpt<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: LrCgOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<LrCgResult, SolverError> {
    const SOLVER: &str = "lr_cg";
    const MAX_RESTARTS: usize = 2;

    let m = backend.rows();
    let n = backend.cols();
    assert_eq!(labels.len(), m, "label vector must have row dimension");

    let y = backend.try_from_host("labels", labels)?;

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::LrCg {
            iteration,
            restarts,
            nr2,
            initial_nr2,
            weights,
            residual,
            direction,
        } if weights.len() == n
            && residual.len() == n
            && direction.len() == n
            && nr2.is_finite()
            && initial_nr2.is_finite() =>
        {
            Some((
                iteration,
                restarts,
                nr2,
                initial_nr2,
                weights,
                residual,
                direction,
            ))
        }
        _ => None,
    });

    let (mut w, mut r, mut p, mut nr2, initial_nr2, mut i, mut restarts) = match resume {
        Some((iteration, restarts, nr2, initial_nr2, weights, residual, direction)) => {
            let w = backend.try_from_host("w", &weights)?;
            let r = backend.try_from_host("r", &residual)?;
            let p = backend.try_from_host("p", &direction)?;
            if let Some(h) = ckpt {
                h.note_resume(iteration);
            }
            (w, r, p, nr2, initial_nr2, iteration, restarts)
        }
        None => {
            // r = -(t(V) %*% y)
            let mut r = backend.try_zeros("r", n)?;
            backend.try_tmv(-1.0, &y, &mut r)?;

            // p = -r
            let mut p = backend.try_zeros("p", n)?;
            backend.try_copy(&r, &mut p)?;
            backend.try_scal(-1.0, &mut p)?;

            // nr2 = sum(r * r)
            let nr2 = backend.try_nrm2_sq(&r)?;
            if !nr2.is_finite() {
                return Err(SolverError::breakdown(
                    SOLVER,
                    0,
                    format!("initial residual norm^2 is {nr2}"),
                ));
            }
            let w = backend.try_zeros("w", n)?;
            (w, r, p, nr2, nr2, 0, 0)
        }
    };
    let nr2_target = initial_nr2 * opts.tolerance * opts.tolerance;
    let mut q = backend.try_zeros("q", n)?;

    // Rebuild the CG state from the current iterate: r = X^T(Xw) + eps w
    // - X^T y, p = -r. Used after a non-finite value is detected; bails
    // out when the iterate itself is already contaminated.
    macro_rules! restart_or_bail {
        ($detail:expr) => {{
            restarts += 1;
            if restarts > MAX_RESTARTS {
                return Err(SolverError::breakdown(SOLVER, i, $detail));
            }
            backend.try_pattern(
                PatternSpec::xtxy_plus_bz(opts.eps),
                None,
                &w,
                Some(&w),
                &mut q,
            )?;
            backend.try_tmv(-1.0, &y, &mut r)?;
            backend.try_axpy(1.0, &q, &mut r)?;
            backend.try_copy(&r, &mut p)?;
            backend.try_scal(-1.0, &mut p)?;
            nr2 = backend.try_nrm2_sq(&r)?;
            if !nr2.is_finite() {
                // The iterate is contaminated; a restart cannot recover.
                return Err(SolverError::breakdown(
                    SOLVER,
                    i,
                    format!("residual norm^2 is {nr2} after restart"),
                ));
            }
            continue;
        }};
    }

    while i < opts.max_iterations && nr2 > nr2_target {
        let mut span = fusedml_trace::wall_span("solver", "lr_cg.iter", "host");
        span.arg("iter", i);
        span.arg("nr2", nr2);

        // q = (t(V) %*% (V %*% p)) + eps * p  -- THE pattern.
        backend.try_pattern(
            PatternSpec::xtxy_plus_bz(opts.eps),
            None,
            &p,
            Some(&p),
            &mut q,
        )?;

        // alpha = nr2 / (t(p) %*% q)
        let pq = backend.try_dot(&p, &q)?;
        if !pq.is_finite() {
            restart_or_bail!(format!("curvature p.q is {pq}"));
        }
        if pq <= 0.0 {
            break; // numerically exhausted search direction
        }
        let alpha = nr2 / pq;

        // w = w + alpha * p
        backend.try_axpy(alpha, &p, &mut w)?;
        // r = r + alpha * q
        backend.try_axpy(alpha, &q, &mut r)?;
        let old_nr2 = nr2;
        nr2 = backend.try_nrm2_sq(&r)?;
        if !nr2.is_finite() {
            restart_or_bail!(format!("residual norm^2 is {nr2}"));
        }
        let beta = nr2 / old_nr2;
        // p = -r + beta * p
        backend.try_scal(beta, &mut p)?;
        backend.try_axpy(-1.0, &r, &mut p)?;
        i += 1;

        if let Some(h) = ckpt {
            if h.due(i) {
                h.save(SolverCheckpoint::LrCg {
                    iteration: i,
                    restarts,
                    nr2,
                    initial_nr2,
                    weights: backend.to_host(&w),
                    residual: backend.to_host(&r),
                    direction: backend.to_host(&p),
                });
            }
        }
    }

    Ok(LrCgResult {
        weights: backend.to_host(&w),
        iterations: i,
        final_nr2: nr2,
        initial_nr2,
        restarts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{BaselineBackend, CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    /// Labels generated from known weights: CG must recover them.
    fn synthetic_problem(
        m: usize,
        n: usize,
        seed: u64,
    ) -> (fusedml_matrix::CsrMatrix, Vec<f64>, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.2, seed);
        let w_true = random_vector(n, seed + 1);
        let labels = reference::csr_mv(&x, &w_true);
        (x, w_true, labels)
    }

    #[test]
    fn recovers_true_weights_on_cpu() {
        let (x, w_true, labels) = synthetic_problem(300, 40, 101);
        let mut cpu = CpuBackend::new_sparse(x);
        let res = lr_cg(
            &mut cpu,
            &labels,
            LrCgOptions {
                eps: 0.0,
                ..Default::default()
            },
        );
        assert!(res.iterations > 0);
        assert!(
            reference::rel_l2_error(&res.weights, &w_true) < 1e-4,
            "iter {} err {}",
            res.iterations,
            reference::rel_l2_error(&res.weights, &w_true)
        );
    }

    #[test]
    fn fused_and_baseline_agree_with_cpu() {
        let g = gpu();
        let (x, _, labels) = synthetic_problem(200, 30, 102);
        let opts = LrCgOptions {
            max_iterations: 20,
            ..Default::default()
        };

        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = lr_cg(&mut cpu, &labels, opts);

        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = lr_cg(&mut fused, &labels, opts);

        let mut base = BaselineBackend::new_sparse(&g, &x);
        let r_base = lr_cg(&mut base, &labels, opts);

        assert_eq!(r_cpu.iterations, r_fused.iterations);
        assert_eq!(r_cpu.iterations, r_base.iterations);
        assert!(reference::rel_l2_error(&r_fused.weights, &r_cpu.weights) < 1e-8);
        assert!(reference::rel_l2_error(&r_base.weights, &r_cpu.weights) < 1e-8);
    }

    #[test]
    fn residual_decreases() {
        let (x, _, labels) = synthetic_problem(250, 50, 103);
        let mut cpu = CpuBackend::new_sparse(x);
        let res = lr_cg(&mut cpu, &labels, LrCgOptions::default());
        assert!(res.final_nr2 < res.initial_nr2 * 1e-6);
    }

    #[test]
    fn pattern_instrumentation_matches_iterations() {
        let g = gpu();
        let (x, _, labels) = synthetic_problem(120, 25, 104);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let opts = LrCgOptions {
            max_iterations: 7,
            tolerance: 0.0,
            ..Default::default()
        };
        let res = lr_cg(&mut fused, &labels, opts);
        assert_eq!(res.iterations, 7);
        let stats = fused.stats();
        // One X^T y at init, one XtXy+bz per iteration.
        assert_eq!(stats.pattern_counts["a * X^T x y"], 1);
        assert_eq!(stats.pattern_counts["X^T x (X x y) + b * z"], 7);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
        use crate::checkpoint::CheckpointHandle;
        let (x, _, labels) = synthetic_problem(220, 35, 107);
        let opts = LrCgOptions {
            max_iterations: 10,
            tolerance: 0.0,
            ..Default::default()
        };

        let mut cpu = CpuBackend::new_sparse(x.clone());
        let full = lr_cg(&mut cpu, &labels, opts);

        // Run 4 iterations with snapshots every 2, as if a fault killed
        // the run, then resume on a *fresh* backend for the remainder.
        let h = CheckpointHandle::new(2);
        let mut first = CpuBackend::new_sparse(x.clone());
        let partial = try_lr_cg_ckpt(
            &mut first,
            &labels,
            LrCgOptions {
                max_iterations: 4,
                ..opts
            },
            Some(&h),
        )
        .expect("partial run");
        assert_eq!(partial.iterations, 4);
        assert_eq!(h.saves(), 2);
        assert_eq!(h.latest().map(|c| c.iteration()), Some(4));

        let mut second = CpuBackend::new_sparse(x);
        let resumed = try_lr_cg_ckpt(&mut second, &labels, opts, Some(&h)).expect("resumed run");
        assert_eq!(h.last_resume(), Some(4));
        assert_eq!(resumed.iterations, full.iterations);
        assert_eq!(
            resumed.weights, full.weights,
            "resume must not perturb numerics"
        );
        assert_eq!(resumed.final_nr2, full.final_nr2);
        assert_eq!(resumed.initial_nr2, full.initial_nr2);
    }

    #[test]
    fn checkpoint_handle_none_matches_plain_try_run() {
        let g = gpu();
        let (x, _, labels) = synthetic_problem(150, 20, 108);
        let opts = LrCgOptions {
            max_iterations: 8,
            ..Default::default()
        };
        let mut a = FusedBackend::new_sparse(&g, &x);
        let plain = try_lr_cg(&mut a, &labels, opts).expect("plain");
        let stats_a = a.stats();
        let mut b = FusedBackend::new_sparse(&g, &x);
        let with_none = try_lr_cg_ckpt(&mut b, &labels, opts, None).expect("ckpt none");
        assert_eq!(plain, with_none);
        assert_eq!(stats_a.launches, b.stats().launches, "no extra device work");
    }

    #[test]
    fn dense_backend_works_too() {
        let g = gpu();
        let x = fusedml_matrix::gen::dense_random(150, 28, 105);
        let w_true = random_vector(28, 106);
        let labels = reference::dense_mv(&x, &w_true);
        let mut fused = FusedBackend::new_dense(&g, &x);
        let res = lr_cg(
            &mut fused,
            &labels,
            LrCgOptions {
                eps: 0.0,
                ..Default::default()
            },
        );
        assert!(reference::rel_l2_error(&res.weights, &w_true) < 1e-4);
    }
}
