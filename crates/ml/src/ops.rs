//! Execution backends for the ML algorithms.
//!
//! Every algorithm in this crate (Listing 1's LR-CG, logistic regression,
//! SVM, GLM, HITS) is written once against the [`Backend`] trait and can
//! run on:
//! * [`FusedBackend`] — pattern evaluations go through the paper's fused
//!   kernels; BLAS-1 stays operator-level (exactly the `ours-end2end`
//!   configuration of §4.4);
//! * [`BaselineBackend`] — everything operator-level through the
//!   cuBLAS/cuSPARSE-style engine (`cu-end2end`);
//! * [`CpuBackend`] — single-address-space reference implementation with an
//!   analytical MKL-style clock (the CPU rows of Tables 5/6).
//!
//! Backends instrument which Table-1 pattern instantiations execute, which
//! is how the Table 1 experiment regenerates the paper's matrix.

use fusedml_blas::{level1, BaselineEngine, CpuEngine, Flavor, GpuCsr, GpuDense, SpmvStyle};
use fusedml_core::{CpuFusedPattern, FusedExecutor, PatternInstance, PatternSpec, PlanCacheStats};
use fusedml_gpu_sim::{AggregationBreakdown, Counters, DeviceError, Gpu, GpuBuffer, PoolStats};
use fusedml_matrix::{reference, CsrMatrix, DenseMatrix};
use std::collections::BTreeMap;

/// Cumulative execution statistics of a backend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BackendStats {
    /// Simulated (or modelled) milliseconds of device/CPU compute.
    pub sim_ms: f64,
    /// Kernel launches (0 for the CPU backend).
    pub launches: usize,
    /// How many times each Table-1 instantiation was evaluated.
    pub pattern_counts: BTreeMap<&'static str, usize>,
    /// Hardware event counters merged over every launch (all-zero for the
    /// CPU backend, which has no counted microarchitecture).
    pub counters: Counters,
    /// Time-weighted achieved-occupancy integral in milliseconds: the sum
    /// of `occupancy * sim_ms` over launches. Divide by [`Self::sim_ms`]
    /// (see [`Self::mean_occupancy`]) for the mean occupancy of the run.
    pub occupancy_ms: f64,
    /// Launch-plan cache traffic of the run (all-zero for backends without
    /// a memoizing planner: the baseline engine and the CPU tier).
    pub plan: PlanCacheStats,
    /// Device buffer-pool traffic attributable to this backend since its
    /// construction or last `reset_stats` (all-zero on the CPU tier).
    pub pool: PoolStats,
}

impl BackendStats {
    pub(crate) fn record_instance(&mut self, inst: PatternInstance) {
        *self.pattern_counts.entry(inst.formula()).or_insert(0) += 1;
    }

    /// Where this run's reduction work landed in the §3.1 aggregation
    /// hierarchy (register/shuffle vs. shared vs. global-atomic).
    pub fn aggregation_breakdown(&self) -> AggregationBreakdown {
        self.counters.aggregation_breakdown()
    }

    /// Time-weighted mean achieved occupancy over the run's launches, in
    /// [0, 1]; 0 for the CPU backend (no occupancy concept).
    pub fn mean_occupancy(&self) -> f64 {
        if self.sim_ms > 0.0 {
            (self.occupancy_ms / self.sim_ms).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// A device- (or host-) resident matrix plus the vector arithmetic needed
/// by the iterative algorithms.
///
/// Every operation exists in two forms: a required fallible `try_*` method
/// that surfaces [`DeviceError`]s (injected faults, capacity exhaustion,
/// watchdog trips) to the caller, and a provided infallible method of the
/// historical name that panics on faults. Solvers that participate in the
/// runtime's recovery ladder call the `try_*` form; quick scripts and tests
/// keep the infallible form. The CPU backend never fails.
#[allow(clippy::wrong_self_convention)] // from_host is an upload, not a conversion
pub trait Backend {
    /// Backend-native vector handle.
    type Vector;

    fn rows(&self) -> usize;
    fn cols(&self) -> usize;

    fn try_from_host(&mut self, name: &str, data: &[f64]) -> Result<Self::Vector, DeviceError>;
    fn try_zeros(&mut self, name: &str, len: usize) -> Result<Self::Vector, DeviceError>;
    fn to_host(&self, v: &Self::Vector) -> Vec<f64>;

    /// `w = alpha * X^T (v ⊙ (X y)) + beta * z` — Equation 1.
    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&Self::Vector>,
        y: &Self::Vector,
        z: Option<&Self::Vector>,
        w: &mut Self::Vector,
    ) -> Result<(), DeviceError>;

    /// `out = X * y` (length m).
    fn try_mv(&mut self, y: &Self::Vector, out: &mut Self::Vector) -> Result<(), DeviceError>;

    /// `out = alpha * X^T * u` (length n) — Table 1's `alpha * X^T y`.
    fn try_tmv(
        &mut self,
        alpha: f64,
        u: &Self::Vector,
        out: &mut Self::Vector,
    ) -> Result<(), DeviceError>;

    fn try_axpy(
        &mut self,
        a: f64,
        x: &Self::Vector,
        y: &mut Self::Vector,
    ) -> Result<(), DeviceError>;
    fn try_scal(&mut self, a: f64, x: &mut Self::Vector) -> Result<(), DeviceError>;
    fn try_copy(&mut self, src: &Self::Vector, dst: &mut Self::Vector) -> Result<(), DeviceError>;
    fn try_ewmul(
        &mut self,
        x: &Self::Vector,
        y: &Self::Vector,
        out: &mut Self::Vector,
    ) -> Result<(), DeviceError>;
    fn try_dot(&mut self, x: &Self::Vector, y: &Self::Vector) -> Result<f64, DeviceError>;
    fn try_nrm2_sq(&mut self, x: &Self::Vector) -> Result<f64, DeviceError>;

    /// Element-wise map `out[i] = f(x[i], y[i])` — the per-element link /
    /// loss-derivative computations of LogReg/SVM/GLM (a single fused
    /// element-wise kernel on device backends).
    fn try_map2(
        &mut self,
        x: &Self::Vector,
        y: &Self::Vector,
        out: &mut Self::Vector,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError>;

    fn stats(&self) -> BackendStats;
    fn reset_stats(&mut self);

    // ------ provided infallible forms (panic on device faults) ------

    fn from_host(&mut self, name: &str, data: &[f64]) -> Self::Vector {
        self.try_from_host(name, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn zeros(&mut self, name: &str, len: usize) -> Self::Vector {
        self.try_zeros(name, len).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`Backend::try_pattern`].
    fn pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&Self::Vector>,
        y: &Self::Vector,
        z: Option<&Self::Vector>,
        w: &mut Self::Vector,
    ) {
        self.try_pattern(spec, v, y, z, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn mv(&mut self, y: &Self::Vector, out: &mut Self::Vector) {
        self.try_mv(y, out).unwrap_or_else(|e| panic!("{e}"))
    }

    fn tmv(&mut self, alpha: f64, u: &Self::Vector, out: &mut Self::Vector) {
        self.try_tmv(alpha, u, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn axpy(&mut self, a: f64, x: &Self::Vector, y: &mut Self::Vector) {
        self.try_axpy(a, x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    fn scal(&mut self, a: f64, x: &mut Self::Vector) {
        self.try_scal(a, x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn copy(&mut self, src: &Self::Vector, dst: &mut Self::Vector) {
        self.try_copy(src, dst).unwrap_or_else(|e| panic!("{e}"))
    }

    fn ewmul(&mut self, x: &Self::Vector, y: &Self::Vector, out: &mut Self::Vector) {
        self.try_ewmul(x, y, out).unwrap_or_else(|e| panic!("{e}"))
    }

    fn dot(&mut self, x: &Self::Vector, y: &Self::Vector) -> f64 {
        self.try_dot(x, y).unwrap_or_else(|e| panic!("{e}"))
    }

    fn nrm2_sq(&mut self, x: &Self::Vector) -> f64 {
        self.try_nrm2_sq(x).unwrap_or_else(|e| panic!("{e}"))
    }

    fn map2(
        &mut self,
        x: &Self::Vector,
        y: &Self::Vector,
        out: &mut Self::Vector,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) {
        self.try_map2(x, y, out, f)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The matrix a device backend operates on.
pub enum DeviceMatrix {
    Sparse(GpuCsr),
    Dense(GpuDense),
}

impl DeviceMatrix {
    pub fn rows(&self) -> usize {
        match self {
            DeviceMatrix::Sparse(x) => x.rows,
            DeviceMatrix::Dense(x) => x.rows,
        }
    }

    pub fn cols(&self) -> usize {
        match self {
            DeviceMatrix::Sparse(x) => x.cols,
            DeviceMatrix::Dense(x) => x.cols,
        }
    }

    pub fn size_bytes(&self) -> u64 {
        match self {
            DeviceMatrix::Sparse(x) => x.size_bytes(),
            DeviceMatrix::Dense(x) => x.size_bytes(),
        }
    }
}

// ---------------------------------------------------------------------
// Fused backend
// ---------------------------------------------------------------------

/// Pattern evaluations through the fused kernels; BLAS-1 operator-level.
pub struct FusedBackend<'g> {
    gpu: &'g Gpu,
    matrix: DeviceMatrix,
    exec: FusedExecutor<'g>,
    scalar: GpuBuffer,
    stats: BackendStats,
    /// Pool snapshot at construction / last reset; `stats()` reports the
    /// delta so backends sharing one device don't claim each other's
    /// traffic.
    pool_base: PoolStats,
}

impl<'g> FusedBackend<'g> {
    /// Upload and wrap a sparse matrix, reporting device faults (the
    /// runtime's degradation ladder catches these at construction).
    pub fn try_new_sparse(gpu: &'g Gpu, x: &CsrMatrix) -> Result<Self, DeviceError> {
        Self::try_from_matrix(gpu, DeviceMatrix::Sparse(GpuCsr::try_upload(gpu, "X", x)?))
    }

    /// Upload and wrap a dense matrix, reporting device faults.
    pub fn try_new_dense(gpu: &'g Gpu, x: &DenseMatrix) -> Result<Self, DeviceError> {
        Self::try_from_matrix(gpu, DeviceMatrix::Dense(GpuDense::try_upload(gpu, "X", x)?))
    }

    pub fn try_from_matrix(gpu: &'g Gpu, matrix: DeviceMatrix) -> Result<Self, DeviceError> {
        Ok(FusedBackend {
            gpu,
            matrix,
            exec: FusedExecutor::new(gpu),
            scalar: gpu.try_alloc_f64("fused.scalar", 1)?,
            stats: BackendStats::default(),
            pool_base: gpu.pool_stats(),
        })
    }

    pub fn new_sparse(gpu: &'g Gpu, x: &CsrMatrix) -> Self {
        Self::try_new_sparse(gpu, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn new_dense(gpu: &'g Gpu, x: &DenseMatrix) -> Self {
        Self::try_new_dense(gpu, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn from_matrix(gpu: &'g Gpu, matrix: DeviceMatrix) -> Self {
        Self::try_from_matrix(gpu, matrix).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn matrix(&self) -> &DeviceMatrix {
        &self.matrix
    }

    fn absorb_exec(&mut self) {
        self.stats.sim_ms += self.exec.total_sim_ms();
        self.stats.launches += self.exec.launch_count();
        self.stats.counters.merge(&self.exec.counters_total());
        for l in &self.exec.launches {
            self.stats.occupancy_ms += l.occupancy.occupancy * l.sim_ms();
        }
        self.exec.reset();
    }

    fn charge(&mut self, s: fusedml_gpu_sim::LaunchStats) {
        self.stats.sim_ms += s.sim_ms();
        self.stats.launches += 1;
        self.stats.counters.merge(&s.counters);
        self.stats.occupancy_ms += s.occupancy.occupancy * s.sim_ms();
    }
}

impl<'g> Backend for FusedBackend<'g> {
    type Vector = GpuBuffer;

    fn rows(&self) -> usize {
        self.matrix.rows()
    }

    fn cols(&self) -> usize {
        self.matrix.cols()
    }

    fn try_from_host(&mut self, name: &str, data: &[f64]) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_upload_f64(name, data)
    }

    fn try_zeros(&mut self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_alloc_f64(name, len)
    }

    fn to_host(&self, v: &GpuBuffer) -> Vec<f64> {
        v.to_vec_f64()
    }

    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let res = match &self.matrix {
            DeviceMatrix::Sparse(x) => self.exec.try_pattern_sparse(spec, x, v, y, z, w),
            DeviceMatrix::Dense(x) => self.exec.try_pattern_dense(spec, x, v, y, z, w),
        };
        // Launches performed before the fault still cost simulated time.
        self.absorb_exec();
        res?;
        self.stats.record_instance(spec.instance());
        Ok(())
    }

    fn try_mv(&mut self, y: &GpuBuffer, out: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = match &self.matrix {
            DeviceMatrix::Sparse(x) => fusedml_blas::try_csrmv(
                self.gpu,
                x,
                y,
                out,
                SpmvStyle::Vector {
                    vs: fusedml_blas::vector_size_for_mean_nnz(x.mean_nnz_per_row()),
                },
            )?,
            DeviceMatrix::Dense(x) => fusedml_blas::try_gemv(self.gpu, x, y, out)?,
        };
        self.charge(s);
        Ok(())
    }

    fn try_tmv(
        &mut self,
        alpha: f64,
        u: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        match &self.matrix {
            DeviceMatrix::Sparse(x) => {
                let res = self.exec.try_xt_y_sparse(alpha, x, u, out);
                self.absorb_exec();
                res?;
            }
            DeviceMatrix::Dense(x) => {
                // The paper does not fuse dense X^T y (cuBLAS is already
                // good there, §4): operator-level.
                for s in fusedml_blas::try_gemv_t(self.gpu, x, u, out)? {
                    self.charge(s);
                }
                if alpha != 1.0 {
                    let s = level1::try_scal(self.gpu, alpha, out)?;
                    self.charge(s);
                }
            }
        }
        self.stats.record_instance(PatternInstance::XtY);
        Ok(())
    }

    fn try_axpy(&mut self, a: f64, x: &GpuBuffer, y: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_axpy(self.gpu, a, x, y)?;
        self.charge(s);
        Ok(())
    }

    fn try_scal(&mut self, a: f64, x: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_scal(self.gpu, a, x)?;
        self.charge(s);
        Ok(())
    }

    fn try_copy(&mut self, src: &GpuBuffer, dst: &mut GpuBuffer) -> Result<(), DeviceError> {
        let s = level1::try_copy(self.gpu, src, dst)?;
        self.charge(s);
        Ok(())
    }

    fn try_ewmul(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let s = level1::try_ewmul(self.gpu, x, y, out)?;
        self.charge(s);
        Ok(())
    }

    fn try_dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_dot(self.gpu, x, y, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_nrm2_sq(&mut self, x: &GpuBuffer) -> Result<f64, DeviceError> {
        let (d, s) = level1::try_nrm2_sq(self.gpu, x, &self.scalar)?;
        self.charge(s);
        Ok(d)
    }

    fn try_map2(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError> {
        let s = try_device_map2(self.gpu, x, y, out, f)?;
        self.charge(s);
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats.clone();
        s.plan = self.exec.plan_stats();
        s.pool = self.gpu.pool_stats().delta_since(&self.pool_base);
        s
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
        self.exec.reset_plan_stats();
        self.pool_base = self.gpu.pool_stats();
    }
}

/// Element-wise `out[i] = f(x[i], y[i])` device kernel shared by the GPU
/// backends (models the single fused element-wise kernel a real system
/// would generate for link functions). `pub` so out-of-crate backends —
/// the runtime's streamed backend — reuse the same kernel instead of
/// forking it.
pub fn try_device_map2(
    gpu: &Gpu,
    x: &GpuBuffer,
    y: &GpuBuffer,
    out: &GpuBuffer,
    f: &(dyn Fn(f64, f64) -> f64 + Sync),
) -> Result<fusedml_gpu_sim::LaunchStats, DeviceError> {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), out.len());
    let n = x.len();
    let grid = n.div_ceil(256).clamp(1, 1024);
    gpu.try_launch(
        "map2",
        fusedml_gpu_sim::LaunchConfig::new(grid, 256).with_regs(20),
        |blk| {
            let grid_threads = blk.grid_dim() * blk.block_dim();
            blk.each_warp(|w| {
                let mut base = w.gtid(0);
                while base < n {
                    let xs = w.load_f64(x, |lane| (base + lane < n).then_some(base + lane));
                    let ys = w.load_f64(y, |lane| (base + lane < n).then_some(base + lane));
                    w.flops(4 * (n - base).min(32) as u64);
                    w.store_f64(out, |lane| {
                        (base + lane < n).then(|| (base + lane, f(xs[lane], ys[lane])))
                    });
                    base += grid_threads;
                }
            });
        },
    )
}

// ---------------------------------------------------------------------
// Baseline backend
// ---------------------------------------------------------------------

/// How the baseline handles the transposed products inside an iterative
/// algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransposePolicy {
    /// Opaque library semantics: the transposed SpMV rebuilds `X^T` on
    /// every call (what the pattern-level figures measure).
    PerCall,
    /// The hand-optimized pipeline: `csr2csc` once, keep both `X` and
    /// `X^T` on the device (paying the memory), reuse across iterations —
    /// the amortization strategy Fig. 2's second axis studies.
    CachedOnce,
}

/// Everything operator-level through [`BaselineEngine`] (`cu-end2end`).
pub struct BaselineBackend<'g> {
    gpu: &'g Gpu,
    matrix: DeviceMatrix,
    engine: BaselineEngine<'g>,
    policy: TransposePolicy,
    /// Cached `X^T` under [`TransposePolicy::CachedOnce`].
    xt: Option<GpuCsr>,
    /// Scratch of length m for pattern intermediates.
    tmp_p: GpuBuffer,
    stats: BackendStats,
    /// Pool snapshot at construction / last reset (see `FusedBackend`).
    pool_base: PoolStats,
}

impl<'g> BaselineBackend<'g> {
    /// Upload and wrap a sparse matrix, reporting device faults.
    pub fn try_new_sparse(gpu: &'g Gpu, x: &CsrMatrix) -> Result<Self, DeviceError> {
        Self::try_from_matrix(gpu, DeviceMatrix::Sparse(GpuCsr::try_upload(gpu, "X", x)?))
    }

    /// Upload and wrap a dense matrix, reporting device faults.
    pub fn try_new_dense(gpu: &'g Gpu, x: &DenseMatrix) -> Result<Self, DeviceError> {
        Self::try_from_matrix(gpu, DeviceMatrix::Dense(GpuDense::try_upload(gpu, "X", x)?))
    }

    pub fn try_from_matrix(gpu: &'g Gpu, matrix: DeviceMatrix) -> Result<Self, DeviceError> {
        let tmp_p = gpu.try_alloc_f64("baseline.tmp_p", matrix.rows())?;
        Ok(BaselineBackend {
            gpu,
            matrix,
            engine: BaselineEngine::try_new(gpu, Flavor::CuLibs)?,
            policy: TransposePolicy::PerCall,
            xt: None,
            tmp_p,
            stats: BackendStats::default(),
            pool_base: gpu.pool_stats(),
        })
    }

    pub fn new_sparse(gpu: &'g Gpu, x: &CsrMatrix) -> Self {
        Self::try_new_sparse(gpu, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn new_dense(gpu: &'g Gpu, x: &DenseMatrix) -> Self {
        Self::try_new_dense(gpu, x).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn from_matrix(gpu: &'g Gpu, matrix: DeviceMatrix) -> Self {
        Self::try_from_matrix(gpu, matrix).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Switch the transposed-product strategy (see [`TransposePolicy`]).
    pub fn with_transpose_policy(mut self, policy: TransposePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn absorb(&mut self) {
        self.stats.sim_ms += self.engine.total_sim_ms();
        self.stats.launches += self.engine.launch_count();
        self.stats.counters.merge(&self.engine.counters_total());
        for l in &self.engine.launches {
            self.stats.occupancy_ms += l.occupancy.occupancy * l.sim_ms();
        }
        self.engine.reset();
    }

    /// `w = X^T * u` for the sparse matrix, honoring the policy.
    fn sparse_tmv_into(&mut self, u: &GpuBuffer, w: &GpuBuffer) -> Result<(), DeviceError> {
        let DeviceMatrix::Sparse(x) = &self.matrix else {
            unreachable!("sparse_tmv_into on dense matrix")
        };
        let x = x.clone();
        match self.policy {
            TransposePolicy::PerCall => {
                self.engine.try_csrmv_t(&x, u, w)?;
            }
            TransposePolicy::CachedOnce => {
                let xt = if let Some(xt) = &self.xt {
                    xt.clone()
                } else {
                    let (xt, launches) = fusedml_blas::try_csr2csc_device(self.gpu, &x)?;
                    for l in &launches {
                        self.stats.sim_ms += l.sim_ms();
                        self.stats.launches += 1;
                        self.stats.counters.merge(&l.counters);
                        self.stats.occupancy_ms += l.occupancy.occupancy * l.sim_ms();
                    }
                    self.xt.insert(xt).clone()
                };
                let s = fusedml_blas::try_csrmv_t_pretransposed(self.gpu, &xt, u, w)?;
                self.stats.sim_ms += s.sim_ms();
                self.stats.launches += 1;
                self.stats.counters.merge(&s.counters);
                self.stats.occupancy_ms += s.occupancy.occupancy * s.sim_ms();
            }
        }
        Ok(())
    }
}

impl<'g> Backend for BaselineBackend<'g> {
    type Vector = GpuBuffer;

    fn rows(&self) -> usize {
        self.matrix.rows()
    }

    fn cols(&self) -> usize {
        self.matrix.cols()
    }

    fn try_from_host(&mut self, name: &str, data: &[f64]) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_upload_f64(name, data)
    }

    fn try_zeros(&mut self, name: &str, len: usize) -> Result<GpuBuffer, DeviceError> {
        self.gpu.try_alloc_f64(name, len)
    }

    fn to_host(&self, v: &GpuBuffer) -> Vec<f64> {
        v.to_vec_f64()
    }

    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&GpuBuffer>,
        y: &GpuBuffer,
        z: Option<&GpuBuffer>,
        w: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let tmp = self.tmp_p.clone();
        let res = (|| -> Result<(), DeviceError> {
            match &self.matrix {
                DeviceMatrix::Sparse(x) => {
                    let x = x.clone();
                    self.engine.try_csrmv(&x, y, &tmp)?;
                    if let Some(v) = v {
                        self.engine.try_ewmul(&tmp, v, &tmp)?;
                    }
                    self.absorb();
                    self.sparse_tmv_into(&tmp, w)?;
                    if spec.alpha != 1.0 {
                        self.engine.try_scal(spec.alpha, w)?;
                    }
                    if let Some(z) = z {
                        self.engine.try_axpy(spec.beta, z, w)?;
                    }
                }
                DeviceMatrix::Dense(x) => {
                    let x = x.clone();
                    self.engine
                        .try_pattern_dense(spec.alpha, &x, v, y, spec.beta, z, w, &tmp)?;
                }
            }
            Ok(())
        })();
        self.absorb();
        res?;
        self.stats.record_instance(spec.instance());
        Ok(())
    }

    fn try_mv(&mut self, y: &GpuBuffer, out: &mut GpuBuffer) -> Result<(), DeviceError> {
        let res = match &self.matrix {
            DeviceMatrix::Sparse(x) => {
                let x = x.clone();
                self.engine.try_csrmv(&x, y, out)
            }
            DeviceMatrix::Dense(x) => {
                let x = x.clone();
                self.engine.try_gemv(&x, y, out)
            }
        };
        self.absorb();
        res
    }

    fn try_tmv(
        &mut self,
        alpha: f64,
        u: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let res = (|| -> Result<(), DeviceError> {
            match &self.matrix {
                DeviceMatrix::Sparse(_) => {
                    self.sparse_tmv_into(u, out)?;
                }
                DeviceMatrix::Dense(x) => {
                    let x = x.clone();
                    self.engine.try_gemv_t(&x, u, out)?;
                }
            }
            if alpha != 1.0 {
                self.engine.try_scal(alpha, out)?;
            }
            Ok(())
        })();
        self.absorb();
        res?;
        self.stats.record_instance(PatternInstance::XtY);
        Ok(())
    }

    fn try_axpy(&mut self, a: f64, x: &GpuBuffer, y: &mut GpuBuffer) -> Result<(), DeviceError> {
        let res = self.engine.try_axpy(a, x, y);
        self.absorb();
        res
    }

    fn try_scal(&mut self, a: f64, x: &mut GpuBuffer) -> Result<(), DeviceError> {
        let res = self.engine.try_scal(a, x);
        self.absorb();
        res
    }

    fn try_copy(&mut self, src: &GpuBuffer, dst: &mut GpuBuffer) -> Result<(), DeviceError> {
        let res = self.engine.try_copy(src, dst);
        self.absorb();
        res
    }

    fn try_ewmul(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
    ) -> Result<(), DeviceError> {
        let res = self.engine.try_ewmul(x, y, out);
        self.absorb();
        res
    }

    fn try_dot(&mut self, x: &GpuBuffer, y: &GpuBuffer) -> Result<f64, DeviceError> {
        let res = self.engine.try_dot(x, y);
        self.absorb();
        res
    }

    fn try_nrm2_sq(&mut self, x: &GpuBuffer) -> Result<f64, DeviceError> {
        let res = self.engine.try_nrm2_sq(x);
        self.absorb();
        res
    }

    fn try_map2(
        &mut self,
        x: &GpuBuffer,
        y: &GpuBuffer,
        out: &mut GpuBuffer,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError> {
        let s = try_device_map2(self.gpu, x, y, out, f)?;
        self.stats.sim_ms += s.sim_ms();
        self.stats.launches += 1;
        self.stats.counters.merge(&s.counters);
        self.stats.occupancy_ms += s.occupancy.occupancy * s.sim_ms();
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        let mut s = self.stats.clone();
        s.pool = self.gpu.pool_stats().delta_since(&self.pool_base);
        s
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
        self.pool_base = self.gpu.pool_stats();
    }
}

// ---------------------------------------------------------------------
// CPU backend
// ---------------------------------------------------------------------

/// Host matrix for the CPU backend.
pub enum HostMatrix {
    Sparse(CsrMatrix),
    Dense(DenseMatrix),
}

/// Reference CPU execution with an analytical MKL-style clock.
///
/// By default pattern evaluations run the two-scan operator-by-operator
/// reference path. [`Self::with_fused_execution`] opts the backend into
/// the real fused CPU kernels (`fusedml_core::CpuFusedPattern`: SIMD
/// dispatch + deterministic multithreading), which is how the runtime's
/// recovery ladder can run its Cpu tier fused.
pub struct CpuBackend {
    matrix: HostMatrix,
    clock: CpuEngine,
    stats: BackendStats,
    fused: Option<CpuFusedPattern>,
}

impl CpuBackend {
    pub fn new_sparse(x: CsrMatrix) -> Self {
        CpuBackend {
            matrix: HostMatrix::Sparse(x),
            clock: CpuEngine::mkl_8threads(),
            stats: BackendStats::default(),
            fused: None,
        }
    }

    pub fn new_dense(x: DenseMatrix) -> Self {
        CpuBackend {
            matrix: HostMatrix::Dense(x),
            clock: CpuEngine::mkl_8threads(),
            stats: BackendStats::default(),
            fused: None,
        }
    }

    /// Run pattern evaluations through the fused single-pass CPU kernels
    /// with `threads` worker threads (runtime-dispatched executor; results
    /// are deterministic across thread counts). The analytical clock
    /// charges the one-pass fused roofline instead of the two-scan one.
    pub fn with_fused_execution(mut self, threads: usize) -> Self {
        self.fused = Some(CpuFusedPattern::new(threads));
        self
    }

    /// Name of the fused executor in use ("scalar", "avx2"), `None` when
    /// the backend runs the unfused reference path.
    pub fn fused_executor_name(&self) -> Option<&'static str> {
        self.fused.map(|f| f.executor_name())
    }

    fn absorb(&mut self) {
        self.stats.sim_ms += self.clock.total_ms;
        self.clock.reset();
    }
}

impl Backend for CpuBackend {
    type Vector = Vec<f64>;

    fn rows(&self) -> usize {
        match &self.matrix {
            HostMatrix::Sparse(x) => x.rows(),
            HostMatrix::Dense(x) => x.rows(),
        }
    }

    fn cols(&self) -> usize {
        match &self.matrix {
            HostMatrix::Sparse(x) => x.cols(),
            HostMatrix::Dense(x) => x.cols(),
        }
    }

    fn try_from_host(&mut self, _name: &str, data: &[f64]) -> Result<Vec<f64>, DeviceError> {
        Ok(data.to_vec())
    }

    fn try_zeros(&mut self, _name: &str, len: usize) -> Result<Vec<f64>, DeviceError> {
        Ok(vec![0.0; len])
    }

    fn to_host(&self, v: &Vec<f64>) -> Vec<f64> {
        v.clone()
    }

    fn try_pattern(
        &mut self,
        spec: PatternSpec,
        v: Option<&Vec<f64>>,
        y: &Vec<f64>,
        z: Option<&Vec<f64>>,
        w: &mut Vec<f64>,
    ) -> Result<(), DeviceError> {
        if let Some(fused) = self.fused {
            match &self.matrix {
                HostMatrix::Sparse(x) => {
                    self.clock.pattern_sparse_fused_ms(
                        x.rows(),
                        x.cols(),
                        x.nnz(),
                        spec.with_v,
                        spec.with_z,
                        spec.alpha != 1.0,
                    );
                    w.resize(x.cols(), 0.0);
                    fused.pattern_csr(
                        spec,
                        x,
                        v.map(|v| v.as_slice()),
                        y,
                        z.map(|z| z.as_slice()),
                        w,
                    );
                }
                HostMatrix::Dense(x) => {
                    self.clock.pattern_dense_fused_ms(
                        x.rows(),
                        x.cols(),
                        spec.with_v,
                        spec.with_z,
                        spec.alpha != 1.0,
                    );
                    w.resize(x.cols(), 0.0);
                    fused.pattern_dense(
                        spec,
                        x,
                        v.map(|v| v.as_slice()),
                        y,
                        z.map(|z| z.as_slice()),
                        w,
                    );
                }
            }
            self.absorb();
            self.stats.record_instance(spec.instance());
            return Ok(());
        }
        *w = match &self.matrix {
            HostMatrix::Sparse(x) => {
                self.clock.pattern_sparse_ms(
                    x.rows(),
                    x.cols(),
                    x.nnz(),
                    spec.with_v,
                    spec.with_z,
                    spec.alpha != 1.0,
                );
                reference::pattern_csr(
                    spec.alpha,
                    x,
                    v.map(|v| v.as_slice()),
                    y,
                    spec.beta,
                    z.map(|z| z.as_slice()),
                )
            }
            HostMatrix::Dense(x) => {
                self.clock.pattern_dense_ms(
                    x.rows(),
                    x.cols(),
                    spec.with_v,
                    spec.with_z,
                    spec.alpha != 1.0,
                );
                reference::pattern_dense(
                    spec.alpha,
                    x,
                    v.map(|v| v.as_slice()),
                    y,
                    spec.beta,
                    z.map(|z| z.as_slice()),
                )
            }
        };
        self.absorb();
        self.stats.record_instance(spec.instance());
        Ok(())
    }

    fn try_mv(&mut self, y: &Vec<f64>, out: &mut Vec<f64>) -> Result<(), DeviceError> {
        *out = match &self.matrix {
            HostMatrix::Sparse(x) => {
                self.clock.csrmv_ms(x.nnz(), x.rows());
                reference::csr_mv(x, y)
            }
            HostMatrix::Dense(x) => {
                self.clock.gemv_ms(x.rows(), x.cols());
                reference::dense_mv(x, y)
            }
        };
        self.absorb();
        Ok(())
    }

    fn try_tmv(&mut self, alpha: f64, u: &Vec<f64>, out: &mut Vec<f64>) -> Result<(), DeviceError> {
        let mut w = match &self.matrix {
            HostMatrix::Sparse(x) => {
                self.clock.csrmv_t_ms(x.nnz(), x.rows(), x.cols());
                reference::csr_tmv(x, u)
            }
            HostMatrix::Dense(x) => {
                self.clock.gemv_t_ms(x.rows(), x.cols());
                reference::dense_tmv(x, u)
            }
        };
        if alpha != 1.0 {
            reference::scal(alpha, &mut w);
        }
        *out = w;
        self.absorb();
        self.stats.record_instance(PatternInstance::XtY);
        Ok(())
    }

    fn try_axpy(&mut self, a: f64, x: &Vec<f64>, y: &mut Vec<f64>) -> Result<(), DeviceError> {
        self.clock.axpy_ms(x.len());
        reference::axpy(a, x, y);
        self.absorb();
        Ok(())
    }

    fn try_scal(&mut self, a: f64, x: &mut Vec<f64>) -> Result<(), DeviceError> {
        self.clock.scal_ms(x.len());
        reference::scal(a, x);
        self.absorb();
        Ok(())
    }

    fn try_copy(&mut self, src: &Vec<f64>, dst: &mut Vec<f64>) -> Result<(), DeviceError> {
        self.clock.axpy_ms(src.len());
        dst.clone_from(src);
        self.absorb();
        Ok(())
    }

    fn try_ewmul(
        &mut self,
        x: &Vec<f64>,
        y: &Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<(), DeviceError> {
        self.clock.ewmul_ms(x.len());
        *out = x.iter().zip(y).map(|(a, b)| a * b).collect();
        self.absorb();
        Ok(())
    }

    fn try_dot(&mut self, x: &Vec<f64>, y: &Vec<f64>) -> Result<f64, DeviceError> {
        self.clock.dot_ms(x.len());
        let d = reference::dot(x, y);
        self.absorb();
        Ok(d)
    }

    fn try_nrm2_sq(&mut self, x: &Vec<f64>) -> Result<f64, DeviceError> {
        self.clock.dot_ms(x.len());
        let d = reference::norm2_sq(x);
        self.absorb();
        Ok(d)
    }

    fn try_map2(
        &mut self,
        x: &Vec<f64>,
        y: &Vec<f64>,
        out: &mut Vec<f64>,
        f: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> Result<(), DeviceError> {
        self.clock.ewmul_ms(x.len());
        *out = x.iter().zip(y).map(|(a, b)| f(*a, *b)).collect();
        self.absorb();
        Ok(())
    }

    fn stats(&self) -> BackendStats {
        self.stats.clone()
    }

    fn reset_stats(&mut self) {
        self.stats = BackendStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedml_gpu_sim::DeviceSpec;
    use fusedml_matrix::gen::{random_vector, uniform_sparse};

    fn gpu() -> Gpu {
        Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1)
    }

    #[test]
    fn backends_agree_on_pattern() {
        let g = gpu();
        let x = uniform_sparse(150, 80, 0.1, 91);
        let y = random_vector(80, 1);
        let v = random_vector(150, 2);
        let spec = PatternSpec::xtvxy();

        let mut fused = FusedBackend::new_sparse(&g, &x);
        let yd = fused.from_host("y", &y);
        let vd = fused.from_host("v", &v);
        let mut wd = fused.zeros("w", 80);
        fused.pattern(spec, Some(&vd), &yd, None, &mut wd);
        let w_fused = fused.to_host(&wd);

        let mut base = BaselineBackend::new_sparse(&g, &x);
        let yd = base.from_host("y", &y);
        let vd = base.from_host("v", &v);
        let mut wd = base.zeros("w", 80);
        base.pattern(spec, Some(&vd), &yd, None, &mut wd);
        let w_base = base.to_host(&wd);

        let mut cpu = CpuBackend::new_sparse(x);
        let yv = cpu.from_host("y", &y);
        let vv = cpu.from_host("v", &v);
        let mut wv = cpu.zeros("w", 80);
        cpu.pattern(spec, Some(&vv), &yv, None, &mut wv);

        assert!(reference::rel_l2_error(&w_fused, &wv) < 1e-11);
        assert!(reference::rel_l2_error(&w_base, &wv) < 1e-11);
        assert_eq!(fused.stats().pattern_counts[spec.instance().formula()], 1);
        assert!(fused.stats().sim_ms > 0.0);
        assert!(cpu.stats().sim_ms > 0.0);
    }

    #[test]
    fn fused_cpu_backend_matches_reference_and_models_cheaper() {
        let x = uniform_sparse(200, 90, 0.1, 95);
        let y = random_vector(90, 6);
        let v = random_vector(200, 7);
        let spec = PatternSpec::xtvxy();

        let mut plain = CpuBackend::new_sparse(x.clone());
        assert!(plain.fused_executor_name().is_none());
        let yv = plain.from_host("y", &y);
        let vv = plain.from_host("v", &v);
        let mut wp = plain.zeros("w", 90);
        plain.pattern(spec, Some(&vv), &yv, None, &mut wp);

        let mut fused = CpuBackend::new_sparse(x).with_fused_execution(4);
        assert!(fused.fused_executor_name().is_some());
        let yv = fused.from_host("y", &y);
        let vv = fused.from_host("v", &v);
        let mut wf = fused.zeros("w", 90);
        fused.pattern(spec, Some(&vv), &yv, None, &mut wf);

        assert!(reference::rel_l2_error(&wf, &wp) < 1e-12);
        // The analytical clock charges the one-pass roofline: strictly
        // cheaper than the two-scan reference path.
        assert!(fused.stats().sim_ms < plain.stats().sim_ms);
    }

    #[test]
    fn fused_cpu_backend_runs_lr_cg_to_the_same_answer() {
        let x = uniform_sparse(120, 40, 0.15, 96);
        let labels = random_vector(120, 8);
        let opts = crate::LrCgOptions {
            eps: 0.001,
            tolerance: 0.0,
            max_iterations: 8,
        };
        let mut plain = CpuBackend::new_sparse(x.clone());
        let a = crate::lr_cg(&mut plain, &labels, opts);
        let mut fused = CpuBackend::new_sparse(x).with_fused_execution(2);
        let b = crate::lr_cg(&mut fused, &labels, opts);
        assert_eq!(a.iterations, b.iterations);
        assert!(reference::rel_l2_error(&b.weights, &a.weights) < 1e-9);
    }

    #[test]
    fn blas1_roundtrip_on_all_backends() {
        let g = gpu();
        let x = uniform_sparse(20, 10, 0.3, 92);

        fn exercise<B: Backend>(b: &mut B) -> (f64, Vec<f64>) {
            let xs = b.from_host("x", &[1.0, 2.0, 3.0, 4.0]);
            let mut ys = b.from_host("y", &[4.0, 3.0, 2.0, 1.0]);
            b.axpy(2.0, &xs, &mut ys); // [6,7,8,9]
            b.scal(0.5, &mut ys); // [3,3.5,4,4.5]
            let d = b.dot(&xs, &ys); // 3+7+12+18=40
            let mut prod = b.zeros("p", 4);
            b.ewmul(&xs, &ys, &mut prod);
            let mut mapped = b.zeros("m", 4);
            b.map2(&xs, &ys, &mut mapped, &|a, b| a - b);
            (d, b.to_host(&mapped))
        }

        let mut fused = FusedBackend::new_sparse(&g, &x);
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let mut base = BaselineBackend::new_sparse(&g, &x);
        let (df, mf) = exercise(&mut fused);
        let (dc, mc) = exercise(&mut cpu);
        let (db, mb) = exercise(&mut base);
        assert_eq!(df, 40.0);
        assert_eq!(dc, 40.0);
        assert_eq!(db, 40.0);
        assert_eq!(mf, mc);
        assert_eq!(mb, mc);
    }

    #[test]
    fn mv_and_tmv_match_reference() {
        let g = gpu();
        let x = uniform_sparse(60, 40, 0.15, 93);
        let y = random_vector(40, 3);
        let u = random_vector(60, 4);

        let mut fused = FusedBackend::new_sparse(&g, &x);
        let yd = fused.from_host("y", &y);
        let ud = fused.from_host("u", &u);
        let mut p = fused.zeros("p", 60);
        let mut w = fused.zeros("w", 40);
        fused.mv(&yd, &mut p);
        fused.tmv(2.0, &ud, &mut w);
        assert!(reference::rel_l2_error(&fused.to_host(&p), &reference::csr_mv(&x, &y)) < 1e-12);
        let mut expect = reference::csr_tmv(&x, &u);
        reference::scal(2.0, &mut expect);
        assert!(reference::rel_l2_error(&fused.to_host(&w), &expect) < 1e-12);
        // tmv counted as the X^T y instantiation.
        assert_eq!(
            fused.stats().pattern_counts[PatternInstance::XtY.formula()],
            1
        );
    }

    #[test]
    fn backend_stats_surface_plan_and_pool_traffic() {
        let g = gpu();
        let x = uniform_sparse(400, 128, 0.05, 94);
        let y = random_vector(128, 5);
        let mut b = FusedBackend::new_sparse(&g, &x);
        b.exec.set_plan_cache(true); // independent of the process default
        let yd = b.from_host("y", &y);
        let mut wd = b.zeros("w", 128);
        for _ in 0..5 {
            b.pattern(PatternSpec::xtxy(), None, &yd, None, &mut wd);
        }
        let s = b.stats();
        assert_eq!(
            s.plan.plans_computed(),
            1,
            "five evaluations, one tuner run"
        );
        assert_eq!(s.plan.hits, 4);

        // A dropped scratch buffer recycles through the pool and the reuse
        // lands in this backend's accounting window.
        drop(b.zeros("scratch", 300));
        let _again = b.zeros("scratch2", 300);
        assert!(b.stats().pool.hits >= 1);

        b.reset_stats();
        let s = b.stats();
        assert_eq!(s.plan.plans_computed(), 0);
        assert_eq!(s.plan.hits, 0);
        assert_eq!((s.pool.hits, s.pool.misses), (0, 0));
    }
}
