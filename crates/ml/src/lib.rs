//! # fusedml-ml
//!
//! The ML algorithms the paper's Table 1 surveys — linear regression
//! conjugate gradient (Listing 1), trust-region logistic regression,
//! primal L2-SVM, GLM via IRLS, and HITS — written once against a
//! [`Backend`] trait and runnable on the fused-kernel,
//! operator-baseline and CPU engines with identical numerics and full
//! time/launch/pattern instrumentation.

// Production solver code must surface faults as typed errors, never
// panic; tests may unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod dag_backend;
pub mod error;
pub mod glm;
pub mod hits;
pub mod logreg;
pub mod lr_cg;
pub mod ops;
pub mod pagerank;
pub mod sharded_backend;
pub mod svm;

pub use checkpoint::{CheckpointHandle, SolverCheckpoint};
pub use dag_backend::DagBackend;
pub use error::SolverError;
pub use glm::{glm, try_glm, try_glm_ckpt, Family, GlmOptions, GlmResult};
pub use hits::{hits, try_hits, try_hits_ckpt, HitsOptions, HitsResult};
pub use logreg::{
    logreg, logreg_tron, try_logreg, try_logreg_ckpt, try_logreg_tron, try_logreg_tron_ckpt,
    LogRegOptions, LogRegResult, TronOptions, TronResult,
};
pub use lr_cg::{lr_cg, try_lr_cg, try_lr_cg_ckpt, LrCgOptions, LrCgResult};
pub use ops::{
    try_device_map2, Backend, BackendStats, BaselineBackend, CpuBackend, DeviceMatrix, FusedBackend,
};
pub use pagerank::{
    inv_out_degrees, pagerank, try_pagerank, try_pagerank_backend, try_pagerank_backend_ckpt,
    PagerankOptions, PagerankPlan, PagerankPowerResult, PagerankResult,
};
pub use sharded_backend::ShardedBackend;
pub use svm::{svm_primal, try_svm, try_svm_ckpt, SvmOptions, SvmResult};
