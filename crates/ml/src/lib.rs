//! # fusedml-ml
//!
//! The ML algorithms the paper's Table 1 surveys — linear regression
//! conjugate gradient (Listing 1), trust-region logistic regression,
//! primal L2-SVM, GLM via IRLS, and HITS — written once against a
//! [`Backend`](ops::Backend) trait and runnable on the fused-kernel,
//! operator-baseline and CPU engines with identical numerics and full
//! time/launch/pattern instrumentation.

pub mod error;
pub mod glm;
pub mod hits;
pub mod logreg;
pub mod lr_cg;
pub mod ops;
pub mod svm;

pub use error::SolverError;
pub use glm::{glm, try_glm, Family, GlmOptions, GlmResult};
pub use hits::{hits, HitsOptions, HitsResult};
pub use logreg::{
    logreg, logreg_tron, try_logreg, LogRegOptions, LogRegResult, TronOptions, TronResult,
};
pub use lr_cg::{lr_cg, try_lr_cg, LrCgOptions, LrCgResult};
pub use ops::{Backend, BackendStats, BaselineBackend, CpuBackend, DeviceMatrix, FusedBackend};
pub use svm::{svm_primal, SvmOptions, SvmResult};
