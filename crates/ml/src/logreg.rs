//! Binomial logistic regression via a trust-region Newton method
//! (Lin, Weng & Keerthi \[24\] — the algorithm the paper cites for LogReg).
//!
//! The Hessian-vector product at the heart of the inner CG solve is
//! `H s = X^T (D ⊙ (X s)) + lambda s` with `D[i] = sigma_i (1 - sigma_i)`
//! — exactly the *full* instantiation of the generic pattern,
//! `X^T (v ⊙ (X y)) + beta z`, which is why Table 1 marks LogReg in the
//! `v`-carrying rows.

use crate::checkpoint::{CheckpointHandle, SolverCheckpoint};
use crate::error::SolverError;
use crate::ops::Backend;
use fusedml_core::PatternSpec;

#[derive(Debug, Clone, PartialEq)]
pub struct LogRegResult {
    pub weights: Vec<f64>,
    /// Outer Newton iterations.
    pub iterations: usize,
    /// Total inner CG iterations.
    pub cg_iterations: usize,
    /// Final objective value.
    pub objective: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogRegOptions {
    /// L2 regularization strength.
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner_cg: usize,
    /// Gradient-norm stopping threshold.
    pub grad_tol: f64,
}

impl Default for LogRegOptions {
    fn default() -> Self {
        LogRegOptions {
            lambda: 1e-3,
            max_outer: 30,
            max_inner_cg: 25,
            grad_tol: 1e-8,
        }
    }
}

fn sigmoid(t: f64) -> f64 {
    if t >= 0.0 {
        1.0 / (1.0 + (-t).exp())
    } else {
        let e = t.exp();
        e / (1.0 + e)
    }
}

/// Train binomial logistic regression with labels in `{-1, +1}`.
pub fn logreg<B: Backend>(backend: &mut B, labels: &[f64], opts: LogRegOptions) -> LogRegResult {
    try_logreg(backend, labels, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`logreg`]: device faults propagate as
/// [`SolverError::Device`]; a non-finite objective, gradient norm, or CG
/// curvature aborts with [`SolverError::NumericalBreakdown`]. The
/// `max_outer`/`max_inner_cg` caps bound the work done before either
/// outcome.
pub fn try_logreg<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: LogRegOptions,
) -> Result<LogRegResult, SolverError> {
    try_logreg_ckpt(backend, labels, opts, None)
}

/// [`try_logreg`] with checkpoint/resume: each outer Newton pass
/// recomputes margins, sigmoids and objective from the iterate, so the
/// snapshot is the weights plus outer-loop counters. With `ckpt` `None`
/// the device work is identical to [`try_logreg`].
pub fn try_logreg_ckpt<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: LogRegOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<LogRegResult, SolverError> {
    const SOLVER: &str = "logreg";

    let m = backend.rows();
    let n = backend.cols();
    assert_eq!(labels.len(), m);
    assert!(labels.iter().all(|&l| l == 1.0 || l == -1.0));

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::LogReg {
            outer,
            cg_iterations,
            weights,
        } if weights.len() == n => Some((outer, cg_iterations, weights)),
        _ => None,
    });

    let y = backend.try_from_host("labels", labels)?;
    let (mut w, mut outer, mut cg_total) = match resume {
        Some((outer, cg_iterations, weights)) => {
            let w = backend.try_from_host("w", &weights)?;
            if let Some(h) = ckpt {
                h.note_resume(outer);
            }
            (w, outer, cg_iterations)
        }
        None => (backend.try_zeros("w", n)?, 0usize, 0usize),
    };
    let mut margins = backend.try_zeros("margins", m)?;
    let mut sig = backend.try_zeros("sig", m)?;
    let mut d = backend.try_zeros("d", m)?;
    let mut grad = backend.try_zeros("grad", n)?;
    let mut objective = f64::INFINITY;

    while outer < opts.max_outer {
        let mut span = fusedml_trace::wall_span("solver", "logreg.outer", "host");
        span.arg("outer", outer);
        // margins = X w ; sig_i = sigma(y_i * margin_i)
        backend.try_mv(&w, &mut margins)?;
        backend.try_map2(&margins, &y, &mut sig, &|t, yi| sigmoid(yi * t))?;

        // objective = sum log(1 + exp(-y t)) + lambda/2 ||w||^2
        // (downloaded once per outer iteration for the stopping report;
        // a real system would reduce on device — cost equivalent to a dot.)
        let sig_host = backend.to_host(&sig);
        let obj_loss: f64 = sig_host.iter().map(|&s| -(s.max(1e-300)).ln()).sum();
        let wn2 = backend.try_nrm2_sq(&w)?;
        objective = obj_loss + 0.5 * opts.lambda * wn2;
        if !objective.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("objective is {objective}"),
            ));
        }

        span.arg("objective", objective);

        // grad = X^T ((sig - 1) .* y) + lambda w
        backend.try_map2(&sig, &y, &mut d, &|s, yi| (s - 1.0) * yi)?;
        backend.try_tmv(1.0, &d, &mut grad)?;
        backend.try_axpy(opts.lambda, &w, &mut grad)?;
        let gn2 = backend.try_nrm2_sq(&grad)?;
        if !gn2.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("gradient norm^2 is {gn2}"),
            ));
        }
        if gn2 <= opts.grad_tol {
            break;
        }

        // D = sig (1 - sig): the CG weight vector v.
        backend.try_map2(&sig, &sig, &mut d, &|s, _| s * (1.0 - s))?;

        // Inner CG on  H s = -grad,  H s = X^T (D ⊙ (X s)) + lambda s.
        let mut s = backend.try_zeros("cg.s", n)?;
        let mut r = backend.try_zeros("cg.r", n)?;
        backend.try_copy(&grad, &mut r)?;
        backend.try_scal(-1.0, &mut r)?; // r = -grad (residual of s = 0)
        let mut p = backend.try_zeros("cg.p", n)?;
        backend.try_copy(&r, &mut p)?;
        let mut rs = backend.try_nrm2_sq(&r)?;
        let rs0 = rs;
        let mut hp = backend.try_zeros("cg.hp", n)?;
        for _ in 0..opts.max_inner_cg {
            if rs <= 1e-4 * rs0 {
                break;
            }
            // hp = X^T (D ⊙ (X p)) + lambda p -- the FULL pattern.
            backend.try_pattern(
                PatternSpec::full(1.0, opts.lambda),
                Some(&d),
                &p,
                Some(&p),
                &mut hp,
            )?;
            let php = backend.try_dot(&p, &hp)?;
            if !php.is_finite() {
                return Err(SolverError::breakdown(
                    SOLVER,
                    outer,
                    format!("CG curvature p.Hp is {php}"),
                ));
            }
            if php <= 0.0 {
                break;
            }
            let alpha = rs / php;
            backend.try_axpy(alpha, &p, &mut s)?;
            backend.try_axpy(-alpha, &hp, &mut r)?;
            let rs_new = backend.try_nrm2_sq(&r)?;
            let beta = rs_new / rs;
            rs = rs_new;
            backend.try_scal(beta, &mut p)?;
            backend.try_axpy(1.0, &r, &mut p)?;
            cg_total += 1;
        }

        // Damped Newton step with simple backtracking on the objective.
        let mut step = 1.0;
        let mut accepted = false;
        for _ in 0..8 {
            let mut w_try = backend.try_zeros("w.try", n)?;
            backend.try_copy(&w, &mut w_try)?;
            backend.try_axpy(step, &s, &mut w_try)?;
            backend.try_mv(&w_try, &mut margins)?;
            backend.try_map2(&margins, &y, &mut sig, &|t, yi| sigmoid(yi * t))?;
            let loss: f64 = backend
                .to_host(&sig)
                .iter()
                .map(|&s| -(s.max(1e-300)).ln())
                .sum();
            let wn2 = backend.try_nrm2_sq(&w_try)?;
            let obj_try = loss + 0.5 * opts.lambda * wn2;
            if obj_try < objective {
                backend.try_copy(&w_try, &mut w)?;
                objective = obj_try;
                accepted = true;
                break;
            }
            step *= 0.5;
        }
        outer += 1;
        if let Some(h) = ckpt {
            if h.due(outer) {
                h.save(SolverCheckpoint::LogReg {
                    outer,
                    cg_iterations: cg_total,
                    weights: backend.to_host(&w),
                });
            }
        }
        if !accepted {
            break;
        }
    }

    Ok(LogRegResult {
        weights: backend.to_host(&w),
        iterations: outer,
        cg_iterations: cg_total,
        objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    /// Separable-ish data: labels from the sign of a noiseless linear score.
    fn problem(m: usize, n: usize, seed: u64) -> (fusedml_matrix::CsrMatrix, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.25, seed);
        let w_true = random_vector(n, seed + 9);
        let labels: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        (x, labels)
    }

    fn accuracy(x: &fusedml_matrix::CsrMatrix, w: &[f64], labels: &[f64]) -> f64 {
        let scores = reference::csr_mv(x, w);
        let correct = scores
            .iter()
            .zip(labels)
            .filter(|(s, l)| (s.signum() - **l).abs() < 0.5)
            .count();
        correct as f64 / labels.len() as f64
    }

    #[test]
    fn learns_separable_data() {
        let (x, labels) = problem(400, 30, 111);
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let res = logreg(&mut cpu, &labels, LogRegOptions::default());
        assert!(res.iterations > 0);
        let acc = accuracy(&x, &res.weights, &labels);
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(res.objective.is_finite());
    }

    #[test]
    fn fused_backend_matches_cpu() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (x, labels) = problem(200, 20, 112);
        let opts = LogRegOptions {
            max_outer: 5,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = logreg(&mut cpu, &labels, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = logreg(&mut fused, &labels, opts);
        assert!(
            reference::rel_l2_error(&r_fused.weights, &r_cpu.weights) < 1e-6,
            "err {}",
            reference::rel_l2_error(&r_fused.weights, &r_cpu.weights)
        );
        // LogReg exercises the v-carrying full pattern (Table 1).
        let counts = fused.stats().pattern_counts;
        assert!(counts["X^T x (v . (X x y)) + b * z"] >= 1);
    }

    #[test]
    fn objective_decreases_monotonically_enough() {
        let (x, labels) = problem(300, 25, 113);
        let mut cpu = CpuBackend::new_sparse(x);
        let short = logreg(
            &mut cpu,
            &labels,
            LogRegOptions {
                max_outer: 2,
                ..Default::default()
            },
        );
        let mut cpu2 = CpuBackend::new_sparse(
            // rebuild: backend consumed the matrix
            problem(300, 25, 113).0,
        );
        let long = logreg(
            &mut cpu2,
            &labels,
            LogRegOptions {
                max_outer: 10,
                ..Default::default()
            },
        );
        assert!(long.objective <= short.objective + 1e-9);
    }
}

// ---------------------------------------------------------------------
// TRON: the trust-region Newton method of Lin, Weng & Keerthi [24] — the
// paper's citation for LogReg. Unlike the damped-Newton `logreg` above,
// the inner CG is Steihaug-truncated at the trust-region boundary and the
// radius adapts from the actual-vs-predicted reduction ratio.
// ---------------------------------------------------------------------

/// Result of a TRON run.
#[derive(Debug, Clone, PartialEq)]
pub struct TronResult {
    pub weights: Vec<f64>,
    pub iterations: usize,
    pub cg_iterations: usize,
    pub objective: f64,
    /// Final trust-region radius.
    pub radius: f64,
    /// Steps rejected by the ratio test.
    pub rejected_steps: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TronOptions {
    pub lambda: f64,
    pub max_outer: usize,
    pub max_inner_cg: usize,
    pub grad_tol: f64,
    /// Initial trust-region radius (TRON uses ||g||).
    pub initial_radius: Option<f64>,
}

impl Default for TronOptions {
    fn default() -> Self {
        TronOptions {
            lambda: 1e-3,
            max_outer: 50,
            max_inner_cg: 30,
            grad_tol: 1e-8,
            initial_radius: None,
        }
    }
}

// TRON's published constants (Lin-Weng-Keerthi, Alg. 1).
const ETA0: f64 = 1e-4;
const ETA1: f64 = 0.25;
const ETA2: f64 = 0.75;
const SIGMA1: f64 = 0.25;
const SIGMA2: f64 = 0.5;
const SIGMA3: f64 = 4.0;

/// Train binomial logistic regression with TRON. Labels in `{-1, +1}`.
pub fn logreg_tron<B: Backend>(backend: &mut B, labels: &[f64], opts: TronOptions) -> TronResult {
    try_logreg_tron(backend, labels, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`logreg_tron`]: device faults propagate as
/// [`SolverError::Device`]; a non-finite objective or gradient norm
/// aborts with [`SolverError::NumericalBreakdown`].
pub fn try_logreg_tron<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: TronOptions,
) -> Result<TronResult, SolverError> {
    try_logreg_tron_ckpt(backend, labels, opts, None)
}

/// [`try_logreg_tron`] with checkpoint/resume. The snapshot carries the
/// adaptive trust-region radius alongside the iterate and counters so a
/// resumed run does not restart region adaptation from `||g||`. With
/// `ckpt` `None` the device work is identical to [`try_logreg_tron`].
pub fn try_logreg_tron_ckpt<B: Backend>(
    backend: &mut B,
    labels: &[f64],
    opts: TronOptions,
    ckpt: Option<&CheckpointHandle>,
) -> Result<TronResult, SolverError> {
    const SOLVER: &str = "logreg_tron";

    let m = backend.rows();
    let n = backend.cols();
    assert_eq!(labels.len(), m);

    let resume = ckpt.and_then(|h| h.latest()).and_then(|c| match c {
        SolverCheckpoint::Tron {
            outer,
            cg_iterations,
            rejected,
            radius,
            weights,
        } if weights.len() == n && radius.is_finite() && radius > 0.0 => {
            Some((outer, cg_iterations, rejected, radius, weights))
        }
        _ => None,
    });

    let y = backend.try_from_host("labels", labels)?;
    let (mut w, mut outer, mut cg_total, mut rejected, mut radius, resumed) = match resume {
        Some((outer, cg_iterations, rejected, radius, weights)) => {
            let w = backend.try_from_host("w", &weights)?;
            if let Some(h) = ckpt {
                h.note_resume(outer);
            }
            (w, outer, cg_iterations, rejected, radius, true)
        }
        None => (
            backend.try_zeros("w", n)?,
            0usize,
            0usize,
            0usize,
            0.0f64,
            false,
        ),
    };
    let mut margins = backend.try_zeros("margins", m)?;
    let mut sig = backend.try_zeros("sig", m)?;
    let mut d = backend.try_zeros("d", m)?;
    let mut grad = backend.try_zeros("grad", n)?;

    // f(w), sigma(y * Xw) and the objective at the current iterate.
    macro_rules! objective_at {
        ($wv:expr) => {{
            backend.try_mv($wv, &mut margins)?;
            backend.try_map2(&margins, &y, &mut sig, &|t, yi| sigmoid(yi * t))?;
            let loss: f64 = backend
                .to_host(&sig)
                .iter()
                .map(|&s| -(s.max(1e-300)).ln())
                .sum();
            let wn2 = backend.try_nrm2_sq($wv)?;
            loss + 0.5 * opts.lambda * wn2
        }};
    }

    let mut objective = objective_at!(&w);
    if !objective.is_finite() {
        return Err(SolverError::breakdown(
            SOLVER,
            outer,
            format!("objective is {objective}"),
        ));
    }

    while outer < opts.max_outer {
        let mut span = fusedml_trace::wall_span("solver", "logreg_tron.outer", "host");
        span.arg("outer", outer);
        span.arg("objective", objective);
        // Gradient at w (sig is current from the last objective eval).
        backend.try_map2(&sig, &y, &mut d, &|s, yi| (s - 1.0) * yi)?;
        backend.try_tmv(1.0, &d, &mut grad)?;
        backend.try_axpy(opts.lambda, &w, &mut grad)?;
        let gn = backend.try_nrm2_sq(&grad)?.sqrt();
        if !gn.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("gradient norm is {gn}"),
            ));
        }
        if gn * gn <= opts.grad_tol {
            break;
        }
        if outer == 0 && !resumed {
            radius = opts.initial_radius.unwrap_or(gn);
        }

        // Hessian weights D = sig (1 - sig).
        backend.try_map2(&sig, &sig, &mut d, &|s, _| s * (1.0 - s))?;

        // --- CG-Steihaug: minimize q(s) within ||s|| <= radius ---
        let mut s = backend.try_zeros("tron.s", n)?;
        let mut r = backend.try_zeros("tron.r", n)?;
        backend.try_copy(&grad, &mut r)?;
        backend.try_scal(-1.0, &mut r)?;
        let mut p = backend.try_zeros("tron.p", n)?;
        backend.try_copy(&r, &mut p)?;
        let mut rs = backend.try_nrm2_sq(&r)?;
        let rs0 = rs;
        let mut hp = backend.try_zeros("tron.hp", n)?;
        let mut hit_boundary = false;
        for _ in 0..opts.max_inner_cg {
            if rs <= 1e-6 * rs0 {
                break;
            }
            backend.try_pattern(
                PatternSpec::full(1.0, opts.lambda),
                Some(&d),
                &p,
                Some(&p),
                &mut hp,
            )?;
            cg_total += 1;
            let php = backend.try_dot(&p, &hp)?;
            if php <= 0.0 {
                // Negative curvature: step to the boundary along p.
                let tau = try_boundary_tau(backend, &s, &p, radius)?;
                backend.try_axpy(tau, &p, &mut s)?;
                hit_boundary = true;
                break;
            }
            let alpha = rs / php;
            // Would s + alpha p leave the region?
            let sn2 = backend.try_nrm2_sq(&s)?;
            let sp = backend.try_dot(&s, &p)?;
            let pn2 = backend.try_nrm2_sq(&p)?;
            let step_norm2 = sn2 + 2.0 * alpha * sp + alpha * alpha * pn2;
            if step_norm2 > radius * radius {
                let tau = try_boundary_tau(backend, &s, &p, radius)?;
                backend.try_axpy(tau, &p, &mut s)?;
                hit_boundary = true;
                break;
            }
            backend.try_axpy(alpha, &p, &mut s)?;
            backend.try_axpy(-alpha, &hp, &mut r)?;
            let rs_new = backend.try_nrm2_sq(&r)?;
            let beta = rs_new / rs;
            rs = rs_new;
            backend.try_scal(beta, &mut p)?;
            backend.try_axpy(1.0, &r, &mut p)?;
        }

        // Predicted reduction: -q(s) = -(g.s + 0.5 s.Hs).
        backend.try_pattern(
            PatternSpec::full(1.0, opts.lambda),
            Some(&d),
            &s,
            Some(&s),
            &mut hp,
        )?;
        let gs = backend.try_dot(&grad, &s)?;
        let shs = backend.try_dot(&s, &hp)?;
        let predicted = -(gs + 0.5 * shs);
        let s_norm = backend.try_nrm2_sq(&s)?.sqrt();
        if predicted <= 0.0 || s_norm == 0.0 {
            break; // no useful model direction left
        }

        // Actual reduction and the ratio test.
        let mut w_try = backend.try_zeros("tron.wtry", n)?;
        backend.try_copy(&w, &mut w_try)?;
        backend.try_axpy(1.0, &s, &mut w_try)?;
        let obj_try = objective_at!(&w_try);
        if !obj_try.is_finite() {
            return Err(SolverError::breakdown(
                SOLVER,
                outer,
                format!("trial objective is {obj_try}"),
            ));
        }
        let actual = objective - obj_try;
        let rho = actual / predicted;

        // Radius update (TRON's schedule).
        if rho < ETA1 {
            radius = (SIGMA1 * s_norm).min(SIGMA2 * radius).max(1e-12);
        } else if rho > ETA2 && hit_boundary {
            radius = (SIGMA3 * radius).max(radius);
        }

        if rho > ETA0 {
            backend.try_copy(&w_try, &mut w)?;
            objective = obj_try;
        } else {
            rejected += 1;
            // Re-evaluate sig at the (unchanged) iterate for the next
            // gradient; objective_at! mutated `sig` for w_try.
            objective = objective_at!(&w);
        }
        outer += 1;
        if let Some(h) = ckpt {
            if h.due(outer) {
                h.save(SolverCheckpoint::Tron {
                    outer,
                    cg_iterations: cg_total,
                    rejected,
                    radius,
                    weights: backend.to_host(&w),
                });
            }
        }
    }

    Ok(TronResult {
        weights: backend.to_host(&w),
        iterations: outer,
        cg_iterations: cg_total,
        objective,
        radius,
        rejected_steps: rejected,
    })
}

/// Positive root `tau` of `||s + tau p|| = radius`.
fn try_boundary_tau<B: Backend>(
    backend: &mut B,
    s: &B::Vector,
    p: &B::Vector,
    radius: f64,
) -> Result<f64, SolverError> {
    let sn2 = backend.try_nrm2_sq(s)?;
    let sp = backend.try_dot(s, p)?;
    let pn2 = backend.try_nrm2_sq(p)?;
    if pn2 == 0.0 {
        return Ok(0.0);
    }
    let disc = (sp * sp + pn2 * (radius * radius - sn2)).max(0.0);
    Ok((-sp + disc.sqrt()) / pn2)
}

#[cfg(test)]
mod tron_tests {
    use super::*;
    use crate::ops::{CpuBackend, FusedBackend};
    use fusedml_gpu_sim::{DeviceSpec, Gpu};
    use fusedml_matrix::gen::{random_vector, uniform_sparse};
    use fusedml_matrix::reference;

    fn problem(m: usize, n: usize, seed: u64) -> (fusedml_matrix::CsrMatrix, Vec<f64>) {
        let x = uniform_sparse(m, n, 0.25, seed);
        let w_true = random_vector(n, seed + 9);
        let labels: Vec<f64> = reference::csr_mv(&x, &w_true)
            .iter()
            .map(|&s| if s >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        (x, labels)
    }

    #[test]
    fn tron_separates_data() {
        let (x, labels) = problem(400, 30, 201);
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let res = logreg_tron(&mut cpu, &labels, TronOptions::default());
        let scores = reference::csr_mv(&x, &res.weights);
        let acc = scores
            .iter()
            .zip(&labels)
            .filter(|(s, l)| (s.signum() - **l).abs() < 0.5)
            .count() as f64
            / labels.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(res.radius > 0.0);
    }

    #[test]
    fn tron_matches_damped_newton_solution() {
        let (x, labels) = problem(300, 25, 202);
        let mut a = CpuBackend::new_sparse(x.clone());
        let tron = logreg_tron(&mut a, &labels, TronOptions::default());
        let mut b = CpuBackend::new_sparse(x);
        let newton = logreg(&mut b, &labels, LogRegOptions::default());
        // Same strictly convex objective => same optimum.
        assert!(
            (tron.objective - newton.objective).abs() < 1e-3 * (1.0 + newton.objective.abs()),
            "tron {} vs newton {}",
            tron.objective,
            newton.objective
        );
    }

    #[test]
    fn tron_fused_matches_cpu() {
        let g = Gpu::with_host_threads(DeviceSpec::gtx_titan(), 1);
        let (x, labels) = problem(200, 20, 203);
        let opts = TronOptions {
            max_outer: 6,
            ..Default::default()
        };
        let mut cpu = CpuBackend::new_sparse(x.clone());
        let r_cpu = logreg_tron(&mut cpu, &labels, opts);
        let mut fused = FusedBackend::new_sparse(&g, &x);
        let r_fused = logreg_tron(&mut fused, &labels, opts);
        assert!(
            reference::rel_l2_error(&r_fused.weights, &r_cpu.weights) < 1e-6,
            "err {}",
            reference::rel_l2_error(&r_fused.weights, &r_cpu.weights)
        );
        // TRON's Hessian-vector products go through the full pattern.
        assert!(fused.stats().pattern_counts["X^T x (v . (X x y)) + b * z"] >= 2);
    }

    #[test]
    fn tiny_initial_radius_forces_boundary_steps_then_grows() {
        let (x, labels) = problem(250, 20, 204);
        let mut cpu = CpuBackend::new_sparse(x);
        let res = logreg_tron(
            &mut cpu,
            &labels,
            TronOptions {
                initial_radius: Some(1e-3),
                max_outer: 40,
                ..Default::default()
            },
        );
        // The region must have expanded well beyond the crippled start.
        assert!(res.radius > 1e-2, "radius stayed at {}", res.radius);
        assert!(res.objective.is_finite());
    }
}
