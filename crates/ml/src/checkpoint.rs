//! Solver checkpoint/resume: periodic host-side snapshots of iterative
//! solver state so a recovery ladder can resume from the last good
//! iterate instead of iteration 0.
//!
//! Snapshots live on the *host* (plain `Vec<f64>`), deliberately outside
//! device memory: a device fault, a degraded backend tier, or a fresh
//! `Gpu` must all be able to re-upload the state. A checkpoint therefore
//! survives a Fused→Baseline degrade, where the new backend shares no
//! buffers with the failed one.
//!
//! Cadence is controlled by the [`CheckpointHandle`]'s `every` interval;
//! `every == 0` disables saving entirely and the `try_*_ckpt` solver
//! entry points perform *bit-identical* work to their plain `try_*`
//! counterparts (no extra device ops, no extra downloads), which keeps
//! the perf-regression gate honest.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A host-side snapshot of one solver's resumable state.
///
/// Each variant captures exactly what that solver needs to continue
/// mid-stream: full CG state for `lr_cg` (iterate, residual, direction
/// and their norms), the trust-region radius for TRON, and the iterate
/// plus outer-loop counters for the Newton-type solvers, whose loops
/// recompute everything else from the weights each outer iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverCheckpoint {
    /// Full CG state of [`try_lr_cg`](crate::lr_cg::try_lr_cg).
    LrCg {
        iteration: usize,
        restarts: usize,
        nr2: f64,
        initial_nr2: f64,
        weights: Vec<f64>,
        residual: Vec<f64>,
        direction: Vec<f64>,
    },
    /// IRLS outer-loop state of [`try_glm`](crate::glm::try_glm).
    Glm {
        outer: usize,
        cg_iterations: usize,
        weights: Vec<f64>,
    },
    /// Damped-Newton state of [`try_logreg`](crate::logreg::try_logreg).
    LogReg {
        outer: usize,
        cg_iterations: usize,
        weights: Vec<f64>,
    },
    /// TRON state incl. the adaptive trust-region radius.
    Tron {
        outer: usize,
        cg_iterations: usize,
        rejected: usize,
        radius: f64,
        weights: Vec<f64>,
    },
    /// Primal L2-SVM Newton state.
    Svm {
        outer: usize,
        cg_iterations: usize,
        weights: Vec<f64>,
    },
    /// HITS power-iteration state.
    Hits {
        iteration: usize,
        delta: f64,
        authorities: Vec<f64>,
    },
    /// PageRank power-iteration state (the backend-generic entry point,
    /// [`try_pagerank_backend_ckpt`](crate::pagerank::try_pagerank_backend_ckpt)).
    Pagerank {
        iteration: usize,
        delta: f64,
        ranks: Vec<f64>,
    },
}

impl SolverCheckpoint {
    /// The outer-iteration count the snapshot was taken at; resuming from
    /// this checkpoint continues at this iteration.
    pub fn iteration(&self) -> usize {
        match self {
            SolverCheckpoint::LrCg { iteration, .. } => *iteration,
            SolverCheckpoint::Glm { outer, .. } => *outer,
            SolverCheckpoint::LogReg { outer, .. } => *outer,
            SolverCheckpoint::Tron { outer, .. } => *outer,
            SolverCheckpoint::Svm { outer, .. } => *outer,
            SolverCheckpoint::Hits { iteration, .. } => *iteration,
            SolverCheckpoint::Pagerank { iteration, .. } => *iteration,
        }
    }

    /// Which solver the snapshot belongs to.
    pub fn solver(&self) -> &'static str {
        match self {
            SolverCheckpoint::LrCg { .. } => "lr_cg",
            SolverCheckpoint::Glm { .. } => "glm",
            SolverCheckpoint::LogReg { .. } => "logreg",
            SolverCheckpoint::Tron { .. } => "logreg_tron",
            SolverCheckpoint::Svm { .. } => "svm",
            SolverCheckpoint::Hits { .. } => "hits",
            SolverCheckpoint::Pagerank { .. } => "pagerank",
        }
    }
}

/// Shared checkpoint slot handed to a `try_*_ckpt` solver.
///
/// Cloning shares the slot: the recovery ladder keeps one handle across
/// retries and tier degrades, so an attempt on a fresh backend sees the
/// snapshot the failed attempt saved.
#[derive(Debug, Clone, Default)]
pub struct CheckpointHandle {
    every: usize,
    slot: Arc<Mutex<Option<SolverCheckpoint>>>,
    saves: Arc<AtomicU64>,
    last_resume: Arc<AtomicU64>,
    /// Every resume iteration in order, across retries and tier degrades.
    resume_trail: Arc<Mutex<Vec<usize>>>,
}

/// Sentinel for "never resumed" in the packed `last_resume` cell.
const NO_RESUME: u64 = u64::MAX;

impl CheckpointHandle {
    /// A handle that snapshots every `every` iterations (`0` disables
    /// saving; an existing snapshot is still consumed on resume).
    pub fn new(every: usize) -> Self {
        CheckpointHandle {
            every,
            slot: Arc::new(Mutex::new(None)),
            saves: Arc::new(AtomicU64::new(0)),
            last_resume: Arc::new(AtomicU64::new(NO_RESUME)),
            resume_trail: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The snapshot interval.
    pub fn every(&self) -> usize {
        self.every
    }

    /// True when a snapshot should be taken after iteration `iteration`.
    pub fn due(&self, iteration: usize) -> bool {
        self.every > 0 && iteration > 0 && iteration % self.every == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<SolverCheckpoint>> {
        // A panic while holding the guard cannot corrupt an Option swap.
        self.slot.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Store a snapshot, replacing any previous one.
    pub fn save(&self, checkpoint: SolverCheckpoint) {
        self.saves.fetch_add(1, Ordering::Relaxed);
        *self.lock() = Some(checkpoint);
    }

    /// Clone of the most recent snapshot, if any.
    pub fn latest(&self) -> Option<SolverCheckpoint> {
        self.lock().clone()
    }

    /// Drop the stored snapshot (e.g. after a permanent abort, so a
    /// later unrelated run cannot resume from stale state).
    pub fn clear(&self) {
        *self.lock() = None;
    }

    /// Number of snapshots saved through this handle (and its clones).
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// Called by a solver when it restores state from a snapshot; records
    /// the iteration it resumed at for reporting.
    pub fn note_resume(&self, iteration: usize) {
        self.last_resume.store(iteration as u64, Ordering::Relaxed);
        self.resume_trail
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(iteration);
    }

    /// Every resume iteration recorded through this handle (and its
    /// clones), in resume order. Snapshots only ever advance, so across a
    /// degrade+resume ladder this trail must be monotone non-decreasing —
    /// a property the serving tests assert.
    pub fn resumes(&self) -> Vec<usize> {
        self.resume_trail
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The iteration of the most recent resume, if any solver run resumed
    /// from this handle's snapshot.
    pub fn last_resume(&self) -> Option<usize> {
        match self.last_resume.load(Ordering::Relaxed) {
            NO_RESUME => None,
            it => Some(it as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_respects_interval_and_skips_iteration_zero() {
        let h = CheckpointHandle::new(5);
        assert!(!h.due(0));
        assert!(!h.due(4));
        assert!(h.due(5));
        assert!(!h.due(6));
        assert!(h.due(10));
        let off = CheckpointHandle::new(0);
        assert!(!off.due(5));
    }

    #[test]
    fn save_latest_clear_roundtrip() {
        let h = CheckpointHandle::new(2);
        assert_eq!(h.latest(), None);
        assert_eq!(h.saves(), 0);
        h.save(SolverCheckpoint::Glm {
            outer: 4,
            cg_iterations: 12,
            weights: vec![1.0, 2.0],
        });
        let c = h.latest().expect("snapshot stored");
        assert_eq!(c.iteration(), 4);
        assert_eq!(c.solver(), "glm");
        assert_eq!(h.saves(), 1);
        h.clear();
        assert_eq!(h.latest(), None);
        assert_eq!(h.saves(), 1, "clear does not rewind the save counter");
    }

    #[test]
    fn clones_share_the_slot_and_resume_marker() {
        let h = CheckpointHandle::new(3);
        let other = h.clone();
        other.save(SolverCheckpoint::Hits {
            iteration: 6,
            delta: 1e-3,
            authorities: vec![0.5; 4],
        });
        assert_eq!(h.latest().map(|c| c.iteration()), Some(6));
        assert_eq!(h.last_resume(), None);
        other.note_resume(6);
        assert_eq!(h.last_resume(), Some(6));
    }
}
